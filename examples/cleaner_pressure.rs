//! Log wrap and the segment cleaner — inline, then in the background.
//!
//! Phase 1 fills a small logical disk with churn until the log wraps
//! several times, shows the inline cleaner's statistics, and proves the
//! surviving data and crash recovery are unaffected. Phase 2 repeats
//! the churn with `cleanerd` (the background cleaner thread) enabled:
//! the foreground never cleans unless the watermark backpressure gate
//! fires, and the same survival guarantees hold.
//!
//! Run with: `cargo run --example cleaner_pressure`

use ld_core::{CleanerConfig, Ctx, Lld, LldConfig, Position};
use ld_disk::MemDisk;
use ld_workload::pattern_fill;

fn config(background: bool) -> LldConfig {
    LldConfig {
        block_size: 4096,
        segment_bytes: 64 * 1024,
        max_blocks: Some(512),
        max_lists: Some(32),
        cleaner: CleanerConfig {
            background,
            ..CleanerConfig::default()
        },
        ..LldConfig::default()
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A deliberately tiny disk: ~40 segments of 64 KiB.
    let ld = Lld::format(MemDisk::new(4 << 20), &config(false))?;
    println!(
        "device: {} segments, {} free",
        ld.n_segments(),
        ld.free_segments()
    );

    // A handful of cold blocks that must survive all the churn...
    let list = ld.new_list(Ctx::Simple)?;
    let mut cold = Vec::new();
    let mut prev = None;
    let mut buf = vec![0u8; 4096];
    for i in 0..8u64 {
        let pos = match prev {
            None => Position::First,
            Some(p) => Position::After(p),
        };
        let b = ld.new_block(Ctx::Simple, list, pos)?;
        pattern_fill(&mut buf, i);
        ld.write(Ctx::Simple, b, &buf)?;
        cold.push(b);
        prev = Some(b);
    }

    // ...plus a hot block overwritten until the log wraps repeatedly.
    let hot = ld.new_block(Ctx::Simple, list, Position::After(prev.unwrap()))?;
    for i in 0..2000u64 {
        pattern_fill(&mut buf, 1_000_000 + i);
        ld.write(Ctx::Simple, hot, &buf)?;
    }

    let s = ld.stats();
    println!(
        "after 2000 overwrites: {} segments sealed, {} cleaner runs, \
         {} blocks relocated, {} checkpoints, {} free segments",
        s.segments_sealed,
        s.cleaner_runs,
        s.blocks_relocated,
        s.checkpoints,
        ld.free_segments()
    );
    assert!(s.cleaner_runs > 0, "the cleaner must have run");

    // Cold data survived relocation.
    let mut expect = vec![0u8; 4096];
    for (i, &b) in cold.iter().enumerate() {
        ld.read(Ctx::Simple, b, &mut buf)?;
        pattern_fill(&mut expect, i as u64);
        assert_eq!(buf, expect, "cold block {i} corrupted by cleaning");
    }
    println!("all cold blocks intact after relocation");

    // And the whole thing still recovers.
    ld.flush()?;
    let image = ld.into_device().into_image();
    let (ld2, report) = Lld::recover(MemDisk::from_image(image))?;
    println!(
        "recovery: checkpoint seq {}, {} segments replayed",
        report.checkpoint_seq, report.segments_replayed
    );
    for (i, &b) in cold.iter().enumerate() {
        ld2.read(Ctx::Simple, b, &mut buf)?;
        pattern_fill(&mut expect, i as u64);
        assert_eq!(buf, expect);
    }
    ld2.read(Ctx::Simple, hot, &mut buf)?;
    pattern_fill(&mut expect, 1_000_000 + 1999);
    assert_eq!(buf, expect);
    println!("recovered state matches the last committed writes");

    // Phase 2: the same churn with the background cleaner. `cleanerd`
    // wakes at the low watermark, snapshots victims, relocates live
    // blocks in short write windows, and covers the relocations with a
    // checkpoint — all off the foreground path.
    println!("\n--- background cleaner (cleanerd) ---");
    let ld = Lld::format(MemDisk::new(4 << 20), &config(true))?;
    let list = ld.new_list(Ctx::Simple)?;
    let mut cold = Vec::new();
    let mut prev = None;
    for i in 0..8u64 {
        let pos = match prev {
            None => Position::First,
            Some(p) => Position::After(p),
        };
        let b = ld.new_block(Ctx::Simple, list, pos)?;
        pattern_fill(&mut buf, i);
        ld.write(Ctx::Simple, b, &buf)?;
        cold.push(b);
        prev = Some(b);
    }
    let hot = ld.new_block(Ctx::Simple, list, Position::After(prev.unwrap()))?;
    for i in 0..2000u64 {
        pattern_fill(&mut buf, 2_000_000 + i);
        ld.write(Ctx::Simple, hot, &buf)?;
    }
    let s = ld.stats();
    println!(
        "after 2000 overwrites: {} background passes, {} blocks relocated \
         by cleanerd, {} stale snapshots skipped, {} backpressure stalls, \
         {} inline fallback runs",
        s.cleaner_passes,
        s.cleaner_blocks_relocated,
        s.cleaner_stale_skips,
        s.backpressure_stalls,
        s.cleaner_runs - s.cleaner_passes,
    );
    assert!(s.cleaner_passes > 0, "cleanerd must have run a pass");
    for (i, &b) in cold.iter().enumerate() {
        ld.read(Ctx::Simple, b, &mut buf)?;
        pattern_fill(&mut expect, i as u64);
        assert_eq!(buf, expect, "cold block {i} corrupted by cleanerd");
    }
    println!("all cold blocks intact after background relocation");

    // Recovery holds with cleanerd in the picture too; `into_device`
    // joins the cleaner thread before releasing the device.
    ld.flush()?;
    let image = ld.into_device().into_image();
    let (ld2, report) = Lld::recover(MemDisk::from_image(image))?;
    println!(
        "recovery: checkpoint seq {}, {} segments replayed",
        report.checkpoint_seq, report.segments_replayed
    );
    for (i, &b) in cold.iter().enumerate() {
        ld2.read(Ctx::Simple, b, &mut buf)?;
        pattern_fill(&mut expect, i as u64);
        assert_eq!(buf, expect);
    }
    ld2.read(Ctx::Simple, hot, &mut buf)?;
    pattern_fill(&mut expect, 2_000_000 + 1999);
    assert_eq!(buf, expect);
    println!("recovered state matches the last committed writes");
    Ok(())
}
