//! Log wrap and the segment cleaner.
//!
//! Fills a small logical disk with churn until the log wraps several
//! times, then shows the cleaner statistics and proves the surviving
//! data and crash recovery are unaffected.
//!
//! Run with: `cargo run --example cleaner_pressure`

use ld_core::{Ctx, Lld, LldConfig, Position};
use ld_disk::MemDisk;
use ld_workload::pattern_fill;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A deliberately tiny disk: ~40 segments of 64 KiB.
    let ld = Lld::format(
        MemDisk::new(4 << 20),
        &LldConfig {
            block_size: 4096,
            segment_bytes: 64 * 1024,
            max_blocks: Some(512),
            max_lists: Some(32),
            ..LldConfig::default()
        },
    )?;
    println!(
        "device: {} segments, {} free",
        ld.n_segments(),
        ld.free_segments()
    );

    // A handful of cold blocks that must survive all the churn...
    let list = ld.new_list(Ctx::Simple)?;
    let mut cold = Vec::new();
    let mut prev = None;
    let mut buf = vec![0u8; 4096];
    for i in 0..8u64 {
        let pos = match prev {
            None => Position::First,
            Some(p) => Position::After(p),
        };
        let b = ld.new_block(Ctx::Simple, list, pos)?;
        pattern_fill(&mut buf, i);
        ld.write(Ctx::Simple, b, &buf)?;
        cold.push(b);
        prev = Some(b);
    }

    // ...plus a hot block overwritten until the log wraps repeatedly.
    let hot = ld.new_block(Ctx::Simple, list, Position::After(prev.unwrap()))?;
    for i in 0..2000u64 {
        pattern_fill(&mut buf, 1_000_000 + i);
        ld.write(Ctx::Simple, hot, &buf)?;
    }

    let s = ld.stats();
    println!(
        "after 2000 overwrites: {} segments sealed, {} cleaner runs, \
         {} blocks relocated, {} checkpoints, {} free segments",
        s.segments_sealed,
        s.cleaner_runs,
        s.blocks_relocated,
        s.checkpoints,
        ld.free_segments()
    );
    assert!(s.cleaner_runs > 0, "the cleaner must have run");

    // Cold data survived relocation.
    let mut expect = vec![0u8; 4096];
    for (i, &b) in cold.iter().enumerate() {
        ld.read(Ctx::Simple, b, &mut buf)?;
        pattern_fill(&mut expect, i as u64);
        assert_eq!(buf, expect, "cold block {i} corrupted by cleaning");
    }
    println!("all cold blocks intact after relocation");

    // And the whole thing still recovers.
    ld.flush()?;
    let image = ld.into_device().into_image();
    let (ld2, report) = Lld::recover(MemDisk::from_image(image))?;
    println!(
        "recovery: checkpoint seq {}, {} segments replayed",
        report.checkpoint_seq, report.segments_replayed
    );
    for (i, &b) in cold.iter().enumerate() {
        ld2.read(Ctx::Simple, b, &mut buf)?;
        pattern_fill(&mut expect, i as u64);
        assert_eq!(buf, expect);
    }
    ld2.read(Ctx::Simple, hot, &mut buf)?;
    pattern_fill(&mut expect, 1_000_000 + 1999);
    assert_eq!(buf, expect);
    println!("recovered state matches the last committed writes");
    Ok(())
}
