//! Atomic file creation: the paper's headline use case.
//!
//! A file system creates a file by updating several on-disk structures
//! (inode table, directory data, allocation meta-data). This example
//! crashes the machine at a series of points during a burst of file
//! creations and shows that with ARUs the file system is consistent at
//! *every* crash point — each file is entirely present or entirely
//! absent, and the fsck-style verifier finds nothing to repair.
//!
//! Run with: `cargo run --example atomic_file_create`

use ld_core::{Lld, LldConfig};
use ld_disk::{DiskModel, FaultPlan, MemDisk, SimDisk};
use ld_minixfs::{FsConfig, FsError, MinixFs};

fn ld_config() -> LldConfig {
    LldConfig {
        segment_bytes: 128 * 1024,
        ..LldConfig::default()
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut crash_points = Vec::new();
    let mut at = 200_000u64;
    while at < 2_000_000 {
        crash_points.push(at);
        at += 300_000;
    }

    for &crash_at in &crash_points {
        // Fresh machine with a crash scheduled after `crash_at` bytes of
        // disk writes.
        let sim = SimDisk::new(MemDisk::new(32 << 20), DiskModel::hp_c3010())
            .with_faults(FaultPlan::new().crash_after_bytes(crash_at));
        let ld = Lld::format(sim, &ld_config())?;
        let mut fs = MinixFs::format(
            ld,
            FsConfig {
                inode_count: 256,
                ..FsConfig::default()
            },
        )?;

        // Create files until the lights go out.
        let mut created = 0usize;
        let crashed = loop {
            if created >= 64 {
                break false;
            }
            let path = format!("/file{created:03}");
            match fs
                .create(&path)
                .and_then(|ino| fs.write_at(ino, 0, &vec![created as u8; 3000]))
                .and_then(|()| fs.flush())
            {
                Ok(()) => created += 1,
                Err(FsError::Ld(_)) => break true,
                Err(e) => return Err(e.into()),
            }
        };

        // Power is gone; recover from whatever reached the medium.
        let image = fs.into_ld().into_device().into_inner().into_image();
        let (ld2, _) = Lld::recover(MemDisk::from_image(image))?;
        let mut fs2 = MinixFs::mount(ld2, FsConfig::default())?;
        let report = fs2.verify()?;
        let survivors = fs2.readdir("/")?.len();

        println!(
            "crash after {:>9} bytes: created {:>2} files before crash ({}), {:>2} recovered, \
             file system {}",
            crash_at,
            created,
            if crashed { "crashed" } else { "completed" },
            survivors,
            if report.is_consistent() {
                "CONSISTENT - no fsck needed"
            } else {
                "INCONSISTENT"
            }
        );
        assert!(report.is_consistent(), "{:?}", report.problems);
        // Every recovered file is complete.
        for entry in fs2.readdir("/")? {
            let st = fs2.stat(entry.ino)?;
            assert_eq!(st.size, 3000, "{} is partial", entry.name);
        }
    }
    println!("\nall crash points recovered to a consistent file system");
    Ok(())
}
