//! Concurrent atomic recovery units: isolation, merging, and conflicts.
//!
//! Demonstrates the §3 semantics: n+2 versions of a block, option-3
//! read visibility (each ARU sees only its own shadow state), list
//! merging at commit, and what happens when a logged list operation no
//! longer applies (a commit conflict).
//!
//! Run with: `cargo run --example concurrent_arus`

use ld_core::{Ctx, Lld, LldConfig, LldError, Position};
use ld_disk::MemDisk;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ld = Lld::format(
        MemDisk::new(8 << 20),
        &LldConfig {
            segment_bytes: 128 * 1024,
            ..LldConfig::default()
        },
    )?;

    // One shared block with a committed version...
    let list = ld.new_list(Ctx::Simple)?;
    let block = ld.new_block(Ctx::Simple, list, Position::First)?;
    ld.write(Ctx::Simple, block, &vec![0u8; 4096])?;

    // ...and two concurrent ARUs, each with its own shadow version.
    let a1 = ld.begin_aru()?;
    let a2 = ld.begin_aru()?;
    ld.write(Ctx::Aru(a1), block, &vec![1u8; 4096])?;
    ld.write(Ctx::Aru(a2), block, &vec![2u8; 4096])?;

    let mut buf = vec![0u8; 4096];
    ld.read(Ctx::Aru(a1), block, &mut buf)?;
    println!("ARU 1 sees its own shadow version: {}", buf[0]);
    ld.read(Ctx::Aru(a2), block, &mut buf)?;
    println!("ARU 2 sees its own shadow version: {}", buf[0]);
    ld.read(Ctx::Simple, block, &mut buf)?;
    println!(
        "the simple stream still sees the committed version: {}",
        buf[0]
    );

    // ARUs serialize at EndARU: a2 commits first, then a1; a1 wins.
    ld.end_aru(a2)?;
    ld.end_aru(a1)?;
    ld.read(Ctx::Simple, block, &mut buf)?;
    println!(
        "after both commits (a2 then a1), committed version: {}",
        buf[0]
    );
    assert_eq!(buf[0], 1);

    // Two ARUs extending the same list merge at commit via the
    // list-operation log.
    let a3 = ld.begin_aru()?;
    let a4 = ld.begin_aru()?;
    let b3 = ld.new_block(Ctx::Aru(a3), list, Position::After(block))?;
    let b4 = ld.new_block(Ctx::Aru(a4), list, Position::After(block))?;
    println!("\nARU 3 view: {:?}", ld.list_blocks(Ctx::Aru(a3), list)?);
    println!("ARU 4 view: {:?}", ld.list_blocks(Ctx::Aru(a4), list)?);
    ld.end_aru(a3)?;
    ld.end_aru(a4)?;
    let merged = ld.list_blocks(Ctx::Simple, list)?;
    println!("merged list after both commits: {merged:?}");
    assert!(merged.contains(&b3) && merged.contains(&b4));

    // A conflict: ARU 5 inserts after b3, but a simple operation
    // deletes b3 before the commit. ARUs provide failure atomicity,
    // not concurrency control, so EndARU reports the conflict and
    // aborts.
    let a5 = ld.begin_aru()?;
    let _b5 = ld.new_block(Ctx::Aru(a5), list, Position::After(b3))?;
    ld.delete_block(Ctx::Simple, b3)?;
    match ld.end_aru(a5) {
        Err(LldError::CommitConflict { aru, detail }) => {
            println!("\ncommit of {aru} failed as expected: {detail}");
        }
        other => panic!("expected a conflict, got {other:?}"),
    }
    println!(
        "committed state is untouched: {:?}",
        ld.list_blocks(Ctx::Simple, list)?
    );
    println!(
        "\nstats: {} ARUs begun, {} committed, {} aborted, {} conflicts",
        ld.stats().arus_begun,
        ld.stats().arus_committed,
        ld.stats().arus_aborted,
        ld.stats().commit_conflicts
    );
    Ok(())
}
