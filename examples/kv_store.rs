//! A transactional key-value store built directly on the Logical Disk.
//!
//! §3 of the paper motivates ARUs partly by transaction systems that
//! today "bypass the file system altogether and utilize the raw disk
//! interface", paying for atomicity with synchronous writes. This
//! example is that client: a small KV store whose multi-key transactions
//! are exactly one ARU each — no write-ahead log of its own, no
//! synchronous write ordering, yet crash-atomic.
//!
//! Run with: `cargo run --example kv_store`

use ld_core::{BlockId, Ctx, ListId, Lld, LldConfig, LogicalDisk, Position};
use ld_disk::{DiskModel, FaultPlan, MemDisk, SimDisk};
use std::collections::HashMap;

const BS: usize = 4096;

/// Index entries staged by a transaction: (key, bucket, block).
type StagedEntries = Vec<(String, usize, BlockId)>;

/// One bucket per key hash; each bucket is an LD list of record blocks.
struct KvStore<L: LogicalDisk> {
    ld: L,
    buckets: Vec<ListId>,
    /// key -> (bucket, block) index, rebuilt on open.
    index: HashMap<String, (usize, BlockId)>,
}

impl<L: LogicalDisk> KvStore<L> {
    fn format(ld: L, n_buckets: usize) -> Result<Self, Box<dyn std::error::Error>> {
        let buckets = (0..n_buckets)
            .map(|_| ld.new_list(Ctx::Simple))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(KvStore {
            ld,
            buckets,
            index: HashMap::new(),
        })
    }

    fn open(ld: L, n_buckets: usize) -> Result<Self, Box<dyn std::error::Error>> {
        // Buckets are the first n lists handed out by a fresh disk.
        let buckets: Vec<ListId> = (1..=n_buckets as u64).map(ListId::new).collect();
        let mut index = HashMap::new();
        let mut buf = vec![0u8; BS];
        for (bi, &bucket) in buckets.iter().enumerate() {
            for block in ld.list_blocks(Ctx::Simple, bucket)? {
                ld.read(Ctx::Simple, block, &mut buf)?;
                if let Some((k, _)) = decode(&buf) {
                    index.insert(k, (bi, block));
                }
            }
        }
        Ok(KvStore { ld, buckets, index })
    }

    fn bucket_of(&self, key: &str) -> usize {
        let mut h = 5381u64;
        for b in key.bytes() {
            h = h.wrapping_mul(33) ^ u64::from(b);
        }
        (h % self.buckets.len() as u64) as usize
    }

    /// Atomically applies a batch of puts and deletes: one ARU.
    fn transact(
        &mut self,
        puts: &[(&str, &str)],
        deletes: &[&str],
    ) -> Result<(), Box<dyn std::error::Error>> {
        let aru = self.ld.begin_aru()?;
        let ctx = Ctx::Aru(aru);
        let result = (|| -> Result<StagedEntries, Box<dyn std::error::Error>> {
            let mut new_index = Vec::new();
            for &(k, v) in puts {
                // Upsert: delete the old record block, add a new one.
                if let Some(&(_, old)) = self.index.get(k) {
                    self.ld.delete_block(ctx, old)?;
                }
                let bi = self.bucket_of(k);
                let block = self.ld.new_block(ctx, self.buckets[bi], Position::First)?;
                self.ld.write(ctx, block, &encode(k, v))?;
                new_index.push((k.to_string(), bi, block));
            }
            for &k in deletes {
                if let Some(&(_, old)) = self.index.get(k) {
                    self.ld.delete_block(ctx, old)?;
                }
            }
            Ok(new_index)
        })();
        match result {
            Ok(new_index) => {
                self.ld.end_aru(aru)?;
                for &k in deletes {
                    self.index.remove(k);
                }
                for (k, bi, block) in new_index {
                    self.index.insert(k, (bi, block));
                }
                Ok(())
            }
            Err(e) => {
                let _ = self.ld.abort_aru(aru);
                Err(e)
            }
        }
    }

    fn get(&mut self, key: &str) -> Result<Option<String>, Box<dyn std::error::Error>> {
        let Some(&(_, block)) = self.index.get(key) else {
            return Ok(None);
        };
        let mut buf = vec![0u8; BS];
        self.ld.read(Ctx::Simple, block, &mut buf)?;
        Ok(decode(&buf).map(|(_, v)| v))
    }

    fn flush(&mut self) -> Result<(), Box<dyn std::error::Error>> {
        self.ld.flush()?;
        Ok(())
    }
}

fn encode(key: &str, value: &str) -> Vec<u8> {
    let mut buf = vec![0u8; BS];
    buf[0..2].copy_from_slice(&(key.len() as u16).to_le_bytes());
    buf[2..4].copy_from_slice(&(value.len() as u16).to_le_bytes());
    buf[4..4 + key.len()].copy_from_slice(key.as_bytes());
    buf[4 + key.len()..4 + key.len() + value.len()].copy_from_slice(value.as_bytes());
    buf
}

fn decode(buf: &[u8]) -> Option<(String, String)> {
    let klen = u16::from_le_bytes(buf[0..2].try_into().ok()?) as usize;
    let vlen = u16::from_le_bytes(buf[2..4].try_into().ok()?) as usize;
    if klen == 0 || 4 + klen + vlen > buf.len() {
        return None;
    }
    Some((
        String::from_utf8(buf[4..4 + klen].to_vec()).ok()?,
        String::from_utf8(buf[4 + klen..4 + klen + vlen].to_vec()).ok()?,
    ))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ld_cfg = LldConfig {
        segment_bytes: 128 * 1024,
        ..LldConfig::default()
    };

    // Normal operation: transactions are atomic batches.
    let sim = SimDisk::new(MemDisk::new(16 << 20), DiskModel::hp_c3010());
    let ld = Lld::format(sim, &ld_cfg)?;
    let mut kv = KvStore::format(ld, 8)?;
    kv.transact(&[("alice", "100"), ("bob", "250")], &[])?;
    kv.transact(&[("alice", "75"), ("bob", "275")], &[])?; // a transfer
    kv.flush()?;
    println!("alice = {:?}, bob = {:?}", kv.get("alice")?, kv.get("bob")?);
    assert_eq!(kv.get("alice")?.as_deref(), Some("75"));

    // Crash in the middle of a transaction: arm a crash point, run a
    // big transfer, and power-fail before it can be flushed.
    kv.ld
        .device()
        .set_faults(FaultPlan::new().crash_after_bytes(1));
    let _ = kv.transact(&[("alice", "0"), ("bob", "350")], &[]);
    let _ = kv.flush(); // dies

    let image = kv.ld.into_device().into_inner().into_image();
    let (ld2, _) = Lld::recover(MemDisk::from_image(image))?;
    let mut kv2 = KvStore::open(ld2, 8)?;
    println!(
        "after crash mid-transaction: alice = {:?}, bob = {:?}",
        kv2.get("alice")?,
        kv2.get("bob")?
    );
    // The half-done transfer never happened: both keys hold the old,
    // mutually consistent values.
    assert_eq!(kv2.get("alice")?.as_deref(), Some("75"));
    assert_eq!(kv2.get("bob")?.as_deref(), Some("275"));
    println!("the interrupted transaction disappeared atomically");
    Ok(())
}
