//! Quickstart: the Logical Disk interface and one atomic recovery unit.
//!
//! Run with: `cargo run --example quickstart`

use ld_core::{Ctx, Lld, LldConfig, Position};
use ld_disk::MemDisk;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A logical disk on an 8 MiB in-memory device, paper defaults
    // otherwise (4 KiB blocks, 0.5 MiB segments are too large for this
    // device, so shrink the segments).
    let ld = Lld::format(
        MemDisk::new(8 << 20),
        &LldConfig {
            segment_bytes: 128 * 1024,
            ..LldConfig::default()
        },
    )?;
    println!(
        "formatted: {} segments of {} KiB, {} KiB blocks",
        ld.n_segments(),
        ld.segment_bytes() / 1024,
        ld.block_size() / 1024
    );

    // A file system would bundle all meta-data updates of one file
    // creation in a single ARU: all or none become persistent.
    let aru = ld.begin_aru()?;
    let file = ld.new_list(Ctx::Aru(aru))?;
    let b0 = ld.new_block(Ctx::Aru(aru), file, Position::First)?;
    let b1 = ld.new_block(Ctx::Aru(aru), file, Position::After(b0))?;
    ld.write(Ctx::Aru(aru), b0, &vec![0xAA; 4096])?;
    ld.write(Ctx::Aru(aru), b1, &vec![0xBB; 4096])?;

    // Before EndARU, other streams see the blocks allocated but on no
    // list (the §3.3 allocation exception):
    assert_eq!(ld.list_blocks(Ctx::Simple, file)?, Vec::new());
    println!("before EndARU: list {file} looks empty from the simple stream");

    ld.end_aru(aru)?;
    assert_eq!(ld.list_blocks(Ctx::Simple, file)?, vec![b0, b1]);
    println!(
        "after  EndARU: list {file} = {:?}",
        ld.list_blocks(Ctx::Simple, file)?
    );

    // Make it durable, crash, and recover.
    ld.flush()?;
    let image = ld.into_device().into_image();
    let (ld2, report) = Lld::recover(MemDisk::from_image(image))?;
    println!(
        "recovered: {} segments replayed, {} records applied, {} ARUs committed",
        report.segments_replayed, report.records_applied, report.committed_arus
    );
    let mut buf = vec![0u8; 4096];
    ld2.read(Ctx::Simple, b0, &mut buf)?;
    assert_eq!(buf[0], 0xAA);
    ld2.read(Ctx::Simple, b1, &mut buf)?;
    assert_eq!(buf[0], 0xBB);
    println!("data intact after crash + recovery");
    Ok(())
}
