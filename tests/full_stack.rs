//! Whole-stack integration: simulated disk → logical disk → file system
//! → workloads, across crash/recovery cycles.

use ld_aru::core::{ConcurrencyMode, Lld, LldConfig};
use ld_aru::disk::{DiskModel, MemDisk, SimDisk};
use ld_aru::minixfs::{DeletePolicy, FsConfig, MinixFs};
use ld_aru::workload::{
    AruLatencyWorkload, LargeFilePhase, LargeFileWorkload, MixedWorkload, SmallFileWorkload,
};

fn ld_config() -> LldConfig {
    LldConfig {
        block_size: 4096,
        segment_bytes: 64 * 1024,
        ..LldConfig::default()
    }
}

fn fs_config() -> FsConfig {
    FsConfig {
        inode_count: 512,
        ..FsConfig::default()
    }
}

type SimFs = MinixFs<Lld<SimDisk<MemDisk>>>;

fn build(capacity: u64, lc: &LldConfig, fc: FsConfig) -> SimFs {
    let sim = SimDisk::new(MemDisk::new(capacity), DiskModel::hp_c3010());
    let ld = Lld::format(sim, lc).unwrap();
    MinixFs::format(ld, fc).unwrap()
}

fn crash_remount(fs: SimFs) -> SimFs {
    let image = fs.into_ld().into_device().into_inner().into_image();
    let sim = SimDisk::new(MemDisk::from_image(image), DiskModel::hp_c3010());
    let (ld, _) = Lld::recover(sim).unwrap();
    MinixFs::mount(ld, FsConfig::default()).unwrap()
}

#[test]
fn small_file_workload_survives_crash_between_phases() {
    let wl = SmallFileWorkload::tiny(60, 2000);
    let mut fs = build(64 << 20, &ld_config(), fs_config());
    wl.create_and_write(&mut fs).unwrap();
    // create_and_write flushes, so a crash here must preserve all files.
    let mut fs = crash_remount(fs);
    wl.read_all(&mut fs).unwrap();
    wl.delete_all(&mut fs).unwrap();
    let mut fs = crash_remount(fs);
    assert!(fs.verify().unwrap().is_consistent());
    assert_eq!(fs.readdir("/").unwrap(), Vec::new());
}

#[test]
fn large_file_workload_survives_crash() {
    let wl = LargeFileWorkload::tiny(400_000, 4096);
    let mut fs = build(64 << 20, &ld_config(), fs_config());
    let ino = wl.setup(&mut fs).unwrap();
    wl.run_phase(&mut fs, ino, LargeFilePhase::Write1).unwrap();
    wl.run_phase(&mut fs, ino, LargeFilePhase::Write2).unwrap();
    let mut fs = crash_remount(fs);
    // Both write phases flushed; the random-order rewrite must verify.
    wl.run_phase(&mut fs, ino, LargeFilePhase::Read2).unwrap();
    wl.run_phase(&mut fs, ino, LargeFilePhase::Read3).unwrap();
    assert!(fs.verify().unwrap().is_consistent());
}

#[test]
fn mixed_workload_with_cleaner_pressure_and_recovery() {
    let wl = MixedWorkload {
        population: 24,
        ops: 1200,
        max_file_size: 12_000,
        seed: 20260705,
    };
    // Small disk: the cleaner will have to work.
    let mut fs = build(8 << 20, &ld_config(), fs_config());
    wl.run(&mut fs).unwrap();
    let cleaner_runs = fs.ld().stats().cleaner_runs;
    fs.flush().unwrap();
    let expected: Vec<(String, u64)> = {
        let mut v = Vec::new();
        for e in fs.readdir("/").unwrap() {
            let st = fs.stat(e.ino).unwrap();
            v.push((e.name, st.size));
        }
        v.sort();
        v
    };
    let mut fs = crash_remount(fs);
    assert!(fs.verify().unwrap().is_consistent());
    let mut actual: Vec<(String, u64)> = fs
        .readdir("/")
        .unwrap()
        .into_iter()
        .map(|e| {
            let size = fs.stat(e.ino).unwrap().size;
            (e.name, size)
        })
        .collect();
    actual.sort();
    assert_eq!(expected, actual);
    // The workload was sized to wrap the log.
    assert!(cleaner_runs > 0, "cleaner never ran; enlarge the workload");
}

#[test]
fn all_three_table1_versions_run_the_same_workload() {
    let wl = SmallFileWorkload::tiny(40, 3000);
    for (conc, use_arus, policy) in [
        (ConcurrencyMode::Sequential, false, DeletePolicy::PerBlock),
        (ConcurrencyMode::Concurrent, true, DeletePolicy::PerBlock),
        (ConcurrencyMode::Concurrent, true, DeletePolicy::WholeList),
    ] {
        let lc = LldConfig {
            concurrency: conc,
            ..ld_config()
        };
        let fc = FsConfig {
            use_arus,
            delete_policy: policy,
            ..fs_config()
        };
        let mut fs = build(64 << 20, &lc, fc);
        wl.create_and_write(&mut fs).unwrap();
        wl.read_all(&mut fs).unwrap();
        wl.delete_all(&mut fs).unwrap();
        assert!(fs.verify().unwrap().is_consistent());
    }
}

#[test]
fn aru_latency_workload_recovers() {
    let sim = SimDisk::new(MemDisk::new(16 << 20), DiskModel::hp_c3010());
    let ld = Lld::format(sim, &ld_config()).unwrap();
    AruLatencyWorkload { count: 5000 }.run(&ld).unwrap();
    assert_eq!(ld.stats().arus_committed, 5000);
    let image = ld.into_device().into_inner().into_image();
    let (_, report) = Lld::recover(MemDisk::from_image(image)).unwrap();
    assert_eq!(report.committed_arus, 5000);
    assert_eq!(report.discarded_arus, 0);
}

#[test]
fn umbrella_reexports_compose() {
    // The umbrella crate's re-exports are usable together without
    // importing the member crates directly.
    let device = ld_aru::disk::MemDisk::new(8 << 20);
    let ld = ld_aru::core::Lld::format(device, &ld_config()).unwrap();
    let mut fs =
        ld_aru::minixfs::MinixFs::format(ld, ld_aru::minixfs::FsConfig::default()).unwrap();
    let ino = fs.create("/x").unwrap();
    fs.write_at(ino, 0, b"composed").unwrap();
    let mut buf = [0u8; 8];
    fs.read_at(ino, 0, &mut buf).unwrap();
    assert_eq!(&buf, b"composed");
}
