//! Cross-shard atomicity: the map-shard count is a runtime tuning knob
//! of the sharded mapping layer, never an observable one.
//!
//! * A seeded property test drives one identical logical workload
//!   against disks configured with 1, 4, and 16 shards and asserts the
//!   observable state is identical — live, and after a crash plus
//!   recovery (each image recovered under a *different* shard count
//!   than it was written with, since the knob is not persisted). Raw
//!   ids are striped differently per shard count, so all comparisons go
//!   through positionally-recorded handles, never raw ids.
//! * A multi-threaded power-cut test commits ARUs that each mutate
//!   three lists living in three different shards; recovery must be
//!   all-or-nothing across those shards.

use ld_aru::core::{BlockId, Ctx, ListId, Lld, LldConfig, Position};
use ld_aru::disk::{DiskModel, FaultPlan, MemDisk, SimDisk, SmallRng};
use ld_aru::workload::{pattern_fill, rng};
use std::collections::{HashMap, HashSet};

const BS: usize = 512;

fn config(shards: usize) -> LldConfig {
    LldConfig {
        block_size: BS,
        segment_bytes: 16 * BS,
        max_blocks: Some(4096),
        max_lists: Some(1024),
        map_shards: shards,
        ..LldConfig::default()
    }
}

/// Handles in creation order. Raw ids differ across shard counts
/// (allocation is striped per shard), so cross-disk comparisons address
/// objects by these positions.
struct Recorded {
    lists: Vec<ListId>,
    blocks: Vec<BlockId>,
    /// `blocks[i]` has not been deleted.
    live: Vec<bool>,
}

fn pick_live(rec: &Recorded, r: &mut SmallRng) -> Option<usize> {
    let live: Vec<usize> = (0..rec.blocks.len()).filter(|&i| rec.live[i]).collect();
    if live.is_empty() {
        None
    } else {
        Some(live[(r.next_u64() as usize) % live.len()])
    }
}

/// Runs the seeded workload: simple allocations, writes, deletes, and
/// multi-list ARUs (committed and aborted). Deterministic given the
/// seed — the operation stream is identical for every shard count.
fn drive(ld: &Lld<MemDisk>) -> Recorded {
    let mut r = rng(0x5AD_C0DE);
    let mut rec = Recorded {
        lists: Vec::new(),
        blocks: Vec::new(),
        live: Vec::new(),
    };
    let mut data = vec![0u8; BS];
    // Starter lists so every operation has a target.
    for _ in 0..3 {
        rec.lists.push(ld.new_list(Ctx::Simple).unwrap());
    }
    for step in 0..160u64 {
        match r.next_u64() % 100 {
            0..=14 => {
                rec.lists.push(ld.new_list(Ctx::Simple).unwrap());
            }
            15..=54 => {
                let l = rec.lists[(r.next_u64() as usize) % rec.lists.len()];
                let b = ld.new_block(Ctx::Simple, l, Position::First).unwrap();
                pattern_fill(&mut data, step);
                ld.write(Ctx::Simple, b, &data).unwrap();
                rec.blocks.push(b);
                rec.live.push(true);
            }
            55..=74 => {
                if let Some(i) = pick_live(&rec, &mut r) {
                    pattern_fill(&mut data, 0x1_0000 + step);
                    ld.write(Ctx::Simple, rec.blocks[i], &data).unwrap();
                }
            }
            75..=84 => {
                if let Some(i) = pick_live(&rec, &mut r) {
                    ld.delete_block(Ctx::Simple, rec.blocks[i]).unwrap();
                    rec.live[i] = false;
                }
            }
            _ => {
                // An ARU spanning two fresh lists (round-robin: two
                // different shards for any count > 1) plus, implicitly,
                // the scratch state. Commit three out of four.
                let aru = ld.begin_aru().unwrap();
                let l1 = ld.new_list(Ctx::Aru(aru)).unwrap();
                let l2 = ld.new_list(Ctx::Aru(aru)).unwrap();
                let b1 = ld.new_block(Ctx::Aru(aru), l1, Position::First).unwrap();
                let b2 = ld.new_block(Ctx::Aru(aru), l2, Position::First).unwrap();
                pattern_fill(&mut data, 0x2_0000 + step);
                ld.write(Ctx::Aru(aru), b1, &data).unwrap();
                pattern_fill(&mut data, 0x3_0000 + step);
                ld.write(Ctx::Aru(aru), b2, &data).unwrap();
                if r.next_u64().is_multiple_of(4) {
                    ld.abort_aru(aru).unwrap();
                } else {
                    ld.end_aru(aru).unwrap();
                    rec.lists.push(l1);
                    rec.lists.push(l2);
                    rec.blocks.push(b1);
                    rec.live.push(true);
                    rec.blocks.push(b2);
                    rec.live.push(true);
                }
            }
        }
    }
    rec
}

/// The observable state of the disk, addressed purely through recorded
/// positions: every recorded list's walk (as block positions) and every
/// live recorded block's contents.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    walks: Vec<Vec<usize>>,
    contents: Vec<Option<Vec<u8>>>,
}

fn fingerprint(ld: &Lld<MemDisk>, rec: &Recorded) -> Fingerprint {
    let pos_of: HashMap<BlockId, usize> = rec
        .blocks
        .iter()
        .enumerate()
        .filter(|&(i, _)| rec.live[i])
        .map(|(i, &b)| (b, i))
        .collect();
    let walks = rec
        .lists
        .iter()
        .map(|&l| {
            ld.list_blocks(Ctx::Simple, l)
                .unwrap()
                .iter()
                .map(|b| *pos_of.get(b).expect("walk returned an unrecorded block"))
                .collect()
        })
        .collect();
    let mut contents = Vec::new();
    let mut buf = vec![0u8; BS];
    for (i, &b) in rec.blocks.iter().enumerate() {
        if rec.live[i] {
            ld.read(Ctx::Simple, b, &mut buf).unwrap();
            contents.push(Some(buf.clone()));
        } else {
            contents.push(None);
        }
    }
    Fingerprint { walks, contents }
}

/// Runs the workload on a fresh disk with the given shard count, takes
/// the live fingerprint, then crashes with one ARU in flight (a new
/// patterned list plus a delete of a committed block — recovery must
/// discard both halves together).
fn run_and_crash(shards: usize) -> (Fingerprint, Vec<u8>, Recorded) {
    let ld = Lld::format(MemDisk::new(16 << 20), &config(shards)).unwrap();
    let rec = drive(&ld);
    let live = fingerprint(&ld, &rec);
    ld.flush().unwrap();
    let aru = ld.begin_aru().unwrap();
    let l = ld.new_list(Ctx::Aru(aru)).unwrap();
    let b = ld.new_block(Ctx::Aru(aru), l, Position::First).unwrap();
    let mut data = vec![0u8; BS];
    pattern_fill(&mut data, 0xDEAD);
    ld.write(Ctx::Aru(aru), b, &data).unwrap();
    let victim = rec.live.iter().position(|&v| v).expect("a block survives");
    ld.delete_block(Ctx::Aru(aru), rec.blocks[victim]).unwrap();
    (live, ld.into_device().into_image(), rec)
}

#[test]
fn shard_count_is_not_observable() {
    let (fp1, img1, rec1) = run_and_crash(1);
    let (fp4, img4, rec4) = run_and_crash(4);
    let (fp16, img16, rec16) = run_and_crash(16);

    // Live: reads and walks identical across shard counts.
    assert_eq!(fp1, fp4, "1 vs 4 shards diverge while running");
    assert_eq!(fp1, fp16, "1 vs 16 shards diverge while running");

    // Post-crash: recover each image under a shard count *different*
    // from the one it was written with — the knob is not persisted —
    // and compare the recovered observable state.
    let rfp = |image: Vec<u8>, rec: &Recorded, shards: usize| {
        let (ld, _) = Lld::recover_with(MemDisk::from_image(image), &config(shards)).unwrap();
        fingerprint(&ld, rec)
    };
    let r1 = rfp(img1, &rec1, 16);
    let r4 = rfp(img4, &rec4, 1);
    let r16 = rfp(img16, &rec16, 4);
    assert_eq!(r1, r4, "1 vs 4 shards diverge after crash recovery");
    assert_eq!(r1, r16, "1 vs 16 shards diverge after crash recovery");

    // The in-flight ARU was discarded wholesale: the recovered state is
    // exactly the flushed pre-crash state (in particular the in-ARU
    // delete did NOT survive on its own).
    assert_eq!(r1, fp1, "crash recovery must restore the flushed state");
}

#[test]
fn mt_power_cut_aru_spanning_three_shards_is_all_or_nothing() {
    // Each thread owns three lists that provably live in three distinct
    // shards (allocated back-to-back before the fault is armed, so
    // round-robin placement is deterministic). Every ARU then appends
    // one block to each of the three lists — blocks allocate from their
    // list's shard, so each commit spans exactly three shards. After
    // the power cut, every ARU must have either all three blocks or
    // none of them.
    use std::sync::Arc;

    const THREADS: usize = 4;
    const ARUS_PER_THREAD: usize = 12;
    const LISTS_PER_THREAD: usize = 3;
    const SHARDS: usize = 8;

    #[derive(Debug)]
    struct AruRecord {
        blocks: Vec<BlockId>,
        tag: u8,
        committed: bool, // end_aru reached and returned Ok
        durable: bool,   // the following flush returned Ok too
    }

    let sim = SimDisk::new(MemDisk::new(4 << 20), DiskModel::hp_c3010());
    let ld = Arc::new(Lld::format(sim, &config(SHARDS)).unwrap());

    // Pre-crash setup: three lists per thread, allocated consecutively,
    // so they land in three consecutive (distinct) shards.
    let lists: Vec<Vec<ListId>> = (0..THREADS)
        .map(|_| {
            let ls: Vec<ListId> = (0..LISTS_PER_THREAD)
                .map(|_| ld.new_list(Ctx::Simple).unwrap())
                .collect();
            let spread: HashSet<u64> = ls.iter().map(|l| l.get() % SHARDS as u64).collect();
            assert_eq!(spread.len(), 3, "the three lists must span three shards");
            ls
        })
        .collect();
    ld.flush().unwrap();
    ld.device()
        .set_faults(FaultPlan::new().crash_after_bytes(24 * 1024));

    let records: Vec<Vec<AruRecord>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let ld = Arc::clone(&ld);
                let mine = &lists[t];
                s.spawn(move || {
                    let mut out = Vec::new();
                    'arus: for i in 0..ARUS_PER_THREAD {
                        let tag = (t * 64 + i + 1) as u8;
                        let Ok(aru) = ld.begin_aru() else { break };
                        let mut rec = AruRecord {
                            blocks: Vec::new(),
                            tag,
                            committed: false,
                            durable: false,
                        };
                        for (k, &list) in mine.iter().enumerate() {
                            let Ok(b) = ld.new_block(Ctx::Aru(aru), list, Position::First) else {
                                out.push(rec);
                                break 'arus;
                            };
                            rec.blocks.push(b);
                            let data = vec![tag ^ (k as u8) << 6; BS];
                            if ld.write(Ctx::Aru(aru), b, &data).is_err() {
                                out.push(rec);
                                break 'arus;
                            }
                        }
                        rec.committed = ld.end_aru(aru).is_ok();
                        rec.durable = rec.committed && ld.flush().is_ok();
                        let done = !rec.durable;
                        out.push(rec);
                        if done {
                            break; // the power is out; stop this client
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    let pre = ld.stats();
    let ld = Arc::try_unwrap(ld).expect("threads are done");
    let image = ld.into_device().into_inner().into_image();
    let (ld2, _report) = Lld::recover(MemDisk::from_image(image)).unwrap();

    // Every commit touched three shards.
    assert!(
        pre.cross_shard_commits >= 1,
        "the workload must exercise cross-shard commits"
    );

    // Survivors: the union of all blocks on the threads' lists.
    let mut surviving: HashSet<BlockId> = HashSet::new();
    for ls in &lists {
        for &l in ls {
            for b in ld2.list_blocks(Ctx::Simple, l).unwrap_or_default() {
                surviving.insert(b);
            }
        }
    }

    let mut durable_arus = 0;
    let mut buf = vec![0u8; BS];
    for rec in records.iter().flatten() {
        let present = rec.blocks.iter().filter(|b| surviving.contains(b)).count();
        if rec.durable {
            assert_eq!(
                present, LISTS_PER_THREAD,
                "durable ARU (tag {}) must survive on all three shards",
                rec.tag
            );
            durable_arus += 1;
        }
        // The cross-shard all-or-nothing property: an ARU never
        // survives on a strict subset of the shards it touched.
        assert!(
            present == 0 || present == rec.blocks.len(),
            "ARU (tag {}) survived on {present} of {} shards",
            rec.tag,
            rec.blocks.len()
        );
        if present > 0 {
            assert!(
                rec.committed,
                "ARU (tag {}) survived without ever committing",
                rec.tag
            );
            for (k, &b) in rec.blocks.iter().enumerate() {
                ld2.read(Ctx::Simple, b, &mut buf).unwrap();
                assert_eq!(
                    buf,
                    vec![rec.tag ^ (k as u8) << 6; BS],
                    "block {k} of ARU (tag {}) corrupted",
                    rec.tag
                );
            }
        }
    }
    assert!(
        durable_arus >= 1,
        "the crash point must allow some ARUs to become durable first"
    );
}
