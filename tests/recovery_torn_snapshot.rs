//! Torn and stale checkpoint snapshots, serial vs parallel recovery.
//!
//! The sharded checkpoint (format v2) is written slab-by-slab into the
//! inactive A/B area, so a power cut can land mid-slab, between the
//! slab writes and the header, or after the header of a *previous*
//! checkpoint (leaving a stale-but-valid snapshot under a newer log
//! suffix). In every one of those states the two recovery executors —
//! the serial in-line path (`recovery_threads: 1`) and the worker-pool
//! path (`recovery_threads: 4`) — must reconstruct the *same* logical
//! state, and that state must equal what a clean recovery of the
//! untorn image produces (checkpoints are an accelerator, never an
//! authority: the log suffix always wins).
//!
//! * Deterministic byte-surgery cases: a mid-slab tear at 1 and at 8
//!   map shards (whole area invalid, fall back), a tear in the newest
//!   area after an A/B switch (fall back to the older area plus a
//!   longer replay), and a stale snapshot under a delete/re-allocate
//!   heavy suffix (no corruption; stresses identifier re-use in the
//!   parallel router).
//! * A crash-matrix sweep (`SimDisk` byte-budget cuts) through a
//!   workload that checkpoints repeatedly, so cuts land inside slab
//!   writes, directory writes, and header publishes at whatever
//!   offsets the encoder actually uses.
//! * Shard-count migration: an image checkpointed at 8 map shards
//!   recovered at 1 and at 16 (the snapshot shard count is a property
//!   of the image, the map shard count a property of the process).

use ld_aru::core::{Ctx, Lld, LldConfig, Position};
use ld_aru::disk::{DiskModel, FaultPlan, MemDisk, SimDisk};
use ld_aru::workload::pattern_fill;

const BS: usize = 512;
/// Mirrors `layout.rs`: checkpoint header and reserved directory bytes
/// ahead of the first snapshot slab in an area.
const CKPT_SLAB_START: u64 = 64 + 64 * 24;

fn config(shards: usize, threads: usize) -> LldConfig {
    LldConfig {
        block_size: BS,
        segment_bytes: 16 * BS,
        max_blocks: Some(2048),
        max_lists: Some(256),
        map_shards: shards,
        recovery_threads: threads,
        ..LldConfig::default()
    }
}

/// Raw handles created by the workload. The same config drives every
/// recovery of one image, so raw ids are directly comparable.
struct World {
    lists: Vec<ld_aru::core::ListId>,
    blocks: Vec<ld_aru::core::BlockId>,
}

/// Every observable of the recovered disk the workload touched: each
/// list's walk and each block's content (None where the read fails —
/// both executors must fail on the same deleted identifiers).
#[derive(Debug, PartialEq)]
struct Fingerprint {
    walks: Vec<Option<Vec<u64>>>,
    contents: Vec<Option<Vec<u8>>>,
}

fn fingerprint(ld: &Lld<MemDisk>, world: &World) -> Fingerprint {
    let walks = world
        .lists
        .iter()
        .map(|&l| {
            ld.list_blocks(Ctx::Simple, l)
                .ok()
                .map(|bs| bs.iter().map(|b| b.get()).collect())
        })
        .collect();
    let mut buf = vec![0u8; BS];
    let contents = world
        .blocks
        .iter()
        .map(|&b| ld.read(Ctx::Simple, b, &mut buf).ok().map(|_| buf.clone()))
        .collect();
    Fingerprint { walks, contents }
}

/// Recovers a copy of `image` at `threads` workers and fingerprints it.
/// Returns the report's checkpoint_seq alongside.
fn recover_fp(image: &[u8], shards: usize, threads: usize, world: &World) -> (Fingerprint, u64) {
    let (ld, report) = Lld::recover_with(
        MemDisk::from_image(image.to_vec()),
        &config(shards, threads),
    )
    .unwrap();
    (fingerprint(&ld, world), report.checkpoint_seq)
}

/// Builds the common image: a few populated lists (flushed), one
/// checkpoint, then a committed suffix of overwrites, deletions, and
/// re-allocations above it. Returns the crash image and the handles.
fn build_image(shards: usize, suffix_arus: u64) -> (Vec<u8>, World) {
    let ld = Lld::format(MemDisk::new(4 << 20), &config(shards, 1)).unwrap();
    let mut world = World {
        lists: Vec::new(),
        blocks: Vec::new(),
    };
    let mut data = vec![0u8; BS];
    for li in 0..12u64 {
        let l = ld.new_list(Ctx::Simple).unwrap();
        let mut pred = None;
        for bi in 0..6u64 {
            let pos = match pred {
                None => Position::First,
                Some(p) => Position::After(p),
            };
            let b = ld.new_block(Ctx::Simple, l, pos).unwrap();
            pattern_fill(&mut data, li * 100 + bi);
            ld.write(Ctx::Simple, b, &data).unwrap();
            world.blocks.push(b);
            pred = Some(b);
        }
        world.lists.push(l);
    }
    ld.flush().unwrap();
    ld.checkpoint().unwrap();

    // Suffix: committed ARUs overwriting, deleting, and re-allocating
    // — the record mix that exercises the parallel router's identifier
    // re-use and fence paths.
    let mut live: Vec<usize> = (0..world.blocks.len()).collect();
    for i in 0..suffix_arus {
        let aru = ld.begin_aru().unwrap();
        let tgt = world.blocks[live[(i * 7 + 3) as usize % live.len()]];
        pattern_fill(&mut data, 0x5000 + i);
        ld.write(Ctx::Aru(aru), tgt, &data).unwrap();
        ld.end_aru(aru).unwrap();
        if i % 5 == 2 && live.len() > 4 {
            // Delete a block, then allocate a replacement (often the
            // same raw id) into another list inside an ARU.
            let vi = (i * 11) as usize % live.len();
            let victim = world.blocks[live.swap_remove(vi)];
            ld.delete_block(Ctx::Simple, victim).unwrap();
            let aru = ld.begin_aru().unwrap();
            let l = world.lists[(i % world.lists.len() as u64) as usize];
            let nb = ld.new_block(Ctx::Aru(aru), l, Position::First).unwrap();
            pattern_fill(&mut data, 0x9000 + i);
            ld.write(Ctx::Aru(aru), nb, &data).unwrap();
            ld.end_aru(aru).unwrap();
            live.push(world.blocks.len());
            world.blocks.push(nb);
        }
    }
    (ld.into_device().into_image(), world)
}

/// A mid-slab tear invalidates the whole area (per-slab CRC): recovery
/// at any thread count falls back to scanning the full log and still
/// reconstructs the suffix state. Exercised at 1 and 8 snapshot shards
/// — one big slab versus eight small ones with independent CRCs.
#[test]
fn mid_slab_tear_falls_back_to_full_scan() {
    for &shards in &[1usize, 8] {
        let (image, world) = build_image(shards, 40);
        let (clean_fp, clean_seq) = recover_fp(&image, shards, 1, &world);
        assert!(clean_seq > 0, "shards {shards}: checkpoint not found clean");

        let probe = MemDisk::from_image(image.clone());
        let (layout, _, _) = Lld::probe(&probe).unwrap();
        let mut torn = image.clone();
        // First checkpoint goes to area A; cut inside the first slab's
        // payload (shard 0 always holds entries here).
        torn[(layout.ckpt_a + CKPT_SLAB_START + 8) as usize] ^= 0xFF;

        for &threads in &[1usize, 4] {
            let (fp, seq) = recover_fp(&torn, shards, threads, &world);
            assert_eq!(
                seq, 0,
                "shards {shards}, threads {threads}: torn snapshot not rejected"
            );
            assert_eq!(
                fp, clean_fp,
                "shards {shards}, threads {threads}: full-scan fallback diverges"
            );
        }
    }
}

/// A tear in the newest area right after an A/B switch: the older
/// area is still valid, so recovery uses the stale snapshot and
/// replays the longer suffix on top of it.
#[test]
fn torn_ab_switch_falls_back_to_older_area() {
    let shards = 8;
    let ld = Lld::format(MemDisk::new(4 << 20), &config(shards, 1)).unwrap();
    let mut world = World {
        lists: Vec::new(),
        blocks: Vec::new(),
    };
    let mut data = vec![0u8; BS];
    let l = ld.new_list(Ctx::Simple).unwrap();
    world.lists.push(l);
    let mut pred = None;
    for i in 0..24u64 {
        let pos = match pred {
            None => Position::First,
            Some(p) => Position::After(p),
        };
        let b = ld.new_block(Ctx::Simple, l, pos).unwrap();
        pattern_fill(&mut data, i);
        ld.write(Ctx::Simple, b, &data).unwrap();
        world.blocks.push(b);
        pred = Some(b);
    }
    ld.flush().unwrap();
    ld.checkpoint().unwrap(); // area A
    for i in 0..10u64 {
        pattern_fill(&mut data, 0x100 + i);
        ld.write(Ctx::Simple, world.blocks[i as usize], &data)
            .unwrap();
    }
    ld.checkpoint().unwrap(); // area B (newer)
    for i in 0..10u64 {
        pattern_fill(&mut data, 0x200 + i);
        ld.write(Ctx::Simple, world.blocks[10 + i as usize], &data)
            .unwrap();
    }
    ld.flush().unwrap();
    let image = ld.into_device().into_image();

    let (clean_fp, clean_seq) = recover_fp(&image, shards, 1, &world);
    let probe = MemDisk::from_image(image.clone());
    let (layout, _, _) = Lld::probe(&probe).unwrap();
    let mut torn = image.clone();
    torn[(layout.ckpt_b + CKPT_SLAB_START + 8) as usize] ^= 0xFF;

    let mut seqs = Vec::new();
    for &threads in &[1usize, 4] {
        let (fp, seq) = recover_fp(&torn, shards, threads, &world);
        assert!(seq > 0, "threads {threads}: older area not used");
        assert!(
            seq < clean_seq,
            "threads {threads}: fell back but kept the newer coverage?"
        );
        assert_eq!(fp, clean_fp, "threads {threads}: fallback state diverges");
        seqs.push(seq);
    }
    assert_eq!(seqs[0], seqs[1], "executors picked different checkpoints");
}

/// No corruption at all — just a stale snapshot under a suffix heavy
/// with deletions and identifier re-use. Serial and parallel replay of
/// that suffix over the loaded slabs must agree exactly.
#[test]
fn stale_snapshot_under_reallocating_suffix() {
    let (image, world) = build_image(8, 120);
    let (serial_fp, serial_seq) = recover_fp(&image, 8, 1, &world);
    assert!(serial_seq > 0);
    for &threads in &[2usize, 4] {
        let (fp, seq) = recover_fp(&image, 8, threads, &world);
        assert_eq!(seq, serial_seq);
        assert_eq!(fp, serial_fp, "threads {threads}: replay diverges");
    }
}

/// An image checkpointed at 8 map shards recovered at 1 and at 16: the
/// snapshot's slab count comes from the image, the recovered map's
/// shard count from the running config, and neither may observe the
/// other.
#[test]
fn snapshot_shard_count_migrates() {
    let (image, world) = build_image(8, 60);
    let (base_fp, base_seq) = recover_fp(&image, 8, 1, &world);
    assert!(base_seq > 0);
    for &shards in &[1usize, 16] {
        for &threads in &[1usize, 4] {
            let (fp, seq) = recover_fp(&image, shards, threads, &world);
            assert_eq!(seq, base_seq, "shards {shards}, threads {threads}");
            assert_eq!(
                fp, base_fp,
                "recover at {shards} shards, {threads} threads diverges"
            );
        }
    }
}

/// Byte-budget crash sweep through a checkpoint-heavy workload: cuts
/// land inside slab writes, the directory write, the header publish,
/// and ordinary segment writes. Whatever survives, serial and parallel
/// recovery agree, and everything flushed before the first checkpoint
/// is intact.
#[test]
fn checkpoint_write_crash_matrix() {
    for &shards in &[1usize, 8] {
        let mut crash_at = 40_000u64;
        while crash_at < 400_000 {
            let sim = SimDisk::new(MemDisk::new(4 << 20), DiskModel::hp_c3010())
                .with_faults(FaultPlan::new().crash_after_bytes(crash_at));
            let ld = Lld::format(sim, &config(shards, 1)).unwrap();
            let mut world = World {
                lists: Vec::new(),
                blocks: Vec::new(),
            };
            let mut data = vec![0u8; BS];

            // Base state, flushed before the fault budget can fire
            // checkpoint writes: must always survive.
            let mut sealed = 0usize;
            let crashed = (|| -> Result<(), ld_aru::core::LldError> {
                for li in 0..8u64 {
                    let l = ld.new_list(Ctx::Simple)?;
                    let b = ld.new_block(Ctx::Simple, l, Position::First)?;
                    pattern_fill(&mut data, li);
                    ld.write(Ctx::Simple, b, &data)?;
                    world.lists.push(l);
                    world.blocks.push(b);
                }
                ld.flush()?;
                sealed = world.blocks.len();
                // Churn with periodic checkpoints until the cut.
                for round in 0..40u64 {
                    for (i, &b) in world.blocks.iter().enumerate().take(sealed) {
                        pattern_fill(&mut data, 0x1000 + round * 100 + i as u64);
                        ld.write(Ctx::Simple, b, &data)?;
                    }
                    ld.checkpoint()?;
                }
                Ok(())
            })()
            .is_err();

            let image = ld.into_device().into_inner().into_image();
            let (fp1, seq1) = recover_fp(&image, shards, 1, &world);
            let (fp4, seq4) = recover_fp(&image, shards, 4, &world);
            assert_eq!(
                seq1, seq4,
                "shards {shards}, cut {crash_at}: different checkpoints"
            );
            assert_eq!(
                fp1, fp4,
                "shards {shards}, cut {crash_at}: executors diverge"
            );
            // The flushed base blocks all survive (contents may be any
            // committed round's pattern, but reads must succeed).
            for (i, c) in fp1.contents.iter().enumerate().take(sealed) {
                assert!(
                    c.is_some(),
                    "shards {shards}, cut {crash_at}: flushed block {i} lost"
                );
            }
            assert!(crashed || crash_at > 200_000, "cut {crash_at} never fired");
            crash_at += 23_000;
        }
    }
}
