//! Thread-level stress: the logical disk behind a mutex, driven by
//! several threads running interleaved ARUs (the "multi-threaded file
//! systems or several independent clients" of §3.2).
//!
//! The logical disk itself is single-threaded by design (like the
//! paper's prototype); what must hold under interleaving is the ARU
//! semantics — isolation of shadow states, atomicity of commits, and
//! unique identifier allocation.

use ld_aru::core::{Ctx, Lld, LldConfig, Position};
use ld_aru::disk::MemDisk;
use parking_lot_like::Mutex;
use std::collections::HashSet;

/// Tiny shim so this test doesn't need a direct parking_lot dependency.
mod parking_lot_like {
    pub use std::sync::Mutex as StdMutex;
    pub struct Mutex<T>(StdMutex<T>);
    impl<T> Mutex<T> {
        pub fn new(v: T) -> Self {
            Mutex(StdMutex::new(v))
        }
        pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
            self.0.lock().expect("poisoned")
        }
    }
}

fn ld_config() -> LldConfig {
    LldConfig {
        block_size: 512,
        segment_bytes: 16 * 512,
        max_blocks: Some(4096),
        max_lists: Some(512),
        ..LldConfig::default()
    }
}

#[test]
fn interleaved_arus_from_threads_commit_atomically() {
    let ld = Mutex::new(Lld::format(MemDisk::new(16 << 20), &ld_config()).unwrap());
    let n_threads = 4;
    let arus_per_thread = 25;

    std::thread::scope(|s| {
        for t in 0..n_threads {
            let ld = &ld;
            s.spawn(move || {
                for i in 0..arus_per_thread {
                    // Each ARU creates a private list of 3 patterned
                    // blocks. Lock per operation, so ARUs from different
                    // threads genuinely interleave in the stream.
                    let tag = (t * 1000 + i) as u8;
                    let aru = ld.lock().begin_aru().unwrap();
                    let list = ld.lock().new_list(Ctx::Aru(aru)).unwrap();
                    let b1 = ld
                        .lock()
                        .new_block(Ctx::Aru(aru), list, Position::First)
                        .unwrap();
                    ld.lock().write(Ctx::Aru(aru), b1, &vec![tag; 512]).unwrap();
                    let b2 = ld
                        .lock()
                        .new_block(Ctx::Aru(aru), list, Position::After(b1))
                        .unwrap();
                    ld.lock()
                        .write(Ctx::Aru(aru), b2, &vec![tag ^ 0xFF; 512])
                        .unwrap();
                    ld.lock().end_aru(aru).unwrap();
                }
            });
        }
    });

    let mut ld = ld.lock();
    let stats = *ld.stats();
    assert_eq!(stats.arus_committed, (n_threads * arus_per_thread) as u64);
    assert_eq!(stats.commit_conflicts, 0);

    // Every committed list is complete and correctly patterned, and no
    // block id was handed out twice.
    let mut seen_blocks = HashSet::new();
    let mut lists_found = 0;
    let mut buf = vec![0u8; 512];
    for raw in 1..=(n_threads * arus_per_thread) as u64 {
        let list = ld_aru::core::ListId::new(raw);
        let Ok(blocks) = ld.list_blocks(Ctx::Simple, list) else {
            continue;
        };
        lists_found += 1;
        assert_eq!(blocks.len(), 2, "list {list} incomplete");
        for &b in &blocks {
            assert!(seen_blocks.insert(b), "block {b} appears twice");
        }
        ld.read(Ctx::Simple, blocks[0], &mut buf).unwrap();
        let tag = buf[0];
        assert_eq!(buf, vec![tag; 512]);
        ld.read(Ctx::Simple, blocks[1], &mut buf).unwrap();
        assert_eq!(buf, vec![tag ^ 0xFF; 512]);
    }
    assert_eq!(lists_found, n_threads * arus_per_thread);
}

#[test]
fn threads_with_aborts_and_commits_leave_clean_state() {
    let ld = Mutex::new(Lld::format(MemDisk::new(16 << 20), &ld_config()).unwrap());
    std::thread::scope(|s| {
        for t in 0..4 {
            let ld = &ld;
            s.spawn(move || {
                for i in 0..20 {
                    let aru = ld.lock().begin_aru().unwrap();
                    let list = ld.lock().new_list(Ctx::Aru(aru)).unwrap();
                    let b = ld
                        .lock()
                        .new_block(Ctx::Aru(aru), list, Position::First)
                        .unwrap();
                    ld.lock()
                        .write(Ctx::Aru(aru), b, &vec![t as u8; 512])
                        .unwrap();
                    if i % 2 == 0 {
                        ld.lock().end_aru(aru).unwrap();
                    } else {
                        ld.lock().abort_aru(aru).unwrap();
                    }
                }
            });
        }
    });

    let mut ld = ld.lock();
    assert_eq!(ld.stats().arus_committed, 40);
    assert_eq!(ld.stats().arus_aborted, 40);
    // Aborted ARUs leave orphaned committed allocations; the check
    // reclaims exactly those (one block per aborted ARU; the lists were
    // allocated too but stay allocated-and-empty, which check() does
    // not touch — they are reachable by id).
    let report = ld.check().unwrap();
    assert_eq!(report.orphan_blocks_freed.len(), 40);
}
