//! Thread-level stress: one logical disk shared by several OS threads
//! running interleaved ARUs (the "multi-threaded file systems or
//! several independent clients" of §3.2).
//!
//! The logical disk synchronizes internally — every operation takes
//! `&self` — so the threads share a plain `Arc<Lld<_>>` with no
//! external lock. What must hold under interleaving is the ARU
//! semantics: isolation of shadow states, atomicity of commits, and
//! unique identifier allocation.

use ld_aru::core::{Ctx, Lld, LldConfig, LogicalDisk, Position};
use ld_aru::disk::MemDisk;
use std::collections::HashSet;
use std::sync::Arc;

fn ld_config() -> LldConfig {
    LldConfig {
        block_size: 512,
        segment_bytes: 16 * 512,
        max_blocks: Some(4096),
        max_lists: Some(512),
        ..LldConfig::default()
    }
}

#[test]
fn interleaved_arus_from_threads_commit_atomically() {
    let ld = Arc::new(Lld::format(MemDisk::new(16 << 20), &ld_config()).unwrap());
    let n_threads = 4;
    let arus_per_thread = 25;

    std::thread::scope(|s| {
        for t in 0..n_threads {
            let ld = Arc::clone(&ld);
            s.spawn(move || {
                for i in 0..arus_per_thread {
                    // Each ARU creates a private list of 3 patterned
                    // blocks; ARUs from different threads genuinely
                    // interleave in the operation stream.
                    let tag = (t * 1000 + i) as u8;
                    let aru = ld.begin_aru().unwrap();
                    let list = ld.new_list(Ctx::Aru(aru)).unwrap();
                    let b1 = ld.new_block(Ctx::Aru(aru), list, Position::First).unwrap();
                    ld.write(Ctx::Aru(aru), b1, &vec![tag; 512]).unwrap();
                    let b2 = ld
                        .new_block(Ctx::Aru(aru), list, Position::After(b1))
                        .unwrap();
                    ld.write(Ctx::Aru(aru), b2, &vec![tag ^ 0xFF; 512]).unwrap();
                    ld.end_aru(aru).unwrap();
                }
            });
        }
    });

    let stats = ld.stats();
    assert_eq!(stats.arus_committed, (n_threads * arus_per_thread) as u64);
    assert_eq!(stats.commit_conflicts, 0);

    // Every committed list is complete and correctly patterned, and no
    // block id was handed out twice. List ids are striped across the
    // map shards (shard s owns ids ≡ s mod nshards), so the allocated
    // ids are unique but not dense — scan the whole id space.
    let mut seen_blocks = HashSet::new();
    let mut lists_found = 0;
    let mut buf = vec![0u8; 512];
    for raw in 1..=512u64 {
        let list = ld_aru::core::ListId::new(raw);
        let Ok(blocks) = ld.list_blocks(Ctx::Simple, list) else {
            continue;
        };
        lists_found += 1;
        assert_eq!(blocks.len(), 2, "list {list} incomplete");
        for &b in &blocks {
            assert!(seen_blocks.insert(b), "block {b} appears twice");
        }
        ld.read(Ctx::Simple, blocks[0], &mut buf).unwrap();
        let tag = buf[0];
        assert_eq!(buf, vec![tag; 512]);
        ld.read(Ctx::Simple, blocks[1], &mut buf).unwrap();
        assert_eq!(buf, vec![tag ^ 0xFF; 512]);
    }
    assert_eq!(lists_found, n_threads * arus_per_thread);
}

#[test]
fn threads_with_aborts_and_commits_leave_clean_state() {
    let ld = Arc::new(Lld::format(MemDisk::new(16 << 20), &ld_config()).unwrap());
    std::thread::scope(|s| {
        for t in 0..4 {
            let ld = Arc::clone(&ld);
            s.spawn(move || {
                for i in 0..20 {
                    let aru = ld.begin_aru().unwrap();
                    let list = ld.new_list(Ctx::Aru(aru)).unwrap();
                    let b = ld.new_block(Ctx::Aru(aru), list, Position::First).unwrap();
                    ld.write(Ctx::Aru(aru), b, &vec![t as u8; 512]).unwrap();
                    if i % 2 == 0 {
                        ld.end_aru(aru).unwrap();
                    } else {
                        ld.abort_aru(aru).unwrap();
                    }
                }
            });
        }
    });

    assert_eq!(ld.stats().arus_committed, 40);
    assert_eq!(ld.stats().arus_aborted, 40);
    // Aborted ARUs leave orphaned committed allocations; the check
    // reclaims exactly those (one block per aborted ARU; the lists were
    // allocated too but stay allocated-and-empty, which check() does
    // not touch — they are reachable by id).
    let report = ld.check().unwrap();
    assert_eq!(report.orphan_blocks_freed.len(), 40);
}

#[test]
fn concurrent_durability_callers_share_group_commit_batches() {
    let ld = Arc::new(Lld::format(MemDisk::new(16 << 20), &ld_config()).unwrap());
    let n_threads = 8;
    let arus_per_thread = 10;

    std::thread::scope(|s| {
        for t in 0..n_threads {
            let ld = Arc::clone(&ld);
            s.spawn(move || {
                for i in 0..arus_per_thread {
                    let aru = ld.begin_aru().unwrap();
                    let list = ld.new_list(Ctx::Aru(aru)).unwrap();
                    let b = ld.new_block(Ctx::Aru(aru), list, Position::First).unwrap();
                    ld.write(Ctx::Aru(aru), b, &vec![(t * 31 + i) as u8; 512])
                        .unwrap();
                    // Synchronous commit: every caller demands
                    // durability, so the group-commit stage gets real
                    // contention.
                    ld.end_aru_sync(aru).unwrap();
                }
            });
        }
    });

    let stats = ld.stats();
    assert_eq!(stats.arus_committed, (n_threads * arus_per_thread) as u64);
    // Every caller was covered by some batch, and no caller was counted
    // twice.
    assert_eq!(
        stats.flush_batch_callers,
        (n_threads * arus_per_thread) as u64
    );
    assert!(stats.flush_batches >= 1);
    assert!(stats.flush_batches <= stats.flush_batch_callers);
    assert!(stats.flush_batch_max >= 1);
}
