//! Randomized crash matrix over the whole stack: random mixed
//! workloads, random crash points, and the single invariant that matters
//! — after recovery the file system is consistent and every surviving
//! file's content prefix is exactly what was written.
//!
//! Cases are generated from a seeded RNG, so every run explores the
//! same deterministic matrix.

use ld_aru::core::{Lld, LldConfig};
use ld_aru::disk::{DiskModel, FaultPlan, MemDisk, SimDisk, SmallRng};
use ld_aru::minixfs::{FsConfig, FsError, MinixFs};
use ld_aru::workload::pattern_fill;

fn ld_config() -> LldConfig {
    LldConfig {
        block_size: 4096,
        segment_bytes: 64 * 1024,
        ..LldConfig::default()
    }
}

#[test]
fn any_crash_point_recovers_consistent() {
    let mut rng = SmallRng::seed_from_u64(0xC4A5_4001);
    for case in 0..24 {
        let crash_after = rng.gen_range(50_000, 4_000_000);
        let n_files = 4 + rng.gen_index(20);
        let file_blocks = 1 + rng.gen_index(3);
        let flush_every = 1 + rng.gen_index(5);

        let sim = SimDisk::new(MemDisk::new(48 << 20), DiskModel::hp_c3010())
            .with_faults(FaultPlan::new().crash_after_bytes(crash_after));
        let ld = Lld::format(sim, &ld_config()).unwrap();
        let mut fs = MinixFs::format(
            ld,
            FsConfig {
                inode_count: 128,
                ..FsConfig::default()
            },
        )
        .unwrap();

        let size = file_blocks * 4096;
        let mut data = vec![0u8; size];
        // Create, overwrite, and delete files until the crash (if it
        // comes).
        let _ = (|| -> Result<(), FsError> {
            for i in 0..n_files {
                let path = format!("/f{i}");
                let ino = fs.create(&path)?;
                pattern_fill(&mut data, i as u64);
                fs.write_at(ino, 0, &data)?;
                if i % flush_every == 0 {
                    fs.flush()?;
                }
                if i >= 3 && i % 3 == 0 {
                    fs.unlink(&format!("/f{}", i - 3))?;
                }
            }
            fs.flush()
        })();

        // Recover from the surviving image.
        let image = fs.into_ld().into_device().into_inner().into_image();
        let (ld2, _) = Lld::recover(MemDisk::from_image(image)).unwrap();
        let mut fs2 = MinixFs::mount(ld2, FsConfig::default()).unwrap();

        let report = fs2.verify().unwrap();
        assert!(
            report.is_consistent(),
            "case {case}: problems: {:?}",
            report.problems
        );

        // Every surviving file's persisted prefix matches its pattern.
        let mut expect = vec![0u8; size];
        for entry in fs2.readdir("/").unwrap() {
            let i: u64 = entry.name[1..].parse().unwrap();
            let st = fs2.stat(entry.ino).unwrap();
            assert!(st.size <= size as u64, "case {case}");
            let mut buf = vec![0u8; st.size as usize];
            let got = fs2.read_at(entry.ino, 0, &mut buf).unwrap();
            assert_eq!(got as u64, st.size, "case {case}");
            pattern_fill(&mut expect, i);
            assert_eq!(
                &buf[..],
                &expect[..st.size as usize],
                "case {case}: file {i} corrupt"
            );
        }
    }
}

#[test]
fn double_crash_during_recovery_era_is_safe() {
    // Crash once, recover, do a little work, crash again mid-work,
    // recover again: consistency must hold at both steps.
    let mut rng = SmallRng::seed_from_u64(0xC4A5_4002);
    for case in 0..24 {
        let crash_after = rng.gen_range(100_000, 1_000_000);
        let second_crash = rng.gen_range(10_000, 200_000);

        let sim = SimDisk::new(MemDisk::new(48 << 20), DiskModel::hp_c3010())
            .with_faults(FaultPlan::new().crash_after_bytes(crash_after));
        let ld = Lld::format(sim, &ld_config()).unwrap();
        let mut fs = MinixFs::format(
            ld,
            FsConfig {
                inode_count: 64,
                ..FsConfig::default()
            },
        )
        .unwrap();
        let _ = (|| -> Result<(), FsError> {
            for i in 0..12 {
                let ino = fs.create(&format!("/a{i}"))?;
                fs.write_at(ino, 0, &vec![i as u8; 5000])?;
                fs.flush()?;
            }
            Ok(())
        })();

        let image = fs.into_ld().into_device().into_inner().into_image();
        let sim2 = SimDisk::new(MemDisk::from_image(image), DiskModel::hp_c3010())
            .with_faults(FaultPlan::new().crash_after_bytes(second_crash));
        let (ld2, _) = Lld::recover(sim2).unwrap();
        let mut fs2 = MinixFs::mount(ld2, FsConfig::default()).unwrap();
        assert!(fs2.verify().unwrap().is_consistent(), "case {case}");

        let _ = (|| -> Result<(), FsError> {
            for i in 0..12 {
                let ino = fs2.create(&format!("/b{i}"))?;
                fs2.write_at(ino, 0, &vec![i as u8; 5000])?;
                fs2.flush()?;
            }
            Ok(())
        })();

        let image2 = fs2.into_ld().into_device().into_inner().into_image();
        let (ld3, _) = Lld::recover(MemDisk::from_image(image2)).unwrap();
        let mut fs3 = MinixFs::mount(ld3, FsConfig::default()).unwrap();
        let report = fs3.verify().unwrap();
        assert!(
            report.is_consistent(),
            "case {case}: problems: {:?}",
            report.problems
        );
    }
}
