//! Randomized crash matrix over the whole stack: random mixed
//! workloads, random crash points, and the single invariant that matters
//! — after recovery the file system is consistent and every surviving
//! file's content prefix is exactly what was written.
//!
//! Cases are generated from a seeded RNG, so every run explores the
//! same deterministic matrix.

use ld_aru::core::{CleanerConfig, Ctx, Lld, LldConfig, Position};
use ld_aru::disk::{DiskModel, FaultPlan, MemDisk, SimDisk, SmallRng};
use ld_aru::minixfs::{FsConfig, FsError, MinixFs};
use ld_aru::workload::pattern_fill;

fn ld_config() -> LldConfig {
    LldConfig {
        block_size: 4096,
        segment_bytes: 64 * 1024,
        ..LldConfig::default()
    }
}

#[test]
fn any_crash_point_recovers_consistent() {
    let mut rng = SmallRng::seed_from_u64(0xC4A5_4001);
    for case in 0..24 {
        let crash_after = rng.gen_range(50_000, 4_000_000);
        let n_files = 4 + rng.gen_index(20);
        let file_blocks = 1 + rng.gen_index(3);
        let flush_every = 1 + rng.gen_index(5);

        let sim = SimDisk::new(MemDisk::new(48 << 20), DiskModel::hp_c3010())
            .with_faults(FaultPlan::new().crash_after_bytes(crash_after));
        let ld = Lld::format(sim, &ld_config()).unwrap();
        let mut fs = MinixFs::format(
            ld,
            FsConfig {
                inode_count: 128,
                ..FsConfig::default()
            },
        )
        .unwrap();

        let size = file_blocks * 4096;
        let mut data = vec![0u8; size];
        // Create, overwrite, and delete files until the crash (if it
        // comes).
        let _ = (|| -> Result<(), FsError> {
            for i in 0..n_files {
                let path = format!("/f{i}");
                let ino = fs.create(&path)?;
                pattern_fill(&mut data, i as u64);
                fs.write_at(ino, 0, &data)?;
                if i % flush_every == 0 {
                    fs.flush()?;
                }
                if i >= 3 && i % 3 == 0 {
                    fs.unlink(&format!("/f{}", i - 3))?;
                }
            }
            fs.flush()
        })();

        // Recover from the surviving image.
        let image = fs.into_ld().into_device().into_inner().into_image();
        let (ld2, _) = Lld::recover(MemDisk::from_image(image)).unwrap();
        let mut fs2 = MinixFs::mount(ld2, FsConfig::default()).unwrap();

        let report = fs2.verify().unwrap();
        assert!(
            report.is_consistent(),
            "case {case}: problems: {:?}",
            report.problems
        );

        // Every surviving file's persisted prefix matches its pattern.
        let mut expect = vec![0u8; size];
        for entry in fs2.readdir("/").unwrap() {
            let i: u64 = entry.name[1..].parse().unwrap();
            let st = fs2.stat(entry.ino).unwrap();
            assert!(st.size <= size as u64, "case {case}");
            let mut buf = vec![0u8; st.size as usize];
            let got = fs2.read_at(entry.ino, 0, &mut buf).unwrap();
            assert_eq!(got as u64, st.size, "case {case}");
            pattern_fill(&mut expect, i);
            assert_eq!(
                &buf[..],
                &expect[..st.size as usize],
                "case {case}: file {i} corrupt"
            );
        }
    }
}

/// Power cuts while the *background* cleaner (`cleanerd`) is live:
/// sweeping the crash point through a clean-heavy workload lands cuts
/// in every phase of its passes — between the victim snapshot and the
/// relocation windows, inside a relocation window, during the covering
/// checkpoint, and after the release sweep (segment writes, checkpoint
/// writes, and relocation writes from the cleaner thread all advance
/// the same byte budget the fault plan counts). After recovery:
/// committed ARUs are all-or-nothing (the two hot blocks written by
/// the same ARU always read the same generation), no relocated cold
/// block is lost, and the disk stays usable. Exercised at 1 and 8 map
/// shards.
#[test]
fn background_clean_crash_points_are_all_or_nothing() {
    for &shards in &[1usize, 8] {
        let cfg = LldConfig {
            block_size: 512,
            segment_bytes: 8 * 512,
            max_blocks: Some(512),
            max_lists: Some(64),
            map_shards: shards,
            cleaner: CleanerConfig {
                background: true,
                ..CleanerConfig::default()
            },
            ..LldConfig::default()
        };
        let mut crash_at = 150_000u64;
        let mut crashes = 0u32;
        let mut background_passes = 0u64;
        while crash_at < 2_600_000 {
            let cap = 512 + 2 * 64 * 1024 + 24 * 8 * 512;
            let sim = SimDisk::new(MemDisk::new(cap as u64), DiskModel::hp_c3010())
                .with_faults(FaultPlan::new().crash_after_bytes(crash_at));
            let ld = Lld::format(sim, &cfg).unwrap();

            // Cold blocks, flushed before the churn: the cleaner will
            // relocate them many times over; none may be lost.
            let l = ld.new_list(Ctx::Simple).unwrap();
            let mut cold = Vec::new();
            let mut prev = None;
            for i in 0..6u8 {
                let pos = match prev {
                    None => Position::First,
                    Some(p) => Position::After(p),
                };
                let b = ld.new_block(Ctx::Simple, l, pos).unwrap();
                ld.write(Ctx::Simple, b, &vec![0xE0 + i; 512]).unwrap();
                cold.push(b);
                prev = Some(b);
            }
            let hot = ld.new_list(Ctx::Simple).unwrap();
            let h0 = ld.new_block(Ctx::Simple, hot, Position::First).unwrap();
            let h1 = ld.new_block(Ctx::Simple, hot, Position::After(h0)).unwrap();
            ld.flush().unwrap();

            // Hot churn: each ARU overwrites both hot blocks with the
            // same byte, so after any crash the recovered pair must
            // match — a torn pair means a torn ARU.
            let mut crashed = false;
            for i in 0..2500u32 {
                let byte = (i % 251) as u8;
                let res = (|| {
                    let aru = ld.begin_aru()?;
                    ld.write(Ctx::Aru(aru), h0, &vec![byte; 512])?;
                    ld.write(Ctx::Aru(aru), h1, &vec![byte; 512])?;
                    ld.end_aru(aru)?;
                    if i % 16 == 0 {
                        ld.flush()?;
                    }
                    Ok::<(), ld_aru::core::LldError>(())
                })();
                if res.is_err() {
                    crashed = true;
                    break;
                }
            }
            if crashed {
                crashes += 1;
            }
            background_passes += ld.stats().cleaner_passes;

            let image = ld.into_device().into_inner().into_image();
            let (ld2, _) = Lld::recover_with(MemDisk::from_image(image), &cfg).unwrap();

            for (i, &b) in cold.iter().enumerate() {
                let mut buf = vec![0u8; 512];
                ld2.read(Ctx::Simple, b, &mut buf).unwrap_or_else(|e| {
                    panic!("shards {shards}, crash at {crash_at}: cold block {i} lost: {e}")
                });
                assert_eq!(
                    buf,
                    vec![0xE0 + i as u8; 512],
                    "shards {shards}, crash at {crash_at}: cold block {i} corrupt"
                );
            }
            let mut b0 = vec![0u8; 512];
            let mut b1 = vec![0u8; 512];
            ld2.read(Ctx::Simple, h0, &mut b0).unwrap();
            ld2.read(Ctx::Simple, h1, &mut b1).unwrap();
            assert_eq!(
                b0, b1,
                "shards {shards}, crash at {crash_at}: torn ARU ({} vs {})",
                b0[0], b1[0]
            );

            // The disk stays fully usable after recovery.
            let nb = ld2.new_block(Ctx::Simple, l, Position::First).unwrap();
            ld2.write(Ctx::Simple, nb, &vec![0x11; 512]).unwrap();
            ld2.flush().unwrap();

            crash_at += 350_000;
        }
        assert!(
            crashes >= 4,
            "shards {shards}: only {crashes} crash points fired"
        );
        assert!(
            background_passes > 0,
            "shards {shards}: the background cleaner never ran a pass"
        );
    }
}

#[test]
fn double_crash_during_recovery_era_is_safe() {
    // Crash once, recover, do a little work, crash again mid-work,
    // recover again: consistency must hold at both steps.
    let mut rng = SmallRng::seed_from_u64(0xC4A5_4002);
    for case in 0..24 {
        let crash_after = rng.gen_range(100_000, 1_000_000);
        let second_crash = rng.gen_range(10_000, 200_000);

        let sim = SimDisk::new(MemDisk::new(48 << 20), DiskModel::hp_c3010())
            .with_faults(FaultPlan::new().crash_after_bytes(crash_after));
        let ld = Lld::format(sim, &ld_config()).unwrap();
        let mut fs = MinixFs::format(
            ld,
            FsConfig {
                inode_count: 64,
                ..FsConfig::default()
            },
        )
        .unwrap();
        let _ = (|| -> Result<(), FsError> {
            for i in 0..12 {
                let ino = fs.create(&format!("/a{i}"))?;
                fs.write_at(ino, 0, &vec![i as u8; 5000])?;
                fs.flush()?;
            }
            Ok(())
        })();

        let image = fs.into_ld().into_device().into_inner().into_image();
        let sim2 = SimDisk::new(MemDisk::from_image(image), DiskModel::hp_c3010())
            .with_faults(FaultPlan::new().crash_after_bytes(second_crash));
        let (ld2, _) = Lld::recover(sim2).unwrap();
        let mut fs2 = MinixFs::mount(ld2, FsConfig::default()).unwrap();
        assert!(fs2.verify().unwrap().is_consistent(), "case {case}");

        let _ = (|| -> Result<(), FsError> {
            for i in 0..12 {
                let ino = fs2.create(&format!("/b{i}"))?;
                fs2.write_at(ino, 0, &vec![i as u8; 5000])?;
                fs2.flush()?;
            }
            Ok(())
        })();

        let image2 = fs2.into_ld().into_device().into_inner().into_image();
        let (ld3, _) = Lld::recover(MemDisk::from_image(image2)).unwrap();
        let mut fs3 = MinixFs::mount(ld3, FsConfig::default()).unwrap();
        let report = fs3.verify().unwrap();
        assert!(
            report.is_consistent(),
            "case {case}: problems: {:?}",
            report.problems
        );
    }
}
