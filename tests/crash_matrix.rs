//! Property-based crash matrix over the whole stack: random mixed
//! workloads, random crash points, and the single invariant that matters
//! — after recovery the file system is consistent and every surviving
//! file's content prefix is exactly what was written.

use ld_aru::core::{Lld, LldConfig};
use ld_aru::disk::{DiskModel, FaultPlan, MemDisk, SimDisk};
use ld_aru::minixfs::{FsConfig, FsError, MinixFs};
use ld_aru::workload::pattern_fill;
use proptest::prelude::*;

fn ld_config() -> LldConfig {
    LldConfig {
        block_size: 4096,
        segment_bytes: 64 * 1024,
        ..LldConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_crash_point_recovers_consistent(
        crash_after in 50_000u64..4_000_000,
        n_files in 4usize..24,
        file_blocks in 1usize..4,
        flush_every in 1usize..6,
    ) {
        let sim = SimDisk::new(MemDisk::new(48 << 20), DiskModel::hp_c3010())
            .with_faults(FaultPlan::new().crash_after_bytes(crash_after));
        let ld = Lld::format(sim, &ld_config()).unwrap();
        let mut fs = MinixFs::format(
            ld,
            FsConfig { inode_count: 128, ..FsConfig::default() },
        )
        .unwrap();

        let size = file_blocks * 4096;
        let mut data = vec![0u8; size];
        // Create, overwrite, and delete files until the crash (if it
        // comes).
        let _ = (|| -> Result<(), FsError> {
            for i in 0..n_files {
                let path = format!("/f{i}");
                let ino = fs.create(&path)?;
                pattern_fill(&mut data, i as u64);
                fs.write_at(ino, 0, &data)?;
                if i % flush_every == 0 {
                    fs.flush()?;
                }
                if i >= 3 && i % 3 == 0 {
                    fs.unlink(&format!("/f{}", i - 3))?;
                }
            }
            fs.flush()
        })();

        // Recover from the surviving image.
        let image = fs.into_ld().into_device().into_inner().into_image();
        let (ld2, _) = Lld::recover(MemDisk::from_image(image)).unwrap();
        let mut fs2 = MinixFs::mount(ld2, FsConfig::default()).unwrap();

        let report = fs2.verify().unwrap();
        prop_assert!(report.is_consistent(), "problems: {:?}", report.problems);

        // Every surviving file's persisted prefix matches its pattern.
        let mut expect = vec![0u8; size];
        for entry in fs2.readdir("/").unwrap() {
            let i: u64 = entry.name[1..].parse().unwrap();
            let st = fs2.stat(entry.ino).unwrap();
            prop_assert!(st.size <= size as u64);
            let mut buf = vec![0u8; st.size as usize];
            let got = fs2.read_at(entry.ino, 0, &mut buf).unwrap();
            prop_assert_eq!(got as u64, st.size);
            pattern_fill(&mut expect, i);
            prop_assert_eq!(&buf[..], &expect[..st.size as usize], "file {} corrupt", i);
        }
    }

    #[test]
    fn double_crash_during_recovery_era_is_safe(
        crash_after in 100_000u64..1_000_000,
        second_crash in 10_000u64..200_000,
    ) {
        // Crash once, recover, do a little work, crash again mid-work,
        // recover again: consistency must hold at both steps.
        let sim = SimDisk::new(MemDisk::new(48 << 20), DiskModel::hp_c3010())
            .with_faults(FaultPlan::new().crash_after_bytes(crash_after));
        let ld = Lld::format(sim, &ld_config()).unwrap();
        let mut fs = MinixFs::format(
            ld,
            FsConfig { inode_count: 64, ..FsConfig::default() },
        )
        .unwrap();
        let _ = (|| -> Result<(), FsError> {
            for i in 0..12 {
                let ino = fs.create(&format!("/a{i}"))?;
                fs.write_at(ino, 0, &vec![i as u8; 5000])?;
                fs.flush()?;
            }
            Ok(())
        })();

        let image = fs.into_ld().into_device().into_inner().into_image();
        let sim2 = SimDisk::new(MemDisk::from_image(image), DiskModel::hp_c3010())
            .with_faults(FaultPlan::new().crash_after_bytes(second_crash));
        let (ld2, _) = Lld::recover(sim2).unwrap();
        let mut fs2 = MinixFs::mount(ld2, FsConfig::default()).unwrap();
        prop_assert!(fs2.verify().unwrap().is_consistent());

        let _ = (|| -> Result<(), FsError> {
            for i in 0..12 {
                let ino = fs2.create(&format!("/b{i}"))?;
                fs2.write_at(ino, 0, &vec![i as u8; 5000])?;
                fs2.flush()?;
            }
            Ok(())
        })();

        let image2 = fs2.into_ld().into_device().into_inner().into_image();
        let (ld3, _) = Lld::recover(MemDisk::from_image(image2)).unwrap();
        let mut fs3 = MinixFs::mount(ld3, FsConfig::default()).unwrap();
        let report = fs3.verify().unwrap();
        prop_assert!(report.is_consistent(), "problems: {:?}", report.problems);
    }
}
