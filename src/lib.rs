//! Umbrella crate re-exporting the LD/ARU reproduction stack.
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! system inventory, and `EXPERIMENTS.md` for paper-vs-measured results.

pub use ld_core as core;
pub use ld_disk as disk;
pub use ld_minixfs as minixfs;
pub use ld_workload as workload;
