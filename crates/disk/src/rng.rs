//! A small deterministic PRNG (SplitMix64) for workloads and tests.
//!
//! The workspace carries no external crates, so this stands in for the
//! usual `rand` small-rng: statistically fine for workload generation
//! and randomized testing, explicitly **not** cryptographic. The same
//! seed always produces the same stream on every platform.

/// A seeded SplitMix64 generator.
///
/// # Example
///
/// ```
/// use ld_disk::SmallRng;
///
/// let mut a = SmallRng::seed_from_u64(42);
/// let mut b = SmallRng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let roll = a.gen_range(1, 7); // 1..7
/// assert!((1..7).contains(&(roll as i32)));
/// ```
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Creates a generator from a seed; equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        SmallRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea & Flood 2014): a strong, tiny mixer.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform index in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        self.gen_range(0, n as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle of `slice`.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_index(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10, 20);
            assert!((10..20).contains(&v));
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
