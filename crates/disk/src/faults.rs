use std::ops::Range;

/// What a write attempt should do, as decided by the fault plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum WriteOutcome {
    /// Apply the whole write.
    Full,
    /// Apply only the first `n` bytes (a torn write), then crash.
    Torn(usize),
    /// The device already crashed; apply nothing.
    Dead,
}

/// A deterministic fault-injection plan for a [`SimDisk`](crate::SimDisk).
///
/// Crash points let crash-recovery tests stop the disk at an exact,
/// reproducible instant: after N bytes or N write requests, the crossing
/// write is *torn* — only a sector-aligned prefix reaches the medium —
/// and every later operation fails with
/// [`DiskError::Crashed`](crate::DiskError::Crashed). This models a power
/// failure in the middle of a segment write, the hardest case the paper's
/// recovery procedure must handle.
///
/// Read-error regions model partial media failures.
///
/// # Example
///
/// ```
/// use ld_disk::FaultPlan;
///
/// let plan = FaultPlan::new().crash_after_bytes(10_000);
/// assert!(!plan.is_crashed());
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    crash_after_bytes: Option<u64>,
    crash_after_writes: Option<u64>,
    torn_granularity: u64,
    read_error_regions: Vec<Range<u64>>,
    bytes_written: u64,
    writes_done: u64,
    crashed: bool,
}

impl FaultPlan {
    /// Creates an empty plan (no faults). Torn-write granularity defaults
    /// to 512-byte sectors.
    pub fn new() -> Self {
        FaultPlan {
            torn_granularity: 512,
            ..FaultPlan::default()
        }
    }

    /// Crashes the device once `n` total bytes have been written; the
    /// write crossing the boundary is torn at sector granularity.
    #[must_use]
    pub fn crash_after_bytes(mut self, n: u64) -> Self {
        self.crash_after_bytes = Some(n);
        self
    }

    /// Crashes the device after `n` complete write requests; request
    /// `n + 1` fails without transferring any data.
    #[must_use]
    pub fn crash_after_writes(mut self, n: u64) -> Self {
        self.crash_after_writes = Some(n);
        self
    }

    /// Sets the granularity at which torn writes are truncated.
    /// A granularity of 0 permits byte-granularity tearing.
    ///
    /// # Panics
    ///
    /// Does not panic; a value of 0 is treated as 1.
    #[must_use]
    pub fn torn_granularity(mut self, bytes: u64) -> Self {
        self.torn_granularity = bytes.max(1);
        self
    }

    /// Marks `range` (byte offsets) as unreadable media.
    #[must_use]
    pub fn read_error_region(mut self, range: Range<u64>) -> Self {
        self.read_error_regions.push(range);
        self
    }

    /// Whether a crash point has already fired.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Total bytes durably written so far under this plan.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Forces the crashed state immediately (used by tests and the
    /// harness to stop a device by hand).
    pub fn force_crash(&mut self) {
        self.crashed = true;
    }

    /// Decides the outcome of a write of `len` bytes and updates
    /// accounting. Internal to the simulator.
    pub(crate) fn on_write(&mut self, len: u64) -> WriteOutcome {
        if self.crashed {
            return WriteOutcome::Dead;
        }
        if let Some(limit) = self.crash_after_writes {
            if self.writes_done >= limit {
                self.crashed = true;
                return WriteOutcome::Torn(0);
            }
        }
        if let Some(limit) = self.crash_after_bytes {
            let remaining = limit.saturating_sub(self.bytes_written);
            if remaining < len {
                self.crashed = true;
                let torn = remaining - remaining % self.torn_granularity;
                self.bytes_written += torn;
                return WriteOutcome::Torn(torn as usize);
            }
        }
        self.bytes_written += len;
        self.writes_done += 1;
        WriteOutcome::Full
    }

    /// Decides whether a read of `[offset, offset + len)` succeeds.
    /// Returns the offset of the first failing byte, if any.
    pub(crate) fn on_read(&self, offset: u64, len: u64) -> Result<(), u64> {
        if self.crashed {
            return Err(offset);
        }
        let end = offset + len;
        for region in &self.read_error_regions {
            if region.start < end && offset < region.end {
                return Err(region.start.max(offset));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_passes_everything() {
        let mut p = FaultPlan::new();
        assert_eq!(p.on_write(1000), WriteOutcome::Full);
        assert_eq!(p.on_read(0, 1 << 20), Ok(()));
        assert!(!p.is_crashed());
        assert_eq!(p.bytes_written(), 1000);
    }

    #[test]
    fn crash_after_bytes_tears_crossing_write() {
        let mut p = FaultPlan::new().crash_after_bytes(1500);
        assert_eq!(p.on_write(1024), WriteOutcome::Full);
        // 476 bytes remain; sector-aligned prefix is 0.
        assert_eq!(p.on_write(1024), WriteOutcome::Torn(0));
        assert!(p.is_crashed());
        assert_eq!(p.on_write(1), WriteOutcome::Dead);
    }

    #[test]
    fn torn_write_is_sector_aligned() {
        let mut p = FaultPlan::new().crash_after_bytes(1300);
        assert_eq!(p.on_write(4096), WriteOutcome::Torn(1024));
        assert_eq!(p.bytes_written(), 1024);
    }

    #[test]
    fn byte_granularity_tearing() {
        let mut p = FaultPlan::new().crash_after_bytes(1300).torn_granularity(1);
        assert_eq!(p.on_write(4096), WriteOutcome::Torn(1300));
    }

    #[test]
    fn crash_after_writes_counts_requests() {
        let mut p = FaultPlan::new().crash_after_writes(2);
        assert_eq!(p.on_write(10), WriteOutcome::Full);
        assert_eq!(p.on_write(10), WriteOutcome::Full);
        assert_eq!(p.on_write(10), WriteOutcome::Torn(0));
        assert!(p.is_crashed());
    }

    #[test]
    fn read_error_regions_overlap_detection() {
        let p = FaultPlan::new().read_error_region(100..200);
        assert_eq!(p.on_read(0, 100), Ok(()));
        assert_eq!(p.on_read(200, 50), Ok(()));
        assert_eq!(p.on_read(50, 100), Err(100));
        assert_eq!(p.on_read(150, 10), Err(150));
    }

    #[test]
    fn reads_fail_after_crash() {
        let mut p = FaultPlan::new();
        p.force_crash();
        assert_eq!(p.on_read(0, 1), Err(0));
    }
}
