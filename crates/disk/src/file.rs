use crate::{BlockDevice, Result};
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::Path;

/// A file-backed block device.
///
/// Stores the disk image in a regular file, which is convenient for
/// examples that inspect an image across process runs, and matches the
/// paper's setup of a raw partition accessed through a file descriptor.
///
/// I/O uses positioned reads and writes (`pread`/`pwrite` via
/// [`std::os::unix::fs::FileExt`]), so there is no shared cursor and no
/// lock: any number of threads may read and write concurrently, exactly
/// like the raw-disk file descriptor the paper's prototype used.
///
/// # Example
///
/// ```no_run
/// # fn main() -> Result<(), ld_disk::DiskError> {
/// use ld_disk::{BlockDevice, FileDisk};
///
/// let disk = FileDisk::create("/tmp/ld.img", 1 << 20)?;
/// disk.write_at(0, b"superblock")?;
/// disk.flush()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FileDisk {
    file: File,
    capacity: u64,
}

impl FileDisk {
    /// Creates (or truncates) an image file of `capacity` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::Io`](crate::DiskError::Io) if the file cannot
    /// be created or sized.
    pub fn create<P: AsRef<Path>>(path: P, capacity: u64) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.set_len(capacity)?;
        Ok(FileDisk { file, capacity })
    }

    /// Opens an existing image file, using its current length as capacity.
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::Io`](crate::DiskError::Io) if the file cannot
    /// be opened or its metadata read.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let capacity = file.metadata()?.len();
        Ok(FileDisk { file, capacity })
    }
}

impl BlockDevice for FileDisk {
    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.check_bounds(offset, buf.len())?;
        self.file.read_exact_at(buf, offset)?;
        Ok(())
    }

    fn write_at(&self, offset: u64, buf: &[u8]) -> Result<()> {
        self.check_bounds(offset, buf.len())?;
        self.file.write_all_at(buf, offset)?;
        Ok(())
    }

    fn flush(&self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ld-disk-test-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn create_write_reopen() {
        let path = temp_path("rw");
        {
            let d = FileDisk::create(&path, 4096).unwrap();
            assert_eq!(d.capacity(), 4096);
            d.write_at(100, b"persisted").unwrap();
            d.flush().unwrap();
        }
        {
            let d = FileDisk::open(&path).unwrap();
            assert_eq!(d.capacity(), 4096);
            let mut buf = [0u8; 9];
            d.read_at(100, &mut buf).unwrap();
            assert_eq!(&buf, b"persisted");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bounds_enforced() {
        let path = temp_path("bounds");
        let d = FileDisk::create(&path, 128).unwrap();
        assert!(d.write_at(120, &[0u8; 16]).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn concurrent_positioned_io() {
        let path = temp_path("concurrent");
        let d = std::sync::Arc::new(FileDisk::create(&path, 64 * 4096).unwrap());
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let d = d.clone();
                s.spawn(move || {
                    for i in 0..8u64 {
                        let off = (t * 8 + i) * 4096;
                        d.write_at(off, &[t as u8 + 1; 4096]).unwrap();
                        let mut buf = [0u8; 4096];
                        d.read_at(off, &mut buf).unwrap();
                        assert_eq!(buf, [t as u8 + 1; 4096]);
                    }
                });
            }
        });
        std::fs::remove_file(&path).unwrap();
    }
}
