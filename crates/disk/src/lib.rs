//! Simulated block devices for the Logical Disk / ARU reproduction.
//!
//! The ICDCS'96 paper evaluated its prototype on a 70 MHz SPARC-5/70
//! talking to an HP C3010 disk (2 GB, SCSI-II, 5400 rpm, 11.5 ms average
//! seek) through the SunOS raw-disk interface. This crate provides the
//! substitute substrate: real byte storage (in memory or in a file) plus a
//! deterministic *service-time model* of such a disk, so experiments can
//! report throughput on a virtual clock with a 1996-era CPU:disk balance.
//!
//! The crate provides:
//!
//! * [`BlockDevice`] — the minimal raw-disk interface the logical disk
//!   system is written against (byte-addressed `read_at`/`write_at`,
//!   mirroring a Unix raw-disk file descriptor).
//! * [`MemDisk`] / [`FileDisk`] — concrete devices.
//! * [`DiskModel`] — seek + rotation + transfer service times, with the
//!   paper's HP C3010 profile built in ([`DiskModel::hp_c3010`]).
//! * [`VirtualClock`] — the clock that disk service time is charged to.
//! * [`SimDisk`] — a wrapper combining a device with a model, a clock,
//!   I/O [`DiskStats`], and deterministic [`FaultPlan`] fault injection
//!   (crash points and torn writes) for crash-recovery testing.
//! * [`crc32`] — checksums for on-disk structures.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), ld_disk::DiskError> {
//! use ld_disk::{BlockDevice, DiskModel, MemDisk, SimDisk};
//!
//! let disk = SimDisk::new(MemDisk::new(1 << 20), DiskModel::hp_c3010());
//! disk.write_at(0, b"segment zero")?;
//! let mut buf = [0u8; 12];
//! disk.read_at(0, &mut buf)?;
//! assert_eq!(&buf, b"segment zero");
//! // Disk time was charged to the virtual clock, not the wall clock.
//! assert!(disk.clock().now().as_nanos() > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block_device;
mod clock;
mod crc;
mod error;
mod faults;
mod file;
mod hist;
mod latency;
mod mem;
mod model;
mod pipeline;
mod rng;
mod sim;
mod stats;
mod sync;
mod trace;

pub use block_device::BlockDevice;
pub use clock::VirtualClock;
pub use crc::crc32;
pub use error::DiskError;
pub use faults::FaultPlan;
pub use file::FileDisk;
pub use hist::{
    bucket_index, bucket_upper_bound, HistogramSnapshot, LatencyHistogram, HIST_BUCKETS,
};
pub use latency::LatencyDisk;
pub use mem::MemDisk;
pub use model::DiskModel;
pub use pipeline::{PipelineStatsSnapshot, PipelinedDisk};
pub use rng::SmallRng;
pub use sim::SimDisk;
pub use stats::{DiskStats, DiskStatsSnapshot};
pub use sync::{Condvar, Mutex, RwLock};
pub use trace::{
    current_trace, register_thread_name, thread_names, thread_tag, trace_scope, PipeObserver,
    PipeStage, TraceScope,
};

/// Result alias for device operations.
pub type Result<T> = std::result::Result<T, DiskError>;
