//! A device adaptor that charges *wall-clock* time for write barriers.
//!
//! [`SimDisk`](crate::SimDisk) charges modeled service time to a
//! virtual clock and returns in nanoseconds of real time, which makes
//! real-time effects — above all group-commit batching, where a
//! durability caller can only join a batch while some leader's barrier
//! is still in flight — unobservably rare. Wrapping the device in a
//! [`LatencyDisk`] restores a realistic barrier cost in real time so
//! those effects show up in wall-clock experiments.

use crate::{BlockDevice, DiskStatsSnapshot, Result};
use std::time::Duration;

/// Delegates to an inner device, sleeping for a fixed wall-clock
/// duration on every [`flush`](BlockDevice::flush) — and, optionally,
/// on every [`read_at`](BlockDevice::read_at).
///
/// Writes are passed through untouched, mirroring a device with a
/// volatile write cache where acknowledged writes are cheap and the
/// cache flush is the expensive step. The optional read delay models
/// the other real cost of such a device: a read that misses the cache
/// goes to the media ([`with_read_delay`](LatencyDisk::with_read_delay)
/// — off by default).
#[derive(Debug)]
pub struct LatencyDisk<D> {
    inner: D,
    flush_delay: Duration,
    read_delay: Duration,
}

impl<D: BlockDevice> LatencyDisk<D> {
    /// Wraps `inner`, charging `flush_delay` of real time per barrier.
    pub fn new(inner: D, flush_delay: Duration) -> Self {
        LatencyDisk {
            inner,
            flush_delay,
            read_delay: Duration::ZERO,
        }
    }

    /// Additionally charges `read_delay` of real time per
    /// [`read_at`](BlockDevice::read_at) — a media-read cost.
    #[must_use]
    pub fn with_read_delay(mut self, read_delay: Duration) -> Self {
        self.read_delay = read_delay;
        self
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Unwraps the adaptor, returning the inner device.
    pub fn into_inner(self) -> D {
        self.inner
    }
}

impl<D: BlockDevice> BlockDevice for LatencyDisk<D> {
    fn capacity(&self) -> u64 {
        self.inner.capacity()
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        if !self.read_delay.is_zero() {
            std::thread::sleep(self.read_delay);
        }
        self.inner.read_at(offset, buf)
    }

    fn write_at(&self, offset: u64, buf: &[u8]) -> Result<()> {
        self.inner.write_at(offset, buf)
    }

    fn flush(&self) -> Result<()> {
        if !self.flush_delay.is_zero() {
            std::thread::sleep(self.flush_delay);
        }
        self.inner.flush()
    }

    fn stats_snapshot(&self) -> Option<DiskStatsSnapshot> {
        self.inner.stats_snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDisk;
    use std::time::Instant;

    #[test]
    fn delegates_io_and_charges_barrier_time() {
        let d = LatencyDisk::new(MemDisk::new(1024), Duration::from_millis(5));
        d.write_at(0, b"abc").unwrap();
        let mut buf = [0u8; 3];
        d.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"abc");
        assert_eq!(d.capacity(), 1024);

        let start = Instant::now();
        d.flush().unwrap();
        assert!(start.elapsed() >= Duration::from_millis(5));
        assert_eq!(d.into_inner().capacity(), 1024);
    }

    #[test]
    fn read_delay_charges_media_time_per_read() {
        let d = LatencyDisk::new(MemDisk::new(1024), Duration::ZERO)
            .with_read_delay(Duration::from_millis(5));
        d.write_at(0, b"abc").unwrap();
        let mut buf = [0u8; 3];
        let start = Instant::now();
        d.read_at(0, &mut buf).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(5));
        assert_eq!(&buf, b"abc");
        // The barrier itself stays free.
        let start = Instant::now();
        d.flush().unwrap();
        assert!(start.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn zero_delay_is_a_plain_passthrough() {
        let d = LatencyDisk::new(MemDisk::new(64), Duration::ZERO);
        d.write_at(0, b"x").unwrap();
        d.flush().unwrap();
        assert!(d.stats_snapshot().is_none());
    }
}
