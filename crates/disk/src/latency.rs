//! A device adaptor that charges *wall-clock* time for write barriers.
//!
//! [`SimDisk`](crate::SimDisk) charges modeled service time to a
//! virtual clock and returns in nanoseconds of real time, which makes
//! real-time effects — above all group-commit batching, where a
//! durability caller can only join a batch while some leader's barrier
//! is still in flight — unobservably rare. Wrapping the device in a
//! [`LatencyDisk`] restores a realistic barrier cost in real time so
//! those effects show up in wall-clock experiments.

use crate::{BlockDevice, DiskStatsSnapshot, Result};
use std::time::Duration;

/// Delegates to an inner device, sleeping for a fixed wall-clock
/// duration on every [`flush`](BlockDevice::flush) — and, optionally,
/// on every [`read_at`](BlockDevice::read_at) or
/// [`write_at`](BlockDevice::write_at).
///
/// By default writes are passed through untouched, mirroring a device
/// with a volatile write cache where acknowledged writes are cheap and
/// the cache flush is the expensive step. The optional read delay
/// models the other real cost of such a device: a read that misses the
/// cache goes to the media
/// ([`with_read_delay`](LatencyDisk::with_read_delay) — off by
/// default). The optional write delay
/// ([`with_write_delay`](LatencyDisk::with_write_delay) — also off by
/// default) charges a fixed per-call transfer cost, and the write
/// bandwidth ([`with_write_bandwidth`](LatencyDisk::with_write_bandwidth))
/// charges a per-byte cost, so a 32-byte header is proportionally
/// cheaper than a full segment. With a write cost and a flush delay the
/// disk exposes the `W`-overlaps-`F` opportunity a pipelined device
/// layer exploits, since the sleeps are charged on whichever thread
/// issues the call and concurrent calls sleep concurrently.
#[derive(Debug)]
pub struct LatencyDisk<D> {
    inner: D,
    flush_delay: Duration,
    read_delay: Duration,
    write_delay: Duration,
    /// Modeled sequential write bandwidth in bytes/second (0 = off).
    write_bytes_per_sec: u64,
}

impl<D: BlockDevice> LatencyDisk<D> {
    /// Wraps `inner`, charging `flush_delay` of real time per barrier.
    pub fn new(inner: D, flush_delay: Duration) -> Self {
        LatencyDisk {
            inner,
            flush_delay,
            read_delay: Duration::ZERO,
            write_delay: Duration::ZERO,
            write_bytes_per_sec: 0,
        }
    }

    /// Additionally charges `read_delay` of real time per
    /// [`read_at`](BlockDevice::read_at) — a media-read cost.
    #[must_use]
    pub fn with_read_delay(mut self, read_delay: Duration) -> Self {
        self.read_delay = read_delay;
        self
    }

    /// Additionally charges `write_delay` of real time per
    /// [`write_at`](BlockDevice::write_at) — a transfer cost, making
    /// write work visible to wall-clock experiments (and overlappable
    /// with an in-flight barrier by a pipelined layer).
    #[must_use]
    pub fn with_write_delay(mut self, write_delay: Duration) -> Self {
        self.write_delay = write_delay;
        self
    }

    /// Additionally charges each [`write_at`](BlockDevice::write_at)
    /// its payload length at `bytes_per_sec` of modeled sequential
    /// bandwidth — a *size-proportional* transfer cost, so streaming a
    /// segment block by block is priced like writing it in one call.
    /// `0` turns the charge off. Composes with
    /// [`with_write_delay`](LatencyDisk::with_write_delay) (fixed
    /// per-call cost, e.g. command overhead).
    #[must_use]
    pub fn with_write_bandwidth(mut self, bytes_per_sec: u64) -> Self {
        self.write_bytes_per_sec = bytes_per_sec;
        self
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Unwraps the adaptor, returning the inner device.
    pub fn into_inner(self) -> D {
        self.inner
    }
}

impl<D: BlockDevice> BlockDevice for LatencyDisk<D> {
    fn capacity(&self) -> u64 {
        self.inner.capacity()
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        if !self.read_delay.is_zero() {
            std::thread::sleep(self.read_delay);
        }
        self.inner.read_at(offset, buf)
    }

    fn write_at(&self, offset: u64, buf: &[u8]) -> Result<()> {
        let mut delay = self.write_delay;
        if let Some(nanos) = (buf.len() as u64)
            .saturating_mul(1_000_000_000)
            .checked_div(self.write_bytes_per_sec)
        {
            delay += Duration::from_nanos(nanos);
        }
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        self.inner.write_at(offset, buf)
    }

    fn flush(&self) -> Result<()> {
        if !self.flush_delay.is_zero() {
            std::thread::sleep(self.flush_delay);
        }
        self.inner.flush()
    }

    fn stats_snapshot(&self) -> Option<DiskStatsSnapshot> {
        self.inner.stats_snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDisk;
    use std::time::Instant;

    #[test]
    fn delegates_io_and_charges_barrier_time() {
        let d = LatencyDisk::new(MemDisk::new(1024), Duration::from_millis(5));
        d.write_at(0, b"abc").unwrap();
        let mut buf = [0u8; 3];
        d.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"abc");
        assert_eq!(d.capacity(), 1024);

        let start = Instant::now();
        d.flush().unwrap();
        assert!(start.elapsed() >= Duration::from_millis(5));
        assert_eq!(d.into_inner().capacity(), 1024);
    }

    #[test]
    fn read_delay_charges_media_time_per_read() {
        let d = LatencyDisk::new(MemDisk::new(1024), Duration::ZERO)
            .with_read_delay(Duration::from_millis(5));
        d.write_at(0, b"abc").unwrap();
        let mut buf = [0u8; 3];
        let start = Instant::now();
        d.read_at(0, &mut buf).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(5));
        assert_eq!(&buf, b"abc");
        // The barrier itself stays free.
        let start = Instant::now();
        d.flush().unwrap();
        assert!(start.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn write_delay_charges_transfer_time_per_write() {
        let d = LatencyDisk::new(MemDisk::new(1024), Duration::ZERO)
            .with_write_delay(Duration::from_millis(5));
        let start = Instant::now();
        d.write_at(0, b"abc").unwrap();
        assert!(start.elapsed() >= Duration::from_millis(5));
        let mut buf = [0u8; 3];
        // Reads and the barrier stay free.
        let start = Instant::now();
        d.read_at(0, &mut buf).unwrap();
        d.flush().unwrap();
        assert!(start.elapsed() < Duration::from_millis(5));
        assert_eq!(&buf, b"abc");
    }

    #[test]
    fn write_bandwidth_charges_proportionally_to_length() {
        // 1 MiB/s: 10 KiB ≈ 10 ms, 1 byte ≈ 1 µs.
        let d =
            LatencyDisk::new(MemDisk::new(1 << 20), Duration::ZERO).with_write_bandwidth(1 << 20);
        let start = Instant::now();
        d.write_at(0, &[3u8; 10 << 10]).unwrap();
        let big = start.elapsed();
        assert!(big >= Duration::from_millis(9), "10 KiB at 1 MiB/s");
        let start = Instant::now();
        d.write_at(0, b"x").unwrap();
        assert!(start.elapsed() < big / 4, "tiny write must be cheap");
    }

    #[test]
    fn zero_delay_is_a_plain_passthrough() {
        let d = LatencyDisk::new(MemDisk::new(64), Duration::ZERO);
        d.write_at(0, b"x").unwrap();
        d.flush().unwrap();
        assert!(d.stats_snapshot().is_none());
    }
}
