//! Minimal lock primitives on top of `std::sync`.
//!
//! The workspace builds with no external crates, so these wrappers stand
//! in for the usual third-party lock types: acquiring never returns a
//! guard `Result` (a poisoned lock means a thread panicked while holding
//! it — we propagate the panic rather than limp on with possibly
//! inconsistent state).

use std::sync::{
    Condvar as StdCondvar, Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard,
    RwLockWriteGuard,
};

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Acquires the lock, blocking until it is available.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder panicked (lock poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("mutex poisoned: a holder panicked")
    }

    /// Consumes the mutex and returns the inner value.
    ///
    /// # Panics
    ///
    /// Panics if the lock was poisoned.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .expect("mutex poisoned: a holder panicked")
    }

    /// Returns a mutable reference to the inner value (no locking
    /// needed: `&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().expect("mutex poisoned: a holder panicked")
    }
}

/// A readers-writer lock whose acquire methods cannot fail.
///
/// Any number of readers may hold the lock at once; a writer holds it
/// exclusively. Used by the logical disk's mapping layer so reads
/// proceed concurrently while mutations serialize.
#[derive(Debug, Default)]
pub struct RwLock<T>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Acquires shared read access, blocking until available.
    ///
    /// # Panics
    ///
    /// Panics if a previous writer panicked (lock poisoning).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().expect("rwlock poisoned: a writer panicked")
    }

    /// Acquires exclusive write access, blocking until available.
    ///
    /// # Panics
    ///
    /// Panics if a previous writer panicked (lock poisoning).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().expect("rwlock poisoned: a writer panicked")
    }

    /// Consumes the lock and returns the inner value.
    ///
    /// # Panics
    ///
    /// Panics if the lock was poisoned.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .expect("rwlock poisoned: a writer panicked")
    }

    /// Returns a mutable reference to the inner value (no locking
    /// needed: `&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .expect("rwlock poisoned: a writer panicked")
    }
}

/// A condition variable that pairs with [`Mutex`].
///
/// Waiting consumes and returns the [`Mutex`] guard, exactly like
/// `std::sync::Condvar`, but never surfaces poisoning.
#[derive(Debug, Default)]
pub struct Condvar(StdCondvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(StdCondvar::new())
    }

    /// Blocks until notified, releasing the guard while waiting.
    ///
    /// Spurious wakeups are possible; callers re-check their predicate
    /// in a loop.
    ///
    /// # Panics
    ///
    /// Panics if the associated mutex was poisoned.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0
            .wait(guard)
            .expect("mutex poisoned: a holder panicked")
    }

    /// Blocks until notified or `dur` elapses, releasing the guard while
    /// waiting. Returns the reacquired guard and whether the wait timed
    /// out (`true` means `dur` elapsed without a notification).
    ///
    /// Spurious wakeups are possible; callers re-check their predicate
    /// in a loop.
    ///
    /// # Panics
    ///
    /// Panics if the associated mutex was poisoned.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: std::time::Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let (guard, res) = self
            .0
            .wait_timeout(guard, dur)
            .expect("mutex poisoned: a holder panicked");
        (guard, res.timed_out())
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every waiting thread.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(5);
        *m.lock() += 2;
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = std::sync::Arc::new(RwLock::new(0u64));
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 0);
        }
        std::thread::scope(|s| {
            for _ in 0..4 {
                let l = l.clone();
                s.spawn(move || {
                    for _ in 0..500 {
                        *l.write() += 1;
                        let _ = *l.read();
                    }
                });
            }
        });
        assert_eq!(*l.read(), 2000);
        let mut l = std::sync::Arc::try_unwrap(l).unwrap();
        *l.get_mut() += 1;
        assert_eq!(l.into_inner(), 2001);
    }

    #[test]
    fn condvar_wait_timeout_times_out_and_wakes() {
        let pair = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
        // Nobody notifies: the wait must time out.
        {
            let (m, cv) = &*pair;
            let g = m.lock();
            let (g, timed_out) = cv.wait_timeout(g, std::time::Duration::from_millis(5));
            assert!(timed_out);
            assert!(!*g);
        }
        // A notification before the deadline wakes the waiter.
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                let (g, _) = cv.wait_timeout(ready, std::time::Duration::from_secs(30));
                ready = g;
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                ready = cv.wait(ready);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
