//! A minimal mutex on top of [`std::sync::Mutex`].
//!
//! The workspace builds with no external crates, so this wrapper stands
//! in for the usual third-party lock types: `lock()` never returns a
//! guard `Result` (a poisoned lock means a thread panicked while holding
//! it — we propagate the panic rather than limp on with possibly
//! inconsistent state).

use std::sync::{Mutex as StdMutex, MutexGuard};

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Acquires the lock, blocking until it is available.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder panicked (lock poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("mutex poisoned: a holder panicked")
    }

    /// Consumes the mutex and returns the inner value.
    ///
    /// # Panics
    ///
    /// Panics if the lock was poisoned.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .expect("mutex poisoned: a holder panicked")
    }

    /// Returns a mutable reference to the inner value (no locking
    /// needed: `&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().expect("mutex poisoned: a holder panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(5);
        *m.lock() += 2;
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
