use crate::Result;

/// A raw, byte-addressed block device.
///
/// This is the interface the logical disk system is written against. It
/// deliberately mirrors a Unix raw-disk file descriptor (the paper's
/// prototype "accesses the disk through the raw disk interface provided by
/// SunOS"): positioned reads and writes plus a write barrier.
///
/// Implementations use interior mutability so that a device can be shared
/// (e.g. between the logical disk and a benchmark harness observing it);
/// all methods therefore take `&self`.
///
/// # Durability contract
///
/// Writes are durable once `write_at` returns, *except* under fault
/// injection: a [`SimDisk`](crate::SimDisk) with an armed crash point may
/// apply only a prefix of the crossing write (a "torn write") before
/// failing with [`DiskError::Crashed`](crate::DiskError::Crashed).
pub trait BlockDevice: Send + Sync {
    /// Total capacity of the device in bytes.
    fn capacity(&self) -> u64;

    /// Reads `buf.len()` bytes starting at byte `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::OutOfBounds`](crate::DiskError::OutOfBounds) if
    /// the request extends past the device, and fault-injection errors on a
    /// simulated device.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()>;

    /// Writes all of `buf` starting at byte `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::OutOfBounds`](crate::DiskError::OutOfBounds) if
    /// the request extends past the device, and fault-injection errors on a
    /// simulated device. On [`DiskError::Crashed`](crate::DiskError::Crashed)
    /// an unspecified sector-aligned prefix of `buf` may have been written.
    fn write_at(&self, offset: u64, buf: &[u8]) -> Result<()>;

    /// Write barrier: returns once all previously written data is durable.
    fn flush(&self) -> Result<()>;

    /// Point-in-time I/O statistics, if this device collects any.
    ///
    /// The default returns `None`; [`SimDisk`](crate::SimDisk) overrides
    /// it. Generic code above the device (e.g. the logical disk's
    /// `device_stats`) uses this to surface device counters without
    /// naming the concrete device type.
    fn stats_snapshot(&self) -> Option<crate::DiskStatsSnapshot> {
        None
    }

    /// Validates that a request lies within the device.
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::OutOfBounds`](crate::DiskError::OutOfBounds)
    /// when it does not.
    fn check_bounds(&self, offset: u64, len: usize) -> Result<()> {
        let capacity = self.capacity();
        let len = len as u64;
        if offset.checked_add(len).is_none_or(|end| end > capacity) {
            return Err(crate::DiskError::OutOfBounds {
                offset,
                len,
                capacity,
            });
        }
        Ok(())
    }
}

impl<D: BlockDevice + ?Sized> BlockDevice for &D {
    fn capacity(&self) -> u64 {
        (**self).capacity()
    }
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        (**self).read_at(offset, buf)
    }
    fn write_at(&self, offset: u64, buf: &[u8]) -> Result<()> {
        (**self).write_at(offset, buf)
    }
    fn flush(&self) -> Result<()> {
        (**self).flush()
    }
    fn stats_snapshot(&self) -> Option<crate::DiskStatsSnapshot> {
        (**self).stats_snapshot()
    }
}

impl<D: BlockDevice + ?Sized> BlockDevice for std::sync::Arc<D> {
    fn capacity(&self) -> u64 {
        (**self).capacity()
    }
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        (**self).read_at(offset, buf)
    }
    fn write_at(&self, offset: u64, buf: &[u8]) -> Result<()> {
        (**self).write_at(offset, buf)
    }
    fn flush(&self) -> Result<()> {
        (**self).flush()
    }
    fn stats_snapshot(&self) -> Option<crate::DiskStatsSnapshot> {
        (**self).stats_snapshot()
    }
}

impl<D: BlockDevice + ?Sized> BlockDevice for Box<D> {
    fn capacity(&self) -> u64 {
        (**self).capacity()
    }
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        (**self).read_at(offset, buf)
    }
    fn write_at(&self, offset: u64, buf: &[u8]) -> Result<()> {
        (**self).write_at(offset, buf)
    }
    fn flush(&self) -> Result<()> {
        (**self).flush()
    }
    fn stats_snapshot(&self) -> Option<crate::DiskStatsSnapshot> {
        (**self).stats_snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDisk;
    use std::sync::Arc;

    #[test]
    fn bounds_check_rejects_overflow() {
        let d = MemDisk::new(100);
        assert!(d.check_bounds(0, 100).is_ok());
        assert!(d.check_bounds(1, 100).is_err());
        assert!(d.check_bounds(u64::MAX, 1).is_err());
        assert!(d.check_bounds(100, 0).is_ok());
    }

    #[test]
    fn blanket_impls_delegate() {
        let d = Arc::new(MemDisk::new(64));
        let by_ref: &MemDisk = &d;
        by_ref.write_at(0, b"abc").unwrap();
        let boxed: Box<dyn BlockDevice> = Box::new(Arc::clone(&d));
        let mut buf = [0u8; 3];
        boxed.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"abc");
        assert_eq!(boxed.capacity(), 64);
        boxed.flush().unwrap();
    }
}
