use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically advancing virtual clock.
///
/// Experiments in this reproduction are reported on *virtual time*:
/// modeled disk service time (charged by [`SimDisk`](crate::SimDisk)) plus
/// scaled CPU time (charged by the benchmark harness). The clock never
/// sleeps — advancing it is free — which lets a multi-minute 1996
/// experiment run in milliseconds while preserving its time accounting.
///
/// The clock is thread-safe and intended to be shared via
/// [`Arc`](std::sync::Arc).
///
/// # Example
///
/// ```
/// use ld_disk::VirtualClock;
/// use std::time::Duration;
///
/// let clock = VirtualClock::new();
/// clock.advance(Duration::from_millis(12));
/// clock.advance(Duration::from_micros(500));
/// assert_eq!(clock.now(), Duration::from_micros(12_500));
/// ```
#[derive(Debug, Default)]
pub struct VirtualClock {
    nanos: AtomicU64,
}

impl VirtualClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Current virtual time since creation (or the last [`reset`]).
    ///
    /// [`reset`]: VirtualClock::reset
    pub fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::Relaxed))
    }

    /// Advances the clock by `d`.
    pub fn advance(&self, d: Duration) {
        self.nanos
            .fetch_add(d.as_nanos().min(u64::MAX as u128) as u64, Ordering::Relaxed);
    }

    /// Resets the clock to zero.
    pub fn reset(&self) {
        self.nanos.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn starts_at_zero_and_accumulates() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), Duration::ZERO);
        c.advance(Duration::from_nanos(3));
        c.advance(Duration::from_nanos(4));
        assert_eq!(c.now(), Duration::from_nanos(7));
        c.reset();
        assert_eq!(c.now(), Duration::ZERO);
    }

    #[test]
    fn concurrent_advances_sum() {
        let c = Arc::new(VirtualClock::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.advance(Duration::from_nanos(1));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.now(), Duration::from_nanos(4000));
    }
}
