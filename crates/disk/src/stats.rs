use crate::hist::{HistogramSnapshot, LatencyHistogram};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Thread-safe I/O counters for a simulated device.
///
/// Counters are updated by [`SimDisk`](crate::SimDisk) on every request;
/// [`DiskStats::snapshot`] produces a plain-value copy for reporting.
/// Alongside the plain counters, per-operation latency histograms record
/// the *modeled* service time of each request (nanoseconds on the
/// virtual clock), so percentile queries reflect the simulated device,
/// not host scheduling noise.
#[derive(Debug, Default)]
pub struct DiskStats {
    reads: AtomicU64,
    writes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    flushes: AtomicU64,
    sequential_writes: AtomicU64,
    sequential_reads: AtomicU64,
    busy_nanos: AtomicU64,
    read_hist: LatencyHistogram,
    write_hist: LatencyHistogram,
}

impl DiskStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        DiskStats::default()
    }

    pub(crate) fn record_read(&self, bytes: u64, sequential: bool, service: Duration) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        if sequential {
            self.sequential_reads.fetch_add(1, Ordering::Relaxed);
        }
        let nanos = service.as_nanos() as u64;
        self.busy_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.read_hist.record(nanos);
    }

    pub(crate) fn record_write(&self, bytes: u64, sequential: bool, service: Duration) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        if sequential {
            self.sequential_writes.fetch_add(1, Ordering::Relaxed);
        }
        let nanos = service.as_nanos() as u64;
        self.busy_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.write_hist.record(nanos);
    }

    pub(crate) fn record_flush(&self) {
        self.flushes.fetch_add(1, Ordering::Relaxed);
    }

    /// The modeled read-service-time histogram.
    pub fn read_hist(&self) -> &LatencyHistogram {
        &self.read_hist
    }

    /// The modeled write-service-time histogram.
    pub fn write_hist(&self) -> &LatencyHistogram {
        &self.write_hist
    }

    /// Captures the current counter values.
    pub fn snapshot(&self) -> DiskStatsSnapshot {
        DiskStatsSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            sequential_writes: self.sequential_writes.load(Ordering::Relaxed),
            sequential_reads: self.sequential_reads.load(Ordering::Relaxed),
            busy: Duration::from_nanos(self.busy_nanos.load(Ordering::Relaxed)),
            read_hist: self.read_hist.snapshot(),
            write_hist: self.write_hist.snapshot(),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.flushes.store(0, Ordering::Relaxed);
        self.sequential_writes.store(0, Ordering::Relaxed);
        self.sequential_reads.store(0, Ordering::Relaxed);
        self.busy_nanos.store(0, Ordering::Relaxed);
        self.read_hist.reset();
        self.write_hist.reset();
    }
}

/// A plain-value copy of [`DiskStats`] at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskStatsSnapshot {
    /// Number of read requests.
    pub reads: u64,
    /// Number of write requests (including torn ones).
    pub writes: u64,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes durably written.
    pub bytes_written: u64,
    /// Number of flush barriers.
    pub flushes: u64,
    /// Write requests that continued exactly where the previous request
    /// ended (no seek charged).
    pub sequential_writes: u64,
    /// Read requests that continued exactly where the previous request
    /// ended.
    pub sequential_reads: u64,
    /// Total modeled device busy time.
    pub busy: Duration,
    /// Modeled read service times (nanoseconds).
    pub read_hist: HistogramSnapshot,
    /// Modeled write service times (nanoseconds).
    pub write_hist: HistogramSnapshot,
}

impl DiskStatsSnapshot {
    /// Achieved write bandwidth over the busy period, in bytes/second.
    /// Returns 0.0 when the device was never busy.
    pub fn write_bandwidth(&self) -> f64 {
        if self.busy.is_zero() {
            0.0
        } else {
            self.bytes_written as f64 / self.busy.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots() {
        let s = DiskStats::new();
        s.record_write(4096, true, Duration::from_millis(2));
        s.record_read(512, false, Duration::from_millis(17));
        s.record_flush();
        let snap = s.snapshot();
        assert_eq!(snap.writes, 1);
        assert_eq!(snap.reads, 1);
        assert_eq!(snap.bytes_written, 4096);
        assert_eq!(snap.bytes_read, 512);
        assert_eq!(snap.sequential_writes, 1);
        assert_eq!(snap.sequential_reads, 0);
        assert_eq!(snap.flushes, 1);
        assert_eq!(snap.busy, Duration::from_millis(19));
        assert_eq!(snap.write_hist.count, 1);
        assert_eq!(snap.write_hist.max, 2_000_000);
        assert_eq!(snap.read_hist.count, 1);
        assert_eq!(snap.read_hist.max, 17_000_000);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = DiskStats::new();
        s.record_write(1, false, Duration::from_nanos(1));
        s.reset();
        assert_eq!(s.snapshot(), DiskStatsSnapshot::default());
    }

    #[test]
    fn bandwidth_computation() {
        let snap = DiskStatsSnapshot {
            bytes_written: 2_200_000,
            busy: Duration::from_secs(1),
            ..DiskStatsSnapshot::default()
        };
        assert!((snap.write_bandwidth() - 2_200_000.0).abs() < 1e-6);
        assert_eq!(DiskStatsSnapshot::default().write_bandwidth(), 0.0);
    }
}
