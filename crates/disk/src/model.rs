use std::time::Duration;

/// A service-time model for a rotating disk.
///
/// Charges each request a seek (distance-dependent), half a rotation of
/// latency, per-request controller overhead, and media transfer time —
/// unless the request starts exactly where the previous one ended, in
/// which case only controller overhead and transfer are charged. That
/// sequential fast path is what makes a log-structured disk system shine:
/// whole-segment writes stream at media bandwidth while random block reads
/// pay seek + rotation, exactly the trade the paper's LLD exploits.
///
/// The model is deterministic: rotational latency is the expected half
/// rotation rather than a random phase, so repeated experiments agree
/// bit-for-bit.
///
/// # Example
///
/// ```
/// use ld_disk::DiskModel;
///
/// let m = DiskModel::hp_c3010();
/// // A random 4 KB read pays seek + rotation; a sequential one does not.
/// let random = m.service_time(None, 1 << 30, 4096, 2 << 30);
/// let sequential = m.service_time(Some(1 << 30), 1 << 30, 4096, 2 << 30);
/// assert!(random > sequential * 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DiskModel {
    /// Spindle speed in revolutions per minute.
    pub rpm: u32,
    /// Minimum (track-to-track) seek time.
    pub min_seek: Duration,
    /// Maximum (full-stroke) seek time.
    pub max_seek: Duration,
    /// Sustained media transfer rate in bytes per second.
    pub transfer_rate: u64,
    /// Fixed per-request controller/command overhead.
    pub controller_overhead: Duration,
    /// Forward skips up to this many bytes are charged as a rotational
    /// pass-over (the head reads past the skipped sectors) instead of a
    /// seek + half-rotation. This is what makes "read the log back in
    /// write order, skipping interleaved meta-data blocks" fast, as it
    /// is on a real disk.
    pub near_seek_bytes: u64,
}

impl DiskModel {
    /// The paper's disk: an HP C3010 (2 GB SCSI-II, 5400 rpm, 11.5 ms
    /// average seek time), with a sustained transfer rate typical of that
    /// drive generation (~2.2 MB/s).
    pub fn hp_c3010() -> Self {
        DiskModel {
            rpm: 5400,
            min_seek: Duration::from_micros(2_500),
            max_seek: Duration::from_micros(22_000),
            transfer_rate: 2_200_000,
            controller_overhead: Duration::from_micros(500),
            near_seek_bytes: 2 << 20,
        }
    }

    /// A much faster modern-ish profile, useful for sensitivity analyses.
    pub fn fast_2000s() -> Self {
        DiskModel {
            rpm: 10_000,
            min_seek: Duration::from_micros(500),
            max_seek: Duration::from_micros(8_000),
            transfer_rate: 60_000_000,
            controller_overhead: Duration::from_micros(100),
            near_seek_bytes: 8 << 20,
        }
    }

    /// Time for one full platter rotation.
    pub fn rotation_time(&self) -> Duration {
        Duration::from_nanos(60_000_000_000 / u64::from(self.rpm))
    }

    /// Expected rotational latency (half a rotation).
    pub fn avg_rotational_latency(&self) -> Duration {
        self.rotation_time() / 2
    }

    /// Average seek time over uniformly random request pairs.
    ///
    /// With the square-root seek curve used by [`service_time`], the mean
    /// over uniform random distances is `min + (max - min) * E[sqrt(U)]`
    /// where `E[sqrt(U)] = 2/3` — for the HP C3010 profile this lands at
    /// ~15.5 ms full-range; the drive's quoted 11.5 ms average corresponds
    /// to the typical shorter-than-full-range workload mix.
    ///
    /// [`service_time`]: DiskModel::service_time
    pub fn avg_seek(&self) -> Duration {
        self.min_seek + (self.max_seek - self.min_seek) * 2 / 3
    }

    /// Seek time for a head movement spanning `distance` out of
    /// `capacity` bytes, using the standard square-root seek curve.
    pub fn seek_time(&self, distance: u64, capacity: u64) -> Duration {
        if distance == 0 || capacity == 0 {
            return Duration::ZERO;
        }
        let frac = (distance as f64 / capacity as f64).min(1.0);
        let span = self.max_seek.saturating_sub(self.min_seek);
        self.min_seek + Duration::from_nanos((span.as_nanos() as f64 * frac.sqrt()) as u64)
    }

    /// Media transfer time for `len` bytes.
    pub fn transfer_time(&self, len: u64) -> Duration {
        if self.transfer_rate == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos((len as f64 / self.transfer_rate as f64 * 1e9) as u64)
    }

    /// Full service time for a request at `offset` of `len` bytes.
    ///
    /// `prev_end` is where the previous request finished (head position);
    /// `None` models a cold head at an unknown position and charges an
    /// average seek. A request starting exactly at `prev_end` is
    /// sequential and skips both seek and rotational latency.
    pub fn service_time(
        &self,
        prev_end: Option<u64>,
        offset: u64,
        len: u64,
        capacity: u64,
    ) -> Duration {
        let positioning = match prev_end {
            Some(prev) if prev == offset => Duration::ZERO,
            Some(prev) => {
                let reposition =
                    self.seek_time(prev.abs_diff(offset), capacity) + self.avg_rotational_latency();
                if offset > prev && offset - prev <= self.near_seek_bytes {
                    // Short forward skip: the platter can rotate past the
                    // skipped bytes under the head — whichever is cheaper.
                    reposition.min(self.transfer_time(offset - prev))
                } else {
                    reposition
                }
            }
            None => self.avg_seek() + self.avg_rotational_latency(),
        };
        self.controller_overhead + positioning + self.transfer_time(len)
    }
}

impl Default for DiskModel {
    fn default() -> Self {
        DiskModel::hp_c3010()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_math() {
        let m = DiskModel::hp_c3010();
        // 5400 rpm => 11.111 ms per rotation, 5.555 ms expected latency.
        assert_eq!(m.rotation_time(), Duration::from_nanos(11_111_111));
        assert_eq!(m.avg_rotational_latency(), Duration::from_nanos(5_555_555));
    }

    #[test]
    fn seek_curve_monotone_in_distance() {
        let m = DiskModel::hp_c3010();
        let cap = 2_000_000_000;
        let near = m.seek_time(1_000_000, cap);
        let mid = m.seek_time(500_000_000, cap);
        let far = m.seek_time(cap, cap);
        assert!(near < mid && mid < far);
        assert_eq!(m.seek_time(0, cap), Duration::ZERO);
        assert_eq!(far, m.max_seek);
        assert!(near >= m.min_seek);
    }

    #[test]
    fn sequential_requests_skip_positioning() {
        let m = DiskModel::hp_c3010();
        let seq = m.service_time(Some(4096), 4096, 4096, 1 << 30);
        assert_eq!(seq, m.controller_overhead + m.transfer_time(4096));
    }

    #[test]
    fn cold_head_charges_average_seek() {
        let m = DiskModel::hp_c3010();
        let cold = m.service_time(None, 0, 512, 1 << 30);
        assert_eq!(
            cold,
            m.controller_overhead
                + m.avg_seek()
                + m.avg_rotational_latency()
                + m.transfer_time(512)
        );
    }

    #[test]
    fn large_sequential_write_approaches_bandwidth() {
        let m = DiskModel::hp_c3010();
        // A 0.5 MB segment write takes ~238 ms of transfer at 2.2 MB/s.
        let t = m.service_time(Some(0), 0, 512 * 1024, 1 << 30);
        let secs = t.as_secs_f64();
        let rate = 512.0 * 1024.0 / secs;
        assert!(rate > 0.95 * m.transfer_rate as f64, "rate was {rate}");
    }

    #[test]
    fn transfer_time_zero_rate_is_zero() {
        let m = DiskModel {
            transfer_rate: 0,
            ..DiskModel::hp_c3010()
        };
        assert_eq!(m.transfer_time(1 << 20), Duration::ZERO);
    }
}
