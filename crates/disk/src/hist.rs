//! Log-bucketed latency histograms.
//!
//! An HDR-style histogram with 64 fixed power-of-two buckets: bucket
//! `i` counts samples whose highest set bit is `i` (so bucket 0 holds
//! 0 and 1 ns, bucket 10 holds 1024–2047 ns, and so on up to bucket 63).
//! Recording is a handful of relaxed atomic adds, cheap enough to leave
//! on in hot paths; snapshots are plain values that merge and answer
//! percentile queries.
//!
//! Percentile math: `percentile(p)` returns the *upper bound* of the
//! bucket containing the sample at rank `ceil(p/100 · count)`, clamped
//! to the exact observed maximum. With power-of-two buckets this bounds
//! the true value to within 2×, which is what a log histogram promises.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets (one per possible highest-set-bit of a `u64`).
pub const HIST_BUCKETS: usize = 64;

/// Returns the bucket index for a sample value.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        63 - value.leading_zeros() as usize
    }
}

/// The inclusive upper bound of values falling in bucket `i`.
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// A thread-safe, lock-free latency histogram with 64 log₂ buckets.
///
/// # Example
///
/// ```
/// use ld_disk::LatencyHistogram;
///
/// let h = LatencyHistogram::new();
/// for v in [100, 200, 400, 800] {
///     h.record(v);
/// }
/// let snap = h.snapshot();
/// assert_eq!(snap.count, 4);
/// assert_eq!(snap.max, 800);
/// assert!(snap.percentile(50.0) >= 200);
/// ```
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample (typically nanoseconds of latency).
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Captures the current contents as a plain value.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Resets every bucket and summary counter to zero.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A plain-value copy of a [`LatencyHistogram`], mergeable and
/// queryable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts; bucket `i` covers values whose highest
    /// set bit is `i`.
    pub buckets: [u64; HIST_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all sample values.
    pub sum: u64,
    /// Exact maximum sample observed (0 if empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample value (0 if empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Folds another snapshot into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The value at percentile `p` (0 < p ≤ 100): the upper bound of the
    /// bucket holding the sample at rank `ceil(p/100 · count)`, clamped
    /// to the observed maximum. Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`HistogramSnapshot::percentile`]).
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.percentile(90.0)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
        assert_eq!(bucket_upper_bound(0), 1);
        assert_eq!(bucket_upper_bound(9), 1023);
        assert_eq!(bucket_upper_bound(63), u64::MAX);
    }

    #[test]
    fn record_and_percentiles() {
        let h = LatencyHistogram::new();
        // 90 fast samples, 9 medium, 1 slow.
        for _ in 0..90 {
            h.record(100); // bucket 6 (64..=127)
        }
        for _ in 0..9 {
            h.record(10_000); // bucket 13
        }
        h.record(1_000_000); // bucket 19
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.max, 1_000_000);
        assert_eq!(s.p50(), 127);
        assert_eq!(s.p90(), 127);
        assert_eq!(s.percentile(91.0), 16383);
        assert_eq!(s.p99(), 16383);
        assert_eq!(s.percentile(100.0), 1_000_000);
    }

    #[test]
    fn percentile_clamps_to_max() {
        let h = LatencyHistogram::new();
        h.record(5); // bucket 2, upper bound 7
        let s = h.snapshot();
        assert_eq!(s.p50(), 5);
        assert_eq!(s.p99(), 5);
    }

    #[test]
    fn merge_combines() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record(10);
        a.record(20);
        b.record(40_000);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 3);
        assert_eq!(m.sum, 40_030);
        assert_eq!(m.max, 40_000);
        assert_eq!(m.percentile(100.0), 40_000);
    }

    #[test]
    fn empty_histogram() {
        let s = LatencyHistogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.p50(), 0);
        assert_eq!(s.mean(), 0);
    }

    #[test]
    fn concurrent_recording() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, 4000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 4000);
        assert_eq!(s.max, 3999);
    }

    #[test]
    fn reset_zeroes() {
        let h = LatencyHistogram::new();
        h.record(123);
        h.reset();
        assert!(h.snapshot().is_empty());
    }
}
