use crate::sync::RwLock;
use crate::{BlockDevice, Result};

/// An in-memory block device.
///
/// The primary device for experiments and tests: fast, deterministic, and
/// snapshottable. [`MemDisk::snapshot`] captures the raw image so a
/// crash-recovery test can boot a second logical-disk instance from the
/// exact bytes that were durable at the simulated crash point.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), ld_disk::DiskError> {
/// use ld_disk::{BlockDevice, MemDisk};
///
/// let disk = MemDisk::new(4096);
/// disk.write_at(1024, &[7u8; 16])?;
/// let image = disk.snapshot();
/// let clone = MemDisk::from_image(image);
/// let mut buf = [0u8; 16];
/// clone.read_at(1024, &mut buf)?;
/// assert_eq!(buf, [7u8; 16]);
/// # Ok(())
/// # }
/// ```
/// Readers share the device (`RwLock`): parallel recovery scans many
/// segments concurrently, and a mutex here would serialize them.
#[derive(Debug)]
pub struct MemDisk {
    data: RwLock<Vec<u8>>,
}

impl MemDisk {
    /// Creates a zero-filled device of `capacity` bytes.
    ///
    /// Every page of the backing memory is touched up front so that
    /// later I/O never pays first-touch page faults — important for the
    /// benchmark harness, which charges measured CPU time to a virtual
    /// clock.
    pub fn new(capacity: u64) -> Self {
        let mut data = vec![0u8; capacity as usize];
        let mut i = 0;
        while i < data.len() {
            // Volatile-free pre-fault: writing is enough to commit the
            // page; the values are already correct (zero).
            data[i] = 0;
            i += 4096;
        }
        MemDisk {
            data: RwLock::new(data),
        }
    }

    /// Creates a device initialized from a raw image.
    pub fn from_image(image: Vec<u8>) -> Self {
        MemDisk {
            data: RwLock::new(image),
        }
    }

    /// Returns a copy of the full device image.
    pub fn snapshot(&self) -> Vec<u8> {
        self.data.read().clone()
    }

    /// Consumes the device and returns its image without copying.
    pub fn into_image(self) -> Vec<u8> {
        self.data.into_inner()
    }
}

impl BlockDevice for MemDisk {
    fn capacity(&self) -> u64 {
        self.data.read().len() as u64
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.check_bounds(offset, buf.len())?;
        let data = self.data.read();
        let start = offset as usize;
        buf.copy_from_slice(&data[start..start + buf.len()]);
        Ok(())
    }

    fn write_at(&self, offset: u64, buf: &[u8]) -> Result<()> {
        self.check_bounds(offset, buf.len())?;
        let mut data = self.data.write();
        let start = offset as usize;
        data[start..start + buf.len()].copy_from_slice(buf);
        Ok(())
    }

    fn flush(&self) -> Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiskError;

    #[test]
    fn starts_zeroed() {
        let d = MemDisk::new(32);
        let mut buf = [0xffu8; 32];
        d.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 32]);
    }

    #[test]
    fn round_trips_writes() {
        let d = MemDisk::new(128);
        d.write_at(5, b"hello").unwrap();
        d.write_at(7, b"LP").unwrap();
        let mut buf = [0u8; 5];
        d.read_at(5, &mut buf).unwrap();
        assert_eq!(&buf, b"heLPo");
    }

    #[test]
    fn rejects_out_of_bounds() {
        let d = MemDisk::new(16);
        let err = d.write_at(10, &[0u8; 7]).unwrap_err();
        assert!(matches!(err, DiskError::OutOfBounds { .. }));
        let mut buf = [0u8; 1];
        assert!(d.read_at(16, &mut buf).is_err());
    }

    #[test]
    fn zero_length_requests_at_end_ok() {
        let d = MemDisk::new(16);
        d.write_at(16, &[]).unwrap();
        d.read_at(16, &mut []).unwrap();
    }

    #[test]
    fn snapshot_and_restore() {
        let d = MemDisk::new(64);
        d.write_at(0, b"state").unwrap();
        let img = d.snapshot();
        d.write_at(0, b"later").unwrap();
        let restored = MemDisk::from_image(img);
        let mut buf = [0u8; 5];
        restored.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"state");
        assert_eq!(restored.into_image().len(), 64);
    }
}
