use std::fmt;

/// Errors reported by [`BlockDevice`](crate::BlockDevice) implementations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DiskError {
    /// A request extended past the end of the device.
    OutOfBounds {
        /// Starting byte offset of the request.
        offset: u64,
        /// Length of the request in bytes.
        len: u64,
        /// Device capacity in bytes.
        capacity: u64,
    },
    /// The simulated machine has crashed (a fault-injection crash point was
    /// reached); no further I/O is possible on this device instance.
    Crashed,
    /// A simulated unrecoverable media failure at the given offset.
    MediaFailure {
        /// Byte offset of the failed sector.
        offset: u64,
    },
    /// An error from the underlying operating system (file-backed devices).
    Io(String),
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskError::OutOfBounds {
                offset,
                len,
                capacity,
            } => write!(
                f,
                "request [{offset}, {offset}+{len}) out of bounds for capacity {capacity}"
            ),
            DiskError::Crashed => write!(f, "simulated crash: device is no longer operable"),
            DiskError::MediaFailure { offset } => {
                write!(f, "media failure at byte offset {offset}")
            }
            DiskError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for DiskError {}

impl From<std::io::Error> for DiskError {
    fn from(err: std::io::Error) -> Self {
        DiskError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let e = DiskError::OutOfBounds {
            offset: 4,
            len: 8,
            capacity: 10,
        };
        let s = e.to_string();
        assert!(s.starts_with("request"));
        assert!(!s.ends_with('.'));
        assert!(DiskError::Crashed.to_string().contains("crash"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("boom");
        let d: DiskError = io.into();
        assert!(matches!(d, DiskError::Io(_)));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DiskError>();
    }
}
