//! Cross-thread trace plumbing shared by the device and logical-disk
//! layers: compact per-thread tags, a thread-local *trace context*, and
//! the observer hook the pipelined device reports its stages through.
//!
//! The observability layer proper (event ring, snapshots, exporters)
//! lives in `ld_core::obs`; this module holds only the pieces that must
//! sit *below* it in the crate graph, because the pipelined device — a
//! `ld_disk` type — participates in traces that the core layer owns.
//!
//! # Thread tags
//!
//! [`thread_tag`] assigns every OS thread a small dense integer (1, 2,
//! 3, … in first-use order) so trace events can say *which* thread
//! emitted them without dragging `ThreadId`'s opaque representation
//! around. Threads with a meaningful role register a name
//! ([`register_thread_name`]) that exporters resolve via
//! [`thread_names`] — the pipeline I/O thread, the cleaner daemon, and
//! the metrics sampler all do.
//!
//! # Trace context
//!
//! A *trace id* names one logical operation (an ARU commit, one
//! group-commit flush batch, one cleaner pass) whose stages may execute
//! on several threads. The id travels two ways: explicitly, as a field
//! on stage events, and implicitly, via the thread-local set by
//! [`trace_scope`] — which the pipelined device reads at `write_at`
//! time to stamp each queued write, so the I/O thread can attribute the
//! eventual media write back to the commit that produced it. Id `0`
//! means "no trace".

use crate::sync::Mutex;
use crate::DiskError;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Next unassigned thread tag; tags start at 1 so 0 can mean "unknown".
static NEXT_THREAD_TAG: AtomicU64 = AtomicU64::new(1);

/// Tag → registered role name, for threads that have one.
static THREAD_NAMES: OnceLock<Mutex<BTreeMap<u64, String>>> = OnceLock::new();

thread_local! {
    static THREAD_TAG: Cell<u64> = const { Cell::new(0) };
    static TRACE_ID: Cell<u64> = const { Cell::new(0) };
}

/// Returns this thread's tag, assigning the next dense integer on first
/// use. Tags are process-wide unique and never reused.
pub fn thread_tag() -> u64 {
    THREAD_TAG.with(|t| {
        let mut tag = t.get();
        if tag == 0 {
            tag = NEXT_THREAD_TAG.fetch_add(1, Ordering::Relaxed);
            t.set(tag);
        }
        tag
    })
}

/// Associates `name` with the calling thread's tag, for trace
/// exporters. Later registrations for the same thread overwrite.
pub fn register_thread_name(name: &str) {
    let tag = thread_tag();
    let names = THREAD_NAMES.get_or_init(|| Mutex::new(BTreeMap::new()));
    names.lock().insert(tag, name.to_string());
}

/// A copy of the tag → name table for threads that registered one.
pub fn thread_names() -> BTreeMap<u64, String> {
    THREAD_NAMES
        .get_or_init(|| Mutex::new(BTreeMap::new()))
        .lock()
        .clone()
}

/// The calling thread's current trace id (0 when none is set).
pub fn current_trace() -> u64 {
    TRACE_ID.with(|t| t.get())
}

/// Sets the calling thread's trace id for the returned guard's
/// lifetime, restoring the previous id on drop (scopes nest).
pub fn trace_scope(trace: u64) -> TraceScope {
    let prev = TRACE_ID.with(|t| t.replace(trace));
    TraceScope { prev }
}

/// RAII guard from [`trace_scope`]; restores the prior trace id.
#[derive(Debug)]
pub struct TraceScope {
    prev: u64,
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        TRACE_ID.with(|t| t.set(self.prev));
    }
}

/// Stages of the pipelined device's write path, reported through
/// [`PipeObserver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipeStage {
    /// The I/O thread applying one (possibly coalesced) write to the
    /// inner device.
    MediaWrite,
    /// A barrier waiter issuing the inner device flush.
    BarrierAck,
}

/// Hook the pipelined device reports trace-relevant moments through.
///
/// Installed (optionally) by the layer above via
/// [`PipelinedDisk::set_observer`](crate::PipelinedDisk::set_observer);
/// callbacks run on whatever thread performs the stage — media writes
/// on the I/O thread, barrier acks on the waiting caller's thread — so
/// implementations must be cheap and must not call back into the
/// device.
pub trait PipeObserver: Send + Sync {
    /// A stage is starting under trace `trace` (0 = untraced).
    fn stage_begin(&self, trace: u64, stage: PipeStage);

    /// The stage started by the matching `stage_begin` finished after
    /// `nanos` wall-clock nanoseconds.
    fn stage_end(&self, trace: u64, stage: PipeStage, nanos: u64);

    /// A device error latched on the I/O thread (the queue is about to
    /// be discarded). This is the flight-recorder trigger: it fires on
    /// a background thread where no caller will observe the error
    /// until their next call.
    fn fault(&self, error: &DiskError);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_stable_and_distinct() {
        let mine = thread_tag();
        assert!(mine > 0);
        assert_eq!(thread_tag(), mine, "tag is stable per thread");
        let other = std::thread::spawn(thread_tag).join().unwrap();
        assert_ne!(other, mine);
    }

    #[test]
    fn names_resolve_by_tag() {
        let tag = std::thread::Builder::new()
            .name("ld-test-role".into())
            .spawn(|| {
                register_thread_name("ld-test-role");
                thread_tag()
            })
            .unwrap()
            .join()
            .unwrap();
        assert_eq!(
            thread_names().get(&tag).map(String::as_str),
            Some("ld-test-role")
        );
    }

    #[test]
    fn trace_scopes_nest_and_restore() {
        assert_eq!(current_trace(), 0);
        {
            let _a = trace_scope(7);
            assert_eq!(current_trace(), 7);
            {
                let _b = trace_scope(9);
                assert_eq!(current_trace(), 9);
            }
            assert_eq!(current_trace(), 7);
        }
        assert_eq!(current_trace(), 0);
    }
}
