//! CRC-32 (IEEE 802.3 polynomial) for on-disk integrity checks.

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// Computes the CRC-32 (IEEE) checksum of `data`.
///
/// Used by the logical disk for segment-summary and checkpoint integrity:
/// a torn segment write leaves a checksum mismatch, which recovery treats
/// as "this segment was never written".
///
/// # Example
///
/// ```
/// // Standard test vector.
/// assert_eq!(ld_disk::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(byte)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_single_bit_flip() {
        let a = crc32(b"segment summary");
        let mut data = b"segment summary".to_vec();
        data[3] ^= 0x01;
        assert_ne!(a, crc32(&data));
    }

    #[test]
    fn distinct_for_permutations() {
        assert_ne!(crc32(b"ab"), crc32(b"ba"));
    }
}
