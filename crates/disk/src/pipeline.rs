//! A pipelined device layer: an async segment writer with
//! sequence-numbered barriers.
//!
//! [`PipelinedDisk`] wraps any [`BlockDevice`] and moves its writes onto
//! a dedicated I/O thread behind a bounded submission queue. `write_at`
//! becomes an enqueue (cheap, returns as soon as the request is
//! queued); `flush` becomes "wait until every write my barrier covers
//! has been applied, then barrier the inner device". Because a sealed
//! segment's writes no longer occupy the sealing thread, the layer
//! above (the logical disk's group-commit leader) hands off a sealed
//! segment and lets the *next* batch fill — and its seal writes reach
//! the device — while the previous barrier is still in flight:
//! double-buffered segment staging, with the write work of batch *k+1*
//! overlapping the barrier wait of batch *k*.
//!
//! # Queue protocol
//!
//! Every write is assigned a monotonically increasing *sequence number*
//! at enqueue time; the I/O thread applies writes strictly in FIFO
//! order, so the applied watermark is contiguous. A barrier
//! ([`submit_barrier`](PipelinedDisk::submit_barrier)) captures the
//! submission sequence at its call as its *cover*;
//! [`wait_barrier`](PipelinedDisk::wait_barrier) blocks until the cover
//! has been applied and then issues the inner `flush` **on the waiting
//! caller's thread** — the I/O thread never blocks on a barrier, so it
//! keeps applying the next batch's writes during the device's barrier
//! latency. That overlap is the pipeline's whole win: on a device
//! whose write and barrier costs are `W` and `F`, back-to-back batches
//! cost `max(W, F)` each instead of `W + F`.
//!
//! A flush snapshots the applied watermark on entry and, on success,
//! retires every barrier whose cover it reached. Waiters whose cover an
//! in-flight flush's snapshot already reaches ride that flush instead
//! of issuing their own — they *coalesce* (and a barrier that covers no
//! writes beyond the durable watermark retires without touching the
//! device at all). Waiters an in-flight flush does *not* cover issue
//! their own inner flush concurrently: overlapping cache flushes queue
//! in the device, and serializing them here would put a full barrier
//! latency between back-to-back batches.
//!
//! Issuing the flush concurrently with later writes gives up one
//! property of the synchronous path: a *later* batch's write can reach
//! the device — and, under fault injection, exhaust the byte budget —
//! between a barrier's cover being applied and its inner flush
//! entering the device. The layer above bounds that window: the
//! group-commit leader hands leadership off only while the in-flight
//! barrier count is below [`barrier_slot_free`]'s bound, so at most one
//! trailing batch's writes can race a pending barrier. After a power
//! cut the pipelined disk therefore acknowledges at most one batch
//! fewer than the unpipelined one would have — never more.
//!
//! [`barrier_slot_free`]: PipelinedDisk::barrier_slot_free
//!
//! # Durability and failure semantics
//!
//! * **Ordering** — one FIFO queue drained by one thread: the inner
//!   device observes writes in exact submission order (so per-offset
//!   write order is trivially preserved, and the byte budget of a
//!   [`SimDisk`](crate::SimDisk) fault plan — which only writes consume
//!   — is spent in submission order, exactly as on the unpipelined
//!   path).
//! * **Queue drained before barrier ack** — a `flush` returns `Ok` only
//!   after every covered write reached the inner device *and* an inner
//!   barrier issued after that point returned `Ok`.
//! * **Sticky errors** — the first inner error (e.g. a simulated crash)
//!   is latched; every queued and future request fails with it, and the
//!   remaining queue is discarded *without touching the device*, so a
//!   crashed [`SimDisk`](crate::SimDisk) image is exactly the prefix
//!   the fault plan permitted.
//! * **Reads** — `read_at` first waits until every write submitted
//!   before it has been applied (read-your-writes, and program order is
//!   preserved for a single-threaded caller), then reads the inner
//!   device directly on the caller's thread. Reads never wait for
//!   barriers, so they proceed while a flush is in flight.
//! * **Shutdown** — dropping the disk (or calling
//!   [`into_inner`](PipelinedDisk::into_inner)) drains the queue and
//!   joins the I/O thread. Unflushed writes are applied, matching the
//!   unpipelined device where `write_at` data is in the image even
//!   without a barrier; after a sticky error the queue is discarded
//!   instead, preserving the crash image.
//!
//! See `docs/PIPELINE.md` in the repository root for the ordering
//! proof and the lock-hierarchy position of the queue mutex.

use crate::sync::{Condvar, Mutex};
use crate::trace::{current_trace, register_thread_name, PipeObserver, PipeStage};
use crate::{BlockDevice, DiskError, HistogramSnapshot, LatencyHistogram, Result};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Default bound on bytes held in the submission queue (~ a few of the
/// paper's 0.5 MB segments, so a burst of seals can double-buffer
/// without letting memory grow unboundedly).
const DEFAULT_MAX_QUEUED_BYTES: usize = 8 << 20;

/// Default bound on queued requests.
const DEFAULT_MAX_QUEUED_REQUESTS: usize = 1024;

/// Upper bound on the size of a coalesced write. The I/O thread merges
/// queued writes that are *contiguous on the device* (each starting
/// exactly where the previous one ends) into a single inner call —
/// streamed segment blocks and the trailing summary are contiguous by
/// construction, so a batch's payload reaches the device as one large
/// sequential write instead of a call per block. The cap bounds the
/// memcpy and keeps one merge from holding the applied watermark back
/// for too long.
const MAX_MERGED_BYTES: usize = 1 << 20;

/// Barrier slots exposed to the layer above via
/// [`barrier_slot_free`](PipelinedDisk::barrier_slot_free): one barrier
/// in its device flush plus one staged behind it. Two slots are exactly
/// double buffering — batch *k+1*'s writes overlap batch *k*'s barrier
/// — while keeping the crash window tight: when a barrier's inner flush
/// is issued, at most one later batch's writes can have consumed fault
/// budget ahead of it, so a power cut costs at most one acknowledged
/// batch relative to the synchronous path.
const MAX_INFLIGHT_BARRIERS: u64 = 2;

/// A positioned write on the submission queue, tagged with its sequence
/// number, enqueue time (for the submission-latency histogram), and the
/// submitting thread's trace id (so the I/O thread can attribute the
/// media write back to the commit that produced it).
#[derive(Debug)]
struct QueuedWrite {
    offset: u64,
    data: Vec<u8>,
    seq: u64,
    enqueued: Instant,
    trace: u64,
}

/// Holder for the optional [`PipeObserver`]; a newtype so [`Shared`]
/// can keep deriving `Debug` around the non-`Debug` trait object.
struct ObserverSlot(Mutex<Option<Arc<dyn PipeObserver>>>);

impl ObserverSlot {
    fn get(&self) -> Option<Arc<dyn PipeObserver>> {
        self.0.lock().clone()
    }
}

impl std::fmt::Debug for ObserverSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObserverSlot")
            .field("installed", &self.0.lock().is_some())
            .finish()
    }
}

/// Mutable queue state, guarded by [`Shared::state`].
#[derive(Debug)]
struct PipeState {
    queue: VecDeque<QueuedWrite>,
    /// Bytes of write payload currently queued (backpressure bound).
    queued_bytes: usize,
    /// Sequence number of the most recently *submitted* write.
    submitted: u64,
    /// Sequence number of the most recently *applied* write (writes are
    /// applied in FIFO order, so this is a contiguous high-water mark).
    applied: u64,
    /// Highest write sequence covered by a successful inner flush:
    /// every barrier with a cover at or below this is durable.
    durable: u64,
    /// Barrier waiters currently inside the inner `flush` call. Flushes
    /// run concurrently (the inner device is `&self`-safe, and on real
    /// hardware overlapping cache flushes queue in the device, not in
    /// this layer); a waiter only rides an in-flight flush instead of
    /// issuing its own when that flush's snapshot already covers it.
    flushes_inflight: u64,
    /// Highest applied-snapshot among the in-flight flushes (meaningful
    /// only while `flushes_inflight > 0`).
    flush_cover: u64,
    /// Barriers submitted but not yet retired or failed (gauge; the
    /// group-commit leader's handoff gate reads it).
    inflight_barriers: u64,
    /// First inner-device error, latched; fails all queued and future
    /// requests.
    error: Option<DiskError>,
    /// Shutdown requested: the I/O thread exits once the queue is empty.
    stop: bool,
    /// The I/O thread's handle, taken once by whoever joins it.
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Monotonic counters, sampled by [`PipelinedDisk::pipeline_stats`].
#[derive(Debug, Default)]
struct PipeCounters {
    submitted_writes: AtomicU64,
    submitted_bytes: AtomicU64,
    barriers_submitted: AtomicU64,
    inner_flushes: AtomicU64,
    barriers_coalesced: AtomicU64,
    writes_merged: AtomicU64,
    stalls: AtomicU64,
    inflight_barriers_max: AtomicU64,
}

#[derive(Debug)]
struct Shared<D> {
    inner: D,
    state: Mutex<PipeState>,
    /// Wakes the I/O thread: work was queued (or stop requested).
    work: Condvar,
    /// Wakes submitters and waiters: a write applied, a flush finished,
    /// queue space freed, or an error latched.
    done: Condvar,
    max_queued_bytes: usize,
    max_queued_requests: usize,
    counters: PipeCounters,
    queue_depth: LatencyHistogram,
    submit_ns: LatencyHistogram,
    /// Inner `write_at` duration per (possibly coalesced) applied write.
    media_write_ns: LatencyHistogram,
    /// Inner `flush` duration per barrier ack issued to the device.
    barrier_ack_ns: LatencyHistogram,
    observer: ObserverSlot,
}

/// A [`BlockDevice`] wrapper that pipelines writes through a dedicated
/// I/O thread and runs barriers on the waiting caller's thread (see the
/// [module docs](self)).
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), ld_disk::DiskError> {
/// use ld_disk::{BlockDevice, MemDisk, PipelinedDisk};
///
/// let disk = PipelinedDisk::new(MemDisk::new(1 << 20));
/// disk.write_at(0, b"segment zero")?; // enqueued, applied async
/// disk.flush()?; // returns once the write is applied and barriered
/// let mut buf = [0u8; 12];
/// disk.read_at(0, &mut buf)?;
/// assert_eq!(&buf, b"segment zero");
/// let _inner: MemDisk = disk.into_inner(); // drains and joins
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PipelinedDisk<D> {
    shared: Arc<Shared<D>>,
}

/// A point-in-time copy of a pipeline's counters and histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct PipelineStatsSnapshot {
    /// Writes accepted onto the queue.
    pub submitted_writes: u64,
    /// Payload bytes accepted onto the queue.
    pub submitted_bytes: u64,
    /// Barrier tickets issued (`flush` calls that reached the queue).
    pub barriers_submitted: u64,
    /// Barriers issued to the inner device (`inner.flush` calls).
    pub inner_flushes: u64,
    /// Barrier tickets retired by an inner flush they shared with
    /// another ticket (i.e. `barriers_submitted - inner_flushes` on an
    /// error-free run).
    pub barriers_coalesced: u64,
    /// Queued writes absorbed into a device-contiguous predecessor: the
    /// inner device saw `submitted_writes - writes_merged` calls.
    pub writes_merged: u64,
    /// Times a submitter blocked because the queue was at its byte or
    /// request bound.
    pub stalls: u64,
    /// Maximum number of simultaneously in-flight (submitted but not
    /// retired) barriers observed.
    pub inflight_barriers_max: u64,
    /// Queue depth sampled at each enqueue.
    pub queue_depth: HistogramSnapshot,
    /// Nanoseconds from enqueue to applied-on-inner-device, per write.
    pub submit_ns: HistogramSnapshot,
    /// Nanoseconds the inner `write_at` took, per (possibly coalesced)
    /// applied write — the media-write stage of the commit pipeline.
    pub media_write_ns: HistogramSnapshot,
    /// Nanoseconds the inner `flush` took, per barrier ack actually
    /// issued to the device (coalesced barriers record nothing).
    pub barrier_ack_ns: HistogramSnapshot,
}

impl<D: BlockDevice + 'static> PipelinedDisk<D> {
    /// Wraps `inner`, spawning the I/O thread, with default queue
    /// bounds (8 MiB / 1024 requests).
    pub fn new(inner: D) -> Self {
        Self::with_limits(inner, DEFAULT_MAX_QUEUED_BYTES, DEFAULT_MAX_QUEUED_REQUESTS)
    }

    /// Wraps `inner` with explicit submission-queue bounds. A single
    /// oversized request is always admitted when the queue is empty, so
    /// no bound can deadlock a writer.
    pub fn with_limits(inner: D, max_queued_bytes: usize, max_queued_requests: usize) -> Self {
        let shared = Arc::new(Shared {
            inner,
            state: Mutex::new(PipeState {
                queue: VecDeque::new(),
                queued_bytes: 0,
                submitted: 0,
                applied: 0,
                durable: 0,
                flushes_inflight: 0,
                flush_cover: 0,
                inflight_barriers: 0,
                error: None,
                stop: false,
                handle: None,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            max_queued_bytes: max_queued_bytes.max(1),
            max_queued_requests: max_queued_requests.max(1),
            counters: PipeCounters::default(),
            queue_depth: LatencyHistogram::new(),
            submit_ns: LatencyHistogram::new(),
            media_write_ns: LatencyHistogram::new(),
            barrier_ack_ns: LatencyHistogram::new(),
            observer: ObserverSlot(Mutex::new(None)),
        });
        let io = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("ld-pipeline".into())
            .spawn(move || io.io_loop())
            .expect("spawn pipeline I/O thread");
        shared.state.lock().handle = Some(handle);
        PipelinedDisk { shared }
    }
}

impl<D> PipelinedDisk<D> {
    /// Drains the queue (applying pending writes unless a sticky error
    /// is latched) and joins the I/O thread. Idempotent; also run by
    /// `Drop`.
    pub fn shutdown_and_join(&self) {
        let handle = {
            let mut st = self.shared.state.lock();
            st.stop = true;
            st.handle.take()
        };
        self.shared.work.notify_all();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }

    /// Drains and joins the I/O thread, then returns the inner device.
    pub fn into_inner(self) -> D {
        self.shutdown_and_join();
        let shared = Arc::clone(&self.shared);
        drop(self); // Drop's shutdown_and_join is an idempotent no-op now.
        match Arc::try_unwrap(shared) {
            Ok(sh) => sh.inner,
            Err(_) => unreachable!("I/O thread joined; no other references remain"),
        }
    }

    /// The wrapped device. Direct access bypasses the queue: only
    /// meaningful when the queue is quiescent (e.g. after a `flush`) or
    /// when the access is deliberately racy (arming fault injection).
    pub fn inner(&self) -> &D {
        &self.shared.inner
    }

    /// Snapshots the pipeline's counters and histograms.
    pub fn pipeline_stats(&self) -> PipelineStatsSnapshot {
        let c = &self.shared.counters;
        PipelineStatsSnapshot {
            submitted_writes: c.submitted_writes.load(Ordering::Relaxed),
            submitted_bytes: c.submitted_bytes.load(Ordering::Relaxed),
            barriers_submitted: c.barriers_submitted.load(Ordering::Relaxed),
            inner_flushes: c.inner_flushes.load(Ordering::Relaxed),
            barriers_coalesced: c.barriers_coalesced.load(Ordering::Relaxed),
            writes_merged: c.writes_merged.load(Ordering::Relaxed),
            stalls: c.stalls.load(Ordering::Relaxed),
            inflight_barriers_max: c.inflight_barriers_max.load(Ordering::Relaxed),
            queue_depth: self.shared.queue_depth.snapshot(),
            submit_ns: self.shared.submit_ns.snapshot(),
            media_write_ns: self.shared.media_write_ns.snapshot(),
            barrier_ack_ns: self.shared.barrier_ack_ns.snapshot(),
        }
    }

    /// Resets the pipeline's counters and histograms to zero.
    pub fn reset_pipeline_stats(&self) {
        let c = &self.shared.counters;
        c.submitted_writes.store(0, Ordering::Relaxed);
        c.submitted_bytes.store(0, Ordering::Relaxed);
        c.barriers_submitted.store(0, Ordering::Relaxed);
        c.inner_flushes.store(0, Ordering::Relaxed);
        c.barriers_coalesced.store(0, Ordering::Relaxed);
        c.writes_merged.store(0, Ordering::Relaxed);
        c.stalls.store(0, Ordering::Relaxed);
        c.inflight_barriers_max.store(0, Ordering::Relaxed);
        self.shared.queue_depth.reset();
        self.shared.submit_ns.reset();
        self.shared.media_write_ns.reset();
        self.shared.barrier_ack_ns.reset();
    }

    /// Installs (or replaces) the [`PipeObserver`] that receives
    /// media-write and barrier-ack stage callbacks and the sticky-error
    /// fault hook. The fault hook completes before the sticky error is
    /// latched, so no caller observes the error ahead of the hook (a
    /// flight-recorder dump exists by the time an `Err` surfaces).
    /// Pass-through cost when none is installed is one mutex probe per
    /// applied write.
    pub fn set_observer(&self, observer: Arc<dyn PipeObserver>) {
        *self.shared.observer.0.lock() = Some(observer);
    }

    /// Whether the layer above may start another barrier-producing
    /// batch: fewer than two barriers (`MAX_INFLIGHT_BARRIERS`) are
    /// submitted-but-unretired.
    ///
    /// The logical disk's group-commit stage gates its leadership
    /// handoff on this: a new leader seals (producing device writes)
    /// only while a barrier slot is free. That keeps the pipeline to
    /// classic double buffering — one batch flushing, one staging — and
    /// bounds how far fault-budget consumption can run ahead of a
    /// pending barrier (see the [module docs](self)). Callers that are
    /// gated should sleep on their own condition variable and re-check
    /// when a durability batch completes; the gauge is monotone only
    /// within a barrier's lifetime, so polling it without a wakeup
    /// source would spin.
    pub fn barrier_slot_free(&self) -> bool {
        self.shared.state.lock().inflight_barriers < MAX_INFLIGHT_BARRIERS
    }
}

impl<D: BlockDevice> PipelinedDisk<D> {
    /// Takes a barrier ticket *without waiting* for it to retire. The
    /// returned cover is the sequence number of the last write
    /// submitted before this call; pass it to
    /// [`wait_barrier`](Self::wait_barrier) to block until a covering
    /// inner flush completes. Every `submit_barrier` must be paired
    /// with a `wait_barrier`, or the in-flight gauge leaks and
    /// [`barrier_slot_free`](Self::barrier_slot_free) wedges shut.
    ///
    /// This is the pipelining hook for layers that overlap barrier
    /// latency with new work: the logical disk's group-commit leader
    /// submits its barrier, hands leadership to the next batch, *then*
    /// waits, so the next batch's seal writes flow to the device during
    /// this batch's barrier. `flush` is exactly
    /// `wait_barrier(submit_barrier()?)`.
    ///
    /// # Errors
    ///
    /// The latched sticky error, if any (no ticket is then taken).
    pub fn submit_barrier(&self) -> Result<u64> {
        let mut st = self.shared.state.lock();
        if let Some(e) = &st.error {
            return Err(e.clone());
        }
        let cover = st.submitted;
        st.inflight_barriers += 1;
        let c = &self.shared.counters;
        c.barriers_submitted.fetch_add(1, Ordering::Relaxed);
        c.inflight_barriers_max
            .fetch_max(st.inflight_barriers, Ordering::Relaxed);
        Ok(cover)
    }

    /// Blocks until the barrier taken by
    /// [`submit_barrier`](Self::submit_barrier) has retired: every
    /// write submitted before the ticket was taken has been applied to
    /// the inner device and an inner flush issued after that point
    /// returned `Ok`.
    ///
    /// The inner flush runs on *this* thread. A waiter whose cover an
    /// in-flight flush's snapshot reaches rides that flush (coalescing);
    /// one it does not cover issues its own inner flush concurrently. A
    /// waiter whose cover is already durable returns without touching
    /// the device.
    ///
    /// # Errors
    ///
    /// The sticky error if it latches before the ticket retires.
    pub fn wait_barrier(&self, cover: u64) -> Result<()> {
        let c = &self.shared.counters;
        let mut flushed = false;
        let mut st = self.shared.state.lock();
        let res = loop {
            if let Some(e) = &st.error {
                break Err(e.clone());
            }
            if st.durable >= cover {
                if !flushed {
                    c.barriers_coalesced.fetch_add(1, Ordering::Relaxed);
                }
                break Ok(());
            }
            let ride = st.flushes_inflight > 0 && st.flush_cover >= cover;
            if st.applied >= cover && !ride {
                // Issue a flush of our own. Flushes run concurrently —
                // the only reason to *wait* instead is an in-flight
                // flush whose snapshot already covers us, which will
                // retire us when it lands. The snapshot is taken before
                // the lock drops: a write applied *during* the inner
                // flush is not known durable by it (the device may
                // reorder a concurrent write past its own barrier).
                let snap = st.applied;
                st.flush_cover = if st.flushes_inflight == 0 {
                    snap
                } else {
                    st.flush_cover.max(snap)
                };
                st.flushes_inflight += 1;
                drop(st);
                let trace = current_trace();
                let obs = self.shared.observer.get();
                if let Some(o) = &obs {
                    o.stage_begin(trace, PipeStage::BarrierAck);
                }
                let ack_start = Instant::now();
                let r = self.shared.inner.flush();
                let ack_ns = ack_start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                self.shared.barrier_ack_ns.record(ack_ns);
                if let Some(o) = &obs {
                    o.stage_end(trace, PipeStage::BarrierAck, ack_ns);
                }
                if let (Err(e), Some(o)) = (&r, &obs) {
                    // As in `apply_write`: the fault hook completes
                    // before the sticky error is latched, so no caller
                    // observes the error ahead of the hook.
                    o.fault(e);
                }
                st = self.shared.state.lock();
                st.flushes_inflight -= 1;
                match r {
                    Ok(()) => {
                        flushed = true;
                        st.durable = st.durable.max(snap);
                        c.inner_flushes.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => st.error = Some(e),
                }
                self.shared.done.notify_all();
                continue;
            }
            st = self.shared.done.wait(st);
        };
        st.inflight_barriers = st.inflight_barriers.saturating_sub(1);
        res
    }
}

impl<D> Drop for PipelinedDisk<D> {
    fn drop(&mut self) {
        let handle = {
            let mut st = self.shared.state.lock();
            st.stop = true;
            st.handle.take()
        };
        self.shared.work.notify_all();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

impl<D: BlockDevice> Shared<D> {
    /// The I/O thread body: pop writes in FIFO order and apply them to
    /// the inner device until `stop` is set and the queue is empty.
    /// Barriers never pass through here — they run on their waiters'
    /// threads, which is what lets this thread keep applying the next
    /// batch's writes during a barrier.
    fn io_loop(&self) {
        register_thread_name("ld-pipeline");
        let mut st = self.state.lock();
        loop {
            if st.error.is_some() && !st.queue.is_empty() {
                st.queue.clear();
                st.queued_bytes = 0;
                self.done.notify_all();
            }
            if st.queue.is_empty() {
                if st.stop {
                    return;
                }
                st = self.work.wait(st);
                continue;
            }
            let mut w = st.queue.pop_front().expect("queue checked non-empty");
            // Coalesce device-contiguous successors into one inner
            // call (see [`MAX_MERGED_BYTES`]). Sequence numbers stay
            // contiguous — the merged write's seq is the last
            // component's — so the applied watermark is unaffected,
            // and the inner device sees the same bytes at the same
            // offsets in the same order, just in fewer calls.
            let mut merged = 0u64;
            while let Some(next) = st.queue.front() {
                if next.offset != w.offset + w.data.len() as u64
                    || w.data.len() + next.data.len() > MAX_MERGED_BYTES
                {
                    break;
                }
                let next = st.queue.pop_front().expect("front checked");
                w.data.extend_from_slice(&next.data);
                w.seq = next.seq;
                if w.trace == 0 {
                    w.trace = next.trace;
                }
                merged += 1;
            }
            if merged > 0 {
                self.counters
                    .writes_merged
                    .fetch_add(merged, Ordering::Relaxed);
            }
            st = self.apply_write(st, w);
        }
    }

    /// Applies one write to the inner device, releasing the queue lock
    /// for the duration of the device call.
    fn apply_write<'a>(
        &'a self,
        mut st: std::sync::MutexGuard<'a, PipeState>,
        w: QueuedWrite,
    ) -> std::sync::MutexGuard<'a, PipeState> {
        st.queued_bytes -= w.data.len();
        drop(st);
        self.done.notify_all(); // queue space freed
        let obs = self.observer.get();
        if let Some(o) = &obs {
            o.stage_begin(w.trace, PipeStage::MediaWrite);
        }
        let write_start = Instant::now();
        let res = self.inner.write_at(w.offset, &w.data);
        let write_ns = write_start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        self.media_write_ns.record(write_ns);
        if let Some(o) = &obs {
            o.stage_end(w.trace, PipeStage::MediaWrite, write_ns);
        }
        if let (Err(e), Some(o)) = (&res, &obs) {
            // Fire the fault hook *before* latching the error: once a
            // caller can observe the sticky error, the hook (e.g. a
            // flight-recorder dump) has already completed. No lock is
            // held here — a flight recorder snapshots pipeline stats,
            // which takes the queue lock.
            o.fault(e);
        }
        let mut st = self.state.lock();
        match res {
            Ok(()) => {
                st.applied = w.seq;
                self.submit_ns
                    .record(w.enqueued.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
            }
            Err(e) => st.error = Some(e),
        }
        self.done.notify_all();
        st
    }
}

impl<D: BlockDevice> BlockDevice for PipelinedDisk<D> {
    fn capacity(&self) -> u64 {
        self.shared.inner.capacity()
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.check_bounds(offset, buf.len())?;
        {
            let mut st = self.shared.state.lock();
            // Wait until every write submitted before this read has
            // been applied: read-your-writes, and the inner device sees
            // a single-threaded caller's operations in program order.
            // Barriers are not waited for.
            let target = st.submitted;
            loop {
                if let Some(e) = &st.error {
                    return Err(e.clone());
                }
                if st.applied >= target {
                    break;
                }
                st = self.shared.done.wait(st);
            }
        }
        self.shared.inner.read_at(offset, buf)
    }

    fn write_at(&self, offset: u64, buf: &[u8]) -> Result<()> {
        self.check_bounds(offset, buf.len())?;
        let mut st = self.shared.state.lock();
        if let Some(e) = &st.error {
            return Err(e.clone());
        }
        // Backpressure: block while the queue is at a bound. An
        // oversized request is admitted once the queue is empty.
        let over = |st: &PipeState| {
            !st.queue.is_empty()
                && (st.queued_bytes + buf.len() > self.shared.max_queued_bytes
                    || st.queue.len() >= self.shared.max_queued_requests)
        };
        if over(&st) {
            self.shared.counters.stalls.fetch_add(1, Ordering::Relaxed);
            while over(&st) {
                st = self.shared.done.wait(st);
                if let Some(e) = &st.error {
                    return Err(e.clone());
                }
            }
        }
        st.submitted += 1;
        let seq = st.submitted;
        st.queued_bytes += buf.len();
        st.queue.push_back(QueuedWrite {
            offset,
            data: buf.to_vec(),
            seq,
            enqueued: Instant::now(),
            trace: current_trace(),
        });
        self.shared.queue_depth.record(st.queue.len() as u64);
        self.shared
            .counters
            .submitted_writes
            .fetch_add(1, Ordering::Relaxed);
        self.shared
            .counters
            .submitted_bytes
            .fetch_add(buf.len() as u64, Ordering::Relaxed);
        drop(st);
        self.shared.work.notify_one();
        Ok(())
    }

    fn flush(&self) -> Result<()> {
        self.wait_barrier(self.submit_barrier()?)
    }

    fn stats_snapshot(&self) -> Option<crate::DiskStatsSnapshot> {
        self.shared.inner.stats_snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DiskModel, FaultPlan, LatencyDisk, MemDisk, SimDisk};
    use std::time::Duration;

    #[test]
    fn write_read_flush_roundtrip() {
        let d = PipelinedDisk::new(MemDisk::new(4096));
        d.write_at(0, b"alpha").unwrap();
        d.write_at(512, b"beta").unwrap();
        d.flush().unwrap();
        let mut buf = [0u8; 5];
        d.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"alpha");
        let s = d.pipeline_stats();
        assert_eq!(s.submitted_writes, 2);
        assert_eq!(s.submitted_bytes, 9);
        assert_eq!(s.barriers_submitted, 1);
        assert_eq!(s.inner_flushes, 1);
        assert_eq!(s.submit_ns.count, 2);
        assert!(s.queue_depth.count >= 2);
    }

    #[test]
    fn bounds_errors_are_synchronous() {
        let d = PipelinedDisk::new(MemDisk::new(128));
        assert!(matches!(
            d.write_at(120, &[0u8; 16]),
            Err(DiskError::OutOfBounds { .. })
        ));
        let mut buf = [0u8; 16];
        assert!(d.read_at(120, &mut buf).is_err());
        assert_eq!(d.pipeline_stats().submitted_writes, 0);
    }

    #[test]
    fn flush_drains_queue_before_ack() {
        let d = PipelinedDisk::new(MemDisk::new(1 << 16));
        for i in 0..50u64 {
            d.write_at(i * 512, &[i as u8; 512]).unwrap();
        }
        d.flush().unwrap();
        // Inner device must hold every write once flush returns.
        for i in 0..50u64 {
            let mut buf = [0u8; 512];
            d.inner().read_at(i * 512, &mut buf).unwrap();
            assert_eq!(buf, [i as u8; 512], "write {i} not applied at ack");
        }
    }

    #[test]
    fn barrier_covering_nothing_new_skips_the_device() {
        let d = PipelinedDisk::new(MemDisk::new(4096));
        // Nothing submitted: the cover is already durable.
        d.flush().unwrap();
        d.write_at(0, b"x").unwrap();
        d.flush().unwrap();
        // Nothing new since the last flush: retired without a device
        // barrier, but still counted as a ticket.
        d.flush().unwrap();
        let s = d.pipeline_stats();
        assert_eq!(s.barriers_submitted, 3);
        assert_eq!(s.inner_flushes, 1);
        assert_eq!(s.barriers_coalesced, 2);
    }

    #[test]
    fn barrier_slots_gate_and_recover() {
        let d = PipelinedDisk::new(MemDisk::new(4096));
        assert!(d.barrier_slot_free());
        let c1 = d.submit_barrier().unwrap();
        let c2 = d.submit_barrier().unwrap();
        assert!(!d.barrier_slot_free(), "both slots taken");
        d.wait_barrier(c1).unwrap();
        assert!(d.barrier_slot_free(), "slot freed on retirement");
        d.wait_barrier(c2).unwrap();
        assert!(d.barrier_slot_free());
    }

    #[test]
    fn contiguous_writes_coalesce_into_one_inner_call() {
        // Stall the I/O thread behind a slow first write so the
        // contiguous followers queue up, then verify they reached the
        // inner device in fewer calls than were submitted.
        let sim = SimDisk::new(MemDisk::new(1 << 20), DiskModel::default());
        let d = PipelinedDisk::new(
            LatencyDisk::new(sim, Duration::ZERO).with_write_delay(Duration::from_millis(2)),
        );
        d.write_at(8192, &[9u8; 512]).unwrap(); // slow head, not contiguous
        for i in 0..8u64 {
            d.write_at(i * 512, &[i as u8; 512]).unwrap();
        }
        d.flush().unwrap();
        let s = d.pipeline_stats();
        assert_eq!(s.submitted_writes, 9);
        assert!(s.writes_merged > 0, "contiguous run must coalesce");
        let inner_writes = d.inner().inner().stats().snapshot().writes;
        assert_eq!(inner_writes, s.submitted_writes - s.writes_merged);
        // The bytes landed correctly despite the merge.
        for i in 0..8u64 {
            let mut buf = [0u8; 512];
            d.read_at(i * 512, &mut buf).unwrap();
            assert_eq!(buf, [i as u8; 512], "block {i}");
        }
    }

    #[test]
    fn reads_see_queued_writes() {
        let d = PipelinedDisk::new(MemDisk::new(4096));
        for round in 0..100u8 {
            d.write_at(0, &[round; 64]).unwrap();
            let mut buf = [0u8; 64];
            d.read_at(0, &mut buf).unwrap();
            assert_eq!(buf, [round; 64]);
        }
    }

    #[test]
    fn into_inner_drains_unflushed_writes() {
        let d = PipelinedDisk::new(MemDisk::new(4096));
        d.write_at(100, b"persisted").unwrap();
        // No flush: shutdown still applies queued writes, matching the
        // unpipelined device where write_at data is in the image.
        let inner = d.into_inner();
        let mut buf = [0u8; 9];
        inner.read_at(100, &mut buf).unwrap();
        assert_eq!(&buf, b"persisted");
    }

    #[test]
    fn backpressure_stalls_and_recovers() {
        // A slow inner device guarantees the queue backs up no matter
        // how the scheduler interleaves submitter and I/O thread; the
        // gaps between the writes keep them from coalescing, so the
        // tiny request bound is actually exercised.
        let slow = LatencyDisk::new(MemDisk::new(1 << 20), Duration::ZERO)
            .with_write_delay(Duration::from_millis(1));
        let d = PipelinedDisk::with_limits(slow, 1024, 2);
        for i in 0..16u64 {
            d.write_at(i * 8192, &[1u8; 4096]).unwrap();
        }
        d.flush().unwrap();
        let s = d.pipeline_stats();
        assert!(s.stalls > 0, "tiny queue bound must have stalled");
        assert_eq!(s.submitted_writes, 16);
    }

    #[test]
    fn sticky_error_propagates_and_discards_queue() {
        let sim = SimDisk::new(MemDisk::new(1 << 20), DiskModel::default());
        sim.set_faults(FaultPlan::new().crash_after_bytes(1024));
        let d = PipelinedDisk::new(sim);
        // More than 1024 bytes of writes: the crash fires mid-stream.
        let mut saw_err = false;
        for i in 0..16u64 {
            if d.write_at(i * 512, &[7u8; 512]).is_err() {
                saw_err = true;
                break;
            }
        }
        // The flush must surface the crash even if every enqueue won.
        let flush_res = d.flush();
        assert!(saw_err || flush_res.is_err());
        assert!(matches!(flush_res, Err(DiskError::Crashed)) || saw_err);
        // All subsequent operations fail with the latched error.
        assert!(d.write_at(0, &[0u8; 8]).is_err());
        let mut buf = [0u8; 8];
        assert!(d.read_at(0, &mut buf).is_err());
        assert!(d.flush().is_err());
        // The crash image holds exactly the permitted prefix: the torn
        // write and everything after were not applied beyond the budget.
        let sim = d.into_inner();
        let image = sim.into_inner().into_image();
        let written: u64 = image.iter().filter(|&&b| b == 7).count() as u64;
        assert!(written <= 1024, "crash image exceeds fault budget");
    }

    #[test]
    fn barriers_coalesce_under_concurrency() {
        let d = Arc::new(PipelinedDisk::new(MemDisk::new(1 << 20)));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let d = Arc::clone(&d);
                s.spawn(move || {
                    for i in 0..50u64 {
                        d.write_at((t * 50 + i) * 512, &[t as u8; 512]).unwrap();
                        d.flush().unwrap();
                    }
                });
            }
        });
        let s = d.pipeline_stats();
        assert_eq!(s.barriers_submitted, 400);
        assert_eq!(
            s.inner_flushes + s.barriers_coalesced,
            400,
            "every ticket retires exactly once"
        );
        assert!(s.inflight_barriers_max >= 1);
    }

    #[test]
    fn writes_apply_while_a_barrier_is_in_flight() {
        // The whole point of the pipeline: the I/O thread applies the
        // next batch's writes during an in-flight barrier. Hold a slow
        // barrier (5 ms) on one thread, submit a write from another,
        // and require it to be applied to the inner device before the
        // barrier completes.
        let d = Arc::new(PipelinedDisk::new(LatencyDisk::new(
            MemDisk::new(4096),
            Duration::from_millis(5),
        )));
        d.write_at(0, b"first").unwrap();
        std::thread::scope(|s| {
            let flusher = {
                let d = Arc::clone(&d);
                s.spawn(move || d.flush().unwrap())
            };
            // Wait for the flusher to enter the inner barrier.
            let overlapped = {
                let d = Arc::clone(&d);
                s.spawn(move || {
                    while d.pipeline_stats().barriers_submitted == 0 {
                        std::thread::yield_now();
                    }
                    d.write_at(512, b"overlap").unwrap();
                    // The write must become readable on the inner
                    // device without waiting for the barrier: poll
                    // `applied` via read_at's read-your-writes wait.
                    let mut buf = [0u8; 7];
                    d.read_at(512, &mut buf).unwrap();
                    assert_eq!(&buf, b"overlap");
                })
            };
            overlapped.join().unwrap();
            flusher.join().unwrap();
        });
        let s = d.pipeline_stats();
        assert_eq!(s.submitted_writes, 2);
        assert!(s.inner_flushes >= 1);
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_joins() {
        let d = PipelinedDisk::new(MemDisk::new(4096));
        d.write_at(0, b"x").unwrap();
        d.shutdown_and_join();
        d.shutdown_and_join();
        // Writes after shutdown enqueue but nobody drains them; the
        // contract is that shutdown is terminal. Drop must still not
        // hang.
        drop(d);
    }

    #[test]
    fn observer_sees_stages_and_faults() {
        use std::sync::atomic::AtomicU64;

        #[derive(Default)]
        struct Rec {
            begins: Mutex<Vec<(u64, PipeStage)>>,
            ends: Mutex<Vec<(u64, PipeStage)>>,
            faults: AtomicU64,
        }
        impl PipeObserver for Rec {
            fn stage_begin(&self, trace: u64, stage: PipeStage) {
                self.begins.lock().push((trace, stage));
            }
            fn stage_end(&self, trace: u64, stage: PipeStage, _nanos: u64) {
                self.ends.lock().push((trace, stage));
            }
            fn fault(&self, _error: &DiskError) {
                self.faults.fetch_add(1, Ordering::Relaxed);
            }
        }

        let d = PipelinedDisk::new(MemDisk::new(4096));
        let rec = Arc::new(Rec::default());
        d.set_observer(rec.clone());
        {
            let _scope = crate::trace_scope(42);
            d.write_at(0, b"traced").unwrap();
            d.flush().unwrap();
        }
        let begins = rec.begins.lock().clone();
        let ends = rec.ends.lock().clone();
        assert!(begins.contains(&(42, PipeStage::MediaWrite)));
        assert!(begins.contains(&(42, PipeStage::BarrierAck)));
        assert_eq!(begins, ends, "every begin pairs with an end");
        assert_eq!(rec.faults.load(Ordering::Relaxed), 0);
        let s = d.pipeline_stats();
        assert_eq!(s.media_write_ns.count, 1);
        assert_eq!(s.barrier_ack_ns.count, 1);

        // A device error latched on the I/O thread fires the fault hook.
        let sim = SimDisk::new(MemDisk::new(1 << 20), DiskModel::default());
        sim.set_faults(FaultPlan::new().crash_after_bytes(256));
        let d = PipelinedDisk::new(sim);
        let rec = Arc::new(Rec::default());
        d.set_observer(rec.clone());
        for i in 0..4u64 {
            let _ = d.write_at(i * 512, &[7u8; 512]);
        }
        let _ = d.flush();
        assert!(rec.faults.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn stats_snapshot_plumbs_through() {
        let sim = SimDisk::new(MemDisk::new(1 << 20), DiskModel::default());
        let d = PipelinedDisk::new(sim);
        d.write_at(0, &[1u8; 512]).unwrap();
        d.flush().unwrap();
        let snap = d.stats_snapshot().expect("SimDisk collects stats");
        assert!(snap.writes >= 1);
        assert!(d.pipeline_stats().inner_flushes >= 1);
        d.reset_pipeline_stats();
        assert_eq!(d.pipeline_stats(), PipelineStatsSnapshot::default());
    }
}
