use crate::faults::WriteOutcome;
use crate::sync::Mutex;
use crate::{BlockDevice, DiskError, DiskModel, DiskStats, FaultPlan, Result, VirtualClock};
use std::sync::Arc;

/// Head-position state shared by the time model across requests.
#[derive(Debug, Default)]
struct HeadState {
    /// Byte offset where the previous request ended, if any.
    prev_end: Option<u64>,
}

/// A simulated disk: a real [`BlockDevice`] plus a [`DiskModel`], a
/// [`VirtualClock`], [`DiskStats`], and a [`FaultPlan`].
///
/// All data actually lands in the wrapped device; the wrapper only adds
/// time accounting and fault injection. This is the device the logical
/// disk runs on in every experiment and crash test.
///
/// # Example: crash injection
///
/// ```
/// use ld_disk::{BlockDevice, DiskError, DiskModel, FaultPlan, MemDisk, SimDisk};
///
/// let disk = SimDisk::new(MemDisk::new(1 << 16), DiskModel::hp_c3010())
///     .with_faults(FaultPlan::new().crash_after_bytes(1024));
/// assert!(disk.write_at(0, &[1u8; 1024]).is_ok());
/// assert_eq!(disk.write_at(1024, &[2u8; 512]), Err(DiskError::Crashed));
/// // The surviving image can be inspected / recovered from:
/// let image = disk.into_inner().into_image();
/// assert_eq!(image[0], 1);
/// assert_eq!(image[1024], 0); // the torn write never landed
/// ```
#[derive(Debug)]
pub struct SimDisk<D> {
    inner: D,
    model: DiskModel,
    clock: Arc<VirtualClock>,
    stats: DiskStats,
    head: Mutex<HeadState>,
    faults: Mutex<FaultPlan>,
}

impl<D: BlockDevice> SimDisk<D> {
    /// Wraps `inner` with the given service-time model, a fresh clock,
    /// fresh stats, and no faults.
    pub fn new(inner: D, model: DiskModel) -> Self {
        SimDisk {
            inner,
            model,
            clock: Arc::new(VirtualClock::new()),
            stats: DiskStats::new(),
            head: Mutex::new(HeadState::default()),
            faults: Mutex::new(FaultPlan::new()),
        }
    }

    /// Replaces the fault plan (builder style).
    #[must_use]
    pub fn with_faults(self, faults: FaultPlan) -> Self {
        *self.faults.lock() = faults;
        self
    }

    /// Shares an externally created clock (so several devices, or the CPU
    /// cost accounting of a harness, can charge the same timeline).
    #[must_use]
    pub fn with_clock(mut self, clock: Arc<VirtualClock>) -> Self {
        self.clock = clock;
        self
    }

    /// The virtual clock disk service time is charged to.
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.clock
    }

    /// The I/O statistics counters.
    pub fn stats(&self) -> &DiskStats {
        &self.stats
    }

    /// The service-time model in use.
    pub fn model(&self) -> &DiskModel {
        &self.model
    }

    /// Whether an injected crash point has fired.
    pub fn is_crashed(&self) -> bool {
        self.faults.lock().is_crashed()
    }

    /// Forces the crashed state: every subsequent operation fails with
    /// [`DiskError::Crashed`]. Used by tests that crash "between" writes.
    pub fn force_crash(&self) {
        self.faults.lock().force_crash();
    }

    /// Replaces the fault plan on a live device.
    pub fn set_faults(&self, faults: FaultPlan) {
        *self.faults.lock() = faults;
    }

    /// Returns the wrapped device, discarding the simulation state.
    pub fn into_inner(self) -> D {
        self.inner
    }

    /// Borrows the wrapped device (e.g. to snapshot a
    /// [`MemDisk`](crate::MemDisk) image mid-test).
    pub fn inner(&self) -> &D {
        &self.inner
    }

    fn charge(&self, offset: u64, len: u64, write: bool) -> bool {
        let mut head = self.head.lock();
        let sequential = head.prev_end == Some(offset);
        let service = self
            .model
            .service_time(head.prev_end, offset, len, self.inner.capacity());
        head.prev_end = Some(offset + len);
        self.clock.advance(service);
        if write {
            self.stats.record_write(len, sequential, service);
        } else {
            self.stats.record_read(len, sequential, service);
        }
        sequential
    }
}

impl<D: BlockDevice> BlockDevice for SimDisk<D> {
    fn capacity(&self) -> u64 {
        self.inner.capacity()
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.inner.check_bounds(offset, buf.len())?;
        {
            let faults = self.faults.lock();
            if faults.is_crashed() {
                return Err(DiskError::Crashed);
            }
            if let Err(at) = faults.on_read(offset, buf.len() as u64) {
                return Err(DiskError::MediaFailure { offset: at });
            }
        }
        self.charge(offset, buf.len() as u64, false);
        self.inner.read_at(offset, buf)
    }

    fn write_at(&self, offset: u64, buf: &[u8]) -> Result<()> {
        self.inner.check_bounds(offset, buf.len())?;
        let outcome = self.faults.lock().on_write(buf.len() as u64);
        match outcome {
            WriteOutcome::Full => {
                self.charge(offset, buf.len() as u64, true);
                self.inner.write_at(offset, buf)
            }
            WriteOutcome::Torn(n) => {
                if n > 0 {
                    self.charge(offset, n as u64, true);
                    self.inner.write_at(offset, &buf[..n])?;
                }
                Err(DiskError::Crashed)
            }
            WriteOutcome::Dead => Err(DiskError::Crashed),
        }
    }

    fn flush(&self) -> Result<()> {
        if self.faults.lock().is_crashed() {
            return Err(DiskError::Crashed);
        }
        self.stats.record_flush();
        self.inner.flush()
    }

    fn stats_snapshot(&self) -> Option<crate::DiskStatsSnapshot> {
        Some(self.stats.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDisk;
    use std::time::Duration;

    fn sim(capacity: u64) -> SimDisk<MemDisk> {
        SimDisk::new(MemDisk::new(capacity), DiskModel::hp_c3010())
    }

    #[test]
    fn charges_time_and_counts() {
        let d = sim(1 << 20);
        d.write_at(0, &[0u8; 4096]).unwrap();
        d.write_at(4096, &[0u8; 4096]).unwrap(); // sequential
        let mut buf = [0u8; 4096];
        d.read_at(1 << 19, &mut buf).unwrap(); // random
        let snap = d.stats().snapshot();
        assert_eq!(snap.writes, 2);
        assert_eq!(snap.sequential_writes, 1);
        assert_eq!(snap.reads, 1);
        assert!(d.clock().now() > Duration::ZERO);
        assert_eq!(d.clock().now(), snap.busy);
    }

    #[test]
    fn sequential_writes_are_cheaper() {
        let d1 = sim(1 << 30);
        d1.write_at(0, &[0u8; 4096]).unwrap();
        d1.write_at(4096, &[0u8; 4096]).unwrap();
        let seq_total = d1.clock().now();

        let d2 = sim(1 << 30);
        d2.write_at(0, &[0u8; 4096]).unwrap();
        d2.write_at(1 << 29, &[0u8; 4096]).unwrap();
        let random_total = d2.clock().now();
        assert!(random_total > seq_total);
    }

    #[test]
    fn crash_point_tears_and_kills() {
        let d = sim(1 << 16).with_faults(FaultPlan::new().crash_after_bytes(1024 + 512));
        d.write_at(0, &[0xAAu8; 1024]).unwrap();
        // This write crosses the crash point: only 512 bytes land.
        assert_eq!(d.write_at(1024, &[0xBBu8; 1024]), Err(DiskError::Crashed));
        assert_eq!(d.flush(), Err(DiskError::Crashed));
        let mut probe = [0u8; 1];
        assert_eq!(d.read_at(0, &mut probe), Err(DiskError::Crashed));
        let image = d.into_inner().into_image();
        assert_eq!(image[1023], 0xAA);
        assert_eq!(image[1024], 0xBB);
        assert_eq!(image[1535], 0xBB);
        assert_eq!(image[1536], 0x00);
    }

    #[test]
    fn media_failure_reported_with_offset() {
        let d = sim(1 << 16).with_faults(FaultPlan::new().read_error_region(2048..4096));
        let mut buf = [0u8; 512];
        d.read_at(0, &mut buf).unwrap();
        assert_eq!(
            d.read_at(2000, &mut buf),
            Err(DiskError::MediaFailure { offset: 2048 })
        );
        // Writes are unaffected by read-error regions.
        d.write_at(2048, &[1u8; 16]).unwrap();
    }

    #[test]
    fn force_crash_stops_everything() {
        let d = sim(1024);
        d.write_at(0, b"ok").unwrap();
        d.force_crash();
        assert!(d.is_crashed());
        assert_eq!(d.write_at(2, b"no"), Err(DiskError::Crashed));
    }

    #[test]
    fn shared_clock_accumulates_across_devices() {
        let clock = Arc::new(VirtualClock::new());
        let a = sim(1 << 16).with_clock(Arc::clone(&clock));
        let b = sim(1 << 16).with_clock(Arc::clone(&clock));
        a.write_at(0, &[0u8; 512]).unwrap();
        let after_a = clock.now();
        b.write_at(0, &[0u8; 512]).unwrap();
        assert!(clock.now() > after_a);
    }

    #[test]
    fn bounds_errors_do_not_advance_clock() {
        let d = sim(1024);
        assert!(d.write_at(1020, &[0u8; 16]).is_err());
        assert_eq!(d.clock().now(), Duration::ZERO);
        assert_eq!(d.stats().snapshot().writes, 0);
    }
}
