//! A mixed, seeded workload for stress tests and the cleaner: random
//! creates, writes, reads, and deletes over a bounded population of
//! files.

use crate::{pattern_fill, rng};
use ld_core::LogicalDisk;
use ld_minixfs::{Ino, MinixFs, Result};

/// One generated operation (exposed so tests can inspect traces).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MixedOp {
    /// Create file `idx` and write `bytes` of patterned data.
    Create {
        /// File index within the population.
        idx: usize,
        /// File size in bytes.
        bytes: usize,
    },
    /// Overwrite a random region of file `idx`.
    Overwrite {
        /// File index.
        idx: usize,
        /// Byte offset.
        offset: u64,
        /// Length in bytes.
        len: usize,
    },
    /// Delete file `idx`.
    Delete {
        /// File index.
        idx: usize,
    },
    /// Flush everything.
    Flush,
}

/// Generator of mixed create/write/delete traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MixedWorkload {
    /// Upper bound on concurrently existing files.
    pub population: usize,
    /// Number of operations to generate.
    pub ops: usize,
    /// Maximum file size in bytes.
    pub max_file_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl MixedWorkload {
    /// Generates the operation trace.
    pub fn trace(&self) -> Vec<MixedOp> {
        let mut r = rng(self.seed);
        let mut alive = vec![false; self.population];
        let mut sizes = vec![0usize; self.population];
        let mut out = Vec::with_capacity(self.ops);
        for _ in 0..self.ops {
            let idx = r.gen_index(self.population);
            let roll: f64 = r.gen_f64();
            if !alive[idx] {
                let bytes = 1 + r.gen_index(self.max_file_size);
                alive[idx] = true;
                sizes[idx] = bytes;
                out.push(MixedOp::Create { idx, bytes });
            } else if roll < 0.25 {
                alive[idx] = false;
                out.push(MixedOp::Delete { idx });
            } else if roll < 0.9 {
                let offset = r.gen_index(sizes[idx]) as u64;
                let len =
                    1 + r.gen_index(self.max_file_size.min(sizes[idx] - offset as usize).max(1));
                out.push(MixedOp::Overwrite { idx, offset, len });
            } else {
                out.push(MixedOp::Flush);
            }
        }
        out
    }

    /// Runs the trace against a file system.
    ///
    /// # Errors
    ///
    /// File-system errors.
    pub fn run<L: LogicalDisk>(&self, fs: &mut MinixFs<L>) -> Result<()> {
        let mut buf = vec![0u8; self.max_file_size];
        let mut inos: Vec<Option<Ino>> = vec![None; self.population];
        for op in self.trace() {
            match op {
                MixedOp::Create { idx, bytes } => {
                    let ino = fs.create(&format!("/m{idx}"))?;
                    pattern_fill(&mut buf[..bytes], idx as u64);
                    fs.write_at(ino, 0, &buf[..bytes])?;
                    inos[idx] = Some(ino);
                }
                MixedOp::Overwrite { idx, offset, len } => {
                    if let Some(ino) = inos[idx] {
                        pattern_fill(&mut buf[..len], idx as u64 ^ offset);
                        fs.write_at(ino, offset, &buf[..len])?;
                    }
                }
                MixedOp::Delete { idx } => {
                    if inos[idx].take().is_some() {
                        fs.unlink(&format!("/m{idx}"))?;
                    }
                }
                MixedOp::Flush => fs.flush()?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_core::{Lld, LldConfig};
    use ld_disk::MemDisk;
    use ld_minixfs::FsConfig;

    #[test]
    fn trace_is_deterministic() {
        let w = MixedWorkload {
            population: 8,
            ops: 100,
            max_file_size: 2000,
            seed: 3,
        };
        assert_eq!(w.trace(), w.trace());
        let w2 = MixedWorkload {
            seed: 4,
            ..w.clone()
        };
        assert_ne!(w.trace(), w2.trace());
    }

    #[test]
    fn trace_never_double_creates_or_deletes() {
        let w = MixedWorkload {
            population: 4,
            ops: 300,
            max_file_size: 1000,
            seed: 9,
        };
        let mut alive = [false; 4];
        for op in w.trace() {
            match op {
                MixedOp::Create { idx, .. } => {
                    assert!(!alive[idx]);
                    alive[idx] = true;
                }
                MixedOp::Delete { idx } => {
                    assert!(alive[idx]);
                    alive[idx] = false;
                }
                MixedOp::Overwrite { idx, .. } => assert!(alive[idx]),
                MixedOp::Flush => {}
            }
        }
    }

    #[test]
    fn runs_clean_and_consistent() {
        let ld = Lld::format(
            MemDisk::new(16 << 20),
            &LldConfig {
                block_size: 512,
                segment_bytes: 16 * 512,
                max_blocks: Some(4096),
                max_lists: Some(256),
                ..LldConfig::default()
            },
        )
        .unwrap();
        let mut fs = MinixFs::format(
            ld,
            FsConfig {
                inode_count: 64,
                ..FsConfig::default()
            },
        )
        .unwrap();
        let w = MixedWorkload {
            population: 10,
            ops: 200,
            max_file_size: 1500,
            seed: 11,
        };
        w.run(&mut fs).unwrap();
        assert!(fs.verify().unwrap().is_consistent());
    }
}
