//! The small-file micro-benchmark (Figure 5 of the paper).

use crate::pattern_fill;
use ld_core::LogicalDisk;
use ld_minixfs::{MinixFs, Result};

/// Create+write, read, and delete many small files.
///
/// The paper's two configurations are provided as constructors:
/// [`SmallFileWorkload::paper_1k`] (10,000 × 1 KByte) and
/// [`SmallFileWorkload::paper_10k`] (1,000 × 10 KByte). Files are spread
/// over directories (one per `files_per_dir`) so directory blocks stay
/// realistic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallFileWorkload {
    /// Number of files.
    pub file_count: usize,
    /// Size of each file in bytes.
    pub file_size: usize,
    /// Files per directory.
    pub files_per_dir: usize,
}

impl SmallFileWorkload {
    /// The paper's 10,000 × 1-KByte configuration.
    pub fn paper_1k() -> Self {
        SmallFileWorkload {
            file_count: 10_000,
            file_size: 1024,
            files_per_dir: 100,
        }
    }

    /// The paper's 1,000 × 10-KByte configuration.
    pub fn paper_10k() -> Self {
        SmallFileWorkload {
            file_count: 1_000,
            file_size: 10 * 1024,
            files_per_dir: 100,
        }
    }

    /// A reduced configuration for fast tests.
    pub fn tiny(file_count: usize, file_size: usize) -> Self {
        SmallFileWorkload {
            file_count,
            file_size,
            files_per_dir: 16,
        }
    }

    fn dir_of(&self, i: usize) -> String {
        format!("/d{:04}", i / self.files_per_dir)
    }

    fn path_of(&self, i: usize) -> String {
        format!("{}/f{:06}", self.dir_of(i), i)
    }

    /// Phase 1: create and write every file.
    ///
    /// # Errors
    ///
    /// File-system errors (e.g. out of inodes or disk space).
    pub fn create_and_write<L: LogicalDisk>(&self, fs: &mut MinixFs<L>) -> Result<()> {
        let mut data = vec![0u8; self.file_size];
        for i in 0..self.file_count {
            if i % self.files_per_dir == 0 {
                fs.mkdir(&self.dir_of(i))?;
            }
            let ino = fs.create(&self.path_of(i))?;
            pattern_fill(&mut data, i as u64);
            fs.write_at(ino, 0, &data)?;
        }
        fs.flush()?;
        Ok(())
    }

    /// Phase 2: read every file and verify its content.
    ///
    /// # Errors
    ///
    /// File-system errors, or
    /// [`FsError::Corrupt`](ld_minixfs::FsError::Corrupt) if the data
    /// read back does not match what was written.
    pub fn read_all<L: LogicalDisk>(&self, fs: &mut MinixFs<L>) -> Result<()> {
        let mut buf = vec![0u8; self.file_size];
        let mut expect = vec![0u8; self.file_size];
        for i in 0..self.file_count {
            let ino = fs.lookup(&self.path_of(i))?;
            let n = fs.read_at(ino, 0, &mut buf)?;
            pattern_fill(&mut expect, i as u64);
            if n != self.file_size || buf != expect {
                return Err(ld_minixfs::FsError::Corrupt(format!(
                    "file {i} read back wrong data"
                )));
            }
        }
        Ok(())
    }

    /// Phase 3: delete every file (and its directory once empty).
    ///
    /// # Errors
    ///
    /// File-system errors.
    pub fn delete_all<L: LogicalDisk>(&self, fs: &mut MinixFs<L>) -> Result<()> {
        for i in 0..self.file_count {
            fs.unlink(&self.path_of(i))?;
            let last_in_dir =
                i % self.files_per_dir == self.files_per_dir - 1 || i == self.file_count - 1;
            if last_in_dir {
                fs.rmdir(&self.dir_of(i))?;
            }
        }
        fs.flush()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_core::{Lld, LldConfig};
    use ld_disk::MemDisk;
    use ld_minixfs::{FsConfig, MinixFs};

    fn fs() -> MinixFs<Lld<MemDisk>> {
        let ld = Lld::format(
            MemDisk::new(16 << 20),
            &LldConfig {
                block_size: 512,
                segment_bytes: 16 * 512,
                max_blocks: Some(4096),
                max_lists: Some(1024),
                ..LldConfig::default()
            },
        )
        .unwrap();
        MinixFs::format(
            ld,
            FsConfig {
                inode_count: 256,
                ..FsConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn full_cycle_runs_clean() {
        let w = SmallFileWorkload::tiny(50, 700);
        let mut fs = fs();
        w.create_and_write(&mut fs).unwrap();
        assert_eq!(fs.stats().files_created, 50);
        w.read_all(&mut fs).unwrap();
        w.delete_all(&mut fs).unwrap();
        assert_eq!(fs.stats().files_deleted, 50);
        assert!(fs.verify().unwrap().is_consistent());
        // Everything reclaimed.
        assert_eq!(fs.readdir("/").unwrap(), Vec::new());
    }

    #[test]
    fn paper_configs() {
        assert_eq!(SmallFileWorkload::paper_1k().file_count, 10_000);
        assert_eq!(SmallFileWorkload::paper_1k().file_size, 1024);
        assert_eq!(SmallFileWorkload::paper_10k().file_count, 1_000);
        assert_eq!(SmallFileWorkload::paper_10k().file_size, 10 * 1024);
    }

    #[test]
    fn read_detects_corruption() {
        let w = SmallFileWorkload::tiny(3, 256);
        let mut fs = fs();
        w.create_and_write(&mut fs).unwrap();
        // Overwrite one file with wrong data.
        let ino = fs.lookup("/d0000/f000001").unwrap();
        fs.write_at(ino, 0, &[0xFFu8; 256]).unwrap();
        assert!(w.read_all(&mut fs).is_err());
    }
}
