//! Workload generators for the paper's evaluation (§5.2).
//!
//! Three workloads drive every table and figure:
//!
//! * [`SmallFileWorkload`] — the small-file micro-benchmark: create and
//!   write, then read, then delete 10,000 1-KByte files and 1,000
//!   10-KByte files (Figure 5).
//! * [`LargeFileWorkload`] — the large-file benchmark: a 78.125-MByte
//!   file written sequentially (`write1`), read sequentially (`read1`),
//!   re-written in random order (`write2`), read in random order
//!   (`read2`), and re-read sequentially (`read3`) (Figure 6).
//! * [`AruLatencyWorkload`] — start and end an empty ARU 500,000 times
//!   (the §5.3 latency experiment).
//!
//! [`MtWorkload`] goes beyond the paper's single-threaded prototype: N
//! OS threads share one logical disk (every operation takes `&self`)
//! and commit disjoint ARUs concurrently, driving the group-commit
//! stage. [`MixedWorkload`] provides seeded mixed traffic for stress
//! tests and the cleaner.
//!
//! All generators are deterministic: random orders come from a seeded
//! RNG, so repeated runs (and the old/new comparisons) see identical
//! operation streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aru_latency;
mod large_file;
mod mixed;
mod mt;
mod small_file;

pub use aru_latency::{AruLatencyResult, AruLatencyWorkload};
pub use large_file::{LargeFilePhase, LargeFileWorkload};
pub use mixed::{MixedOp, MixedWorkload};
pub use mt::{MtMode, MtReport, MtWorkload};
pub use small_file::SmallFileWorkload;

use ld_disk::SmallRng;

/// A deterministic RNG for workloads.
pub fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Fills `buf` with a deterministic pattern derived from `tag` — cheap
/// to generate, distinct across files/blocks, and verifiable on read.
pub fn pattern_fill(buf: &mut [u8], tag: u64) {
    let mut x = tag.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    for chunk in buf.chunks_mut(8) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let bytes = x.to_le_bytes();
        let n = chunk.len();
        chunk.copy_from_slice(&bytes[..n]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_is_deterministic_and_distinct() {
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        pattern_fill(&mut a, 5);
        pattern_fill(&mut b, 5);
        assert_eq!(a, b);
        pattern_fill(&mut b, 6);
        assert_ne!(a, b);
    }

    #[test]
    fn rng_is_seeded() {
        let mut r1 = rng(42);
        let mut r2 = rng(42);
        assert_eq!(r1.next_u64(), r2.next_u64());
    }
}
