//! The ARU-latency experiment (§5.3): start and end an empty ARU many
//! times and measure the per-ARU cost (the paper reports 78.47 µs and
//! 24 segments written for 500,000 ARUs).

use ld_core::{LogicalDisk, Result};

/// Begin/end an empty ARU `count` times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AruLatencyWorkload {
    /// Number of begin/end pairs.
    pub count: u64,
}

/// What an [`AruLatencyWorkload`] run produced (counts only; the bench
/// harness adds timing from the virtual clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AruLatencyResult {
    /// ARUs committed.
    pub arus: u64,
}

impl AruLatencyWorkload {
    /// The paper's 500,000 iterations.
    pub fn paper() -> Self {
        AruLatencyWorkload { count: 500_000 }
    }

    /// Runs the workload against a logical disk and flushes at the end.
    /// Segment counts are read from the disk's statistics by the caller.
    ///
    /// # Errors
    ///
    /// Logical-disk errors.
    pub fn run<L: LogicalDisk>(&self, ld: &L) -> Result<AruLatencyResult> {
        for _ in 0..self.count {
            let aru = ld.begin_aru()?;
            ld.end_aru(aru)?;
        }
        ld.flush()?;
        Ok(AruLatencyResult { arus: self.count })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_core::{Lld, LldConfig};
    use ld_disk::MemDisk;

    #[test]
    fn commit_records_fill_segments() {
        let ld = Lld::format(
            MemDisk::new(4 << 20),
            &LldConfig {
                block_size: 512,
                segment_bytes: 8 * 512,
                max_blocks: Some(64),
                max_lists: Some(16),
                ..LldConfig::default()
            },
        )
        .unwrap();
        let w = AruLatencyWorkload { count: 1000 };
        let res = w.run(&ld).unwrap();
        assert_eq!(res.arus, 1000);
        // 1000 commit records × 17 bytes ≈ 17 KB; a segment holds
        // ~3.5 KB of summary here, so several segments were written.
        assert!(ld.stats().segments_sealed >= 4);
        assert_eq!(ld.stats().arus_committed, 1000);
        assert_eq!(ld.stats().records_emitted, 1000);
    }
}
