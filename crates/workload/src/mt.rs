//! Multi-threaded driver: N OS threads share one logical disk and run
//! disjoint ARUs against it concurrently.
//!
//! The logical disk synchronizes internally (every [`LogicalDisk`]
//! operation takes `&self`), so the threads share a plain reference —
//! no external lock. Each thread builds private lists, so the ARUs
//! never contend on logical objects; all contention is inside the disk
//! system (mapping tables, log append, group commit), which is exactly
//! what the multi-threaded benchmarks want to measure.

use crate::pattern_fill;
use ld_core::{Ctx, LogicalDisk, Position, Result};

/// How the threads' working sets relate to each other (and therefore
/// to the logical disk's map shards).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum MtMode {
    /// Each thread builds its own private lists. New lists spread
    /// round-robin across the map shards, so concurrent ARUs mostly
    /// touch disjoint shards — the best case for sharded locking.
    #[default]
    Disjoint,
    /// All threads rewrite pre-allocated blocks of one shared list.
    /// Every block of a list is allocated from the list's own map
    /// shard, so every writer contends on that single shard — the
    /// worst case, where sharding cannot help.
    HotShard,
    /// Each thread rewrites the pre-allocated blocks of its own private
    /// list, over and over. The live working set stays tiny while every
    /// ARU turns its previous versions into dead blocks, so on a small
    /// device the log wraps continuously and the segment cleaner runs
    /// throughout — the workload for comparing the inline cleaner
    /// against the background `cleanerd`.
    Churn,
}

/// N threads, each committing a stream of small ARUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MtWorkload {
    /// Number of OS threads.
    pub threads: usize,
    /// ARUs committed by each thread.
    pub arus_per_thread: usize,
    /// Blocks allocated and written inside each ARU.
    pub blocks_per_aru: usize,
    /// Commit synchronously (`end_aru_sync`) every k-th ARU; `0` means
    /// never (lazy durability, one flush at the end). `1` makes every
    /// commit durable, which maximizes group-commit contention.
    pub sync_every: usize,
    /// How the threads' working sets overlap.
    pub mode: MtMode,
    /// Mixed into the data patterns so distinct runs write distinct
    /// bytes.
    pub seed: u64,
}

/// What an [`MtWorkload`] run produced (counts only; the caller adds
/// timing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MtReport {
    /// ARUs committed across all threads.
    pub arus_committed: u64,
    /// Blocks written across all threads.
    pub blocks_written: u64,
    /// Logical-disk operations issued across all threads (begin, alloc,
    /// write, commit — the unit of the ops/s throughput figures).
    pub ops: u64,
}

impl MtWorkload {
    /// A small configuration for tests and CI smoke runs.
    pub fn smoke(threads: usize) -> Self {
        MtWorkload {
            threads,
            arus_per_thread: 50,
            blocks_per_aru: 2,
            sync_every: 1,
            mode: MtMode::Disjoint,
            seed: 1,
        }
    }

    /// Operations one thread issues per ARU (begin + new_list + per
    /// block alloc+write + commit).
    fn ops_per_aru(&self) -> u64 {
        3 + 2 * self.blocks_per_aru as u64
    }

    /// Runs the workload: spawns [`threads`](MtWorkload::threads) OS
    /// threads over the shared disk and waits for all of them. A final
    /// flush makes the tail of lazy commits durable.
    ///
    /// # Errors
    ///
    /// The first logical-disk error any thread hit (remaining threads
    /// still run to completion).
    ///
    /// # Panics
    ///
    /// Panics if a worker thread itself panics.
    pub fn run<L: LogicalDisk + Sync>(&self, ld: &L) -> Result<MtReport> {
        match self.mode {
            MtMode::Disjoint => self.run_disjoint(ld),
            MtMode::HotShard => self.run_hot(ld),
            MtMode::Churn => self.run_churn(ld),
        }
    }

    fn run_disjoint<L: LogicalDisk + Sync>(&self, ld: &L) -> Result<MtReport> {
        let block_size = ld.block_size();
        let results: Vec<Result<MtReport>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..self.threads)
                .map(|t| {
                    s.spawn(move || -> Result<MtReport> {
                        let mut data = vec![0u8; block_size];
                        let mut report = MtReport::default();
                        for i in 0..self.arus_per_thread {
                            let tag = self
                                .seed
                                .wrapping_mul(0x0010_0000_000F)
                                .wrapping_add((t * 1_000_003 + i) as u64);
                            let aru = ld.begin_aru()?;
                            let list = ld.new_list(Ctx::Aru(aru))?;
                            let mut prev = None;
                            for b in 0..self.blocks_per_aru {
                                let pos = match prev {
                                    None => Position::First,
                                    Some(p) => Position::After(p),
                                };
                                let blk = ld.new_block(Ctx::Aru(aru), list, pos)?;
                                pattern_fill(&mut data, tag ^ (b as u64) << 48);
                                ld.write(Ctx::Aru(aru), blk, &data)?;
                                prev = Some(blk);
                                report.blocks_written += 1;
                            }
                            if self.sync_every > 0 && (i + 1) % self.sync_every == 0 {
                                ld.end_aru_sync(aru)?;
                            } else {
                                ld.end_aru(aru)?;
                            }
                            report.arus_committed += 1;
                            report.ops += self.ops_per_aru();
                        }
                        Ok(report)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });
        let mut total = MtReport::default();
        for r in results {
            let r = r?;
            total.arus_committed += r.arus_committed;
            total.blocks_written += r.blocks_written;
            total.ops += r.ops;
        }
        ld.flush()?;
        Ok(total)
    }

    /// The hot-shard variant: one shared list is pre-built with
    /// `threads * blocks_per_aru` blocks (all in the list's map shard),
    /// each thread owns a disjoint slice of them, and every ARU
    /// rewrites its thread's blocks. ARUs never conflict (disjoint
    /// blocks) but every write and commit serializes on one shard.
    fn run_hot<L: LogicalDisk + Sync>(&self, ld: &L) -> Result<MtReport> {
        let block_size = ld.block_size();
        let list = ld.new_list(Ctx::Simple)?;
        let mut blocks = Vec::with_capacity(self.threads * self.blocks_per_aru);
        let mut prev = None;
        for _ in 0..self.threads * self.blocks_per_aru {
            let pos = match prev {
                None => Position::First,
                Some(p) => Position::After(p),
            };
            let b = ld.new_block(Ctx::Simple, list, pos)?;
            blocks.push(b);
            prev = Some(b);
        }
        let results: Vec<Result<MtReport>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..self.threads)
                .map(|t| {
                    let mine = &blocks[t * self.blocks_per_aru..(t + 1) * self.blocks_per_aru];
                    s.spawn(move || -> Result<MtReport> {
                        let mut data = vec![0u8; block_size];
                        let mut report = MtReport::default();
                        for i in 0..self.arus_per_thread {
                            let tag = self
                                .seed
                                .wrapping_mul(0x0010_0000_000F)
                                .wrapping_add((t * 1_000_003 + i) as u64);
                            let aru = ld.begin_aru()?;
                            for (b, &blk) in mine.iter().enumerate() {
                                pattern_fill(&mut data, tag ^ (b as u64) << 48);
                                ld.write(Ctx::Aru(aru), blk, &data)?;
                                report.blocks_written += 1;
                            }
                            if self.sync_every > 0 && (i + 1) % self.sync_every == 0 {
                                ld.end_aru_sync(aru)?;
                            } else {
                                ld.end_aru(aru)?;
                            }
                            report.arus_committed += 1;
                            // begin + per-block write + commit.
                            report.ops += 2 + mine.len() as u64;
                        }
                        Ok(report)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });
        let mut total = MtReport::default();
        for r in results {
            let r = r?;
            total.arus_committed += r.arus_committed;
            total.blocks_written += r.blocks_written;
            total.ops += r.ops;
        }
        ld.flush()?;
        Ok(total)
    }

    /// The overwrite-churn variant: each thread gets a private list
    /// pre-built with a pool of `4 * blocks_per_aru` blocks (lists
    /// spread round-robin across the map shards), and every ARU
    /// rewrites the next `blocks_per_aru` of them round-robin.
    /// Rotating through a pool — rather than hammering the same pair —
    /// means each version stays live for several ARUs, so sealed
    /// segments hold a mix of live and dead blocks and the segment
    /// cleaner has real relocation work to do on every pass, not just
    /// free-for-the-taking dead segments.
    fn run_churn<L: LogicalDisk + Sync>(&self, ld: &L) -> Result<MtReport> {
        let block_size = ld.block_size();
        let pool = 4 * self.blocks_per_aru;
        let mut sets = Vec::with_capacity(self.threads);
        for _ in 0..self.threads {
            let list = ld.new_list(Ctx::Simple)?;
            let mut mine = Vec::with_capacity(pool);
            let mut prev = None;
            for _ in 0..pool {
                let pos = match prev {
                    None => Position::First,
                    Some(p) => Position::After(p),
                };
                let b = ld.new_block(Ctx::Simple, list, pos)?;
                mine.push(b);
                prev = Some(b);
            }
            sets.push(mine);
        }
        let results: Vec<Result<MtReport>> = std::thread::scope(|s| {
            let handles: Vec<_> = sets
                .iter()
                .enumerate()
                .map(|(t, mine)| {
                    s.spawn(move || -> Result<MtReport> {
                        let mut data = vec![0u8; block_size];
                        let mut report = MtReport::default();
                        for i in 0..self.arus_per_thread {
                            let tag = self
                                .seed
                                .wrapping_mul(0x0010_0000_000F)
                                .wrapping_add((t * 1_000_003 + i) as u64);
                            let aru = ld.begin_aru()?;
                            for b in 0..self.blocks_per_aru {
                                let blk = mine[(i * self.blocks_per_aru + b) % pool];
                                pattern_fill(&mut data, tag ^ (b as u64) << 48);
                                ld.write(Ctx::Aru(aru), blk, &data)?;
                                report.blocks_written += 1;
                            }
                            if self.sync_every > 0 && (i + 1) % self.sync_every == 0 {
                                ld.end_aru_sync(aru)?;
                            } else {
                                ld.end_aru(aru)?;
                            }
                            report.arus_committed += 1;
                            // begin + per-block write + commit.
                            report.ops += 2 + self.blocks_per_aru as u64;
                        }
                        Ok(report)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });
        let mut total = MtReport::default();
        for r in results {
            let r = r?;
            total.arus_committed += r.arus_committed;
            total.blocks_written += r.blocks_written;
            total.ops += r.ops;
        }
        ld.flush()?;
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_core::{Lld, LldConfig};
    use ld_disk::MemDisk;

    fn ld() -> Lld<MemDisk> {
        Lld::format(
            MemDisk::new(16 << 20),
            &LldConfig {
                block_size: 512,
                segment_bytes: 16 * 512,
                max_blocks: Some(4096),
                max_lists: Some(1024),
                ..LldConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn four_threads_commit_everything() {
        let ld = ld();
        let w = MtWorkload {
            threads: 4,
            arus_per_thread: 25,
            blocks_per_aru: 2,
            sync_every: 0,
            mode: MtMode::Disjoint,
            seed: 7,
        };
        let report = w.run(&ld).unwrap();
        assert_eq!(report.arus_committed, 100);
        assert_eq!(report.blocks_written, 200);
        assert_eq!(report.ops, 100 * 7);
        assert_eq!(ld.stats().arus_committed, 100);
        assert!(ld.active_arus().is_empty());
    }

    #[test]
    fn sync_commits_drive_the_group_commit_stage() {
        let ld = ld();
        let w = MtWorkload::smoke(4);
        let report = w.run(&ld).unwrap();
        assert_eq!(report.arus_committed, 200);
        let stats = ld.stats();
        // Every synchronous commit was covered by exactly one batch.
        assert_eq!(stats.flush_batch_callers, 200 + 1); // + final flush
        assert!(stats.flush_batches >= 1);
    }

    #[test]
    fn single_thread_degenerates_to_sequential() {
        let ld = ld();
        let w = MtWorkload {
            threads: 1,
            arus_per_thread: 10,
            blocks_per_aru: 1,
            sync_every: 2,
            mode: MtMode::Disjoint,
            seed: 3,
        };
        let report = w.run(&ld).unwrap();
        assert_eq!(report.arus_committed, 10);
        // Single-threaded sync commits can never batch.
        assert_eq!(ld.stats().flush_batch_max, 1);
    }

    #[test]
    fn churn_mode_wraps_the_log_and_keeps_the_cleaner_busy() {
        // A deliberately tiny disk so the overwrite churn wraps the log.
        let ld = Lld::format(
            MemDisk::new(512 + 2 * 64 * 1024 + 24 * 8 * 512),
            &LldConfig {
                block_size: 512,
                segment_bytes: 8 * 512,
                max_blocks: Some(512),
                max_lists: Some(64),
                ..LldConfig::default()
            },
        )
        .unwrap();
        let w = MtWorkload {
            threads: 4,
            arus_per_thread: 100,
            blocks_per_aru: 2,
            sync_every: 4,
            mode: MtMode::Churn,
            seed: 13,
        };
        let report = w.run(&ld).unwrap();
        assert_eq!(report.arus_committed, 400);
        assert_eq!(report.blocks_written, 800);
        let stats = ld.stats();
        assert_eq!(stats.arus_committed, 400);
        assert!(stats.cleaner_runs > 0, "churn must trigger the cleaner");
        assert!(ld.active_arus().is_empty());
    }

    #[test]
    fn hot_shard_mode_rewrites_without_conflicts() {
        let ld = ld();
        let w = MtWorkload {
            threads: 4,
            arus_per_thread: 20,
            blocks_per_aru: 2,
            sync_every: 0,
            mode: MtMode::HotShard,
            seed: 11,
        };
        let report = w.run(&ld).unwrap();
        assert_eq!(report.arus_committed, 80);
        assert_eq!(report.blocks_written, 160);
        assert_eq!(report.ops, 80 * 4);
        let stats = ld.stats();
        assert_eq!(stats.arus_committed, 80);
        assert_eq!(stats.commit_conflicts, 0);
        // Only the setup allocated blocks: threads * blocks_per_aru.
        assert_eq!(stats.new_blocks, 8);
        assert!(ld.active_arus().is_empty());
    }
}
