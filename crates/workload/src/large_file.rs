//! The large-file benchmark (Figure 6 of the paper).

use crate::{pattern_fill, rng};
use ld_core::LogicalDisk;
use ld_minixfs::{Ino, MinixFs, Result};

/// The five phases of the large-file benchmark, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LargeFilePhase {
    /// Sequential write of the whole file.
    Write1,
    /// Sequential read.
    Read1,
    /// Random-order re-write of every chunk.
    Write2,
    /// Random-order read of every chunk.
    Read2,
    /// Sequential re-read (after the random writes have scattered the
    /// file across the log).
    Read3,
}

impl LargeFilePhase {
    /// All five phases in benchmark order.
    pub const ALL: [LargeFilePhase; 5] = [
        LargeFilePhase::Write1,
        LargeFilePhase::Read1,
        LargeFilePhase::Write2,
        LargeFilePhase::Read2,
        LargeFilePhase::Read3,
    ];

    /// The paper's label for the phase.
    pub fn label(self) -> &'static str {
        match self {
            LargeFilePhase::Write1 => "write1",
            LargeFilePhase::Read1 => "read1",
            LargeFilePhase::Write2 => "write2",
            LargeFilePhase::Read2 => "read2",
            LargeFilePhase::Read3 => "read3",
        }
    }
}

/// One large file written and read sequentially and in random order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LargeFileWorkload {
    /// Total file size in bytes.
    pub size: u64,
    /// I/O unit for every phase.
    pub chunk: usize,
    /// Seed for the random phase orders.
    pub seed: u64,
}

impl LargeFileWorkload {
    /// The paper's 78.125-MByte file, accessed in 4-KByte chunks.
    pub fn paper() -> Self {
        LargeFileWorkload {
            size: 78_125 * 1000, // 78.125 MB
            chunk: 4096,
            seed: 1996,
        }
    }

    /// A reduced configuration for fast tests.
    pub fn tiny(size: u64, chunk: usize) -> Self {
        LargeFileWorkload {
            size,
            chunk,
            seed: 7,
        }
    }

    fn chunk_count(&self) -> u64 {
        self.size.div_ceil(self.chunk as u64)
    }

    fn chunk_len(&self, idx: u64) -> usize {
        let start = idx * self.chunk as u64;
        (self.size - start).min(self.chunk as u64) as usize
    }

    /// Creates the file (empty). Call once before running phases.
    ///
    /// # Errors
    ///
    /// File-system errors.
    pub fn setup<L: LogicalDisk>(&self, fs: &mut MinixFs<L>) -> Result<Ino> {
        fs.create("/large.bin")
    }

    /// Runs one phase. Read phases verify data integrity.
    ///
    /// # Errors
    ///
    /// File-system errors, or
    /// [`FsError::Corrupt`](ld_minixfs::FsError::Corrupt) on a data
    /// mismatch during a read phase.
    pub fn run_phase<L: LogicalDisk>(
        &self,
        fs: &mut MinixFs<L>,
        ino: Ino,
        phase: LargeFilePhase,
    ) -> Result<()> {
        let n = self.chunk_count();
        let order: Vec<u64> = match phase {
            LargeFilePhase::Write2 | LargeFilePhase::Read2 => {
                let mut v: Vec<u64> = (0..n).collect();
                let salt = if phase == LargeFilePhase::Write2 {
                    1
                } else {
                    2
                };
                rng(self.seed + salt).shuffle(&mut v);
                v
            }
            _ => (0..n).collect(),
        };
        // write2 rewrites with a different generation tag so read2/read3
        // verify the *new* data.
        let generation = match phase {
            LargeFilePhase::Write1 | LargeFilePhase::Read1 => 0u64,
            _ => 1u64,
        };
        let mut buf = vec![0u8; self.chunk];
        match phase {
            LargeFilePhase::Write1 | LargeFilePhase::Write2 => {
                for &idx in &order {
                    let len = self.chunk_len(idx);
                    pattern_fill(&mut buf[..len], idx ^ (generation << 56));
                    fs.write_at(ino, idx * self.chunk as u64, &buf[..len])?;
                }
                fs.flush()?;
            }
            LargeFilePhase::Read1 | LargeFilePhase::Read2 | LargeFilePhase::Read3 => {
                let mut expect = vec![0u8; self.chunk];
                for &idx in &order {
                    let len = self.chunk_len(idx);
                    let got = fs.read_at(ino, idx * self.chunk as u64, &mut buf[..len])?;
                    pattern_fill(&mut expect[..len], idx ^ (generation << 56));
                    if got != len || buf[..len] != expect[..len] {
                        return Err(ld_minixfs::FsError::Corrupt(format!(
                            "chunk {idx} mismatch in {}",
                            phase.label()
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_core::{Lld, LldConfig};
    use ld_disk::MemDisk;
    use ld_minixfs::{FsConfig, MinixFs};

    #[test]
    fn all_phases_verify() {
        let ld = Lld::format(
            MemDisk::new(16 << 20),
            &LldConfig {
                block_size: 512,
                segment_bytes: 16 * 512,
                max_blocks: Some(4096),
                max_lists: Some(64),
                ..LldConfig::default()
            },
        )
        .unwrap();
        let mut fs = MinixFs::format(
            ld,
            FsConfig {
                inode_count: 8,
                ..FsConfig::default()
            },
        )
        .unwrap();
        let w = LargeFileWorkload::tiny(100_000, 512);
        let ino = w.setup(&mut fs).unwrap();
        for phase in LargeFilePhase::ALL {
            w.run_phase(&mut fs, ino, phase).unwrap();
        }
        assert_eq!(fs.stat(ino).unwrap().size, 100_000);
        assert!(fs.verify().unwrap().is_consistent());
    }

    #[test]
    fn paper_size_is_78mb() {
        let w = LargeFileWorkload::paper();
        assert_eq!(w.size, 78_125_000);
        assert_eq!(w.chunk, 4096);
    }

    #[test]
    fn labels() {
        assert_eq!(LargeFilePhase::Write1.label(), "write1");
        assert_eq!(LargeFilePhase::ALL.len(), 5);
    }
}
