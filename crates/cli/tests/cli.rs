//! End-to-end tests of every `ldctl` subcommand against image files.

use ld_ctl::{run, CtlError};

fn temp_image(name: &str) -> String {
    let mut p = std::env::temp_dir();
    p.push(format!("ldctl-test-{}-{name}.img", std::process::id()));
    p.to_string_lossy().into_owned()
}

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

fn cleanup(image: &str) {
    let _ = std::fs::remove_file(image);
}

#[test]
fn help_prints_usage() {
    let out = run(&args(&["help"])).unwrap();
    assert!(out.contains("ldctl format"));
    let out = run(&[]).unwrap();
    assert!(out.contains("ldctl"));
}

#[test]
fn unknown_command_is_usage_error() {
    assert!(matches!(
        run(&args(&["frobnicate"])),
        Err(CtlError::Usage(_))
    ));
    assert!(matches!(run(&args(&["info"])), Err(CtlError::Usage(_))));
}

#[test]
fn format_info_dump_check_cycle() {
    let image = temp_image("bare");
    let out = run(&args(&[
        "format",
        &image,
        "--size",
        "8388608",
        "--block-size",
        "512",
        "--segment-bytes",
        "8192",
    ]))
    .unwrap();
    assert!(out.contains("formatted"), "{out}");

    let info = run(&args(&["info", &image])).unwrap();
    assert!(info.contains("block size:       512"), "{info}");
    assert!(info.contains("Concurrent"), "{info}");

    let dump = run(&args(&["dump", &image])).unwrap();
    assert!(dump.contains("0 allocated blocks"), "{dump}");

    let check = run(&args(&["check", &image])).unwrap();
    assert!(check.contains("0 orphaned blocks reclaimed"), "{check}");
    cleanup(&image);
}

#[test]
fn sequential_flag_is_respected() {
    let image = temp_image("seq");
    run(&args(&[
        "format",
        &image,
        "--size",
        "8388608",
        "--segment-bytes",
        "65536",
        "--sequential",
    ]))
    .unwrap();
    let info = run(&args(&["info", &image])).unwrap();
    assert!(info.contains("Sequential"), "{info}");
    cleanup(&image);
}

#[test]
fn fs_round_trip_put_cat_ls_stat_verify() {
    let image = temp_image("fs");
    run(&args(&[
        "format",
        &image,
        "--size",
        "16777216",
        "--segment-bytes",
        "65536",
        "--with-fs",
        "--inodes",
        "64",
    ]))
    .unwrap();

    // Put a local file in.
    let local = temp_image("local.txt");
    std::fs::write(&local, b"hello from ldctl").unwrap();
    let out = run(&args(&["put", &image, "/greeting.txt", &local])).unwrap();
    assert!(out.contains("wrote 16 bytes"), "{out}");

    let cat = run(&args(&["cat", &image, "/greeting.txt"])).unwrap();
    assert_eq!(cat, "hello from ldctl");

    let ls = run(&args(&["ls", &image, "/"])).unwrap();
    assert!(ls.contains("greeting.txt"), "{ls}");
    assert!(ls.contains("16"), "{ls}");

    let stat = run(&args(&["stat", &image, "/greeting.txt"])).unwrap();
    assert!(stat.contains("File"), "{stat}");
    assert!(stat.contains("16 bytes"), "{stat}");

    let verify = run(&args(&["verify", &image])).unwrap();
    assert!(verify.contains("consistent"), "{verify}");
    assert!(!verify.contains("INCONSISTENT"), "{verify}");

    // Overwrite through put (existing file path).
    std::fs::write(&local, b"v2").unwrap();
    run(&args(&["put", &image, "/greeting.txt", &local])).unwrap();
    let cat = run(&args(&["cat", &image, "/greeting.txt"])).unwrap();
    assert!(cat.starts_with("v2"), "{cat}");

    cleanup(&image);
    cleanup(&local);
}

#[test]
fn images_survive_reopen_across_commands() {
    // Every ldctl invocation reopens the image and runs recovery; state
    // must persist across invocations like a real disk.
    let image = temp_image("persist");
    run(&args(&[
        "format",
        &image,
        "--size",
        "16777216",
        "--segment-bytes",
        "65536",
        "--with-fs",
        "--inodes",
        "64",
    ]))
    .unwrap();
    let local = temp_image("data.bin");
    std::fs::write(&local, vec![7u8; 10_000]).unwrap();
    for i in 0..3 {
        run(&args(&["put", &image, &format!("/file{i}"), &local])).unwrap();
    }
    let ls = run(&args(&["ls", &image, "/"])).unwrap();
    assert!(ls.contains("file0") && ls.contains("file1") && ls.contains("file2"));
    let info = run(&args(&["info", &image])).unwrap();
    assert!(info.contains("allocated"), "{info}");
    cleanup(&image);
    cleanup(&local);
}

#[test]
fn stats_scripted_workload_human_and_json() {
    let out = run(&args(&["stats"])).unwrap();
    assert!(out.contains("LLD counters"), "{out}");
    assert!(out.contains("Latency histograms"), "{out}");
    assert!(out.contains("end_aru"), "{out}");
    assert!(out.contains("disk_write"), "{out}");
    assert!(out.contains("aborted"), "{out}");

    let json = run(&args(&["stats", "--json"])).unwrap();
    assert!(json.trim_start().starts_with('{'), "{json}");
    assert!(json.contains("\"end_aru\""), "{json}");
    assert!(json.contains("\"disk_write\""), "{json}");
    assert!(json.contains("\"aru_commit\""), "{json}");
    assert!(json.contains("\"aru_abort\""), "{json}");
    assert!(json.contains("\"fs_ops\""), "{json}");
}

#[test]
fn stats_on_image_includes_recovery() {
    let image = temp_image("stats");
    run(&args(&[
        "format",
        &image,
        "--size",
        "8388608",
        "--block-size",
        "512",
        "--segment-bytes",
        "8192",
    ]))
    .unwrap();
    let out = run(&args(&["stats", &image])).unwrap();
    assert!(out.contains("Recovery"), "{out}");
    assert!(out.contains("torn_tails_detected"), "{out}");
    let json = run(&args(&["stats", &image, "--json"])).unwrap();
    assert!(json.contains("\"recovery\""), "{json}");
    assert!(json.contains("\"torn_tails_detected\""), "{json}");
    cleanup(&image);
}

#[test]
fn stats_threaded_pipeline_reports_queue_histograms() {
    let json = run(&args(&["stats", "--threads", "2", "--pipeline", "--json"])).unwrap();
    assert!(json.contains("\"pipeline_queue_depth\""), "{json}");
    assert!(json.contains("\"pipeline_submit_ns\""), "{json}");
    assert!(json.contains("\"group_commit_batch\""), "{json}");
    // Without the flag the pipeline histograms must be absent.
    let json = run(&args(&["stats", "--threads", "2", "--json"])).unwrap();
    assert!(!json.contains("\"pipeline_queue_depth\""), "{json}");
}

#[test]
fn format_requires_size() {
    let image = temp_image("nosize");
    assert!(matches!(
        run(&args(&["format", &image])),
        Err(CtlError::Usage(_))
    ));
    cleanup(&image);
}
