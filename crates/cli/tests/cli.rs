//! End-to-end tests of every `ldctl` subcommand against image files.

use ld_ctl::{run, CtlError};

fn temp_image(name: &str) -> String {
    let mut p = std::env::temp_dir();
    p.push(format!("ldctl-test-{}-{name}.img", std::process::id()));
    p.to_string_lossy().into_owned()
}

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

fn cleanup(image: &str) {
    let _ = std::fs::remove_file(image);
}

#[test]
fn help_prints_usage() {
    let out = run(&args(&["help"])).unwrap();
    assert!(out.contains("ldctl format"));
    let out = run(&[]).unwrap();
    assert!(out.contains("ldctl"));
}

#[test]
fn unknown_command_is_usage_error() {
    assert!(matches!(
        run(&args(&["frobnicate"])),
        Err(CtlError::Usage(_))
    ));
    assert!(matches!(run(&args(&["info"])), Err(CtlError::Usage(_))));
}

#[test]
fn format_info_dump_check_cycle() {
    let image = temp_image("bare");
    let out = run(&args(&[
        "format",
        &image,
        "--size",
        "8388608",
        "--block-size",
        "512",
        "--segment-bytes",
        "8192",
    ]))
    .unwrap();
    assert!(out.contains("formatted"), "{out}");

    let info = run(&args(&["info", &image])).unwrap();
    assert!(info.contains("block size:       512"), "{info}");
    assert!(info.contains("Concurrent"), "{info}");

    let dump = run(&args(&["dump", &image])).unwrap();
    assert!(dump.contains("0 allocated blocks"), "{dump}");

    let check = run(&args(&["check", &image])).unwrap();
    assert!(check.contains("0 orphaned blocks reclaimed"), "{check}");
    cleanup(&image);
}

#[test]
fn sequential_flag_is_respected() {
    let image = temp_image("seq");
    run(&args(&[
        "format",
        &image,
        "--size",
        "8388608",
        "--segment-bytes",
        "65536",
        "--sequential",
    ]))
    .unwrap();
    let info = run(&args(&["info", &image])).unwrap();
    assert!(info.contains("Sequential"), "{info}");
    cleanup(&image);
}

#[test]
fn fs_round_trip_put_cat_ls_stat_verify() {
    let image = temp_image("fs");
    run(&args(&[
        "format",
        &image,
        "--size",
        "16777216",
        "--segment-bytes",
        "65536",
        "--with-fs",
        "--inodes",
        "64",
    ]))
    .unwrap();

    // Put a local file in.
    let local = temp_image("local.txt");
    std::fs::write(&local, b"hello from ldctl").unwrap();
    let out = run(&args(&["put", &image, "/greeting.txt", &local])).unwrap();
    assert!(out.contains("wrote 16 bytes"), "{out}");

    let cat = run(&args(&["cat", &image, "/greeting.txt"])).unwrap();
    assert_eq!(cat, "hello from ldctl");

    let ls = run(&args(&["ls", &image, "/"])).unwrap();
    assert!(ls.contains("greeting.txt"), "{ls}");
    assert!(ls.contains("16"), "{ls}");

    let stat = run(&args(&["stat", &image, "/greeting.txt"])).unwrap();
    assert!(stat.contains("File"), "{stat}");
    assert!(stat.contains("16 bytes"), "{stat}");

    let verify = run(&args(&["verify", &image])).unwrap();
    assert!(verify.contains("consistent"), "{verify}");
    assert!(!verify.contains("INCONSISTENT"), "{verify}");

    // Overwrite through put (existing file path).
    std::fs::write(&local, b"v2").unwrap();
    run(&args(&["put", &image, "/greeting.txt", &local])).unwrap();
    let cat = run(&args(&["cat", &image, "/greeting.txt"])).unwrap();
    assert!(cat.starts_with("v2"), "{cat}");

    cleanup(&image);
    cleanup(&local);
}

#[test]
fn images_survive_reopen_across_commands() {
    // Every ldctl invocation reopens the image and runs recovery; state
    // must persist across invocations like a real disk.
    let image = temp_image("persist");
    run(&args(&[
        "format",
        &image,
        "--size",
        "16777216",
        "--segment-bytes",
        "65536",
        "--with-fs",
        "--inodes",
        "64",
    ]))
    .unwrap();
    let local = temp_image("data.bin");
    std::fs::write(&local, vec![7u8; 10_000]).unwrap();
    for i in 0..3 {
        run(&args(&["put", &image, &format!("/file{i}"), &local])).unwrap();
    }
    let ls = run(&args(&["ls", &image, "/"])).unwrap();
    assert!(ls.contains("file0") && ls.contains("file1") && ls.contains("file2"));
    let info = run(&args(&["info", &image])).unwrap();
    assert!(info.contains("allocated"), "{info}");
    cleanup(&image);
    cleanup(&local);
}

#[test]
fn stats_scripted_workload_human_and_json() {
    let out = run(&args(&["stats"])).unwrap();
    assert!(out.contains("LLD counters"), "{out}");
    assert!(out.contains("Latency histograms"), "{out}");
    assert!(out.contains("end_aru"), "{out}");
    assert!(out.contains("disk_write"), "{out}");
    assert!(out.contains("aborted"), "{out}");

    let json = run(&args(&["stats", "--json"])).unwrap();
    assert!(json.trim_start().starts_with('{'), "{json}");
    assert!(json.contains("\"end_aru\""), "{json}");
    assert!(json.contains("\"disk_write\""), "{json}");
    assert!(json.contains("\"aru_commit\""), "{json}");
    assert!(json.contains("\"aru_abort\""), "{json}");
    assert!(json.contains("\"fs_ops\""), "{json}");
}

#[test]
fn stats_on_image_includes_recovery() {
    let image = temp_image("stats");
    run(&args(&[
        "format",
        &image,
        "--size",
        "8388608",
        "--block-size",
        "512",
        "--segment-bytes",
        "8192",
    ]))
    .unwrap();
    let out = run(&args(&["stats", &image])).unwrap();
    assert!(out.contains("Recovery"), "{out}");
    assert!(out.contains("torn_tails_detected"), "{out}");
    let json = run(&args(&["stats", &image, "--json"])).unwrap();
    assert!(json.contains("\"recovery\""), "{json}");
    assert!(json.contains("\"torn_tails_detected\""), "{json}");
    cleanup(&image);
}

#[test]
fn stats_threaded_pipeline_reports_queue_histograms() {
    let json = run(&args(&["stats", "--threads", "2", "--pipeline", "--json"])).unwrap();
    assert!(json.contains("\"pipeline_queue_depth\""), "{json}");
    assert!(json.contains("\"pipeline_submit_ns\""), "{json}");
    assert!(json.contains("\"group_commit_batch\""), "{json}");
    // Without the flag the pipeline histograms must be absent.
    let json = run(&args(&["stats", "--threads", "2", "--json"])).unwrap();
    assert!(!json.contains("\"pipeline_queue_depth\""), "{json}");
}

#[test]
fn format_requires_size() {
    let image = temp_image("nosize");
    assert!(matches!(
        run(&args(&["format", &image])),
        Err(CtlError::Usage(_))
    ));
    cleanup(&image);
}

#[test]
fn stats_snapshot_file_round_trip() {
    let json = run(&args(&["stats", "--json", "--threads", "2"])).unwrap();
    let path = temp_image("snap.json");
    std::fs::write(&path, &json).unwrap();
    // Rendering a saved snapshot must match rendering it live: same
    // counters, no workload run.
    let out = run(&args(&["stats", "--snapshot-file", &path])).unwrap();
    assert!(out.contains("LLD counters"), "{out}");
    assert!(out.contains("arus_committed               100"), "{out}");
    // Garbage input is a parse error, not a panic.
    std::fs::write(&path, "{not json").unwrap();
    assert!(matches!(
        run(&args(&["stats", "--snapshot-file", &path])),
        Err(CtlError::Parse(_))
    ));
    cleanup(&path);
}

#[test]
fn trace_human_table_lists_stage_events() {
    let out = run(&args(&["trace", "--threads", "2"])).unwrap();
    assert!(out.contains("trace events"), "{out}");
    assert!(out.contains("QueueWait"), "{out}");
    assert!(out.contains("Seal"), "{out}");
    assert!(out.contains("BarrierWait"), "{out}");
    assert!(out.contains("GroupCommit"), "{out}");
}

#[test]
fn trace_chrome_export_is_valid_and_cross_thread() {
    let path = temp_image("trace.json");
    let report = run(&args(&[
        "trace",
        "--chrome",
        "--threads",
        "4",
        "--pipeline",
        "--out",
        &path,
    ]))
    .unwrap();
    assert!(report.contains("wrote"), "{report}");
    let text = std::fs::read_to_string(&path).unwrap();
    let v = ld_core::obs::json::parse(&text).unwrap();
    let events = v.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
    assert!(!events.is_empty());
    // Complete ("X") span events must appear on more than one thread:
    // callers run commit/queue_wait, the pipeline I/O thread runs
    // media_write/barrier_ack.
    let mut span_tids = std::collections::BTreeSet::new();
    let mut names = std::collections::BTreeSet::new();
    for e in events {
        if e.get("ph").and_then(|p| p.as_str()) == Some("X") {
            span_tids.insert(e.get("tid").and_then(|t| t.as_u64()).unwrap());
            names.insert(e.get("name").and_then(|n| n.as_str()).unwrap().to_string());
        }
    }
    assert!(
        span_tids.len() > 1,
        "spans on one thread only: {span_tids:?}"
    );
    for required in [
        "commit",
        "queue_wait",
        "seal",
        "barrier_wait",
        "media_write",
    ] {
        assert!(names.contains(required), "missing {required} in {names:?}");
    }
    cleanup(&path);
}

#[test]
fn top_renders_interval_deltas_and_writes_jsonl() {
    let path = temp_image("samples.jsonl");
    let out = run(&args(&[
        "top",
        "--threads",
        "2",
        "--hz",
        "500",
        "--jsonl",
        &path,
    ]))
    .unwrap();
    assert!(out.contains("samples over"), "{out}");
    assert!(out.contains("commits"), "{out}");
    assert!(out.contains("totals:"), "{out}");
    // The JSONL sidecar parses line by line.
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.lines().count() >= 2, "{text}");
    for line in text.lines() {
        let v = ld_core::obs::json::parse(line).unwrap();
        assert!(v.get("t_ms").is_some());
        assert!(v.get("snapshot").is_some());
    }
    cleanup(&path);
}

#[test]
fn top_rejects_bad_hz() {
    assert!(matches!(
        run(&args(&["top", "--hz", "0"])),
        Err(CtlError::Usage(_))
    ));
}

#[test]
fn flight_renders_a_real_dump() {
    // Produce a genuine flight dump by configuring a flight dir and
    // asking the disk for a manual dump.
    let dir = temp_image("flightdir");
    let _ = std::fs::remove_file(&dir);
    let ld = ld_core::Lld::format(
        ld_disk::MemDisk::new(4 << 20),
        &ld_core::LldConfig {
            flight_dir: Some(std::path::PathBuf::from(&dir)),
            ..ld_core::LldConfig::default()
        },
    )
    .unwrap();
    ld.flush().unwrap();
    let dump = ld.flight_dump("test_reason", "test detail").unwrap();
    let out = run(&args(&["flight", dump.to_str().unwrap()])).unwrap();
    assert!(out.contains("test_reason"), "{out}");
    assert!(out.contains("test detail"), "{out}");
    assert!(out.contains("LLD counters"), "{out}");
    drop(ld);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flight_on_garbage_is_a_parse_error() {
    let path = temp_image("badflight.json");
    std::fs::write(&path, "][").unwrap();
    assert!(matches!(
        run(&args(&["flight", &path])),
        Err(CtlError::Parse(_))
    ));
    cleanup(&path);
}
