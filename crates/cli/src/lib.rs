//! Implementation of the `ldctl` command-line tool.
//!
//! Each subcommand is a function from parsed arguments to a printable
//! report, so the whole surface is unit-testable without spawning
//! processes. See [`run`] for the dispatch table and `ldctl help` for
//! usage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ld_core::obs::json;
use ld_core::{ConcurrencyMode, Ctx, ListId, Lld, LldConfig, ObsConfig, ObsSnapshot, Position};
use ld_disk::{DiskModel, FileDisk, LatencyDisk, MemDisk, SimDisk};
use ld_minixfs::{FsConfig, MinixFs};
use std::fmt::Write as _;

/// Errors produced by `ldctl` commands.
#[derive(Debug)]
pub enum CtlError {
    /// Bad command line.
    Usage(String),
    /// A device error.
    Disk(ld_disk::DiskError),
    /// A logical-disk error.
    Ld(ld_core::LldError),
    /// A file-system error.
    Fs(ld_minixfs::FsError),
    /// Local file I/O.
    Io(std::io::Error),
    /// Malformed snapshot / trace / sampler data handed to a command.
    Parse(String),
}

impl std::fmt::Display for CtlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CtlError::Usage(msg) => write!(f, "usage error: {msg}"),
            CtlError::Disk(e) => write!(f, "{e}"),
            CtlError::Ld(e) => write!(f, "{e}"),
            CtlError::Fs(e) => write!(f, "{e}"),
            CtlError::Io(e) => write!(f, "{e}"),
            CtlError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for CtlError {}

impl From<ld_disk::DiskError> for CtlError {
    fn from(e: ld_disk::DiskError) -> Self {
        CtlError::Disk(e)
    }
}
impl From<ld_core::LldError> for CtlError {
    fn from(e: ld_core::LldError) -> Self {
        CtlError::Ld(e)
    }
}
impl From<ld_minixfs::FsError> for CtlError {
    fn from(e: ld_minixfs::FsError) -> Self {
        CtlError::Fs(e)
    }
}
impl From<std::io::Error> for CtlError {
    fn from(e: std::io::Error) -> Self {
        CtlError::Io(e)
    }
}

/// Result alias for `ldctl` commands.
pub type Result<T> = std::result::Result<T, CtlError>;

/// Usage text.
pub const USAGE: &str = "\
ldctl — Logical Disk image tool

  ldctl format <image> --size <bytes> [--block-size N] [--segment-bytes N]
               [--sequential] [--with-fs [--inodes N]]
  ldctl info <image>              print superblock and recovery summary
  ldctl check <image>             recover, reclaim orphans, report
  ldctl dump <image>              list allocated lists and blocks
  ldctl ls <image> <path>         list a directory of the file system
  ldctl stat <image> <path>       show file metadata
  ldctl cat <image> <path>        print a file's contents (lossy UTF-8)
  ldctl put <image> <path> <local-file>   copy a local file in
  ldctl verify <image>            run the file-system consistency check
  ldctl stats [<image>] [--json] [--threads N] [--pipeline]
              [--snapshot-file <path>]
                                  observability snapshot: counters, latency
                                  histograms, ARU spans, trace events; with
                                  no image, runs a scripted in-memory
                                  workload on the simulated disk; --threads N
                                  drives it from N OS threads sharing the
                                  disk (group-commit batching under load);
                                  --pipeline routes writes through the
                                  pipelined device layer (adds the queue
                                  depth / submission latency histograms);
                                  --snapshot-file renders a snapshot saved
                                  earlier with `stats --json` instead of
                                  running anything
  ldctl trace [--chrome] [--threads N] [--pipeline] [--out FILE]
              [--snapshot-file <path>]
                                  run the multi-threaded workload (default
                                  8 threads) with a large trace ring and
                                  export the commit trace; --chrome emits
                                  Chrome Trace Event Format for
                                  chrome://tracing / Perfetto, otherwise a
                                  human-readable event table
  ldctl top [--threads N] [--pipeline] [--hz N] [--jsonl FILE]
                                  run the workload with the background
                                  metrics sampler on (default 200 Hz) and
                                  print per-interval commit / flush / block
                                  rates; --jsonl also writes the raw
                                  samples as JSON Lines
  ldctl flight <dump-file>        pretty-print a crash flight-recorder
                                  dump (see LD_ARU_FLIGHT_DIR)
  ldctl help                      this text
";

fn parse_u64(args: &[String], flag: &str) -> Result<Option<u64>> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        let v = args
            .get(i + 1)
            .ok_or_else(|| CtlError::Usage(format!("{flag} needs a value")))?;
        return v
            .parse()
            .map(Some)
            .map_err(|_| CtlError::Usage(format!("{flag}: not a number: {v}")));
    }
    Ok(None)
}

fn parse_str<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        return args
            .get(i + 1)
            .map(|s| Some(s.as_str()))
            .ok_or_else(|| CtlError::Usage(format!("{flag} needs a value")));
    }
    Ok(None)
}

/// Flags whose next argument is a value, not an operand — used when
/// scanning for a bare operand such as the image path.
const VALUE_FLAGS: &[&str] = &["--threads", "--snapshot-file", "--out", "--jsonl", "--hz"];

fn bare_operand(args: &[String]) -> Option<&String> {
    args.iter()
        .enumerate()
        .find(|(i, a)| {
            !a.starts_with("--") && (*i == 0 || !VALUE_FLAGS.contains(&args[i - 1].as_str()))
        })
        .map(|(_, a)| a)
}

/// `ldctl format`.
pub fn cmd_format(image: &str, args: &[String]) -> Result<String> {
    let size = parse_u64(args, "--size")?
        .ok_or_else(|| CtlError::Usage("format requires --size <bytes>".into()))?;
    let config = LldConfig {
        block_size: parse_u64(args, "--block-size")?.unwrap_or(4096) as usize,
        segment_bytes: parse_u64(args, "--segment-bytes")?.unwrap_or(512 * 1024) as usize,
        concurrency: if args.iter().any(|a| a == "--sequential") {
            ConcurrencyMode::Sequential
        } else {
            ConcurrencyMode::Concurrent
        },
        ..LldConfig::default()
    };
    let device = FileDisk::create(image, size)?;
    let ld = Lld::format(device, &config)?;
    let mut out = format!(
        "formatted {image}: {} segments of {} KiB, {} byte blocks, {:?} ARUs\n",
        ld.n_segments(),
        ld.segment_bytes() / 1024,
        ld.block_size(),
        config.concurrency,
    );
    if args.iter().any(|a| a == "--with-fs") {
        let inodes = parse_u64(args, "--inodes")?.unwrap_or(4096) as u32;
        ld.flush()?;
        let fs = MinixFs::format(
            ld,
            FsConfig {
                inode_count: inodes,
                ..FsConfig::default()
            },
        )?;
        let _ = writeln!(out, "created MinixLLD file system with {inodes} inodes");
        drop(fs);
    } else {
        ld.flush()?;
    }
    Ok(out)
}

/// `ldctl info`.
pub fn cmd_info(image: &str) -> Result<String> {
    let device = FileDisk::open(image)?;
    let (_, concurrency, visibility) = Lld::probe(&device)?;
    let (ld, report) = Lld::recover_with(
        device,
        &LldConfig {
            concurrency,
            visibility,
            check_on_recovery: false,
            ..LldConfig::default()
        },
    )?;
    let mut out = String::new();
    let _ = writeln!(out, "image:            {image}");
    let _ = writeln!(out, "block size:       {} bytes", ld.block_size());
    let _ = writeln!(out, "segment size:     {} bytes", ld.segment_bytes());
    let _ = writeln!(
        out,
        "segments:         {} total, {} free",
        ld.n_segments(),
        ld.free_segments()
    );
    let _ = writeln!(out, "concurrency:      {:?}", ld.concurrency());
    let _ = writeln!(out, "read visibility:  {:?}", ld.visibility());
    let _ = writeln!(
        out,
        "allocated:        {} blocks, {} lists",
        ld.allocated_block_count(),
        ld.allocated_list_count()
    );
    let _ = writeln!(out, "checkpoint seq:   {}", report.checkpoint_seq);
    let _ = writeln!(
        out,
        "recovery:         {} segments scanned, {} replayed, {} records, {} ARUs committed, {} discarded",
        report.segments_scanned,
        report.segments_replayed,
        report.records_applied,
        report.committed_arus,
        report.discarded_arus
    );
    let _ = writeln!(
        out,
        "restart:          {} snapshot slabs, {} threads",
        report.snap_shards, report.threads_used
    );
    let _ = writeln!(
        out,
        "restart phases:   load {}us, scan {}us, replay {}us, finalize {}us",
        report.snapshot_load_ns / 1_000,
        report.scan_ns / 1_000,
        report.replay_ns / 1_000,
        report.finalize_ns / 1_000
    );
    Ok(out)
}

/// `ldctl check`: recover with the orphan check and persist the result.
pub fn cmd_check(image: &str) -> Result<String> {
    let device = FileDisk::open(image)?;
    let (ld, report) = Lld::recover(device)?;
    ld.flush()?;
    Ok(format!(
        "recovered {image}: {} ARUs committed, {} discarded, {} orphaned blocks reclaimed\n",
        report.committed_arus, report.discarded_arus, report.orphan_blocks_freed
    ))
}

/// `ldctl dump`.
pub fn cmd_dump(image: &str) -> Result<String> {
    let device = FileDisk::open(image)?;
    let (ld, _) = Lld::recover_with(
        device,
        &LldConfig {
            check_on_recovery: false,
            ..LldConfig::default()
        },
    )?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} allocated blocks on {} lists",
        ld.allocated_block_count(),
        ld.allocated_list_count()
    );
    // List ids are small integers in practice; scan a generous range.
    let mut found = 0u64;
    let mut raw = 1u64;
    while found < ld.allocated_list_count() && raw < 1_000_000 {
        let list = ListId::new(raw);
        if let Ok(blocks) = ld.list_blocks(Ctx::Simple, list) {
            let _ = writeln!(out, "  {list}: {} blocks {:?}", blocks.len(), blocks);
            found += 1;
        }
        raw += 1;
    }
    Ok(out)
}

fn open_fs(image: &str) -> Result<MinixFs<Lld<FileDisk>>> {
    let device = FileDisk::open(image)?;
    let (ld, _) = Lld::recover(device)?;
    Ok(MinixFs::mount(ld, FsConfig::default())?)
}

/// `ldctl ls`.
pub fn cmd_ls(image: &str, path: &str) -> Result<String> {
    let mut fs = open_fs(image)?;
    let mut out = String::new();
    let mut entries = fs.readdir(path)?;
    entries.sort_by(|a, b| a.name.cmp(&b.name));
    for e in entries {
        let st = fs.stat(e.ino)?;
        let _ = writeln!(
            out,
            "{:>10}  {:?}  {} ({})",
            st.size, st.kind, e.name, e.ino
        );
    }
    Ok(out)
}

/// `ldctl stat`.
pub fn cmd_stat(image: &str, path: &str) -> Result<String> {
    let mut fs = open_fs(image)?;
    let ino = fs.lookup(path)?;
    let st = fs.stat(ino)?;
    Ok(format!(
        "{path}: {:?}, {} bytes, {} blocks, {} links, {}\n",
        st.kind, st.size, st.blocks, st.nlinks, st.ino
    ))
}

/// `ldctl cat`.
pub fn cmd_cat(image: &str, path: &str) -> Result<String> {
    let mut fs = open_fs(image)?;
    let ino = fs.lookup(path)?;
    let st = fs.stat(ino)?;
    let mut buf = vec![0u8; st.size as usize];
    fs.read_at(ino, 0, &mut buf)?;
    Ok(String::from_utf8_lossy(&buf).into_owned())
}

/// `ldctl put`.
pub fn cmd_put(image: &str, path: &str, local: &str) -> Result<String> {
    let data = std::fs::read(local)?;
    let mut fs = open_fs(image)?;
    let ino = match fs.lookup(path) {
        Ok(ino) => ino,
        Err(ld_minixfs::FsError::NotFound(_)) => fs.create(path)?,
        Err(e) => return Err(e.into()),
    };
    fs.write_at(ino, 0, &data)?;
    fs.flush()?;
    Ok(format!("wrote {} bytes to {path}\n", data.len()))
}

/// `ldctl verify`.
pub fn cmd_verify(image: &str) -> Result<String> {
    let mut fs = open_fs(image)?;
    let report = fs.verify()?;
    let mut out = format!(
        "{} files, {} directories: {}\n",
        report.files,
        report.dirs,
        if report.is_consistent() {
            "consistent"
        } else {
            "INCONSISTENT"
        }
    );
    for p in &report.problems {
        let _ = writeln!(out, "  problem: {p}");
    }
    Ok(out)
}

/// `ldctl stats`: print an observability snapshot.
///
/// With an image, recovers it and reports the recovery counters (torn
/// tails, replayed segments) plus the live stats of the recovered disk.
/// Without an image, runs a small scripted workload — file creates,
/// writes, reads, a delete, one explicitly committed ARU and one
/// aborted ARU — on a simulated in-memory disk, so every layer of the
/// snapshot (disk service times, LLD counters, histograms, spans,
/// trace events, file-system ops) is exercised. `--threads N` (no
/// image) instead drives the simulated disk from N OS threads running
/// synchronous disjoint ARUs, so the group-commit counters and the
/// batch-size histogram carry real contention.
pub fn cmd_stats(args: &[String]) -> Result<String> {
    let json = args.iter().any(|a| a == "--json");
    let threads = parse_u64(args, "--threads")?.unwrap_or(1) as usize;
    let pipeline = args.iter().any(|a| a == "--pipeline");
    let snapshot_file = parse_str(args, "--snapshot-file")?;
    // Skip flags and their values when looking for the image operand.
    let image = bare_operand(args);

    let snap = match (snapshot_file, image) {
        (Some(path), _) => {
            let text = std::fs::read_to_string(path)?;
            ObsSnapshot::from_json(&text).map_err(CtlError::Parse)?
        }
        (None, Some(image)) => {
            let device = FileDisk::open(image)?;
            let (ld, _) = Lld::recover(device)?;
            ld.obs_snapshot()
        }
        (None, None) if threads > 1 => threaded_snapshot(threads, pipeline)?,
        (None, None) => scripted_snapshot()?,
    };
    if json {
        Ok(format!("{}\n", snap.to_json()))
    } else {
        Ok(format!("{snap}"))
    }
}

/// The no-image `stats` workload (see [`cmd_stats`]).
fn scripted_snapshot() -> Result<ld_core::ObsSnapshot> {
    let sim = SimDisk::new(MemDisk::new(8 << 20), DiskModel::hp_c3010());
    let ld = Lld::format(
        sim,
        &LldConfig {
            block_size: 512,
            segment_bytes: 16 * 512,
            ..LldConfig::default()
        },
    )?;
    let mut fs = MinixFs::format(
        ld,
        FsConfig {
            inode_count: 64,
            ..FsConfig::default()
        },
    )?;

    // File-system traffic: creates, writes, reads, a delete, a flush.
    let a = fs.create("/a.txt")?;
    fs.write_at(a, 0, &[0x61u8; 2048])?;
    let b = fs.create("/b.txt")?;
    fs.write_at(b, 0, &[0x62u8; 512])?;
    let mut buf = vec![0u8; 2048];
    fs.read_at(a, 0, &mut buf)?;
    fs.unlink("/b.txt")?;
    fs.flush()?;

    // Direct logical-disk traffic: one committed ARU (with a
    // copy-on-write of a committed block) and one aborted ARU.
    let ld = fs.ld();
    let aru = ld.begin_aru()?;
    let list = ld.new_list(Ctx::Aru(aru))?;
    let blk = ld.new_block(Ctx::Aru(aru), list, Position::First)?;
    ld.write(Ctx::Aru(aru), blk, &[1u8; 512])?;
    ld.end_aru(aru)?;
    let aru = ld.begin_aru()?;
    ld.write(Ctx::Aru(aru), blk, &[2u8; 512])?;
    ld.abort_aru(aru)?;
    ld.flush()?;

    let mut snap = fs.ld().obs_snapshot();
    snap.fs_ops = fs.stats().as_named_counters();
    Ok(snap)
}

/// The `stats --threads N` workload: N OS threads share one simulated
/// logical disk through its `&self` interface, each committing a
/// stream of synchronous disjoint ARUs (see [`cmd_stats`]).
///
/// The simulated device is wrapped in a [`LatencyDisk`] so each write
/// barrier costs real wall-clock time: that is the window in which
/// concurrent durability callers pile into one group-commit batch, and
/// without it the batching counters this command exists to show would
/// stay at 1. With `pipeline`, writes stream through the pipelined
/// device layer instead, so the snapshot carries its queue-depth and
/// submission-latency histograms and the in-flight barrier gauge.
fn threaded_snapshot(threads: usize, pipeline: bool) -> Result<ld_core::ObsSnapshot> {
    let sim = SimDisk::new(MemDisk::new(16 << 20), DiskModel::hp_c3010());
    let ld = Lld::format(
        LatencyDisk::new(sim, std::time::Duration::from_micros(500)),
        &LldConfig {
            block_size: 512,
            segment_bytes: 16 * 512,
            pipeline,
            ..LldConfig::default()
        },
    )?;
    let wl = ld_workload::MtWorkload {
        threads,
        arus_per_thread: 50,
        blocks_per_aru: 2,
        sync_every: 1,
        mode: ld_workload::MtMode::Disjoint,
        seed: 1,
    };
    wl.run(&ld)?;
    Ok(ld.obs_snapshot())
}

/// The `trace` workload: the multi-threaded disjoint-ARU workload of
/// [`cmd_stats`]`--threads`, but with a trace ring large enough to hold
/// every stage event of the run, so the exported trace is complete
/// rather than a tail.
fn traced_snapshot(threads: usize, pipeline: bool) -> Result<ObsSnapshot> {
    let sim = SimDisk::new(MemDisk::new(16 << 20), DiskModel::hp_c3010());
    let ld = Lld::format(
        LatencyDisk::new(sim, std::time::Duration::from_micros(500)),
        &LldConfig {
            block_size: 512,
            segment_bytes: 16 * 512,
            pipeline,
            obs: ObsConfig {
                ring_capacity: 1 << 15,
                ..ObsConfig::default()
            },
            ..LldConfig::default()
        },
    )?;
    let wl = ld_workload::MtWorkload {
        threads,
        arus_per_thread: 50,
        blocks_per_aru: 2,
        sync_every: 1,
        mode: ld_workload::MtMode::Disjoint,
        seed: 1,
    };
    wl.run(&ld)?;
    Ok(ld.obs_snapshot())
}

/// `ldctl trace`: run the multi-threaded workload and export its
/// commit trace.
///
/// With `--chrome`, emits Chrome Trace Event Format (load the file at
/// `chrome://tracing` or <https://ui.perfetto.dev>): one row per OS
/// thread, one nested span stack per traced commit, instant markers
/// for group commits and faults. Without it, prints a human-readable
/// event table. `--snapshot-file <path>` converts a previously saved
/// `stats --json` snapshot instead of running a workload; `--out FILE`
/// writes the export to a file instead of stdout.
pub fn cmd_trace(args: &[String]) -> Result<String> {
    let chrome = args.iter().any(|a| a == "--chrome");
    let threads = parse_u64(args, "--threads")?.unwrap_or(8) as usize;
    let pipeline = args.iter().any(|a| a == "--pipeline");
    let out_file = parse_str(args, "--out")?;
    let snap = match parse_str(args, "--snapshot-file")? {
        Some(path) => {
            let text = std::fs::read_to_string(path)?;
            ObsSnapshot::from_json(&text).map_err(CtlError::Parse)?
        }
        None => traced_snapshot(threads, pipeline)?,
    };
    let rendered = if chrome {
        snap.to_chrome_trace()
    } else {
        render_trace_table(&snap)
    };
    match out_file {
        Some(path) => {
            std::fs::write(path, &rendered)?;
            Ok(format!(
                "wrote {} bytes ({} events, {} dropped) to {path}\n",
                rendered.len(),
                snap.events.len(),
                snap.dropped_events
            ))
        }
        None => Ok(rendered),
    }
}

/// The human-readable rendering of a trace (see [`cmd_trace`]).
fn render_trace_table(snap: &ObsSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} trace events ({} dropped by ring wraparound)",
        snap.events.len(),
        snap.dropped_events
    );
    let _ = writeln!(out, "{:>6} {:>10}  {:<6} event", "seq", "wall", "thread");
    for e in &snap.events {
        let _ = writeln!(
            out,
            "{:>6} {:>8}us  tid{:<3} {:?}",
            e.seq, e.wall_us, e.tid, e.event
        );
    }
    out
}

/// `ldctl top`: run the multi-threaded workload with the metrics
/// sampler enabled and render the sampled time series as per-interval
/// rates, `top`-style.
///
/// `--hz N` sets the sampling frequency (default 200), `--jsonl FILE`
/// additionally writes the raw samples as JSON Lines (one
/// `{"t_ms":…,"snapshot":{…}}` object per line) for offline analysis.
pub fn cmd_top(args: &[String]) -> Result<String> {
    let threads = parse_u64(args, "--threads")?.unwrap_or(4) as usize;
    let pipeline = args.iter().any(|a| a == "--pipeline");
    let hz = parse_u64(args, "--hz")?.unwrap_or(200) as f64;
    if !(hz > 0.0 && hz <= 1000.0) {
        return Err(CtlError::Usage("--hz must be in (0, 1000]".into()));
    }
    let jsonl_file = parse_str(args, "--jsonl")?;
    let jsonl = sampled_jsonl(threads, pipeline, hz)?;
    if let Some(path) = jsonl_file {
        std::fs::write(path, &jsonl)?;
    }
    render_top(&jsonl)
}

/// Runs the multi-threaded workload with the background metrics
/// sampler on, returning the captured time series as JSON Lines.
fn sampled_jsonl(threads: usize, pipeline: bool, hz: f64) -> Result<String> {
    let sim = SimDisk::new(MemDisk::new(16 << 20), DiskModel::hp_c3010());
    let ld = Lld::format(
        LatencyDisk::new(sim, std::time::Duration::from_micros(500)),
        &LldConfig {
            block_size: 512,
            segment_bytes: 16 * 512,
            pipeline,
            metrics_hz: Some(hz),
            ..LldConfig::default()
        },
    )?;
    // Bracket the run with explicit samples so the series always has a
    // zero baseline and a final data point, even when the workload
    // finishes inside one sampling period.
    ld.sample_now();
    let wl = ld_workload::MtWorkload {
        threads,
        arus_per_thread: 100,
        blocks_per_aru: 2,
        sync_every: 1,
        mode: ld_workload::MtMode::Disjoint,
        seed: 1,
    };
    wl.run(&ld)?;
    ld.sample_now();
    Ok(ld.sampler_jsonl())
}

/// Parses sampler JSON Lines back into `(t_ms, snapshot)` pairs.
fn parse_jsonl(jsonl: &str) -> Result<Vec<(u64, ObsSnapshot)>> {
    let mut samples = Vec::new();
    for (n, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| CtlError::Parse(format!("line {}: {e}", n + 1)))?;
        let t_ms = v
            .get("t_ms")
            .and_then(json::Value::as_u64)
            .ok_or_else(|| CtlError::Parse(format!("line {}: missing t_ms", n + 1)))?;
        let snap = v
            .get("snapshot")
            .ok_or_else(|| CtlError::Parse(format!("line {}: missing snapshot", n + 1)))
            .and_then(|s| {
                ObsSnapshot::from_value(s)
                    .map_err(|e| CtlError::Parse(format!("line {}: {e}", n + 1)))
            })?;
        samples.push((t_ms, snap));
    }
    Ok(samples)
}

/// The `top` table: per-interval deltas of the headline counters (see
/// [`cmd_top`]).
fn render_top(jsonl: &str) -> Result<String> {
    let samples = parse_jsonl(jsonl)?;
    if samples.len() < 2 {
        return Err(CtlError::Parse(format!(
            "need at least 2 samples to form an interval, got {}",
            samples.len()
        )));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} samples over {} ms",
        samples.len(),
        samples.last().map(|(t, _)| *t).unwrap_or(0)
    );
    let _ = writeln!(
        out,
        "{:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "t_ms", "commits", "batches", "blocks", "seals", "stalls", "inflight"
    );
    let d = |a: u64, b: u64| b.saturating_sub(a);
    for pair in samples.windows(2) {
        let (_, prev) = &pair[0];
        let (t, cur) = &pair[1];
        let _ = writeln!(
            out,
            "{:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            t,
            d(prev.lld.arus_committed, cur.lld.arus_committed),
            d(prev.lld.flush_batches, cur.lld.flush_batches),
            d(prev.lld.data_blocks_written, cur.lld.data_blocks_written),
            d(prev.lld.segments_sealed, cur.lld.segments_sealed),
            d(prev.lld.backpressure_stalls, cur.lld.backpressure_stalls),
            cur.lld.inflight_barriers,
        );
    }
    let (_, last) = samples.last().expect("len checked above");
    let _ = writeln!(
        out,
        "totals: {} commits, {} flush batches, {} blocks, {} seals, {} stalls, {} trace events dropped",
        last.lld.arus_committed,
        last.lld.flush_batches,
        last.lld.data_blocks_written,
        last.lld.segments_sealed,
        last.lld.backpressure_stalls,
        last.lld.trace_events_dropped,
    );
    Ok(out)
}

/// `ldctl flight`: pretty-print a crash flight-recorder dump written
/// by the disk on a pipeline fault or a cleaner-thread panic.
pub fn cmd_flight(file: &str) -> Result<String> {
    let text = std::fs::read_to_string(file)?;
    let v = json::parse(&text).map_err(CtlError::Parse)?;
    let field = |key: &str| v.get(key).and_then(json::Value::as_str).unwrap_or("?");
    let num = |key: &str| v.get(key).and_then(json::Value::as_u64).unwrap_or(0);
    let mut out = String::new();
    let _ = writeln!(out, "flight dump:  {file}");
    let _ = writeln!(out, "reason:       {}", field("reason"));
    let _ = writeln!(out, "detail:       {}", field("detail"));
    let _ = writeln!(out, "pid:          {}", num("pid"));
    let _ = writeln!(out, "dump seq:     {}", num("dump_seq"));
    let snap = v
        .get("snapshot")
        .ok_or_else(|| CtlError::Parse("missing snapshot".into()))
        .and_then(|s| ObsSnapshot::from_value(s).map_err(CtlError::Parse))?;
    let _ = writeln!(out);
    let _ = write!(out, "{snap}");
    Ok(out)
}

/// Dispatches a full argument vector (without the program name).
///
/// # Errors
///
/// [`CtlError::Usage`] for unknown or malformed commands; otherwise the
/// underlying stack's errors.
pub fn run(args: &[String]) -> Result<String> {
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let image = args.get(1).map(String::as_str);
    let need_image = || image.ok_or_else(|| CtlError::Usage(format!("{cmd} requires <image>")));
    let arg2 = |name: &str| {
        args.get(2)
            .map(String::as_str)
            .ok_or_else(|| CtlError::Usage(format!("{cmd} requires <{name}>")))
    };
    match cmd {
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        "format" => cmd_format(need_image()?, &args[2..]),
        "info" => cmd_info(need_image()?),
        "check" => cmd_check(need_image()?),
        "dump" => cmd_dump(need_image()?),
        "ls" => cmd_ls(need_image()?, arg2("path")?),
        "stat" => cmd_stat(need_image()?, arg2("path")?),
        "cat" => cmd_cat(need_image()?, arg2("path")?),
        "verify" => cmd_verify(need_image()?),
        "stats" => cmd_stats(&args[1..]),
        "trace" => cmd_trace(&args[1..]),
        "top" => cmd_top(&args[1..]),
        "flight" => {
            let file = args
                .get(1)
                .ok_or_else(|| CtlError::Usage("flight requires <dump-file>".into()))?;
            cmd_flight(file)
        }
        "put" => {
            let local = args
                .get(3)
                .ok_or_else(|| CtlError::Usage("put requires <local-file>".into()))?;
            cmd_put(need_image()?, arg2("path")?, local)
        }
        other => Err(CtlError::Usage(format!(
            "unknown command {other}; try `ldctl help`"
        ))),
    }
}
