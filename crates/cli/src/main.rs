//! `ldctl` — command-line tool for Logical Disk images.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match ld_ctl::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("ldctl: {e}");
            std::process::exit(1);
        }
    }
}
