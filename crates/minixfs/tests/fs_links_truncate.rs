//! Hard links and truncation (API extensions beyond the paper's
//! workload, exercising the nlinks and size machinery).

use ld_core::{Lld, LldConfig};
use ld_disk::MemDisk;
use ld_minixfs::{FsConfig, FsError, MinixFs};

const BS: usize = 512;

fn fresh() -> MinixFs<Lld<MemDisk>> {
    let ld = Lld::format(
        MemDisk::new(8 << 20),
        &LldConfig {
            block_size: BS,
            segment_bytes: 16 * BS,
            max_blocks: Some(2048),
            max_lists: Some(512),
            ..LldConfig::default()
        },
    )
    .unwrap();
    MinixFs::format(
        ld,
        FsConfig {
            inode_count: 64,
            ..FsConfig::default()
        },
    )
    .unwrap()
}

#[test]
fn hard_link_shares_data() {
    let mut fs = fresh();
    let ino = fs.create("/original").unwrap();
    fs.write_at(ino, 0, b"shared payload").unwrap();
    fs.link("/original", "/alias").unwrap();

    assert_eq!(fs.lookup("/alias").unwrap(), ino);
    assert_eq!(fs.stat(ino).unwrap().nlinks, 2);
    // Writing through one name is visible through the other.
    fs.write_at(ino, 0, b"SHARED").unwrap();
    let alias = fs.lookup("/alias").unwrap();
    let mut buf = [0u8; 6];
    fs.read_at(alias, 0, &mut buf).unwrap();
    assert_eq!(&buf, b"SHARED");
    assert!(fs.verify().unwrap().is_consistent());
}

#[test]
fn unlink_one_name_keeps_the_file() {
    let mut fs = fresh();
    let ino = fs.create("/a").unwrap();
    fs.write_at(ino, 0, b"keep me").unwrap();
    fs.link("/a", "/b").unwrap();
    fs.unlink("/a").unwrap();
    assert!(matches!(fs.lookup("/a"), Err(FsError::NotFound(_))));
    let b = fs.lookup("/b").unwrap();
    assert_eq!(b, ino);
    assert_eq!(fs.stat(b).unwrap().nlinks, 1);
    let mut buf = [0u8; 7];
    fs.read_at(b, 0, &mut buf).unwrap();
    assert_eq!(&buf, b"keep me");
    // Removing the last name reclaims everything.
    let blocks_before = fs.ld().allocated_block_count();
    fs.unlink("/b").unwrap();
    assert!(fs.ld().allocated_block_count() < blocks_before);
    assert!(fs.verify().unwrap().is_consistent());
}

#[test]
fn link_errors() {
    let mut fs = fresh();
    fs.mkdir("/d").unwrap();
    fs.create("/f").unwrap();
    assert!(matches!(
        fs.link("/d", "/d2"),
        Err(FsError::IsADirectory(_))
    ));
    assert!(matches!(
        fs.link("/f", "/f"),
        Err(FsError::AlreadyExists(_))
    ));
    assert!(matches!(
        fs.link("/missing", "/x"),
        Err(FsError::NotFound(_))
    ));
}

#[test]
fn links_survive_crash_recovery() {
    let mut fs = fresh();
    let ino = fs.create("/x").unwrap();
    fs.write_at(ino, 0, b"linked data").unwrap();
    fs.link("/x", "/y").unwrap();
    fs.flush().unwrap();

    let image = fs.into_ld().into_device().into_image();
    let (ld, _) = Lld::recover(MemDisk::from_image(image)).unwrap();
    let mut fs2 = MinixFs::mount(ld, FsConfig::default()).unwrap();
    assert_eq!(fs2.lookup("/x").unwrap(), fs2.lookup("/y").unwrap());
    assert_eq!(fs2.stat(ino).unwrap().nlinks, 2);
    let report = fs2.verify().unwrap();
    assert!(report.is_consistent(), "{:?}", report.problems);
}

#[test]
fn truncate_shrinks_and_frees_blocks() {
    let mut fs = fresh();
    let ino = fs.create("/t").unwrap();
    fs.write_at(ino, 0, &vec![9u8; BS * 5]).unwrap();
    assert_eq!(fs.stat(ino).unwrap().blocks, 5);
    let before = fs.ld().allocated_block_count();

    fs.truncate(ino, BS as u64 + 100).unwrap();
    let st = fs.stat(ino).unwrap();
    assert_eq!(st.size, BS as u64 + 100);
    assert_eq!(st.blocks, 2);
    assert_eq!(fs.ld().allocated_block_count(), before - 3);

    // Remaining data intact; reads stop at the new size.
    let mut buf = vec![0u8; BS * 5];
    let n = fs.read_at(ino, 0, &mut buf).unwrap();
    assert_eq!(n, BS + 100);
    assert_eq!(&buf[..n], &vec![9u8; n][..]);
    assert!(fs.verify().unwrap().is_consistent());
}

#[test]
fn truncate_to_zero_and_regrow() {
    let mut fs = fresh();
    let ino = fs.create("/z").unwrap();
    fs.write_at(ino, 0, &vec![1u8; 2000]).unwrap();
    fs.truncate(ino, 0).unwrap();
    assert_eq!(fs.stat(ino).unwrap().size, 0);
    assert_eq!(fs.stat(ino).unwrap().blocks, 0);
    let mut buf = [0u8; 16];
    assert_eq!(fs.read_at(ino, 0, &mut buf).unwrap(), 0);
    fs.write_at(ino, 0, b"fresh start").unwrap();
    let mut buf = [0u8; 11];
    fs.read_at(ino, 0, &mut buf).unwrap();
    assert_eq!(&buf, b"fresh start");
}

#[test]
fn truncate_extends_sparsely_with_zeroes() {
    let mut fs = fresh();
    let ino = fs.create("/sparse").unwrap();
    fs.write_at(ino, 0, b"head").unwrap();
    fs.truncate(ino, BS as u64 * 3).unwrap();
    let st = fs.stat(ino).unwrap();
    assert_eq!(st.size, BS as u64 * 3);
    assert_eq!(st.blocks, 3);
    let mut buf = vec![0xFFu8; BS];
    fs.read_at(ino, BS as u64 * 2, &mut buf).unwrap();
    assert_eq!(buf, vec![0u8; BS]);
    let mut head = [0u8; 4];
    fs.read_at(ino, 0, &mut head).unwrap();
    assert_eq!(&head, b"head");
}

#[test]
fn truncate_on_directory_fails() {
    let mut fs = fresh();
    fs.mkdir("/dir").unwrap();
    let ino = fs.lookup("/dir").unwrap();
    assert!(matches!(fs.truncate(ino, 0), Err(FsError::IsADirectory(_))));
}

#[test]
fn truncate_persists_after_flush_and_crash() {
    let mut fs = fresh();
    let ino = fs.create("/p").unwrap();
    fs.write_at(ino, 0, &vec![7u8; 3000]).unwrap();
    fs.truncate(ino, 1000).unwrap();
    fs.flush().unwrap();
    let image = fs.into_ld().into_device().into_image();
    let (ld, _) = Lld::recover(MemDisk::from_image(image)).unwrap();
    let mut fs2 = MinixFs::mount(ld, FsConfig::default()).unwrap();
    let st = fs2.stat(ino).unwrap();
    assert_eq!(st.size, 1000);
    let mut buf = vec![0u8; 1000];
    assert_eq!(fs2.read_at(ino, 0, &mut buf).unwrap(), 1000);
    assert_eq!(buf, vec![7u8; 1000]);
    assert!(fs2.verify().unwrap().is_consistent());
}
