//! File-system operation tests: namespace, I/O, policies, mount.

use ld_core::{Lld, LldConfig};
use ld_disk::MemDisk;
use ld_minixfs::{DeletePolicy, FileKind, FsConfig, FsError, Ino, MinixFs};

const BS: usize = 512;

fn ld_config() -> LldConfig {
    LldConfig {
        block_size: BS,
        segment_bytes: 16 * BS,
        max_blocks: Some(2048),
        max_lists: Some(512),
        ..LldConfig::default()
    }
}

fn fs_config() -> FsConfig {
    FsConfig {
        inode_count: 64,
        ..FsConfig::default()
    }
}

fn fresh() -> MinixFs<Lld<MemDisk>> {
    let ld = Lld::format(MemDisk::new(8 << 20), &ld_config()).unwrap();
    MinixFs::format(ld, fs_config()).unwrap()
}

#[test]
fn format_gives_empty_root() {
    let mut fs = fresh();
    assert_eq!(fs.readdir("/").unwrap(), Vec::new());
    assert_eq!(fs.lookup("/").unwrap(), Ino::ROOT);
    let st = fs.stat(Ino::ROOT).unwrap();
    assert_eq!(st.kind, FileKind::Dir);
    assert!(fs.verify().unwrap().is_consistent());
}

#[test]
fn create_write_read() {
    let mut fs = fresh();
    let ino = fs.create("/a.txt").unwrap();
    fs.write_at(ino, 0, b"hello world").unwrap();
    let mut buf = [0u8; 11];
    assert_eq!(fs.read_at(ino, 0, &mut buf).unwrap(), 11);
    assert_eq!(&buf, b"hello world");
    // Partial read at offset.
    let mut buf = [0u8; 5];
    assert_eq!(fs.read_at(ino, 6, &mut buf).unwrap(), 5);
    assert_eq!(&buf, b"world");
    // Read past EOF.
    assert_eq!(fs.read_at(ino, 100, &mut buf).unwrap(), 0);
    let st = fs.stat(ino).unwrap();
    assert_eq!(st.size, 11);
    assert_eq!(st.blocks, 1);
}

#[test]
fn multi_block_files() {
    let mut fs = fresh();
    let ino = fs.create("/big").unwrap();
    let data: Vec<u8> = (0..BS as u32 * 3 + 100).map(|i| (i % 251) as u8).collect();
    fs.write_at(ino, 0, &data).unwrap();
    let st = fs.stat(ino).unwrap();
    assert_eq!(st.size, data.len() as u64);
    assert_eq!(st.blocks, 4);
    let mut buf = vec![0u8; data.len()];
    assert_eq!(fs.read_at(ino, 0, &mut buf).unwrap(), data.len());
    assert_eq!(buf, data);
    // Cross-block read.
    let mut buf = vec![0u8; 700];
    assert_eq!(fs.read_at(ino, BS as u64 - 350, &mut buf).unwrap(), 700);
    assert_eq!(buf, data[BS - 350..BS - 350 + 700]);
}

#[test]
fn sparse_offsets_read_zeroes() {
    let mut fs = fresh();
    let ino = fs.create("/sparse").unwrap();
    fs.write_at(ino, BS as u64 * 2, b"tail").unwrap();
    let mut buf = vec![0xFFu8; BS];
    assert_eq!(fs.read_at(ino, 0, &mut buf).unwrap(), BS);
    assert_eq!(buf, vec![0u8; BS]);
}

#[test]
fn overwrite_in_place() {
    let mut fs = fresh();
    let ino = fs.create("/f").unwrap();
    fs.write_at(ino, 0, &vec![b'a'; 1000]).unwrap();
    fs.write_at(ino, 500, b"XYZ").unwrap();
    let mut buf = vec![0u8; 1000];
    fs.read_at(ino, 0, &mut buf).unwrap();
    assert_eq!(&buf[498..505], b"aaXYZaa");
    assert_eq!(fs.stat(ino).unwrap().size, 1000);
}

#[test]
fn directories_nest() {
    let mut fs = fresh();
    fs.mkdir("/a").unwrap();
    fs.mkdir("/a/b").unwrap();
    fs.mkdir("/a/b/c").unwrap();
    let f = fs.create("/a/b/c/deep.txt").unwrap();
    fs.write_at(f, 0, b"x").unwrap();
    assert_eq!(fs.lookup("/a/b/c/deep.txt").unwrap(), f);
    let names: Vec<String> = fs
        .readdir("/a/b")
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect();
    assert_eq!(names, vec!["c"]);
    assert!(fs.verify().unwrap().is_consistent());
}

#[test]
fn namespace_errors() {
    let mut fs = fresh();
    fs.mkdir("/d").unwrap();
    let f = fs.create("/d/f").unwrap();
    assert!(matches!(fs.create("/d/f"), Err(FsError::AlreadyExists(_))));
    assert!(matches!(fs.lookup("/nope"), Err(FsError::NotFound(_))));
    assert!(matches!(
        fs.lookup("relative"),
        Err(FsError::InvalidPath(_))
    ));
    assert!(matches!(
        fs.create("/d/f/x"),
        Err(FsError::NotADirectory(_))
    ));
    assert!(matches!(fs.unlink("/d"), Err(FsError::IsADirectory(_))));
    assert!(matches!(fs.rmdir("/d"), Err(FsError::DirectoryNotEmpty(_))));
    assert!(matches!(fs.rmdir("/d/f"), Err(FsError::NotADirectory(_))));
    assert!(matches!(fs.readdir("/d/f"), Err(FsError::NotADirectory(_))));
    let long = format!("/{}", "n".repeat(200));
    assert!(matches!(fs.create(&long), Err(FsError::NameTooLong(_))));
    let _ = f;
}

#[test]
fn unlink_frees_resources() {
    let mut fs = fresh();
    // Warm up the root directory (its entry block persists after the
    // unlink, which is correct, not a leak).
    let warm = fs.create("/warm").unwrap();
    let _ = warm;
    fs.unlink("/warm").unwrap();
    let before_blocks = fs.ld().allocated_block_count();
    let before_inodes = fs.free_inode_count();
    let ino = fs.create("/tmp.bin").unwrap();
    fs.write_at(ino, 0, &vec![7u8; BS * 5]).unwrap();
    assert!(fs.ld().allocated_block_count() > before_blocks);
    fs.unlink("/tmp.bin").unwrap();
    assert_eq!(fs.ld().allocated_block_count(), before_blocks);
    assert_eq!(fs.free_inode_count(), before_inodes);
    assert!(matches!(fs.lookup("/tmp.bin"), Err(FsError::NotFound(_))));
    assert!(fs.verify().unwrap().is_consistent());
}

#[test]
fn both_delete_policies_reclaim_identically() {
    for policy in [DeletePolicy::PerBlock, DeletePolicy::WholeList] {
        let ld = Lld::format(MemDisk::new(8 << 20), &ld_config()).unwrap();
        let mut fs = MinixFs::format(
            ld,
            FsConfig {
                delete_policy: policy,
                ..fs_config()
            },
        )
        .unwrap();
        // Warm the root directory so its entry blocks are not counted
        // as a leak.
        for i in 0..10 {
            fs.create(&format!("/w{i}")).unwrap();
        }
        for i in 0..10 {
            fs.unlink(&format!("/w{i}")).unwrap();
        }
        let baseline = fs.ld().allocated_block_count();
        for i in 0..10 {
            let ino = fs.create(&format!("/f{i}")).unwrap();
            fs.write_at(ino, 0, &vec![i as u8; BS * 3]).unwrap();
        }
        for i in 0..10 {
            fs.unlink(&format!("/f{i}")).unwrap();
        }
        assert_eq!(
            fs.ld().allocated_block_count(),
            baseline,
            "policy {policy:?} leaked blocks"
        );
        assert!(fs.verify().unwrap().is_consistent());
    }
}

#[test]
fn per_block_policy_walks_more() {
    // The predecessor searches of the original deletion policy are
    // directly observable in the logical-disk statistics.
    let run = |policy: DeletePolicy| -> u64 {
        let ld = Lld::format(MemDisk::new(8 << 20), &ld_config()).unwrap();
        let mut fs = MinixFs::format(
            ld,
            FsConfig {
                delete_policy: policy,
                ..fs_config()
            },
        )
        .unwrap();
        let ino = fs.create("/f").unwrap();
        fs.write_at(ino, 0, &vec![1u8; BS * 10]).unwrap();
        let before = fs.ld().stats().list_walk_steps;
        fs.unlink("/f").unwrap();
        fs.ld().stats().list_walk_steps - before
    };
    let per_block = run(DeletePolicy::PerBlock);
    let whole_list = run(DeletePolicy::WholeList);
    assert!(
        per_block > whole_list,
        "per-block {per_block} should exceed whole-list {whole_list}"
    );
}

#[test]
fn rename_moves_entries() {
    let mut fs = fresh();
    fs.mkdir("/src").unwrap();
    fs.mkdir("/dst").unwrap();
    let ino = fs.create("/src/file").unwrap();
    fs.write_at(ino, 0, b"payload").unwrap();
    fs.rename("/src/file", "/dst/renamed").unwrap();
    assert!(matches!(fs.lookup("/src/file"), Err(FsError::NotFound(_))));
    assert_eq!(fs.lookup("/dst/renamed").unwrap(), ino);
    let mut buf = [0u8; 7];
    fs.read_at(ino, 0, &mut buf).unwrap();
    assert_eq!(&buf, b"payload");
    assert!(fs.verify().unwrap().is_consistent());
}

#[test]
fn rmdir_empty_dir() {
    let mut fs = fresh();
    fs.mkdir("/gone").unwrap();
    fs.rmdir("/gone").unwrap();
    assert!(matches!(fs.lookup("/gone"), Err(FsError::NotFound(_))));
    assert!(fs.verify().unwrap().is_consistent());
}

#[test]
fn directory_grows_beyond_one_block() {
    let mut fs = fresh();
    // 512-byte blocks hold 16 dirents; create more than that.
    let n = 40;
    for i in 0..n {
        fs.create(&format!("/file{i:03}")).unwrap();
    }
    let entries = fs.readdir("/").unwrap();
    assert_eq!(entries.len(), n);
    // Delete a few and ensure slots are reused.
    fs.unlink("/file010").unwrap();
    fs.unlink("/file020").unwrap();
    fs.create("/replacement").unwrap();
    assert_eq!(fs.readdir("/").unwrap().len(), n - 1);
    assert!(fs.verify().unwrap().is_consistent());
}

#[test]
fn inode_exhaustion() {
    let ld = Lld::format(MemDisk::new(8 << 20), &ld_config()).unwrap();
    let mut fs = MinixFs::format(
        ld,
        FsConfig {
            inode_count: 4,
            ..fs_config()
        },
    )
    .unwrap();
    // Root takes one inode; three remain.
    fs.create("/a").unwrap();
    fs.create("/b").unwrap();
    fs.create("/c").unwrap();
    assert!(matches!(fs.create("/d"), Err(FsError::NoInodes)));
    fs.unlink("/b").unwrap();
    fs.create("/d").unwrap();
}

#[test]
fn mount_after_clean_flush() {
    let mut fs = fresh();
    fs.mkdir("/docs").unwrap();
    let ino = fs.create("/docs/x").unwrap();
    fs.write_at(ino, 0, b"persist me").unwrap();
    fs.flush().unwrap();
    let free = fs.free_inode_count();

    let image = fs.into_ld().into_device().into_image();
    let (ld2, _) = Lld::recover(MemDisk::from_image(image)).unwrap();
    let mut fs2 = MinixFs::mount(ld2, FsConfig::default()).unwrap();
    assert_eq!(fs2.free_inode_count(), free);
    let ino2 = fs2.lookup("/docs/x").unwrap();
    assert_eq!(ino2, ino);
    let mut buf = [0u8; 10];
    fs2.read_at(ino2, 0, &mut buf).unwrap();
    assert_eq!(&buf, b"persist me");
    assert!(fs2.verify().unwrap().is_consistent());
}

#[test]
fn stats_track_activity() {
    let mut fs = fresh();
    let ino = fs.create("/s").unwrap();
    fs.mkdir("/d").unwrap();
    fs.write_at(ino, 0, &[1, 2, 3]).unwrap();
    let mut buf = [0u8; 2];
    fs.read_at(ino, 0, &mut buf).unwrap();
    fs.unlink("/s").unwrap();
    fs.rmdir("/d").unwrap();
    let s = fs.stats();
    assert_eq!(s.files_created, 1);
    assert_eq!(s.dirs_created, 1);
    assert_eq!(s.files_deleted, 1);
    assert_eq!(s.dirs_removed, 1);
    assert_eq!(s.bytes_written, 3);
    assert_eq!(s.bytes_read, 2);
}

#[test]
fn works_without_arus_old_minixlld() {
    // The "old" configuration: no ARU bracketing at all.
    let ld = Lld::format(MemDisk::new(8 << 20), &ld_config()).unwrap();
    let mut fs = MinixFs::format(
        ld,
        FsConfig {
            use_arus: false,
            ..fs_config()
        },
    )
    .unwrap();
    let ino = fs.create("/plain").unwrap();
    fs.write_at(ino, 0, b"old world").unwrap();
    fs.unlink("/plain").unwrap();
    assert!(fs.verify().unwrap().is_consistent());
    assert_eq!(fs.ld().stats().arus_begun, 0);
}
