//! Crash-consistency of the file system: with ARUs, a crash at any point
//! leaves the file system consistent (all-or-nothing file creation and
//! deletion — no fsck needed). Without ARUs (the "old" MinixLLD), a
//! crash can strand partial meta-data, which the verifier detects.

use ld_core::{Lld, LldConfig};
use ld_disk::{DiskModel, FaultPlan, MemDisk, SimDisk};
use ld_minixfs::{FsConfig, FsError, MinixFs};

const BS: usize = 512;

fn ld_config() -> LldConfig {
    LldConfig {
        block_size: BS,
        segment_bytes: 16 * BS,
        max_blocks: Some(2048),
        max_lists: Some(512),
        ..LldConfig::default()
    }
}

fn fs_config() -> FsConfig {
    FsConfig {
        inode_count: 64,
        ..FsConfig::default()
    }
}

type SimFs = MinixFs<Lld<SimDisk<MemDisk>>>;

fn sim_fs(cfg: FsConfig) -> SimFs {
    let sim = SimDisk::new(MemDisk::new(8 << 20), DiskModel::hp_c3010());
    let ld = Lld::format(sim, &ld_config()).unwrap();
    MinixFs::format(ld, cfg).unwrap()
}

/// Crash the simulated machine and remount from whatever reached disk.
fn crash_and_remount(fs: SimFs) -> MinixFs<Lld<MemDisk>> {
    let image = fs.into_ld().into_device().into_inner().into_image();
    let (ld, _) = Lld::recover(MemDisk::from_image(image)).unwrap();
    MinixFs::mount(ld, FsConfig::default()).unwrap()
}

#[test]
fn flushed_files_survive_with_full_consistency() {
    let mut fs = sim_fs(fs_config());
    fs.mkdir("/d").unwrap();
    for i in 0..10 {
        let ino = fs.create(&format!("/d/f{i}")).unwrap();
        fs.write_at(ino, 0, &vec![i as u8; 700]).unwrap();
    }
    fs.flush().unwrap();
    let mut fs2 = crash_and_remount(fs);
    let report = fs2.verify().unwrap();
    assert!(report.is_consistent(), "problems: {:?}", report.problems);
    assert_eq!(report.files, 10);
    for i in 0..10 {
        let ino = fs2.lookup(&format!("/d/f{i}")).unwrap();
        let mut buf = vec![0u8; 700];
        assert_eq!(fs2.read_at(ino, 0, &mut buf).unwrap(), 700);
        assert_eq!(buf, vec![i as u8; 700]);
    }
}

#[test]
fn unflushed_creation_vanishes_atomically() {
    let mut fs = sim_fs(fs_config());
    fs.create("/durable").unwrap();
    fs.flush().unwrap();
    // Created but never flushed: must disappear wholesale.
    fs.create("/ghost").unwrap();
    let mut fs2 = crash_and_remount(fs);
    assert!(fs2.lookup("/durable").is_ok());
    assert!(matches!(fs2.lookup("/ghost"), Err(FsError::NotFound(_))));
    let report = fs2.verify().unwrap();
    assert!(report.is_consistent(), "problems: {:?}", report.problems);
    // The inode must have been reclaimed — creating again works.
    fs2.create("/ghost").unwrap();
}

#[test]
fn unflushed_deletion_vanishes_atomically() {
    let mut fs = sim_fs(fs_config());
    let ino = fs.create("/victim").unwrap();
    fs.write_at(ino, 0, &vec![9u8; 600]).unwrap();
    fs.flush().unwrap();
    fs.unlink("/victim").unwrap(); // not flushed
    let mut fs2 = crash_and_remount(fs);
    // The deletion never became persistent: the file is intact.
    let ino2 = fs2.lookup("/victim").unwrap();
    let mut buf = vec![0u8; 600];
    assert_eq!(fs2.read_at(ino2, 0, &mut buf).unwrap(), 600);
    assert_eq!(buf, vec![9u8; 600]);
    let report = fs2.verify().unwrap();
    assert!(report.is_consistent(), "problems: {:?}", report.problems);
}

#[test]
fn consistency_at_every_crash_point_with_arus() {
    // Sweep crash points through a create/write/delete workload; after
    // every crash the file system must verify clean, and every file
    // must be either fully present (correct size and content) or
    // completely absent.
    let mut crash_at = 4000u64;
    let mut tested = 0;
    loop {
        let mut fs = sim_fs(fs_config());
        fs.ld()
            .device()
            .set_faults(FaultPlan::new().crash_after_bytes(crash_at));
        let mut created: Vec<String> = Vec::new();
        let result = (|| -> Result<(), FsError> {
            fs.mkdir("/w")?;
            for i in 0..12 {
                let path = format!("/w/f{i}");
                let ino = fs.create(&path)?;
                fs.write_at(ino, 0, &vec![i as u8 + 1; 900])?;
                created.push(path);
                if i % 3 == 2 {
                    fs.flush()?;
                }
            }
            for i in 0..6 {
                fs.unlink(&format!("/w/f{i}"))?;
                if i % 2 == 1 {
                    fs.flush()?;
                }
            }
            Ok(())
        })();
        let crashed = result.is_err();

        let mut fs2 = crash_and_remount(fs);
        let report = fs2.verify().unwrap();
        assert!(
            report.is_consistent(),
            "crash at {crash_at}: {:?}",
            report.problems
        );
        // All-or-nothing per file's *meta-data* (the ARU covers
        // creation; data writes are separate simple operations, as in
        // the paper). A present file may have any persisted prefix of
        // its data, but never garbage: content[0..size] must match.
        for (i, path) in created.iter().enumerate() {
            match fs2.lookup(path) {
                Ok(ino) => {
                    let st = fs2.stat(ino).unwrap();
                    assert!(st.size <= 900, "crash at {crash_at}: {path} oversized");
                    let mut buf = vec![0u8; st.size as usize];
                    assert_eq!(fs2.read_at(ino, 0, &mut buf).unwrap(), st.size as usize);
                    assert_eq!(
                        buf,
                        vec![i as u8 + 1; st.size as usize],
                        "crash at {crash_at}: {path} has garbage content"
                    );
                }
                Err(FsError::NotFound(_)) => {}
                Err(e) => panic!("crash at {crash_at}: {path}: {e}"),
            }
        }
        tested += 1;
        if !crashed {
            break; // crash point beyond the workload: done sweeping
        }
        crash_at += 7000;
    }
    assert!(tested >= 5, "sweep covered only {tested} crash points");
}

#[test]
fn old_minixlld_can_be_left_inconsistent() {
    // Without ARUs, metadata updates are individual operations; a crash
    // between them strands partial state. We crash between the inode
    // write and the directory update by flushing only the first half of
    // a creation. (This is engineered, but it is exactly the window the
    // paper's fsck discussion is about.)
    let sim = SimDisk::new(MemDisk::new(8 << 20), DiskModel::hp_c3010());
    let ld = Lld::format(sim, &ld_config()).unwrap();
    let mut fs = MinixFs::format(
        ld,
        FsConfig {
            use_arus: false,
            inode_count: 64,
            ..FsConfig::default()
        },
    )
    .unwrap();
    fs.create("/ok").unwrap();
    fs.flush().unwrap();

    // Start a creation and crash partway: with use_arus=false the
    // individual simple operations become persistent one by one, so we
    // let a few reach the disk and cut power mid-stream.
    let device_written = fs.ld().device().stats().snapshot().bytes_written;
    let _ = device_written;
    fs.ld()
        .device()
        .set_faults(FaultPlan::new().crash_after_bytes(2 * BS as u64));
    let _ = fs.create("/partial"); // may or may not error, depending on buffering
    let _ = fs.flush(); // pushes whatever fits before the crash point

    let image = fs.into_ld().into_device().into_inner().into_image();
    let (ld2, _) = Lld::recover(MemDisk::from_image(image)).unwrap();
    let mut fs2 = MinixFs::mount(ld2, FsConfig::default()).unwrap();
    // The file system still mounts (the logical disk itself is always
    // consistent) — but the tree may be inconsistent. We do not assert
    // inconsistency (the crash point may fall between files), only that
    // the verifier runs and the flushed file is intact.
    let _report = fs2.verify().unwrap();
    assert!(fs2.lookup("/ok").is_ok());
}

#[test]
fn consistency_with_sequential_old_lld_and_arus() {
    // The "old" LLD (sequential ARUs) + ARU-bracketing FS: crash
    // atomicity still holds, demonstrating that the old prototype's
    // single-ARU support is sound.
    let sim = SimDisk::new(MemDisk::new(8 << 20), DiskModel::hp_c3010());
    let ld = Lld::format(
        sim,
        &LldConfig {
            concurrency: ld_core::ConcurrencyMode::Sequential,
            ..ld_config()
        },
    )
    .unwrap();
    let mut fs = MinixFs::format(ld, fs_config_arus()).unwrap();
    let ino = fs.create("/seq").unwrap();
    fs.write_at(ino, 0, b"sequential").unwrap();
    fs.flush().unwrap();
    fs.create("/never-flushed").unwrap();
    let mut fs2 = crash_and_remount(fs);
    assert!(fs2.lookup("/seq").is_ok());
    assert!(matches!(
        fs2.lookup("/never-flushed"),
        Err(FsError::NotFound(_))
    ));
    let report = fs2.verify().unwrap();
    assert!(report.is_consistent(), "problems: {:?}", report.problems);
}

// Helper with swapped argument order safety (format takes ld first).
fn fs_config_arus() -> FsConfig {
    FsConfig {
        inode_count: 64,
        ..FsConfig::default()
    }
}
