//! On-disk directory-entry encoding.
//!
//! Directories are regular LD-backed files whose contents are an array
//! of fixed 32-byte entries; a zero inode number marks a free slot.

use crate::error::{FsError, Result};
use crate::types::Ino;

/// Bytes per directory entry.
pub(crate) const DIRENT_SIZE: usize = 32;

/// Longest representable file name.
pub(crate) const MAX_NAME: usize = DIRENT_SIZE - 5;

/// Decodes the entry at `slot`; `None` for a free slot.
pub(crate) fn decode(block: &[u8], slot: usize) -> Result<Option<(Ino, String)>> {
    let off = slot * DIRENT_SIZE;
    let raw = &block[off..off + DIRENT_SIZE];
    let ino = u32::from_le_bytes(raw[0..4].try_into().expect("4 bytes"));
    if ino == 0 {
        return Ok(None);
    }
    let len = raw[4] as usize;
    if len == 0 || len > MAX_NAME {
        return Err(FsError::Corrupt(format!("bad dirent name length {len}")));
    }
    let name = std::str::from_utf8(&raw[5..5 + len])
        .map_err(|_| FsError::Corrupt("dirent name is not utf-8".into()))?
        .to_string();
    Ok(Some((Ino::new(ino), name)))
}

/// Encodes an entry into `slot`.
///
/// # Errors
///
/// [`FsError::NameTooLong`] if the name exceeds [`MAX_NAME`] bytes.
pub(crate) fn encode(block: &mut [u8], slot: usize, ino: Ino, name: &str) -> Result<()> {
    if name.len() > MAX_NAME {
        return Err(FsError::NameTooLong(name.to_string()));
    }
    let off = slot * DIRENT_SIZE;
    let raw = &mut block[off..off + DIRENT_SIZE];
    raw.fill(0);
    raw[0..4].copy_from_slice(&ino.get().to_le_bytes());
    raw[4] = name.len() as u8;
    raw[5..5 + name.len()].copy_from_slice(name.as_bytes());
    Ok(())
}

/// Marks `slot` free.
pub(crate) fn encode_free(block: &mut [u8], slot: usize) {
    let off = slot * DIRENT_SIZE;
    block[off..off + DIRENT_SIZE].fill(0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut block = vec![0u8; 512];
        encode(&mut block, 2, Ino::new(7), "hello.txt").unwrap();
        assert_eq!(
            decode(&block, 2).unwrap(),
            Some((Ino::new(7), "hello.txt".to_string()))
        );
        assert_eq!(decode(&block, 0).unwrap(), None);
        encode_free(&mut block, 2);
        assert_eq!(decode(&block, 2).unwrap(), None);
    }

    #[test]
    fn name_length_limit() {
        let mut block = vec![0u8; 512];
        let long = "x".repeat(MAX_NAME + 1);
        assert!(matches!(
            encode(&mut block, 0, Ino::new(1), &long),
            Err(FsError::NameTooLong(_))
        ));
        let ok = "y".repeat(MAX_NAME);
        encode(&mut block, 0, Ino::new(1), &ok).unwrap();
        assert_eq!(decode(&block, 0).unwrap().unwrap().1, ok);
    }

    #[test]
    fn corrupt_length_detected() {
        let mut block = vec![0u8; 64];
        block[0] = 1; // ino 1
        block[4] = 60; // impossible length
        assert!(matches!(decode(&block, 0), Err(FsError::Corrupt(_))));
    }
}
