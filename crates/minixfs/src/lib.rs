//! # MinixLLD — a Minix-like file system on the Logical Disk
//!
//! The disk-system client used in the paper's evaluation: a simple
//! hierarchical file system that delegates *all* disk management to the
//! Logical Disk. Each file or directory is one inode plus one LD block
//! list; there are no bitmaps, zones, or block pointers ("most of the
//! disk management code (350 lines) has been deleted from Minix").
//!
//! With [`FsConfig::use_arus`] enabled (the paper's "new" MinixLLD),
//! every file/directory creation and deletion executes inside its own
//! atomic recovery unit: after a crash, either all or none of the
//! meta-data describing the file is persistent, so the file system needs
//! no fsck — [`MinixFs::verify`] demonstrates this by checking full
//! consistency after recovery.
//!
//! The two deletion policies of §5.3 are selectable via
//! [`DeletePolicy`]: per-block deallocation (the paper's "new") or
//! whole-list deletion ("new, delete", the improved policy).
//!
//! ## Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use ld_core::{Lld, LldConfig};
//! use ld_disk::MemDisk;
//! use ld_minixfs::{FsConfig, MinixFs};
//!
//! let ld = Lld::format(MemDisk::new(8 << 20), &LldConfig::default())?;
//! let mut fs = MinixFs::format(ld, FsConfig::default())?;
//! let ino = fs.create("/hello")?;
//! fs.write_at(ino, 0, b"world")?;
//! fs.flush()?;
//! assert!(fs.verify()?.is_consistent());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod dir;
mod error;
mod fs;
mod inode;
mod types;
mod verify;

pub use config::{DeletePolicy, FsConfig};
pub use error::{FsError, Result};
pub use fs::{FsStats, MinixFs};
pub use types::{DirEntry, FileKind, Ino, Stat};
pub use verify::VerifyReport;
