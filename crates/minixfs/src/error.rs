use crate::types::Ino;
use ld_core::LldError;
use std::fmt;

/// Errors reported by the file system.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FsError {
    /// An error from the logical disk.
    Ld(LldError),
    /// No file or directory exists at the path.
    NotFound(String),
    /// A file or directory already exists at the path.
    AlreadyExists(String),
    /// A path component that must be a directory is not one.
    NotADirectory(String),
    /// The operation requires a file but found a directory.
    IsADirectory(String),
    /// `rmdir` on a directory that still has entries.
    DirectoryNotEmpty(String),
    /// The inode table is exhausted.
    NoInodes,
    /// A file name exceeds the on-disk limit.
    NameTooLong(String),
    /// Malformed path (empty, relative, or with empty components).
    InvalidPath(String),
    /// An inode number out of range or unallocated.
    BadInode(Ino),
    /// On-disk file-system structures are inconsistent.
    Corrupt(String),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::Ld(e) => write!(f, "logical disk error: {e}"),
            FsError::NotFound(p) => write!(f, "no such file or directory: {p}"),
            FsError::AlreadyExists(p) => write!(f, "file exists: {p}"),
            FsError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            FsError::IsADirectory(p) => write!(f, "is a directory: {p}"),
            FsError::DirectoryNotEmpty(p) => write!(f, "directory not empty: {p}"),
            FsError::NoInodes => write!(f, "out of inodes"),
            FsError::NameTooLong(n) => write!(f, "file name too long: {n}"),
            FsError::InvalidPath(p) => write!(f, "invalid path: {p}"),
            FsError::BadInode(i) => write!(f, "bad inode {i}"),
            FsError::Corrupt(msg) => write!(f, "file system corrupt: {msg}"),
        }
    }
}

impl std::error::Error for FsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FsError::Ld(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LldError> for FsError {
    fn from(e: LldError) -> Self {
        FsError::Ld(e)
    }
}

/// Result alias for file-system operations.
pub type Result<T> = std::result::Result<T, FsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert_eq!(
            FsError::NotFound("/a/b".into()).to_string(),
            "no such file or directory: /a/b"
        );
        assert!(FsError::Ld(LldError::DiskFull).to_string().contains("full"));
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        assert!(FsError::from(LldError::DiskFull).source().is_some());
        assert!(FsError::NoInodes.source().is_none());
    }
}
