//! On-disk inode encoding.
//!
//! Inodes are fixed 32-byte records packed into the blocks of the inode
//! list. Unlike historical Minix, an inode holds no zone/block pointers:
//! the Logical Disk owns allocation and layout, so an inode just names
//! its LD *list* (this is exactly the simplification the paper reports —
//! "most of the disk management code has been deleted from Minix").

use crate::error::{FsError, Result};
use crate::types::FileKind;
use ld_core::ListId;

/// Bytes per on-disk inode.
pub(crate) const INODE_SIZE: usize = 32;

const MODE_FREE: u16 = 0;
const MODE_FILE: u16 = 1;
const MODE_DIR: u16 = 2;

/// An in-memory inode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Inode {
    pub(crate) kind: FileKind,
    pub(crate) nlinks: u32,
    pub(crate) size: u64,
    /// The LD list holding this file's data blocks.
    pub(crate) data_list: Option<ListId>,
}

impl Inode {
    /// Decodes the inode at `slot` within an inode-table block.
    /// Returns `None` for a free slot.
    pub(crate) fn decode(block: &[u8], slot: usize) -> Result<Option<Inode>> {
        let off = slot * INODE_SIZE;
        let raw = &block[off..off + INODE_SIZE];
        let mode = u16::from_le_bytes(raw[0..2].try_into().expect("2 bytes"));
        let kind = match mode {
            MODE_FREE => return Ok(None),
            MODE_FILE => FileKind::File,
            MODE_DIR => FileKind::Dir,
            other => return Err(FsError::Corrupt(format!("bad inode mode {other}"))),
        };
        let nlinks = u32::from(u16::from_le_bytes(raw[2..4].try_into().expect("2 bytes")));
        let size = u64::from_le_bytes(raw[4..12].try_into().expect("8 bytes"));
        let list_raw = u64::from_le_bytes(raw[12..20].try_into().expect("8 bytes"));
        Ok(Some(Inode {
            kind,
            nlinks,
            size,
            data_list: (list_raw != 0).then(|| ListId::new(list_raw)),
        }))
    }

    /// Encodes this inode into `slot` of an inode-table block.
    pub(crate) fn encode(&self, block: &mut [u8], slot: usize) {
        let off = slot * INODE_SIZE;
        let raw = &mut block[off..off + INODE_SIZE];
        let mode = match self.kind {
            FileKind::File => MODE_FILE,
            FileKind::Dir => MODE_DIR,
        };
        raw[0..2].copy_from_slice(&mode.to_le_bytes());
        raw[2..4].copy_from_slice(&(self.nlinks as u16).to_le_bytes());
        raw[4..12].copy_from_slice(&self.size.to_le_bytes());
        raw[12..20].copy_from_slice(&self.data_list.map_or(0, ListId::get).to_le_bytes());
        raw[20..INODE_SIZE].fill(0);
    }

    /// Marks `slot` free.
    pub(crate) fn encode_free(block: &mut [u8], slot: usize) {
        let off = slot * INODE_SIZE;
        block[off..off + INODE_SIZE].fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut block = vec![0u8; 512];
        let ino = Inode {
            kind: FileKind::File,
            nlinks: 2,
            size: 12345,
            data_list: Some(ListId::new(42)),
        };
        ino.encode(&mut block, 3);
        assert_eq!(Inode::decode(&block, 3).unwrap(), Some(ino));
        // Neighbouring slots untouched (free).
        assert_eq!(Inode::decode(&block, 2).unwrap(), None);
        assert_eq!(Inode::decode(&block, 4).unwrap(), None);
    }

    #[test]
    fn free_slot_round_trip() {
        let mut block = vec![0u8; 512];
        let ino = Inode {
            kind: FileKind::Dir,
            nlinks: 1,
            size: 0,
            data_list: None,
        };
        ino.encode(&mut block, 0);
        assert!(Inode::decode(&block, 0).unwrap().is_some());
        Inode::encode_free(&mut block, 0);
        assert_eq!(Inode::decode(&block, 0).unwrap(), None);
    }

    #[test]
    fn bad_mode_detected() {
        let mut block = vec![0u8; 64];
        block[0] = 99;
        assert!(matches!(Inode::decode(&block, 0), Err(FsError::Corrupt(_))));
    }
}
