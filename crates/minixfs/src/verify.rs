//! Whole-tree consistency verification.
//!
//! The paper's point is that with ARUs "it is unnecessary to use fsck
//! after a failure to restore the file system to a consistent state".
//! This verifier is the test for that claim: it walks the tree and
//! cross-checks it against the inode table, reporting every
//! inconsistency it can find. After any crash + recovery, a file system
//! that used ARUs must verify clean.

use crate::error::Result;
use crate::fs::MinixFs;
use crate::types::{FileKind, Ino};
use ld_core::{Ctx, LogicalDisk};
use std::collections::HashMap;

/// The result of [`MinixFs::verify`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct VerifyReport {
    /// Regular files reachable from the root.
    pub files: u64,
    /// Directories reachable from the root (including the root).
    pub dirs: u64,
    /// Every inconsistency found; empty means the file system is
    /// consistent.
    pub problems: Vec<String>,
}

impl VerifyReport {
    /// Whether the file system is fully consistent.
    pub fn is_consistent(&self) -> bool {
        self.problems.is_empty()
    }
}

impl<L: LogicalDisk> MinixFs<L> {
    /// Verifies file-system consistency (an fsck that never repairs).
    ///
    /// # Errors
    ///
    /// Only on I/O failure; structural inconsistencies are *reported*
    /// in the [`VerifyReport`], not returned as errors.
    pub fn verify(&mut self) -> Result<VerifyReport> {
        let mut report = VerifyReport::default();
        let mut refcounts: HashMap<u32, u32> = HashMap::new();
        let mut stack = vec![(Ino::ROOT, String::from("/"))];
        refcounts.insert(Ino::ROOT.get(), 1);
        report.dirs += 1;

        while let Some((dir, path)) = stack.pop() {
            let entries = match self.readdir_ino(dir) {
                Ok(e) => e,
                Err(e) => {
                    report
                        .problems
                        .push(format!("cannot read directory {path}: {e}"));
                    continue;
                }
            };
            for (name, ino) in entries {
                let child_path = if path == "/" {
                    format!("/{name}")
                } else {
                    format!("{path}/{name}")
                };
                *refcounts.entry(ino.get()).or_insert(0) += 1;
                match self.stat(ino) {
                    Ok(st) => {
                        match st.kind {
                            FileKind::Dir => {
                                report.dirs += 1;
                                // Guard against cycles: a directory seen
                                // twice has refcount > 1 and is reported
                                // below, so only descend the first time.
                                if refcounts[&ino.get()] == 1 {
                                    stack.push((ino, child_path.clone()));
                                }
                            }
                            FileKind::File => {
                                report.files += 1;
                                let max = st.blocks * self.block_size() as u64;
                                if st.size > max {
                                    report.problems.push(format!(
                                        "{child_path}: size {} exceeds {} allocated bytes",
                                        st.size, max
                                    ));
                                }
                            }
                        }
                    }
                    Err(e) => report
                        .problems
                        .push(format!("{child_path}: dangling entry ({e})")),
                }
            }
        }

        // Cross-check the inode table: every allocated inode must be
        // reachable with a matching link count; every refcount must
        // name an allocated inode (checked above via stat).
        for raw in 1..=self.config().inode_count {
            let ino = Ino::new(raw);
            match self.stat(ino) {
                Ok(st) => {
                    let refs = refcounts.get(&raw).copied().unwrap_or(0);
                    if refs == 0 {
                        report
                            .problems
                            .push(format!("{ino} is allocated but unreachable"));
                    } else if refs != st.nlinks {
                        report.problems.push(format!(
                            "{ino}: link count {} but {refs} references",
                            st.nlinks
                        ));
                    }
                }
                Err(_) => {
                    if refcounts.contains_key(&raw) {
                        // Already reported as dangling above.
                    }
                }
            }
        }
        Ok(report)
    }

    /// `readdir` by inode (internal to verification).
    fn readdir_ino(&mut self, dir: Ino) -> Result<Vec<(String, Ino)>> {
        let blocks = {
            // Reuse the public surface: stat gives the block count but
            // we need the blocks themselves; go through the LD list.
            let inode_list = self.stat(dir)?;
            let _ = inode_list;
            self.dir_blocks(dir)?
        };
        let slots = self.block_size() / crate::dir::DIRENT_SIZE;
        let mut buf = vec![0u8; self.block_size()];
        let mut out = Vec::new();
        for &b in &blocks {
            self.ld().read(Ctx::Simple, b, &mut buf)?;
            for slot in 0..slots {
                if let Some((ino, name)) = crate::dir::decode(&buf, slot)? {
                    out.push((name, ino));
                }
            }
        }
        Ok(out)
    }
}
