//! File-system value types: inode numbers, file kinds, metadata.

use std::fmt;

/// An inode number (1-based; inode 1 is the root directory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ino(u32);

impl Ino {
    /// The root directory's inode.
    pub const ROOT: Ino = Ino(1);

    /// Wraps a raw inode number.
    ///
    /// # Panics
    ///
    /// Panics if `raw` is zero (zero marks a free directory slot).
    pub const fn new(raw: u32) -> Self {
        assert!(raw != 0, "inode zero is reserved");
        Ino(raw)
    }

    /// The raw non-zero value.
    pub const fn get(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Ino {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ino{}", self.0)
    }
}

/// What an inode describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileKind {
    /// A regular file.
    File,
    /// A directory.
    Dir,
}

/// File metadata returned by [`MinixFs::stat`](crate::MinixFs::stat).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stat {
    /// The inode number.
    pub ino: Ino,
    /// File or directory.
    pub kind: FileKind,
    /// Size in bytes (for directories: the byte size of the entry
    /// table).
    pub size: u64,
    /// Number of directory entries referring to this inode.
    pub nlinks: u32,
    /// Number of data blocks currently allocated.
    pub blocks: u64,
}

/// One directory entry as returned by
/// [`MinixFs::readdir`](crate::MinixFs::readdir).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// The entry's name (no slashes).
    pub name: String,
    /// The inode it refers to.
    pub ino: Ino,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_is_one() {
        assert_eq!(Ino::ROOT.get(), 1);
        assert_eq!(Ino::new(7).to_string(), "ino7");
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn zero_rejected() {
        let _ = Ino::new(0);
    }
}
