//! The file system proper: MinixLLD.
//!
//! Because the Logical Disk owns allocation and physical layout, this
//! file system carries no bitmaps, zones, or block pointers — an inode
//! simply names one LD list that holds the file's data blocks in order.
//! Directory and file creation and deletion are bracketed by
//! `BeginARU`/`EndARU` (when [`FsConfig::use_arus`] is set, the paper's
//! "new" MinixLLD): after a failure either all or none of the meta-data
//! describing a file is persistent, so no fsck-style repair is ever
//! needed.

use crate::config::{DeletePolicy, FsConfig};
use crate::dir::{self, DIRENT_SIZE};
use crate::error::{FsError, Result};
use crate::inode::{Inode, INODE_SIZE};
use crate::types::{DirEntry, FileKind, Ino, Stat};
use ld_core::{BlockId, Ctx, ListId, LogicalDisk, Position};
use std::collections::{BTreeSet, HashMap};

const SB_MAGIC: u64 = 0x4D4E_584C_4C44_3936; // "MNXLLD96"
const SB_VERSION: u32 = 1;

/// The list holding the file-system superblock (the first list a fresh
/// logical disk hands out).
const META_LIST_RAW: u64 = 1;

/// Counters of file-system activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct FsStats {
    /// Files created.
    pub files_created: u64,
    /// Files deleted.
    pub files_deleted: u64,
    /// Directories created.
    pub dirs_created: u64,
    /// Directories removed.
    pub dirs_removed: u64,
    /// Payload bytes written through [`MinixFs::write_at`].
    pub bytes_written: u64,
    /// Payload bytes read through [`MinixFs::read_at`].
    pub bytes_read: u64,
}

impl FsStats {
    /// The counters as `(name, value)` pairs, in declaration order —
    /// the shape [`ObsSnapshot::fs_ops`](ld_core::ObsSnapshot) expects,
    /// so a caller can surface file-system activity alongside the LLD
    /// and device layers.
    pub fn as_named_counters(&self) -> Vec<(String, u64)> {
        vec![
            ("files_created".to_string(), self.files_created),
            ("files_deleted".to_string(), self.files_deleted),
            ("dirs_created".to_string(), self.dirs_created),
            ("dirs_removed".to_string(), self.dirs_removed),
            ("bytes_written".to_string(), self.bytes_written),
            ("bytes_read".to_string(), self.bytes_read),
        ]
    }
}

/// A Minix-like file system on a Logical Disk.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ld_core::{Lld, LldConfig};
/// use ld_disk::MemDisk;
/// use ld_minixfs::{FsConfig, MinixFs};
///
/// let ld = Lld::format(MemDisk::new(8 << 20), &LldConfig::default())?;
/// let mut fs = MinixFs::format(ld, FsConfig::default())?;
/// fs.mkdir("/docs")?;
/// let ino = fs.create("/docs/readme.txt")?;
/// fs.write_at(ino, 0, b"atomic recovery units")?;
/// let mut buf = [0u8; 21];
/// fs.read_at(ino, 0, &mut buf)?;
/// assert_eq!(&buf, b"atomic recovery units");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MinixFs<L> {
    ld: L,
    cfg: FsConfig,
    block_size: usize,
    inode_list: ListId,
    inode_blocks: Vec<BlockId>,
    inodes_per_block: u32,
    free_inodes: BTreeSet<u32>,
    /// Cached data-block lists per inode (rebuilt lazily after mount).
    blocks_cache: HashMap<u32, Vec<BlockId>>,
    /// Inodes whose latest committed value has not been written back to
    /// the logical disk yet (the Minix buffer-cache delayed write for
    /// size updates; flushed by [`MinixFs::flush`] and before any
    /// direct write of the same inode-table block).
    dirty_inodes: HashMap<u32, Inode>,
    stats: FsStats,
}

impl<L: LogicalDisk> MinixFs<L> {
    // ------------------------------------------------------------------
    // Format and mount
    // ------------------------------------------------------------------

    /// Creates a fresh file system on an *empty*, freshly formatted
    /// logical disk.
    ///
    /// # Errors
    ///
    /// Logical-disk errors, or [`FsError::Corrupt`] if the disk is not
    /// fresh (the superblock convention requires the first allocated
    /// list).
    pub fn format(ld: L, cfg: FsConfig) -> Result<Self> {
        let block_size = ld.block_size();
        let inodes_per_block = (block_size / INODE_SIZE) as u32;
        let inode_count = cfg.inode_count.max(2);

        // Meta list: holds the superblock block.
        let meta = ld.new_list(Ctx::Simple)?;
        if meta.get() != META_LIST_RAW {
            return Err(FsError::Corrupt(
                "file system must be formatted on a fresh logical disk".into(),
            ));
        }
        let sb_block = ld.new_block(Ctx::Simple, meta, Position::First)?;

        // Inode table.
        let inode_list = ld.new_list(Ctx::Simple)?;
        let n_blocks = inode_count.div_ceil(inodes_per_block);
        let mut inode_blocks = Vec::with_capacity(n_blocks as usize);
        let mut prev: Option<BlockId> = None;
        for _ in 0..n_blocks {
            let pos = match prev {
                None => Position::First,
                Some(p) => Position::After(p),
            };
            let b = ld.new_block(Ctx::Simple, inode_list, pos)?;
            inode_blocks.push(b);
            prev = Some(b);
        }

        // Superblock.
        let mut sb = vec![0u8; block_size];
        sb[0..8].copy_from_slice(&SB_MAGIC.to_le_bytes());
        sb[8..12].copy_from_slice(&SB_VERSION.to_le_bytes());
        sb[12..16].copy_from_slice(&inode_count.to_le_bytes());
        sb[16..24].copy_from_slice(&inode_list.get().to_le_bytes());
        ld.write(Ctx::Simple, sb_block, &sb)?;

        let mut fs = MinixFs {
            ld,
            cfg,
            block_size,
            inode_list,
            inode_blocks,
            inodes_per_block,
            free_inodes: (1..=inode_count).collect(),
            blocks_cache: HashMap::new(),
            dirty_inodes: HashMap::new(),
            stats: FsStats::default(),
        };

        // Root directory (inode 1).
        let root_list = fs.ld.new_list(Ctx::Simple)?;
        fs.free_inodes.remove(&Ino::ROOT.get());
        fs.write_inode(
            Ctx::Simple,
            Ino::ROOT,
            Some(&Inode {
                kind: FileKind::Dir,
                nlinks: 1,
                size: 0,
                data_list: Some(root_list),
            }),
        )?;
        fs.ld.flush()?;
        Ok(fs)
    }

    /// Mounts an existing file system (e.g. after crash recovery of the
    /// logical disk).
    ///
    /// # Errors
    ///
    /// [`FsError::Corrupt`] if no valid superblock is found.
    pub fn mount(ld: L, cfg: FsConfig) -> Result<Self> {
        let block_size = ld.block_size();
        let meta = ListId::new(META_LIST_RAW);
        let meta_blocks = ld
            .list_blocks(Ctx::Simple, meta)
            .map_err(|_| FsError::Corrupt("no file-system meta list".into()))?;
        let &sb_block = meta_blocks
            .first()
            .ok_or_else(|| FsError::Corrupt("empty meta list".into()))?;
        let mut sb = vec![0u8; block_size];
        ld.read(Ctx::Simple, sb_block, &mut sb)?;
        if u64::from_le_bytes(sb[0..8].try_into().expect("8 bytes")) != SB_MAGIC {
            return Err(FsError::Corrupt("bad superblock magic".into()));
        }
        if u32::from_le_bytes(sb[8..12].try_into().expect("4 bytes")) != SB_VERSION {
            return Err(FsError::Corrupt("unsupported file-system version".into()));
        }
        let inode_count = u32::from_le_bytes(sb[12..16].try_into().expect("4 bytes"));
        let inode_list = ListId::new(u64::from_le_bytes(sb[16..24].try_into().expect("8 bytes")));
        let inode_blocks = ld.list_blocks(Ctx::Simple, inode_list)?;
        let inodes_per_block = (block_size / INODE_SIZE) as u32;

        let mut fs = MinixFs {
            ld,
            cfg: FsConfig { inode_count, ..cfg },
            block_size,
            inode_list,
            inode_blocks,
            inodes_per_block,
            free_inodes: BTreeSet::new(),
            blocks_cache: HashMap::new(),
            dirty_inodes: HashMap::new(),
            stats: FsStats::default(),
        };
        // Rebuild the free-inode set by scanning the table.
        let mut buf = vec![0u8; block_size];
        for raw in 1..=inode_count {
            let (bi, slot) = fs.inode_slot(Ino::new(raw));
            fs.ld.read(Ctx::Simple, fs.inode_blocks[bi], &mut buf)?;
            if Inode::decode(&buf, slot)?.is_none() {
                fs.free_inodes.insert(raw);
            }
        }
        Ok(fs)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The underlying logical disk. Every logical-disk operation takes
    /// `&self`, so this is enough for statistics, explicit flushes or
    /// checkpoints, and fault injection; do not mutate file-system
    /// state through it.
    pub fn ld(&self) -> &L {
        &self.ld
    }

    /// Consumes the file system, returning the logical disk. Nothing is
    /// flushed; combined with a crash test this models power failure.
    pub fn into_ld(self) -> L {
        self.ld
    }

    /// File-system operation counters.
    pub fn stats(&self) -> &FsStats {
        &self.stats
    }

    /// The file-system block size.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of free inodes.
    pub fn free_inode_count(&self) -> u32 {
        self.free_inodes.len() as u32
    }

    /// The configuration in effect.
    pub fn config(&self) -> &FsConfig {
        &self.cfg
    }

    /// The LD list holding the inode table.
    pub fn inode_table_list(&self) -> ListId {
        self.inode_list
    }

    /// Flushes all committed state to persistent storage.
    ///
    /// # Errors
    ///
    /// Logical-disk errors.
    pub fn flush(&mut self) -> Result<()> {
        self.write_back_dirty_inodes()?;
        self.ld.flush()?;
        Ok(())
    }

    /// Writes every delayed inode update into its table block.
    fn write_back_dirty_inodes(&mut self) -> Result<()> {
        let mut dirty: Vec<u32> = self.dirty_inodes.keys().copied().collect();
        dirty.sort_unstable();
        for raw in dirty {
            if let Some(inode) = self.dirty_inodes.get(&raw).cloned() {
                // write_inode merges (and clears) every dirty inode that
                // shares the block, so later iterations may find their
                // entry already gone.
                self.write_inode(Ctx::Simple, Ino::new(raw), Some(&inode))?;
            }
        }
        debug_assert!(self.dirty_inodes.is_empty());
        Ok(())
    }

    // ------------------------------------------------------------------
    // Inode helpers
    // ------------------------------------------------------------------

    fn inode_slot(&self, ino: Ino) -> (usize, usize) {
        let idx = (ino.get() - 1) as usize;
        (
            idx / self.inodes_per_block as usize,
            idx % self.inodes_per_block as usize,
        )
    }

    fn read_inode(&mut self, ctx: Ctx, ino: Ino) -> Result<Inode> {
        if ino.get() > self.cfg.inode_count {
            return Err(FsError::BadInode(ino));
        }
        if let Some(inode) = self.dirty_inodes.get(&ino.get()) {
            return Ok(inode.clone());
        }
        let (bi, slot) = self.inode_slot(ino);
        let mut buf = vec![0u8; self.block_size];
        self.ld.read(ctx, self.inode_blocks[bi], &mut buf)?;
        Inode::decode(&buf, slot)?.ok_or(FsError::BadInode(ino))
    }

    /// Writes (or frees, with `None`) an inode slot. Any delayed inode
    /// updates sharing the same table block are folded into the write
    /// (they are durable afterwards, so their dirty entries clear).
    fn write_inode(&mut self, ctx: Ctx, ino: Ino, inode: Option<&Inode>) -> Result<()> {
        let (bi, slot) = self.inode_slot(ino);
        let mut buf = vec![0u8; self.block_size];
        self.ld.read(ctx, self.inode_blocks[bi], &mut buf)?;
        let first_raw = bi as u32 * self.inodes_per_block + 1;
        for other in first_raw..first_raw + self.inodes_per_block {
            if other == ino.get() {
                self.dirty_inodes.remove(&other);
                continue;
            }
            if let Some(d) = self.dirty_inodes.remove(&other) {
                d.encode(&mut buf, (other - first_raw) as usize);
            }
        }
        match inode {
            Some(inode) => inode.encode(&mut buf, slot),
            None => Inode::encode_free(&mut buf, slot),
        }
        self.ld.write(ctx, self.inode_blocks[bi], &buf)?;
        Ok(())
    }

    /// The data blocks of a directory (used by verification).
    pub(crate) fn dir_blocks(&mut self, ino: Ino) -> Result<Vec<BlockId>> {
        self.data_blocks(Ctx::Simple, ino)
    }

    /// The data blocks of `ino`, cached.
    fn data_blocks(&mut self, ctx: Ctx, ino: Ino) -> Result<Vec<BlockId>> {
        if ctx.is_simple() {
            if let Some(v) = self.blocks_cache.get(&ino.get()) {
                return Ok(v.clone());
            }
        }
        let inode = self.read_inode(ctx, ino)?;
        let blocks = match inode.data_list {
            Some(list) => self.ld.list_blocks(ctx, list)?,
            None => Vec::new(),
        };
        if ctx.is_simple() {
            self.blocks_cache.insert(ino.get(), blocks.clone());
        }
        Ok(blocks)
    }

    // ------------------------------------------------------------------
    // Path and directory helpers
    // ------------------------------------------------------------------

    fn split_path<'p>(&self, path: &'p str) -> Result<Vec<&'p str>> {
        if !path.starts_with('/') {
            return Err(FsError::InvalidPath(path.to_string()));
        }
        let comps: Vec<&str> = path.split('/').filter(|c| !c.is_empty()).collect();
        for c in &comps {
            if c.len() > dir::MAX_NAME {
                return Err(FsError::NameTooLong((*c).to_string()));
            }
        }
        Ok(comps)
    }

    /// Resolves a path to its inode.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] / [`FsError::NotADirectory`] along the way.
    pub fn lookup(&mut self, path: &str) -> Result<Ino> {
        let comps = self.split_path(path)?;
        let mut cur = Ino::ROOT;
        for comp in comps {
            let inode = self.read_inode(Ctx::Simple, cur)?;
            if inode.kind != FileKind::Dir {
                return Err(FsError::NotADirectory(path.to_string()));
            }
            cur = self
                .dir_lookup(Ctx::Simple, cur, comp)?
                .ok_or_else(|| FsError::NotFound(path.to_string()))?
                .0;
        }
        Ok(cur)
    }

    /// Resolves a path to `(parent_dir, file_name)`.
    fn resolve_parent<'p>(&mut self, path: &'p str) -> Result<(Ino, &'p str)> {
        let comps = self.split_path(path)?;
        let (&name, parents) = comps
            .split_last()
            .ok_or_else(|| FsError::InvalidPath(path.to_string()))?;
        let mut cur = Ino::ROOT;
        for comp in parents {
            let inode = self.read_inode(Ctx::Simple, cur)?;
            if inode.kind != FileKind::Dir {
                return Err(FsError::NotADirectory(path.to_string()));
            }
            cur = self
                .dir_lookup(Ctx::Simple, cur, comp)?
                .ok_or_else(|| FsError::NotFound(path.to_string()))?
                .0;
        }
        if self.read_inode(Ctx::Simple, cur)?.kind != FileKind::Dir {
            return Err(FsError::NotADirectory(path.to_string()));
        }
        Ok((cur, name))
    }

    /// Scans `dir` for `name`; returns the inode and the (block index,
    /// slot) of the entry.
    fn dir_lookup(
        &mut self,
        ctx: Ctx,
        dir: Ino,
        name: &str,
    ) -> Result<Option<(Ino, usize, usize)>> {
        let blocks = self.data_blocks(ctx, dir)?;
        let slots = self.block_size / DIRENT_SIZE;
        let mut buf = vec![0u8; self.block_size];
        for (bi, &b) in blocks.iter().enumerate() {
            self.ld.read(ctx, b, &mut buf)?;
            for slot in 0..slots {
                if let Some((ino, ename)) = dir::decode(&buf, slot)? {
                    if ename == name {
                        return Ok(Some((ino, bi, slot)));
                    }
                }
            }
        }
        Ok(None)
    }

    /// Adds an entry to `dir`, extending it by one block if needed.
    fn dir_add(&mut self, ctx: Ctx, dir: Ino, name: &str, ino: Ino) -> Result<()> {
        let blocks = self.data_blocks(ctx, dir)?;
        let slots = self.block_size / DIRENT_SIZE;
        let mut buf = vec![0u8; self.block_size];
        for &b in &blocks {
            self.ld.read(ctx, b, &mut buf)?;
            for slot in 0..slots {
                if dir::decode(&buf, slot)?.is_none() {
                    dir::encode(&mut buf, slot, ino, name)?;
                    self.ld.write(ctx, b, &buf)?;
                    return Ok(());
                }
            }
        }
        // Directory is full: extend it.
        let mut inode = self.read_inode(ctx, dir)?;
        let list = inode
            .data_list
            .ok_or_else(|| FsError::Corrupt(format!("directory {dir} has no data list")))?;
        let pos = match blocks.last() {
            None => Position::First,
            Some(&p) => Position::After(p),
        };
        let nb = self.ld.new_block(ctx, list, pos)?;
        buf.fill(0);
        dir::encode(&mut buf, 0, ino, name)?;
        self.ld.write(ctx, nb, &buf)?;
        inode.size += self.block_size as u64;
        self.write_inode(ctx, dir, Some(&inode))?;
        if ctx.is_simple() {
            self.blocks_cache.entry(dir.get()).or_default().push(nb);
        } else {
            self.blocks_cache.remove(&dir.get());
        }
        Ok(())
    }

    /// Removes `name` from `dir`.
    fn dir_remove(&mut self, ctx: Ctx, dir: Ino, name: &str) -> Result<Ino> {
        let (ino, bi, slot) = self
            .dir_lookup(ctx, dir, name)?
            .ok_or_else(|| FsError::NotFound(name.to_string()))?;
        let blocks = self.data_blocks(ctx, dir)?;
        let mut buf = vec![0u8; self.block_size];
        self.ld.read(ctx, blocks[bi], &mut buf)?;
        dir::encode_free(&mut buf, slot);
        self.ld.write(ctx, blocks[bi], &buf)?;
        Ok(ino)
    }

    /// Lists the entries of the directory at `path`.
    ///
    /// # Errors
    ///
    /// [`FsError::NotADirectory`] if the path names a file.
    pub fn readdir(&mut self, path: &str) -> Result<Vec<DirEntry>> {
        let ino = self.lookup(path)?;
        let inode = self.read_inode(Ctx::Simple, ino)?;
        if inode.kind != FileKind::Dir {
            return Err(FsError::NotADirectory(path.to_string()));
        }
        let blocks = self.data_blocks(Ctx::Simple, ino)?;
        let slots = self.block_size / DIRENT_SIZE;
        let mut buf = vec![0u8; self.block_size];
        let mut out = Vec::new();
        for &b in &blocks {
            self.ld.read(Ctx::Simple, b, &mut buf)?;
            for slot in 0..slots {
                if let Some((ino, name)) = dir::decode(&buf, slot)? {
                    out.push(DirEntry { name, ino });
                }
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // ARU bracketing
    // ------------------------------------------------------------------

    /// Runs `f` inside an ARU when configured, as a plain operation
    /// sequence otherwise.
    fn bracketed<T>(&mut self, f: impl FnOnce(&mut Self, Ctx) -> Result<T>) -> Result<T> {
        if self.cfg.use_arus {
            let aru = self.ld.begin_aru()?;
            match f(self, Ctx::Aru(aru)) {
                Ok(v) => {
                    self.ld.end_aru(aru)?;
                    Ok(v)
                }
                Err(e) => {
                    // Best-effort rollback; sequential-mode disks cannot
                    // abort, in which case the partial operations remain
                    // committed (exactly the "old" behaviour).
                    let _ = self.ld.abort_aru(aru);
                    Err(e)
                }
            }
        } else {
            f(self, Ctx::Simple)
        }
    }

    // ------------------------------------------------------------------
    // Public mutating operations
    // ------------------------------------------------------------------

    /// Creates an empty regular file.
    ///
    /// With ARUs enabled, the inode write, the directory update, and the
    /// data-list creation are one atomic recovery unit.
    ///
    /// # Errors
    ///
    /// [`FsError::AlreadyExists`], [`FsError::NoInodes`], path errors,
    /// and logical-disk errors.
    pub fn create(&mut self, path: &str) -> Result<Ino> {
        let (parent, name) = self.resolve_parent(path)?;
        if self.dir_lookup(Ctx::Simple, parent, name)?.is_some() {
            return Err(FsError::AlreadyExists(path.to_string()));
        }
        let raw = *self.free_inodes.first().ok_or(FsError::NoInodes)?;
        let ino = Ino::new(raw);
        let name = name.to_string();
        self.bracketed(|fs, ctx| {
            let data_list = fs.ld.new_list(ctx)?;
            fs.write_inode(
                ctx,
                ino,
                Some(&Inode {
                    kind: FileKind::File,
                    nlinks: 1,
                    size: 0,
                    data_list: Some(data_list),
                }),
            )?;
            fs.dir_add(ctx, parent, &name, ino)?;
            Ok(())
        })?;
        self.free_inodes.remove(&raw);
        self.blocks_cache.insert(raw, Vec::new());
        self.stats.files_created += 1;
        Ok(ino)
    }

    /// Creates a directory.
    ///
    /// # Errors
    ///
    /// As for [`create`](MinixFs::create).
    pub fn mkdir(&mut self, path: &str) -> Result<Ino> {
        let (parent, name) = self.resolve_parent(path)?;
        if self.dir_lookup(Ctx::Simple, parent, name)?.is_some() {
            return Err(FsError::AlreadyExists(path.to_string()));
        }
        let raw = *self.free_inodes.first().ok_or(FsError::NoInodes)?;
        let ino = Ino::new(raw);
        let name = name.to_string();
        self.bracketed(|fs, ctx| {
            let data_list = fs.ld.new_list(ctx)?;
            fs.write_inode(
                ctx,
                ino,
                Some(&Inode {
                    kind: FileKind::Dir,
                    nlinks: 1,
                    size: 0,
                    data_list: Some(data_list),
                }),
            )?;
            fs.dir_add(ctx, parent, &name, ino)?;
            Ok(())
        })?;
        self.free_inodes.remove(&raw);
        self.blocks_cache.insert(raw, Vec::new());
        self.stats.dirs_created += 1;
        Ok(ino)
    }

    /// Deletes a regular file: its data blocks, its inode, and its
    /// directory entry — atomically, when ARUs are enabled.
    ///
    /// # Errors
    ///
    /// [`FsError::IsADirectory`] on a directory; path errors.
    pub fn unlink(&mut self, path: &str) -> Result<()> {
        let (parent, name) = self.resolve_parent(path)?;
        let (ino, _, _) = self
            .dir_lookup(Ctx::Simple, parent, name)?
            .ok_or_else(|| FsError::NotFound(path.to_string()))?;
        let mut inode = self.read_inode(Ctx::Simple, ino)?;
        if inode.kind == FileKind::Dir {
            return Err(FsError::IsADirectory(path.to_string()));
        }
        let name = name.to_string();
        if inode.nlinks > 1 {
            // Hard-linked elsewhere: drop this entry and the link count;
            // the data stays.
            inode.nlinks -= 1;
            self.dirty_inodes.remove(&ino.get());
            return self.bracketed(|fs, ctx| {
                fs.write_inode(ctx, ino, Some(&inode))?;
                fs.dir_remove(ctx, parent, &name)?;
                Ok(())
            });
        }
        let policy = self.cfg.delete_policy;
        self.bracketed(|fs, ctx| {
            if let Some(list) = inode.data_list {
                match policy {
                    DeletePolicy::PerBlock => {
                        // The paper's original deletion: deallocate each
                        // block, truncate-style from the tail, so every
                        // DeleteBlock runs a predecessor search in the
                        // logical disk ("longer lists cause longer
                        // predecessor searches"), then delete the
                        // emptied list.
                        let blocks = fs.ld.list_blocks(ctx, list)?;
                        for b in blocks.into_iter().rev() {
                            fs.ld.delete_block(ctx, b)?;
                        }
                        fs.ld.delete_list(ctx, list)?;
                    }
                    DeletePolicy::WholeList => {
                        // The improved deletion: one DeleteList, blocks
                        // dropped from the head.
                        fs.ld.delete_list(ctx, list)?;
                    }
                }
            }
            fs.write_inode(ctx, ino, None)?;
            fs.dir_remove(ctx, parent, &name)?;
            Ok(())
        })?;
        self.free_inodes.insert(ino.get());
        self.blocks_cache.remove(&ino.get());
        self.stats.files_deleted += 1;
        Ok(())
    }

    /// Removes an empty directory.
    ///
    /// # Errors
    ///
    /// [`FsError::DirectoryNotEmpty`] if it still has entries;
    /// [`FsError::NotADirectory`] on a file.
    pub fn rmdir(&mut self, path: &str) -> Result<()> {
        let (parent, name) = self.resolve_parent(path)?;
        let (ino, _, _) = self
            .dir_lookup(Ctx::Simple, parent, name)?
            .ok_or_else(|| FsError::NotFound(path.to_string()))?;
        let inode = self.read_inode(Ctx::Simple, ino)?;
        if inode.kind != FileKind::Dir {
            return Err(FsError::NotADirectory(path.to_string()));
        }
        // Must be empty.
        let blocks = self.data_blocks(Ctx::Simple, ino)?;
        let slots = self.block_size / DIRENT_SIZE;
        let mut buf = vec![0u8; self.block_size];
        for &b in &blocks {
            self.ld.read(Ctx::Simple, b, &mut buf)?;
            for slot in 0..slots {
                if dir::decode(&buf, slot)?.is_some() {
                    return Err(FsError::DirectoryNotEmpty(path.to_string()));
                }
            }
        }
        let name = name.to_string();
        self.bracketed(|fs, ctx| {
            if let Some(list) = inode.data_list {
                fs.ld.delete_list(ctx, list)?;
            }
            fs.write_inode(ctx, ino, None)?;
            fs.dir_remove(ctx, parent, &name)?;
            Ok(())
        })?;
        self.free_inodes.insert(ino.get());
        self.blocks_cache.remove(&ino.get());
        self.stats.dirs_removed += 1;
        Ok(())
    }

    /// Creates a hard link: a second directory entry for an existing
    /// regular file (extension beyond the paper's workload). The link
    /// count update and the directory update form one ARU.
    ///
    /// # Errors
    ///
    /// [`FsError::IsADirectory`] when linking a directory;
    /// [`FsError::AlreadyExists`] if the target name is taken.
    pub fn link(&mut self, existing: &str, new: &str) -> Result<()> {
        let ino = self.lookup(existing)?;
        let mut inode = self.read_inode(Ctx::Simple, ino)?;
        if inode.kind != FileKind::File {
            return Err(FsError::IsADirectory(existing.to_string()));
        }
        let (parent, name) = self.resolve_parent(new)?;
        if self.dir_lookup(Ctx::Simple, parent, name)?.is_some() {
            return Err(FsError::AlreadyExists(new.to_string()));
        }
        let name = name.to_string();
        inode.nlinks += 1;
        self.bracketed(|fs, ctx| {
            fs.write_inode(ctx, ino, Some(&inode))?;
            fs.dir_add(ctx, parent, &name, ino)?;
            Ok(())
        })
    }

    /// Truncates (or extends, sparsely zero-filled) a regular file to
    /// `new_size` bytes.
    ///
    /// # Errors
    ///
    /// [`FsError::IsADirectory`] on a directory; logical-disk errors.
    pub fn truncate(&mut self, ino: Ino, new_size: u64) -> Result<()> {
        let mut inode = self.read_inode(Ctx::Simple, ino)?;
        if inode.kind != FileKind::File {
            return Err(FsError::IsADirectory(ino.to_string()));
        }
        if new_size == inode.size {
            return Ok(());
        }
        let bs = self.block_size as u64;
        let list = inode
            .data_list
            .ok_or_else(|| FsError::Corrupt(format!("file {ino} has no data list")))?;
        let mut blocks = self.data_blocks(Ctx::Simple, ino)?;
        let needed = new_size.div_ceil(bs) as usize;
        if needed < blocks.len() {
            // Shrink: drop blocks from the tail (freeing from the end
            // keeps each predecessor search one step).
            for &b in blocks[needed..].iter().rev() {
                self.ld.delete_block(Ctx::Simple, b)?;
            }
            blocks.truncate(needed);
        } else {
            // Extend sparsely: allocate zero blocks up to the new end.
            while blocks.len() < needed {
                let pos = match blocks.last() {
                    None => Position::First,
                    Some(&p) => Position::After(p),
                };
                blocks.push(self.ld.new_block(Ctx::Simple, list, pos)?);
            }
        }
        self.blocks_cache.insert(ino.get(), blocks);
        inode.size = new_size;
        self.dirty_inodes.insert(ino.get(), inode);
        Ok(())
    }

    /// Renames a file or directory within the tree, atomically when
    /// ARUs are enabled (extension beyond the paper's workload).
    ///
    /// # Errors
    ///
    /// Path errors; [`FsError::AlreadyExists`] if the target exists.
    pub fn rename(&mut self, from: &str, to: &str) -> Result<()> {
        let (from_parent, from_name) = self.resolve_parent(from)?;
        let (to_parent, to_name) = self.resolve_parent(to)?;
        self.dir_lookup(Ctx::Simple, from_parent, from_name)?
            .ok_or_else(|| FsError::NotFound(from.to_string()))?;
        if self.dir_lookup(Ctx::Simple, to_parent, to_name)?.is_some() {
            return Err(FsError::AlreadyExists(to.to_string()));
        }
        let (from_name, to_name) = (from_name.to_string(), to_name.to_string());
        self.bracketed(|fs, ctx| {
            let ino = fs.dir_remove(ctx, from_parent, &from_name)?;
            fs.dir_add(ctx, to_parent, &to_name, ino)?;
            Ok(())
        })
    }

    /// Writes `data` at byte `offset`, extending the file as needed.
    ///
    /// # Errors
    ///
    /// [`FsError::IsADirectory`] on a directory; logical-disk errors.
    pub fn write_at(&mut self, ino: Ino, offset: u64, data: &[u8]) -> Result<()> {
        let mut inode = self.read_inode(Ctx::Simple, ino)?;
        if inode.kind != FileKind::File {
            return Err(FsError::IsADirectory(ino.to_string()));
        }
        let list = inode
            .data_list
            .ok_or_else(|| FsError::Corrupt(format!("file {ino} has no data list")))?;
        let bs = self.block_size as u64;
        let mut blocks = self.data_blocks(Ctx::Simple, ino)?;

        // Extend so every touched block exists.
        let end = offset + data.len() as u64;
        let needed = end.div_ceil(bs) as usize;
        while blocks.len() < needed {
            let pos = match blocks.last() {
                None => Position::First,
                Some(&p) => Position::After(p),
            };
            let b = self.ld.new_block(Ctx::Simple, list, pos)?;
            blocks.push(b);
        }
        self.blocks_cache.insert(ino.get(), blocks.clone());

        let mut written = 0usize;
        let mut buf = vec![0u8; self.block_size];
        while written < data.len() {
            let pos = offset + written as u64;
            let bi = (pos / bs) as usize;
            let in_block = (pos % bs) as usize;
            let n = (self.block_size - in_block).min(data.len() - written);
            if n == self.block_size {
                self.ld
                    .write(Ctx::Simple, blocks[bi], &data[written..written + n])?;
            } else {
                // Partial block: read-modify-write.
                self.ld.read(Ctx::Simple, blocks[bi], &mut buf)?;
                buf[in_block..in_block + n].copy_from_slice(&data[written..written + n]);
                self.ld.write(Ctx::Simple, blocks[bi], &buf)?;
            }
            written += n;
        }
        if end > inode.size {
            inode.size = end;
            self.dirty_inodes.insert(ino.get(), inode);
        }
        self.stats.bytes_written += data.len() as u64;
        Ok(())
    }

    /// Reads up to `buf.len()` bytes at `offset`; returns the number of
    /// bytes read (short at end of file).
    ///
    /// # Errors
    ///
    /// [`FsError::IsADirectory`] on a directory; logical-disk errors.
    pub fn read_at(&mut self, ino: Ino, offset: u64, buf: &mut [u8]) -> Result<usize> {
        let inode = self.read_inode(Ctx::Simple, ino)?;
        if inode.kind != FileKind::File {
            return Err(FsError::IsADirectory(ino.to_string()));
        }
        if offset >= inode.size {
            return Ok(0);
        }
        let want = (buf.len() as u64).min(inode.size - offset) as usize;
        let blocks = self.data_blocks(Ctx::Simple, ino)?;
        let bs = self.block_size as u64;
        let mut block_buf = vec![0u8; self.block_size];
        let mut read = 0usize;
        while read < want {
            let pos = offset + read as u64;
            let bi = (pos / bs) as usize;
            let in_block = (pos % bs) as usize;
            let n = (self.block_size - in_block).min(want - read);
            self.ld.read(Ctx::Simple, blocks[bi], &mut block_buf)?;
            buf[read..read + n].copy_from_slice(&block_buf[in_block..in_block + n]);
            read += n;
        }
        self.stats.bytes_read += read as u64;
        Ok(read)
    }

    /// File metadata.
    ///
    /// # Errors
    ///
    /// [`FsError::BadInode`] for a free or out-of-range inode.
    pub fn stat(&mut self, ino: Ino) -> Result<Stat> {
        let inode = self.read_inode(Ctx::Simple, ino)?;
        let blocks = self.data_blocks(Ctx::Simple, ino)?;
        Ok(Stat {
            ino,
            kind: inode.kind,
            size: inode.size,
            nlinks: inode.nlinks,
            blocks: blocks.len() as u64,
        })
    }
}
