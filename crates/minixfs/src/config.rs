//! File-system configuration: ARU usage and the deletion policy.

/// How MinixLLD deallocates a file's blocks (§5.3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DeletePolicy {
    /// The original policy: deallocate every block individually
    /// (`DeleteBlock` per block, each triggering a predecessor search in
    /// the logical disk), then delete the emptied list. This is the
    /// paper's "new" configuration.
    PerBlock,
    /// The improved policy: delete the list directly and let the logical
    /// disk drop its blocks from the head, avoiding the predecessor
    /// searches. This is the paper's "new, delete" configuration and the
    /// default.
    #[default]
    WholeList,
}

/// File-system configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsConfig {
    /// Bracket every file/directory creation and deletion in its own
    /// atomic recovery unit (the paper's modified MinixLLD). With this
    /// off, meta-data updates are individual simple operations — the
    /// original MinixLLD, which can be left inconsistent by a crash.
    pub use_arus: bool,
    /// How file deletion deallocates blocks.
    pub delete_policy: DeletePolicy,
    /// Number of inodes created at format time.
    pub inode_count: u32,
}

impl Default for FsConfig {
    fn default() -> Self {
        FsConfig {
            use_arus: true,
            delete_policy: DeletePolicy::default(),
            inode_count: 4096,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_new_delete() {
        let c = FsConfig::default();
        assert!(c.use_arus);
        assert_eq!(c.delete_policy, DeletePolicy::WholeList);
        assert!(c.inode_count > 0);
    }
}
