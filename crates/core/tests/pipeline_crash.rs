//! Crash safety of the pipelined device layer.
//!
//! The pipelined path moves writes and barriers onto an I/O thread, so
//! these sweeps re-prove the two properties a crash could newly break:
//!
//! 1. **Queue drained before ack** — an `end_aru_sync`/`flush` that
//!    returned `Ok` means every covered write reached the device
//!    *before* the acknowledgment, so a power cut immediately after an
//!    ack can never lose the acknowledged ARU.
//! 2. **All-or-nothing recovery** — at any crash byte, a recovered list
//!    is either complete and correctly patterned or absent, exactly as
//!    on the synchronous path (the pipeline's single FIFO thread
//!    consumes a fault plan's byte budget in submission order).
//!
//! Both are swept at 1 and 8 mapping shards, since the group-commit
//! leader's seal/handoff interleaving differs with shard count.

use ld_core::{Ctx, Lld, LldConfig, LldError, Position};
use ld_disk::{DiskModel, FaultPlan, LatencyDisk, MemDisk, SimDisk};
use std::sync::Arc;
use std::time::Duration;

const BS: usize = 512;

fn config(shards: usize) -> LldConfig {
    LldConfig {
        block_size: BS,
        segment_bytes: 8 * BS,
        max_blocks: Some(512),
        max_lists: Some(128),
        map_shards: shards,
        pipeline: true,
        ..LldConfig::default()
    }
}

fn block(byte: u8) -> Vec<u8> {
    vec![byte; BS]
}

/// One committed-ARU attempt: its list, blocks, pattern tag, and how
/// far it got before the power cut.
#[derive(Debug)]
struct AruRecord {
    list: ld_core::ListId,
    blocks: Vec<ld_core::BlockId>,
    tag: u8,
    committed: bool,
    durable: bool,
}

/// Runs up to `n` three-block ARUs, each committing with `end_aru`
/// followed by `flush`, stopping at the first device error.
fn run_arus(ld: &Lld<SimDisk<MemDisk>>, n: u8) -> Vec<AruRecord> {
    let mut out = Vec::new();
    'arus: for i in 0..n {
        let tag = i + 1;
        let Ok(aru) = ld.begin_aru() else { break };
        let Ok(list) = ld.new_list(Ctx::Aru(aru)) else {
            break;
        };
        let mut rec = AruRecord {
            list,
            blocks: Vec::new(),
            tag,
            committed: false,
            durable: false,
        };
        let mut prev = None;
        for k in 0..3u8 {
            let pos = match prev {
                None => Position::First,
                Some(p) => Position::After(p),
            };
            let Ok(b) = ld.new_block(Ctx::Aru(aru), list, pos) else {
                out.push(rec);
                break 'arus;
            };
            rec.blocks.push(b);
            prev = Some(b);
            if ld.write(Ctx::Aru(aru), b, &block(tag ^ (k << 6))).is_err() {
                out.push(rec);
                break 'arus;
            }
        }
        rec.committed = ld.end_aru(aru).is_ok();
        rec.durable = rec.committed && ld.flush().is_ok();
        let done = !rec.durable;
        out.push(rec);
        if done {
            break;
        }
    }
    out
}

/// Recovers the crash image and checks every record: durable ARUs must
/// be complete, surviving ARUs must be complete and committed, content
/// must match the pattern. Returns how many durable ARUs there were.
fn check_recovered(image: Vec<u8>, cfg: &LldConfig, records: &[AruRecord], label: &str) -> usize {
    let (ld2, _report) = Lld::recover_with(MemDisk::from_image(image), cfg).unwrap_or_else(|e| {
        panic!("{label}: recovery failed: {e}");
    });
    let mut durable = 0;
    let mut buf = block(0);
    for rec in records {
        let survived = ld2.list_blocks(Ctx::Simple, rec.list).unwrap_or_default();
        if rec.durable {
            assert_eq!(
                survived, rec.blocks,
                "{label}: durable ARU (tag {}) must survive completely",
                rec.tag
            );
            durable += 1;
        }
        if survived.is_empty() {
            continue; // the "nothing" outcome
        }
        assert!(
            rec.committed,
            "{label}: ARU (tag {}) survived without committing",
            rec.tag
        );
        assert_eq!(
            survived, rec.blocks,
            "{label}: ARU (tag {}) survived partially",
            rec.tag
        );
        for (k, &b) in survived.iter().enumerate() {
            ld2.read(Ctx::Simple, b, &mut buf).unwrap();
            assert_eq!(
                buf,
                block(rec.tag ^ ((k as u8) << 6)),
                "{label}: block {k} of ARU (tag {}) corrupted",
                rec.tag
            );
        }
    }
    durable
}

/// Sweeps crash bytes across the whole workload: before, during, and
/// after the run's writes. Every point must recover all-or-nothing.
fn power_cut_sweep(shards: usize) {
    let cfg = config(shards);
    for case in 0..24u64 {
        let crash_after = 2_000 + case * 2_500;
        let sim = SimDisk::new(MemDisk::new(4 << 20), DiskModel::hp_c3010())
            .with_faults(FaultPlan::new().crash_after_bytes(crash_after));
        let ld = match Lld::format(sim, &cfg) {
            Ok(ld) => ld,
            // The budget can be shorter than format itself.
            Err(LldError::Disk(_)) => continue,
            Err(e) => panic!("shards {shards}, crash {crash_after}: format: {e}"),
        };
        assert!(ld.pipelined(), "config must select the pipelined path");
        let records = run_arus(&ld, 10);
        // If the budget outlived the workload, cut the power now so
        // recovery always runs against a crashed image.
        ld.device().force_crash();
        let image = ld.into_device().into_inner().into_image();
        check_recovered(
            image,
            &cfg,
            &records,
            &format!("shards {shards}, crash {crash_after}"),
        );
    }
}

#[test]
fn power_cut_sweep_is_all_or_nothing_single_shard() {
    power_cut_sweep(1);
}

#[test]
fn power_cut_sweep_is_all_or_nothing_eight_shards() {
    power_cut_sweep(8);
}

/// The queue-drain-before-ack property in isolation: with no fault
/// armed, sync-commit a batch of ARUs, then cut the power immediately
/// after the last acknowledgment. Anything the pipeline acknowledged
/// without having applied would be lost here.
fn sync_ack_means_drained(shards: usize) {
    let cfg = config(shards);
    let sim = SimDisk::new(MemDisk::new(4 << 20), DiskModel::hp_c3010());
    let ld = Lld::format(sim, &cfg).unwrap();
    let records = run_arus(&ld, 10);
    assert!(
        records.iter().all(|r| r.durable),
        "no fault armed: every commit must succeed"
    );
    ld.device().force_crash();
    let image = ld.into_device().into_inner().into_image();
    let durable = check_recovered(
        image,
        &cfg,
        &records,
        &format!("shards {shards}, ack-drain"),
    );
    assert_eq!(durable, 10, "every acknowledged ARU must survive the cut");
}

#[test]
fn sync_ack_means_queue_drained_single_shard() {
    sync_ack_means_drained(1);
}

#[test]
fn sync_ack_means_queue_drained_eight_shards() {
    sync_ack_means_drained(8);
}

/// Group-commit accounting regression: the leader records its batch
/// (`flush_batches`, `flush_batch_callers`, `flush_batch_max`) under
/// the state lock *before* releasing it for the seal. A caller arriving
/// between that release and the seal therefore belongs to the next
/// batch — with the pipelined handoff, batches form while a barrier is
/// still in flight, and every ticket must still be counted exactly
/// once: the callers total equals the number of flush calls.
#[test]
fn group_commit_batches_count_every_caller_exactly_once() {
    const THREADS: usize = 4;
    const COMMITS: usize = 25;
    for pipeline in [false, true] {
        let cfg = LldConfig {
            block_size: BS,
            segment_bytes: 8 * BS,
            pipeline,
            ..LldConfig::default()
        };
        let device = LatencyDisk::new(MemDisk::new(8 << 20), Duration::from_micros(200));
        let ld = Arc::new(Lld::format(device, &cfg).unwrap());
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let ld = Arc::clone(&ld);
                s.spawn(move || {
                    for i in 0..COMMITS {
                        let aru = ld.begin_aru().unwrap();
                        let list = ld.new_list(Ctx::Aru(aru)).unwrap();
                        let b = ld.new_block(Ctx::Aru(aru), list, Position::First).unwrap();
                        ld.write(Ctx::Aru(aru), b, &block((t * COMMITS + i) as u8))
                            .unwrap();
                        ld.end_aru_sync(aru).unwrap();
                    }
                });
            }
        });
        let stats = ld.stats();
        let total = (THREADS * COMMITS) as u64;
        assert_eq!(
            stats.flush_batch_callers, total,
            "pipeline={pipeline}: every flush caller lands in exactly one batch"
        );
        assert!(
            stats.flush_batches >= 1 && stats.flush_batches <= total,
            "pipeline={pipeline}: batches within [1, callers]"
        );
        assert!(
            stats.flush_batch_max >= 1 && stats.flush_batch_max <= THREADS as u64,
            "pipeline={pipeline}: a batch covers at most one ticket per thread, \
             got {}",
            stats.flush_batch_max
        );
    }
}
