//! Randomised tests of the on-disk codecs: summary records and the
//! superblock must round-trip bit-exactly for arbitrary valid values,
//! and reject corruption. Driven by a seeded PRNG so every run checks
//! the same (large) sample deterministically.

use ld_core::{AruId, BlockId, Layout, ListId, LldConfig, Record, Timestamp};
use ld_disk::SmallRng;

/// Public helpers mirroring the crate-internal optional-id encoding
/// (0 = None).
trait DecodeOptPublic: Sized {
    fn decode_opt_public(raw: u64) -> Option<Self>;
}
impl DecodeOptPublic for AruId {
    fn decode_opt_public(raw: u64) -> Option<Self> {
        (raw != 0).then(|| AruId::new(raw))
    }
}
impl DecodeOptPublic for BlockId {
    fn decode_opt_public(raw: u64) -> Option<Self> {
        (raw != 0).then(|| BlockId::new(raw))
    }
}

fn id_raw(rng: &mut SmallRng) -> u64 {
    rng.next_u64().max(1)
}

fn opt_id_raw(rng: &mut SmallRng) -> u64 {
    if rng.gen_bool(0.3) {
        0
    } else {
        id_raw(rng)
    }
}

fn random_record(rng: &mut SmallRng) -> Record {
    match rng.gen_index(7) {
        0 => Record::Write {
            block: BlockId::new(id_raw(rng)),
            slot: rng.next_u64() as u32,
            ts: Timestamp::new(rng.next_u64()),
            aru: AruId::decode_opt_public(opt_id_raw(rng)),
        },
        1 => Record::NewBlock {
            block: BlockId::new(id_raw(rng)),
            ts: Timestamp::new(rng.next_u64()),
        },
        2 => Record::NewList {
            list: ListId::new(id_raw(rng)),
            ts: Timestamp::new(rng.next_u64()),
        },
        3 => Record::Link {
            list: ListId::new(id_raw(rng)),
            block: BlockId::new(id_raw(rng)),
            pred: BlockId::decode_opt_public(opt_id_raw(rng)),
            ts: Timestamp::new(rng.next_u64()),
            aru: AruId::decode_opt_public(opt_id_raw(rng)),
        },
        4 => Record::DeleteBlock {
            block: BlockId::new(id_raw(rng)),
            ts: Timestamp::new(rng.next_u64()),
            aru: AruId::decode_opt_public(opt_id_raw(rng)),
        },
        5 => Record::DeleteList {
            list: ListId::new(id_raw(rng)),
            ts: Timestamp::new(rng.next_u64()),
            aru: AruId::decode_opt_public(opt_id_raw(rng)),
        },
        _ => Record::Commit {
            aru: AruId::new(id_raw(rng)),
            ts: Timestamp::new(rng.next_u64()),
        },
    }
}

#[test]
fn record_streams_round_trip() {
    let mut rng = SmallRng::seed_from_u64(0xC0DE_C001);
    for _ in 0..256 {
        let records: Vec<Record> = (0..rng.gen_index(64))
            .map(|_| random_record(&mut rng))
            .collect();
        let mut buf = Vec::new();
        for r in &records {
            let before = buf.len();
            r.encode(&mut buf);
            assert_eq!(buf.len() - before, r.encoded_len());
        }
        let decoded = Record::decode_all(&buf).unwrap();
        assert_eq!(decoded, records);
    }
}

#[test]
fn truncated_record_streams_are_rejected() {
    let mut rng = SmallRng::seed_from_u64(0xC0DE_C002);
    for _ in 0..256 {
        let records: Vec<Record> = (0..1 + rng.gen_index(15))
            .map(|_| random_record(&mut rng))
            .collect();
        let mut buf = Vec::new();
        for r in &records {
            r.encode(&mut buf);
        }
        let cut = (1 + rng.gen_index(15)).min(buf.len() - 1).max(1);
        // Cutting inside a record must produce an error, never a wrong
        // silent decode of the full stream.
        if let Ok(decoded) = Record::decode_all(&buf[..buf.len() - cut]) {
            assert!(decoded.len() < records.len());
        }
    }
}

#[test]
fn superblock_round_trips() {
    let mut rng = SmallRng::seed_from_u64(0xC0DE_C003);
    for _ in 0..256 {
        let capacity = rng.gen_range(1 << 21, 1 << 28);
        let seg_blocks = rng.gen_range(4, 64) as usize;
        let max_blocks = rng.gen_range(16, 10_000);
        let cfg = LldConfig {
            block_size: 4096,
            segment_bytes: 4096 * seg_blocks,
            max_blocks: Some(max_blocks),
            ..LldConfig::default()
        };
        if let Ok(layout) = Layout::compute(capacity, &cfg) {
            let buf = layout.encode_superblock(
                ld_core::ConcurrencyMode::Concurrent,
                ld_core::ReadVisibility::OwnShadow,
            );
            let (decoded, conc, vis) = Layout::decode_superblock(&buf).unwrap();
            assert_eq!(decoded, layout);
            assert_eq!(conc, ld_core::ConcurrencyMode::Concurrent);
            assert_eq!(vis, ld_core::ReadVisibility::OwnShadow);
        }
    }
}

#[test]
fn superblock_bit_flips_detected() {
    let mut rng = SmallRng::seed_from_u64(0xC0DE_C004);
    for _ in 0..256 {
        let capacity = rng.gen_range(1 << 21, 1 << 26);
        let byte = rng.gen_index(60);
        let bit = rng.gen_index(8) as u8;
        let cfg = LldConfig {
            block_size: 4096,
            segment_bytes: 4096 * 16,
            max_blocks: Some(100),
            ..LldConfig::default()
        };
        if let Ok(layout) = Layout::compute(capacity, &cfg) {
            let mut buf = layout.encode_superblock(
                ld_core::ConcurrencyMode::Concurrent,
                ld_core::ReadVisibility::OwnShadow,
            );
            buf[byte] ^= 1 << bit;
            assert!(Layout::decode_superblock(&buf).is_err());
        }
    }
}
