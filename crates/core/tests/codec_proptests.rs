//! Property tests of the on-disk codecs: summary records and the
//! superblock must round-trip bit-exactly for arbitrary valid values,
//! and reject corruption.

use ld_core::{AruId, BlockId, Layout, ListId, LldConfig, Record, Timestamp};
use proptest::prelude::*;

fn id_raw() -> impl Strategy<Value = u64> {
    1u64..=u64::MAX
}

fn opt_id_raw() -> impl Strategy<Value = u64> {
    prop_oneof![Just(0u64), 1u64..=u64::MAX]
}

fn record_strategy() -> impl Strategy<Value = Record> {
    prop_oneof![
        (id_raw(), any::<u32>(), any::<u64>(), opt_id_raw()).prop_map(|(b, slot, ts, aru)| {
            Record::Write {
                block: BlockId::new(b),
                slot,
                ts: Timestamp::new(ts),
                aru: AruId::decode_opt_public(aru),
            }
        }),
        (id_raw(), any::<u64>()).prop_map(|(b, ts)| Record::NewBlock {
            block: BlockId::new(b),
            ts: Timestamp::new(ts),
        }),
        (id_raw(), any::<u64>()).prop_map(|(l, ts)| Record::NewList {
            list: ListId::new(l),
            ts: Timestamp::new(ts),
        }),
        (id_raw(), id_raw(), opt_id_raw(), any::<u64>(), opt_id_raw()).prop_map(
            |(l, b, pred, ts, aru)| Record::Link {
                list: ListId::new(l),
                block: BlockId::new(b),
                pred: BlockId::decode_opt_public(pred),
                ts: Timestamp::new(ts),
                aru: AruId::decode_opt_public(aru),
            }
        ),
        (id_raw(), any::<u64>(), opt_id_raw()).prop_map(|(b, ts, aru)| Record::DeleteBlock {
            block: BlockId::new(b),
            ts: Timestamp::new(ts),
            aru: AruId::decode_opt_public(aru),
        }),
        (id_raw(), any::<u64>(), opt_id_raw()).prop_map(|(l, ts, aru)| Record::DeleteList {
            list: ListId::new(l),
            ts: Timestamp::new(ts),
            aru: AruId::decode_opt_public(aru),
        }),
        (id_raw(), any::<u64>()).prop_map(|(a, ts)| Record::Commit {
            aru: AruId::new(a),
            ts: Timestamp::new(ts),
        }),
    ]
}

/// Public helpers mirroring the crate-internal optional-id encoding
/// (0 = None).
trait DecodeOptPublic: Sized {
    fn decode_opt_public(raw: u64) -> Option<Self>;
}
impl DecodeOptPublic for AruId {
    fn decode_opt_public(raw: u64) -> Option<Self> {
        (raw != 0).then(|| AruId::new(raw))
    }
}
impl DecodeOptPublic for BlockId {
    fn decode_opt_public(raw: u64) -> Option<Self> {
        (raw != 0).then(|| BlockId::new(raw))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn record_streams_round_trip(records in proptest::collection::vec(record_strategy(), 0..64)) {
        let mut buf = Vec::new();
        for r in &records {
            let before = buf.len();
            r.encode(&mut buf);
            prop_assert_eq!(buf.len() - before, r.encoded_len());
        }
        let decoded = Record::decode_all(&buf).unwrap();
        prop_assert_eq!(decoded, records);
    }

    #[test]
    fn truncated_record_streams_are_rejected(
        records in proptest::collection::vec(record_strategy(), 1..16),
        cut in 1usize..16,
    ) {
        let mut buf = Vec::new();
        for r in &records {
            r.encode(&mut buf);
        }
        let cut = cut.min(buf.len() - 1).max(1);
        // Cutting inside a record must produce an error, never a wrong
        // silent decode of the full stream.
        match Record::decode_all(&buf[..buf.len() - cut]) {
            Ok(decoded) => prop_assert!(decoded.len() < records.len()),
            Err(_) => {}
        }
    }

    #[test]
    fn superblock_round_trips(
        capacity in (1u64 << 21)..(1u64 << 28),
        seg_blocks in 4usize..64,
        max_blocks in 16u64..10_000,
    ) {
        let cfg = LldConfig {
            block_size: 4096,
            segment_bytes: 4096 * seg_blocks,
            max_blocks: Some(max_blocks),
            ..LldConfig::default()
        };
        if let Ok(layout) = Layout::compute(capacity, &cfg) {
            let buf = layout.encode_superblock(
                ld_core::ConcurrencyMode::Concurrent,
                ld_core::ReadVisibility::OwnShadow,
            );
            let (decoded, conc, vis) = Layout::decode_superblock(&buf).unwrap();
            prop_assert_eq!(decoded, layout);
            prop_assert_eq!(conc, ld_core::ConcurrencyMode::Concurrent);
            prop_assert_eq!(vis, ld_core::ReadVisibility::OwnShadow);
        }
    }

    #[test]
    fn superblock_bit_flips_detected(
        capacity in (1u64 << 21)..(1u64 << 26),
        byte in 0usize..60,
        bit in 0u8..8,
    ) {
        let cfg = LldConfig {
            block_size: 4096,
            segment_bytes: 4096 * 16,
            max_blocks: Some(100),
            ..LldConfig::default()
        };
        if let Ok(layout) = Layout::compute(capacity, &cfg) {
            let mut buf = layout.encode_superblock(
                ld_core::ConcurrencyMode::Concurrent,
                ld_core::ReadVisibility::OwnShadow,
            );
            buf[byte] ^= 1 << bit;
            prop_assert!(Layout::decode_superblock(&buf).is_err());
        }
    }
}
