//! Robustness tests: corrupted checkpoints, media failures, visibility
//! of list structures, and assorted edge cases that the main suites do
//! not reach.

use ld_core::{Ctx, Lld, LldConfig, LldError, Position, ReadVisibility};
use ld_disk::{DiskModel, FaultPlan, MemDisk, SimDisk};

const BS: usize = 512;

fn config() -> LldConfig {
    LldConfig {
        block_size: BS,
        segment_bytes: 16 * BS,
        max_blocks: Some(256),
        max_lists: Some(64),
        ..LldConfig::default()
    }
}

fn block(byte: u8) -> Vec<u8> {
    vec![byte; BS]
}

#[test]
fn corrupt_newest_checkpoint_falls_back_to_older() {
    // Write two checkpoints (areas alternate), corrupt the newer one on
    // the raw image, and recover: the older checkpoint plus the log
    // replay must still reconstruct the latest state.
    let ld = Lld::format(MemDisk::new(2 << 20), &config()).unwrap();
    let l = ld.new_list(Ctx::Simple).unwrap();
    let b = ld.new_block(Ctx::Simple, l, Position::First).unwrap();
    ld.write(Ctx::Simple, b, &block(1)).unwrap();
    ld.checkpoint().unwrap(); // checkpoint #1 (area A)
    ld.write(Ctx::Simple, b, &block(2)).unwrap();
    ld.checkpoint().unwrap(); // checkpoint #2 (area B)
    ld.write(Ctx::Simple, b, &block(3)).unwrap();
    ld.flush().unwrap();

    let mut image = ld.into_device().into_image();
    // The superblock is 64 bytes at offset 0; area A starts at
    // block_size. Corrupt whichever area holds the NEWER checkpoint by
    // flipping bytes in both areas' headers... precisely: flip area B
    // (second checkpoint went to B since A was used first).
    // Area offsets: A at BS, B at BS + area_size. Read area size from a
    // fresh probe of the same config/capacity.
    let probe = MemDisk::from_image(image.clone());
    let (layout, _, _) = Lld::probe(&probe).unwrap();
    let b_off = layout.ckpt_b as usize;
    image[b_off + 4] ^= 0xFF;

    let (ld2, report) = Lld::recover(MemDisk::from_image(image)).unwrap();
    // Fell back to checkpoint #1.
    assert!(report.checkpoint_seq > 0);
    let mut buf = block(0);
    ld2.read(Ctx::Simple, b, &mut buf).unwrap();
    assert_eq!(buf, block(3), "log replay on top of the old checkpoint");
}

#[test]
fn both_checkpoints_corrupt_means_full_scan() {
    let ld = Lld::format(MemDisk::new(2 << 20), &config()).unwrap();
    let l = ld.new_list(Ctx::Simple).unwrap();
    let b = ld.new_block(Ctx::Simple, l, Position::First).unwrap();
    ld.write(Ctx::Simple, b, &block(7)).unwrap();
    ld.checkpoint().unwrap();
    ld.checkpoint().unwrap();
    ld.flush().unwrap();

    let mut image = ld.into_device().into_image();
    let probe = MemDisk::from_image(image.clone());
    let (layout, _, _) = Lld::probe(&probe).unwrap();
    image[layout.ckpt_a as usize + 4] ^= 0xFF;
    image[layout.ckpt_b as usize + 4] ^= 0xFF;

    let (ld2, report) = Lld::recover(MemDisk::from_image(image)).unwrap();
    assert_eq!(report.checkpoint_seq, 0, "no checkpoint usable");
    assert!(report.segments_replayed > 0, "full log scan");
    let mut buf = block(0);
    ld2.read(Ctx::Simple, b, &mut buf).unwrap();
    assert_eq!(buf, block(7));
}

#[test]
fn media_failure_on_read_is_reported() {
    let sim = SimDisk::new(MemDisk::new(2 << 20), DiskModel::hp_c3010());
    let ld = Lld::format(sim, &config()).unwrap();
    let l = ld.new_list(Ctx::Simple).unwrap();
    let b = ld.new_block(Ctx::Simple, l, Position::First).unwrap();
    ld.write(Ctx::Simple, b, &block(9)).unwrap();
    ld.flush().unwrap();
    // The block is now on disk; mark its whole device unreadable except
    // nothing — a blanket read-error region over the data area.
    let info = ld.block_info(b).unwrap();
    assert!(info.addr.is_some());
    ld.device()
        .set_faults(FaultPlan::new().read_error_region(0..u64::MAX));
    let buf = block(0);
    // The block cache still holds the block (written through); evict it
    // is not possible from outside, so read a *fresh* instance instead.
    let image = ld.into_device().into_inner().into_image();
    let sim2 = SimDisk::new(MemDisk::from_image(image), DiskModel::hp_c3010());
    // Recovery itself must fail cleanly when the medium is unreadable.
    let failing = Lld::recover(
        // Region chosen past the superblock so the failure hits the
        // checkpoint/segment scan.
        {
            sim2.set_faults(FaultPlan::new().read_error_region(4096..u64::MAX));
            sim2
        },
    );
    match failing {
        Err(LldError::Disk(ld_disk::DiskError::MediaFailure { .. })) => {}
        other => panic!("expected a media failure, got {other:?}"),
    }
    let _ = buf;
}

#[test]
fn visibility_committed_applies_to_list_walks() {
    let cfg = LldConfig {
        visibility: ReadVisibility::Committed,
        ..config()
    };
    let ld = Lld::format(MemDisk::new(2 << 20), &cfg).unwrap();
    let l = ld.new_list(Ctx::Simple).unwrap();
    let b0 = ld.new_block(Ctx::Simple, l, Position::First).unwrap();
    let aru = ld.begin_aru().unwrap();
    let _b1 = ld.new_block(Ctx::Aru(aru), l, Position::After(b0)).unwrap();
    // Option 2: even inside the ARU, the list walk sees only the
    // committed membership.
    assert_eq!(ld.list_blocks(Ctx::Aru(aru), l).unwrap(), vec![b0]);
    ld.end_aru(aru).unwrap();
    assert_eq!(ld.list_blocks(Ctx::Simple, l).unwrap().len(), 2);
}

#[test]
fn visibility_any_shadow_list_walk_sees_uncommitted_insert() {
    let cfg = LldConfig {
        visibility: ReadVisibility::AnyShadow,
        ..config()
    };
    let ld = Lld::format(MemDisk::new(2 << 20), &cfg).unwrap();
    let l = ld.new_list(Ctx::Simple).unwrap();
    let b0 = ld.new_block(Ctx::Simple, l, Position::First).unwrap();
    let aru = ld.begin_aru().unwrap();
    let b1 = ld.new_block(Ctx::Aru(aru), l, Position::After(b0)).unwrap();
    // Option 1: the simple stream sees the uncommitted insertion.
    assert_eq!(ld.list_blocks(Ctx::Simple, l).unwrap(), vec![b0, b1]);
    ld.abort_aru(aru).unwrap();
    assert_eq!(ld.list_blocks(Ctx::Simple, l).unwrap(), vec![b0]);
}

#[test]
fn deleting_twice_within_aru_fails_cleanly() {
    let ld = Lld::format(MemDisk::new(2 << 20), &config()).unwrap();
    let l = ld.new_list(Ctx::Simple).unwrap();
    let b = ld.new_block(Ctx::Simple, l, Position::First).unwrap();
    let aru = ld.begin_aru().unwrap();
    ld.delete_block(Ctx::Aru(aru), b).unwrap();
    assert!(matches!(
        ld.delete_block(Ctx::Aru(aru), b),
        Err(LldError::BlockNotAllocated(_))
    ));
    ld.end_aru(aru).unwrap();
    assert!(ld.block_info(b).is_none());
}

#[test]
fn interleaved_aru_commit_then_reuse_of_freed_ids() {
    // An id freed by a committed ARU must be reusable, and its reuse
    // must survive recovery in log order.
    let ld = Lld::format(MemDisk::new(2 << 20), &config()).unwrap();
    let l = ld.new_list(Ctx::Simple).unwrap();
    let b = ld.new_block(Ctx::Simple, l, Position::First).unwrap();
    let aru = ld.begin_aru().unwrap();
    ld.delete_block(Ctx::Aru(aru), b).unwrap();
    // Not reusable while the ARU is active (committed state still holds
    // the allocation).
    let other = ld.new_block(Ctx::Simple, l, Position::First).unwrap();
    assert_ne!(other, b);
    ld.end_aru(aru).unwrap();
    let reused = ld.new_block(Ctx::Simple, l, Position::First).unwrap();
    assert_eq!(reused, b, "freed id reused after commit");
    ld.write(Ctx::Simple, reused, &block(0xEE)).unwrap();
    ld.flush().unwrap();

    let image = ld.into_device().into_image();
    let (ld2, _) = Lld::recover(MemDisk::from_image(image)).unwrap();
    let mut buf = block(0);
    ld2.read(Ctx::Simple, reused, &mut buf).unwrap();
    assert_eq!(buf, block(0xEE));
    assert_eq!(
        ld2.list_blocks(Ctx::Simple, l).unwrap(),
        vec![reused, other]
    );
}

#[test]
fn read_cache_can_be_disabled() {
    let cfg = LldConfig {
        read_cache_blocks: 0,
        ..config()
    };
    let sim = SimDisk::new(MemDisk::new(2 << 20), DiskModel::hp_c3010());
    let ld = Lld::format(sim, &cfg).unwrap();
    let l = ld.new_list(Ctx::Simple).unwrap();
    let b = ld.new_block(Ctx::Simple, l, Position::First).unwrap();
    ld.write(Ctx::Simple, b, &block(5)).unwrap();
    ld.flush().unwrap();
    let mut buf = block(0);
    ld.read(Ctx::Simple, b, &mut buf).unwrap();
    ld.read(Ctx::Simple, b, &mut buf).unwrap();
    assert_eq!(buf, block(5));
    assert_eq!(ld.stats().cache_hits, 0);
    assert_eq!(ld.stats().cache_misses, 2);
}

#[test]
fn cache_hits_avoid_disk_time() {
    let sim = SimDisk::new(MemDisk::new(2 << 20), DiskModel::hp_c3010());
    let ld = Lld::format(sim, &config()).unwrap();
    let l = ld.new_list(Ctx::Simple).unwrap();
    let b = ld.new_block(Ctx::Simple, l, Position::First).unwrap();
    ld.write(Ctx::Simple, b, &block(5)).unwrap();
    ld.flush().unwrap();
    let t0 = ld.device().clock().now();
    let mut buf = block(0);
    ld.read(Ctx::Simple, b, &mut buf).unwrap();
    assert_eq!(
        ld.device().clock().now(),
        t0,
        "write-through cache absorbs the read"
    );
    assert!(ld.stats().cache_hits >= 1);
}

#[test]
fn probe_reports_superblock_without_recovery() {
    let ld = Lld::format(MemDisk::new(2 << 20), &config()).unwrap();
    let device = ld.into_device();
    let (layout, conc, vis) = Lld::probe(&device).unwrap();
    assert_eq!(layout.block_size, BS);
    assert_eq!(conc, ld_core::ConcurrencyMode::Concurrent);
    assert_eq!(vis, ReadVisibility::OwnShadow);
}

#[test]
fn aru_started_accessor() {
    let ld = Lld::format(MemDisk::new(2 << 20), &config()).unwrap();
    let aru = ld.begin_aru().unwrap();
    assert!(ld.aru_started(aru).is_some());
    ld.end_aru(aru).unwrap();
    assert!(ld.aru_started(aru).is_none());
}

#[test]
fn mt_power_cut_preserves_per_aru_atomicity() {
    // Four threads share one Arc<Lld<SimDisk>> and commit disjoint
    // ARUs (a private list of three patterned blocks each) with
    // synchronous durability, while fault injection cuts power midway
    // through the run. After recovery every ARU must be all-or-nothing:
    // an ARU whose end_aru_sync returned Ok must be fully present, and
    // any list that survived with members at all must be complete and
    // correctly patterned.
    use std::sync::Arc;

    const THREADS: usize = 4;
    const ARUS_PER_THREAD: usize = 12;
    const BLOCKS_PER_ARU: usize = 3;

    #[derive(Debug)]
    struct AruRecord {
        list: ld_core::ListId,
        blocks: Vec<ld_core::BlockId>,
        tag: u8,
        committed: bool, // end_aru reached and returned Ok
        durable: bool,   // the following flush returned Ok too
    }

    let sim = SimDisk::new(MemDisk::new(4 << 20), DiskModel::hp_c3010())
        .with_faults(FaultPlan::new().crash_after_bytes(24 * 1024));
    let ld = Arc::new(
        Lld::format(
            sim,
            &LldConfig {
                max_blocks: Some(1024),
                max_lists: Some(256),
                ..config()
            },
        )
        .unwrap(),
    );

    let records: Vec<Vec<AruRecord>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let ld = Arc::clone(&ld);
                s.spawn(move || {
                    let mut out = Vec::new();
                    'arus: for i in 0..ARUS_PER_THREAD {
                        let tag = (t * 64 + i + 1) as u8;
                        let Ok(aru) = ld.begin_aru() else { break };
                        let Ok(list) = ld.new_list(Ctx::Aru(aru)) else {
                            break;
                        };
                        let mut rec = AruRecord {
                            list,
                            blocks: Vec::new(),
                            tag,
                            committed: false,
                            durable: false,
                        };
                        let mut prev = None;
                        for k in 0..BLOCKS_PER_ARU {
                            let pos = match prev {
                                None => Position::First,
                                Some(p) => Position::After(p),
                            };
                            let Ok(b) = ld.new_block(Ctx::Aru(aru), list, pos) else {
                                out.push(rec);
                                break 'arus;
                            };
                            rec.blocks.push(b);
                            prev = Some(b);
                            if ld
                                .write(Ctx::Aru(aru), b, &block(tag ^ (k as u8) << 6))
                                .is_err()
                            {
                                out.push(rec);
                                break 'arus;
                            }
                        }
                        rec.committed = ld.end_aru(aru).is_ok();
                        rec.durable = rec.committed && ld.flush().is_ok();
                        let done = !rec.committed || !rec.durable;
                        out.push(rec);
                        if done {
                            break; // the power is out; stop this client
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    let ld = Arc::try_unwrap(ld).expect("threads are done");
    let image = ld.into_device().into_inner().into_image();
    let (ld2, _report) = Lld::recover(MemDisk::from_image(image)).unwrap();

    let mut durable_arus = 0;
    let mut buf = block(0);
    for rec in records.iter().flatten() {
        // An Err means the list id itself never became persistent.
        let survived = ld2.list_blocks(Ctx::Simple, rec.list).unwrap_or_default();
        if rec.durable {
            // A durability witness: flush() returned Ok, so the commit
            // record reached the device before the power cut (after a
            // crash SimDisk fails flushes too).
            assert_eq!(
                survived, rec.blocks,
                "durable ARU (tag {}) must survive completely",
                rec.tag
            );
            durable_arus += 1;
        }
        if survived.is_empty() {
            continue; // discarded wholesale: the "none" outcome
        }
        // The "all" outcome: exactly the recorded blocks, all content
        // intact. A partially surviving ARU would show up here.
        assert!(
            rec.committed,
            "ARU (tag {}) survived without ever committing",
            rec.tag
        );
        assert_eq!(
            survived, rec.blocks,
            "ARU (tag {}) survived partially",
            rec.tag
        );
        for (k, &b) in survived.iter().enumerate() {
            ld2.read(Ctx::Simple, b, &mut buf).unwrap();
            assert_eq!(
                buf,
                block(rec.tag ^ (k as u8) << 6),
                "block {k} of ARU (tag {}) corrupted",
                rec.tag
            );
        }
    }
    assert!(
        durable_arus >= 1,
        "the crash point must allow some ARUs to become durable first"
    );
}
