//! Crash-recovery behaviour: all-or-nothing persistence of ARUs,
//! torn-segment handling, checkpoints, and the consistency check.

use ld_core::{ConcurrencyMode, Ctx, Lld, LldConfig, Position};
use ld_disk::{BlockDevice, DiskModel, FaultPlan, MemDisk, SimDisk};

const BS: usize = 512;

fn config() -> LldConfig {
    LldConfig {
        block_size: BS,
        segment_bytes: 16 * BS,
        max_blocks: Some(256),
        max_lists: Some(64),
        ..LldConfig::default()
    }
}

fn block(byte: u8) -> Vec<u8> {
    vec![byte; BS]
}

/// Crashes the logical disk *without* flushing: whatever reached the
/// device is what recovery sees.
fn crash_and_recover(ld: Lld<MemDisk>) -> (Lld<MemDisk>, ld_core::RecoveryReport) {
    let image = ld.into_device().into_image();
    Lld::recover(MemDisk::from_image(image)).unwrap()
}

#[test]
fn empty_disk_recovers_empty() {
    let ld = Lld::format(MemDisk::new(2 << 20), &config()).unwrap();
    let (ld2, report) = crash_and_recover(ld);
    assert_eq!(ld2.allocated_block_count(), 0);
    assert_eq!(ld2.allocated_list_count(), 0);
    assert_eq!(report.segments_replayed, 0);
    assert_eq!(report.ignored_after_gap, 0);
}

#[test]
fn flushed_state_survives_crash() {
    let ld = Lld::format(MemDisk::new(2 << 20), &config()).unwrap();
    let l = ld.new_list(Ctx::Simple).unwrap();
    let b1 = ld.new_block(Ctx::Simple, l, Position::First).unwrap();
    let b2 = ld.new_block(Ctx::Simple, l, Position::After(b1)).unwrap();
    ld.write(Ctx::Simple, b1, &block(0x11)).unwrap();
    ld.write(Ctx::Simple, b2, &block(0x22)).unwrap();
    ld.flush().unwrap();

    let (ld2, report) = crash_and_recover(ld);
    assert!(report.records_applied >= 5);
    assert_eq!(ld2.list_blocks(Ctx::Simple, l).unwrap(), vec![b1, b2]);
    let mut buf = block(0);
    ld2.read(Ctx::Simple, b1, &mut buf).unwrap();
    assert_eq!(buf, block(0x11));
    ld2.read(Ctx::Simple, b2, &mut buf).unwrap();
    assert_eq!(buf, block(0x22));
}

#[test]
fn unflushed_committed_state_is_lost() {
    // Committed but never written to disk: recovery is to the most
    // recent *persistent* state.
    let ld = Lld::format(MemDisk::new(2 << 20), &config()).unwrap();
    let l = ld.new_list(Ctx::Simple).unwrap();
    let b = ld.new_block(Ctx::Simple, l, Position::First).unwrap();
    ld.write(Ctx::Simple, b, &block(1)).unwrap();
    ld.flush().unwrap();
    // Overwrite after the flush; stays in the open segment buffer.
    ld.write(Ctx::Simple, b, &block(2)).unwrap();

    let (ld2, _) = crash_and_recover(ld);
    let mut buf = block(0);
    ld2.read(Ctx::Simple, b, &mut buf).unwrap();
    assert_eq!(buf, block(1));
}

#[test]
fn uncommitted_aru_fully_undone() {
    let ld = Lld::format(MemDisk::new(2 << 20), &config()).unwrap();
    let l = ld.new_list(Ctx::Simple).unwrap();
    let b0 = ld.new_block(Ctx::Simple, l, Position::First).unwrap();
    ld.write(Ctx::Simple, b0, &block(1)).unwrap();
    ld.flush().unwrap();

    // An ARU does a mix of operations but never commits.
    let aru = ld.begin_aru().unwrap();
    let nb = ld.new_block(Ctx::Aru(aru), l, Position::After(b0)).unwrap();
    ld.write(Ctx::Aru(aru), nb, &block(9)).unwrap();
    ld.write(Ctx::Aru(aru), b0, &block(8)).unwrap();
    // Push everything that CAN reach disk to disk.
    ld.flush().unwrap();

    let (ld2, report) = crash_and_recover(ld);
    // The ARU's effects are gone...
    assert_eq!(ld2.list_blocks(Ctx::Simple, l).unwrap(), vec![b0]);
    let mut buf = block(0);
    ld2.read(Ctx::Simple, b0, &mut buf).unwrap();
    assert_eq!(buf, block(1));
    // ...and the committed allocation was reclaimed by the check.
    assert_eq!(report.orphan_blocks_freed, 1);
    assert!(ld2.block_info(nb).is_none());
}

#[test]
fn committed_aru_survives_as_a_unit() {
    let ld = Lld::format(MemDisk::new(2 << 20), &config()).unwrap();
    let l = ld.new_list(Ctx::Simple).unwrap();
    let aru = ld.begin_aru().unwrap();
    let b1 = ld.new_block(Ctx::Aru(aru), l, Position::First).unwrap();
    let b2 = ld.new_block(Ctx::Aru(aru), l, Position::After(b1)).unwrap();
    ld.write(Ctx::Aru(aru), b1, &block(0xA1)).unwrap();
    ld.write(Ctx::Aru(aru), b2, &block(0xA2)).unwrap();
    ld.end_aru(aru).unwrap();
    ld.flush().unwrap();

    let (ld2, report) = crash_and_recover(ld);
    assert_eq!(report.committed_arus, 1);
    assert_eq!(report.discarded_arus, 0);
    assert_eq!(ld2.list_blocks(Ctx::Simple, l).unwrap(), vec![b1, b2]);
    let mut buf = block(0);
    ld2.read(Ctx::Simple, b1, &mut buf).unwrap();
    assert_eq!(buf, block(0xA1));
    ld2.read(Ctx::Simple, b2, &mut buf).unwrap();
    assert_eq!(buf, block(0xA2));
}

#[test]
fn torn_final_segment_is_ignored() {
    // Build a disk image, then crash the device partway through the
    // final segment write: recovery must fall back to the previous
    // persistent state.
    let sim = SimDisk::new(MemDisk::new(2 << 20), DiskModel::hp_c3010());
    let ld = Lld::format(sim, &config()).unwrap();
    let l = ld.new_list(Ctx::Simple).unwrap();
    let b = ld.new_block(Ctx::Simple, l, Position::First).unwrap();
    ld.write(Ctx::Simple, b, &block(1)).unwrap();
    ld.flush().unwrap();
    // Arm a crash point that tears the *next* segment mid-way through
    // its data block (the plan counts bytes from its own creation). On
    // the single-write path the big seal write tears inside the header
    // block; on the pipelined path the streamed data-block write tears
    // before summary and header are even submitted. Either way the
    // segment never becomes valid.
    ld.device()
        .set_faults(FaultPlan::new().crash_after_bytes(BS as u64 / 2));

    ld.write(Ctx::Simple, b, &block(2)).unwrap();
    let err = ld.flush().unwrap_err();
    assert!(matches!(err, ld_core::LldError::Disk(_)), "{err}");

    let image = ld.into_device().into_inner().into_image();
    let (ld2, _report) = Lld::recover(MemDisk::from_image(image)).unwrap();
    let mut buf = block(0);
    ld2.read(Ctx::Simple, b, &mut buf).unwrap();
    assert_eq!(buf, block(1), "torn write rolled back to persistent state");
}

#[test]
fn aru_straddling_flush_is_atomic() {
    // Flush happens while an ARU is active; the ARU commits afterwards
    // but the commit never reaches disk. NOTHING of the ARU may
    // survive.
    let ld = Lld::format(MemDisk::new(2 << 20), &config()).unwrap();
    let l = ld.new_list(Ctx::Simple).unwrap();
    let b0 = ld.new_block(Ctx::Simple, l, Position::First).unwrap();
    ld.write(Ctx::Simple, b0, &block(1)).unwrap();

    let aru = ld.begin_aru().unwrap();
    ld.write(Ctx::Aru(aru), b0, &block(7)).unwrap();
    ld.flush().unwrap(); // shadow data stays in memory
    ld.end_aru(aru).unwrap(); // commit record only in the open segment

    let (ld2, _) = crash_and_recover(ld);
    let mut buf = block(0);
    ld2.read(Ctx::Simple, b0, &mut buf).unwrap();
    assert_eq!(buf, block(1));
}

#[test]
fn sequential_mode_crash_atomicity() {
    // The "old" prototype still guarantees failure atomicity of its
    // single ARU via tagged records.
    let cfg = LldConfig {
        concurrency: ConcurrencyMode::Sequential,
        ..config()
    };
    let ld = Lld::format(MemDisk::new(2 << 20), &cfg).unwrap();
    let l = ld.new_list(Ctx::Simple).unwrap();
    let b0 = ld.new_block(Ctx::Simple, l, Position::First).unwrap();
    ld.write(Ctx::Simple, b0, &block(1)).unwrap();
    ld.flush().unwrap();

    let aru = ld.begin_aru().unwrap();
    ld.write(Ctx::Aru(aru), b0, &block(9)).unwrap();
    let nb = ld.new_block(Ctx::Aru(aru), l, Position::After(b0)).unwrap();
    ld.write(Ctx::Aru(aru), nb, &block(8)).unwrap();
    // Crash before EndARU, with the tagged records flushed.
    ld.flush().unwrap();

    let (ld2, report) = crash_and_recover(ld);
    assert_eq!(report.discarded_arus, 1);
    let mut buf = block(0);
    ld2.read(Ctx::Simple, b0, &mut buf).unwrap();
    assert_eq!(buf, block(1), "tagged write without commit undone");
    assert_eq!(ld2.list_blocks(Ctx::Simple, l).unwrap(), vec![b0]);
}

#[test]
fn recovery_preserves_id_allocation_monotonicity() {
    let ld = Lld::format(MemDisk::new(2 << 20), &config()).unwrap();
    let l = ld.new_list(Ctx::Simple).unwrap();
    let b1 = ld.new_block(Ctx::Simple, l, Position::First).unwrap();
    ld.flush().unwrap();
    let (ld2, _) = crash_and_recover(ld);
    let b2 = ld2.new_block(Ctx::Simple, l, Position::After(b1)).unwrap();
    assert_ne!(b1, b2);
    let l2 = ld2.new_list(Ctx::Simple).unwrap();
    assert_ne!(l, l2);
}

#[test]
fn double_recovery_is_stable() {
    // Recovering, doing nothing, and recovering again must converge.
    let ld = Lld::format(MemDisk::new(2 << 20), &config()).unwrap();
    let l = ld.new_list(Ctx::Simple).unwrap();
    for i in 0..10u8 {
        let aru = ld.begin_aru().unwrap();
        let b = ld.new_block(Ctx::Aru(aru), l, Position::First).unwrap();
        ld.write(Ctx::Aru(aru), b, &block(i)).unwrap();
        ld.end_aru(aru).unwrap();
    }
    ld.flush().unwrap();
    let (ld2, _) = crash_and_recover(ld);
    let count = ld2.allocated_block_count();
    let (ld3, report) = crash_and_recover(ld2);
    assert_eq!(ld3.allocated_block_count(), count);
    assert_eq!(report.orphan_blocks_freed, 0);
    assert_eq!(ld3.list_blocks(Ctx::Simple, l).unwrap().len(), 10);
}

#[test]
fn checkpoint_bounds_replay() {
    let ld = Lld::format(MemDisk::new(2 << 20), &config()).unwrap();
    let l = ld.new_list(Ctx::Simple).unwrap();
    let b = ld.new_block(Ctx::Simple, l, Position::First).unwrap();
    for i in 0..50u8 {
        ld.write(Ctx::Simple, b, &block(i)).unwrap();
    }
    ld.checkpoint().unwrap();
    assert!(ld.checkpoint_seq() > 0);
    // A little more work after the checkpoint.
    ld.write(Ctx::Simple, b, &block(0xEE)).unwrap();
    ld.flush().unwrap();

    let (ld2, report) = crash_and_recover(ld);
    assert_eq!(report.checkpoint_seq, ld2.checkpoint_seq());
    assert!(report.checkpoint_seq > 0);
    assert!(
        report.segments_replayed <= 2,
        "only post-checkpoint segments replayed, got {}",
        report.segments_replayed
    );
    let mut buf = block(0);
    ld2.read(Ctx::Simple, b, &mut buf).unwrap();
    assert_eq!(buf, block(0xEE));
}

#[test]
fn checkpoint_alone_recovers_without_segments() {
    let ld = Lld::format(MemDisk::new(2 << 20), &config()).unwrap();
    let l = ld.new_list(Ctx::Simple).unwrap();
    let b = ld.new_block(Ctx::Simple, l, Position::First).unwrap();
    ld.write(Ctx::Simple, b, &block(0x42)).unwrap();
    ld.checkpoint().unwrap();

    let (ld2, report) = crash_and_recover(ld);
    assert_eq!(report.segments_replayed, 0);
    let mut buf = block(0);
    ld2.read(Ctx::Simple, b, &mut buf).unwrap();
    assert_eq!(buf, block(0x42));
    assert_eq!(ld2.list_blocks(Ctx::Simple, l).unwrap(), vec![b]);
}

#[test]
fn recovery_report_counts_discards() {
    let ld = Lld::format(MemDisk::new(2 << 20), &config()).unwrap();
    let l = ld.new_list(Ctx::Simple).unwrap();
    // Two committed ARUs, one uncommitted.
    for _ in 0..2 {
        let aru = ld.begin_aru().unwrap();
        let b = ld.new_block(Ctx::Aru(aru), l, Position::First).unwrap();
        ld.write(Ctx::Aru(aru), b, &block(1)).unwrap();
        ld.end_aru(aru).unwrap();
    }
    let aru = ld.begin_aru().unwrap();
    let _b = ld.new_block(Ctx::Aru(aru), l, Position::First).unwrap();
    ld.flush().unwrap();

    let (_, report) = crash_and_recover(ld);
    assert_eq!(report.committed_arus, 2);
    // The uncommitted ARU's records were all in memory (never spilled),
    // so nothing is discarded from the log — but its committed
    // allocation is reclaimed.
    assert_eq!(report.orphan_blocks_freed, 1);
}

#[test]
fn not_a_logical_disk_is_rejected() {
    let device = MemDisk::new(2 << 20);
    device.write_at(0, b"garbage superblock").unwrap();
    assert!(matches!(
        Lld::recover(MemDisk::from_image(device.into_image())),
        Err(ld_core::LldError::Corrupt(_))
    ));
}

#[test]
fn recover_with_overrides_runtime_options() {
    let ld = Lld::format(MemDisk::new(2 << 20), &config()).unwrap();
    let l = ld.new_list(Ctx::Simple).unwrap();
    let _ = l;
    ld.flush().unwrap();
    let image = ld.into_device().into_image();
    let cfg = LldConfig {
        concurrency: ConcurrencyMode::Sequential,
        check_on_recovery: false,
        ..config()
    };
    let (ld2, _) = Lld::recover_with(MemDisk::from_image(image), &cfg).unwrap();
    assert_eq!(ld2.concurrency(), ConcurrencyMode::Sequential);
}

#[test]
fn state_identical_across_crash_for_mixed_workload() {
    // Drive a mixed workload, flush, snapshot the logical state, crash,
    // recover, and compare the full observable state.
    let ld = Lld::format(MemDisk::new(4 << 20), &config()).unwrap();
    let mut lists = Vec::new();
    for i in 0..8u8 {
        let aru = ld.begin_aru().unwrap();
        let l = ld.new_list(Ctx::Aru(aru)).unwrap();
        let mut prev = None;
        for j in 0..(i % 4 + 1) {
            let pos = match prev {
                None => Position::First,
                Some(p) => Position::After(p),
            };
            let b = ld.new_block(Ctx::Aru(aru), l, pos).unwrap();
            ld.write(Ctx::Aru(aru), b, &block(i * 16 + j)).unwrap();
            prev = Some(b);
        }
        ld.end_aru(aru).unwrap();
        lists.push(l);
    }
    // Delete some, simple-stream.
    ld.delete_list(Ctx::Simple, lists[2]).unwrap();
    ld.delete_list(Ctx::Simple, lists[5]).unwrap();
    ld.flush().unwrap();

    let mut expected = Vec::new();
    for (idx, &l) in lists.iter().enumerate() {
        if idx == 2 || idx == 5 {
            continue;
        }
        let blocks = ld.list_blocks(Ctx::Simple, l).unwrap();
        let mut datas = Vec::new();
        for &b in &blocks {
            let mut buf = block(0);
            ld.read(Ctx::Simple, b, &mut buf).unwrap();
            datas.push(buf);
        }
        expected.push((l, blocks, datas));
    }

    let (ld2, _) = crash_and_recover(ld);
    for (l, blocks, datas) in expected {
        assert_eq!(ld2.list_blocks(Ctx::Simple, l).unwrap(), blocks);
        for (b, d) in blocks.iter().zip(datas.iter()) {
            let mut buf = block(0);
            ld2.read(Ctx::Simple, *b, &mut buf).unwrap();
            assert_eq!(&buf, d);
        }
    }
    assert!(ld2.list_blocks(Ctx::Simple, lists[2]).is_err());
    assert!(ld2.list_blocks(Ctx::Simple, lists[5]).is_err());
}
