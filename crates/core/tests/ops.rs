//! Basic LD interface behaviour: allocation, lists, reads and writes,
//! flushing — all outside ARUs.

use ld_core::{Ctx, Lld, LldConfig, LldError, Position};
use ld_disk::{DiskModel, MemDisk, SimDisk};

const BS: usize = 512;

fn config() -> LldConfig {
    LldConfig {
        block_size: BS,
        segment_bytes: 16 * BS,
        max_blocks: Some(256),
        max_lists: Some(64),
        ..LldConfig::default()
    }
}

fn fresh() -> Lld<MemDisk> {
    Lld::format(MemDisk::new(2 << 20), &config()).unwrap()
}

fn block(byte: u8) -> Vec<u8> {
    vec![byte; BS]
}

#[test]
fn format_and_accessors() {
    let ld = fresh();
    assert_eq!(ld.block_size(), BS);
    assert_eq!(ld.segment_bytes(), 16 * BS);
    assert!(ld.n_segments() >= 4);
    assert_eq!(ld.allocated_block_count(), 0);
    assert_eq!(ld.allocated_list_count(), 0);
    assert!(ld.active_arus().is_empty());
    assert_eq!(ld.checkpoint_seq(), 0);
}

#[test]
fn write_read_round_trip() {
    let ld = fresh();
    let list = ld.new_list(Ctx::Simple).unwrap();
    let b = ld.new_block(Ctx::Simple, list, Position::First).unwrap();
    ld.write(Ctx::Simple, b, &block(0xAB)).unwrap();
    let mut buf = block(0);
    ld.read(Ctx::Simple, b, &mut buf).unwrap();
    assert_eq!(buf, block(0xAB));
}

#[test]
fn unwritten_block_reads_as_zeroes() {
    let ld = fresh();
    let list = ld.new_list(Ctx::Simple).unwrap();
    let b = ld.new_block(Ctx::Simple, list, Position::First).unwrap();
    let mut buf = block(0xFF);
    ld.read(Ctx::Simple, b, &mut buf).unwrap();
    assert_eq!(buf, block(0));
}

#[test]
fn read_spans_segment_seal() {
    // Data written into an earlier, sealed segment must still be
    // readable (from the device rather than the open buffer).
    let ld = fresh();
    let list = ld.new_list(Ctx::Simple).unwrap();
    let b = ld.new_block(Ctx::Simple, list, Position::First).unwrap();
    ld.write(Ctx::Simple, b, &block(0x77)).unwrap();
    // Force many segment rolls.
    let mut prev = b;
    for i in 0..40u8 {
        let nb = ld
            .new_block(Ctx::Simple, list, Position::After(prev))
            .unwrap();
        ld.write(Ctx::Simple, nb, &block(i)).unwrap();
        prev = nb;
    }
    assert!(ld.stats().segments_sealed > 0);
    let mut buf = block(0);
    ld.read(Ctx::Simple, b, &mut buf).unwrap();
    assert_eq!(buf, block(0x77));
}

#[test]
fn list_order_first_and_after() {
    let ld = fresh();
    let list = ld.new_list(Ctx::Simple).unwrap();
    let b1 = ld.new_block(Ctx::Simple, list, Position::First).unwrap();
    let b2 = ld.new_block(Ctx::Simple, list, Position::First).unwrap();
    let b3 = ld
        .new_block(Ctx::Simple, list, Position::After(b1))
        .unwrap();
    // b2 at front, then b1, then b3 (inserted after b1).
    assert_eq!(ld.list_blocks(Ctx::Simple, list).unwrap(), vec![b2, b1, b3]);
    // last pointer: appending after b3 keeps order.
    let b4 = ld
        .new_block(Ctx::Simple, list, Position::After(b3))
        .unwrap();
    assert_eq!(
        ld.list_blocks(Ctx::Simple, list).unwrap(),
        vec![b2, b1, b3, b4]
    );
}

#[test]
fn delete_block_relinks_list() {
    let ld = fresh();
    let list = ld.new_list(Ctx::Simple).unwrap();
    let b1 = ld.new_block(Ctx::Simple, list, Position::First).unwrap();
    let b2 = ld
        .new_block(Ctx::Simple, list, Position::After(b1))
        .unwrap();
    let b3 = ld
        .new_block(Ctx::Simple, list, Position::After(b2))
        .unwrap();
    // Delete the middle block.
    ld.delete_block(Ctx::Simple, b2).unwrap();
    assert_eq!(ld.list_blocks(Ctx::Simple, list).unwrap(), vec![b1, b3]);
    // Delete the head.
    ld.delete_block(Ctx::Simple, b1).unwrap();
    assert_eq!(ld.list_blocks(Ctx::Simple, list).unwrap(), vec![b3]);
    // Delete the only remaining block.
    ld.delete_block(Ctx::Simple, b3).unwrap();
    assert_eq!(ld.list_blocks(Ctx::Simple, list).unwrap(), Vec::new());
    // Deleted blocks are unreadable.
    let mut buf = block(0);
    assert!(matches!(
        ld.read(Ctx::Simple, b2, &mut buf),
        Err(LldError::BlockNotAllocated(_))
    ));
}

#[test]
fn delete_list_reclaims_members() {
    let ld = fresh();
    let list = ld.new_list(Ctx::Simple).unwrap();
    let mut prev = ld.new_block(Ctx::Simple, list, Position::First).unwrap();
    let first = prev;
    for _ in 0..5 {
        prev = ld
            .new_block(Ctx::Simple, list, Position::After(prev))
            .unwrap();
    }
    assert_eq!(ld.allocated_block_count(), 6);
    ld.delete_list(Ctx::Simple, list).unwrap();
    assert_eq!(ld.allocated_block_count(), 0);
    assert_eq!(ld.allocated_list_count(), 0);
    let mut buf = block(0);
    assert!(ld.read(Ctx::Simple, first, &mut buf).is_err());
    assert!(ld.list_blocks(Ctx::Simple, list).is_err());
}

#[test]
fn freed_identifiers_are_reused() {
    let ld = fresh();
    let list = ld.new_list(Ctx::Simple).unwrap();
    let b = ld.new_block(Ctx::Simple, list, Position::First).unwrap();
    ld.delete_block(Ctx::Simple, b).unwrap();
    let b2 = ld.new_block(Ctx::Simple, list, Position::First).unwrap();
    assert_eq!(b, b2, "the lowest freed identifier is reused");
}

#[test]
fn wrong_block_length_rejected() {
    let ld = fresh();
    let list = ld.new_list(Ctx::Simple).unwrap();
    let b = ld.new_block(Ctx::Simple, list, Position::First).unwrap();
    assert!(matches!(
        ld.write(Ctx::Simple, b, &[0u8; 100]),
        Err(LldError::WrongBlockLength { got: 100, .. })
    ));
    let mut small = [0u8; 17];
    assert!(matches!(
        ld.read(Ctx::Simple, b, &mut small),
        Err(LldError::WrongBlockLength { .. })
    ));
}

#[test]
fn predecessor_must_be_on_the_list() {
    let ld = fresh();
    let l1 = ld.new_list(Ctx::Simple).unwrap();
    let l2 = ld.new_list(Ctx::Simple).unwrap();
    let b1 = ld.new_block(Ctx::Simple, l1, Position::First).unwrap();
    assert!(matches!(
        ld.new_block(Ctx::Simple, l2, Position::After(b1)),
        Err(LldError::PredecessorNotOnList { .. })
    ));
}

#[test]
fn operations_on_missing_objects_fail() {
    let ld = fresh();
    let list = ld.new_list(Ctx::Simple).unwrap();
    let b = ld.new_block(Ctx::Simple, list, Position::First).unwrap();
    ld.delete_list(Ctx::Simple, list).unwrap();
    assert!(ld.delete_list(Ctx::Simple, list).is_err());
    assert!(ld.delete_block(Ctx::Simple, b).is_err());
    assert!(ld.write(Ctx::Simple, b, &block(0)).is_err());
    assert!(ld.new_block(Ctx::Simple, list, Position::First).is_err());
}

#[test]
fn allocation_limit_enforced() {
    let ld = fresh();
    let list = ld.new_list(Ctx::Simple).unwrap();
    let mut n = 0;
    loop {
        match ld.new_block(Ctx::Simple, list, Position::First) {
            Ok(_) => n += 1,
            Err(LldError::DiskFull) => break,
            Err(e) => panic!("unexpected error: {e}"),
        }
        assert!(n <= 256, "limit not enforced");
    }
    assert_eq!(n, 256);
}

#[test]
fn overwrite_returns_latest_data() {
    let ld = fresh();
    let list = ld.new_list(Ctx::Simple).unwrap();
    let b = ld.new_block(Ctx::Simple, list, Position::First).unwrap();
    for i in 0..10u8 {
        ld.write(Ctx::Simple, b, &block(i)).unwrap();
    }
    let mut buf = block(0xFF);
    ld.read(Ctx::Simple, b, &mut buf).unwrap();
    assert_eq!(buf, block(9));
}

#[test]
fn flush_writes_partial_segment() {
    let device = SimDisk::new(MemDisk::new(2 << 20), DiskModel::hp_c3010());
    let ld = Lld::format(device, &config()).unwrap();
    let before = ld.device().stats().snapshot().writes;
    let list = ld.new_list(Ctx::Simple).unwrap();
    let b = ld.new_block(Ctx::Simple, list, Position::First).unwrap();
    ld.write(Ctx::Simple, b, &block(1)).unwrap();
    ld.flush().unwrap();
    let after = ld.device().stats().snapshot();
    assert!(after.writes > before);
    assert!(after.flushes >= 1);
}

#[test]
fn stats_count_operations() {
    let ld = fresh();
    let list = ld.new_list(Ctx::Simple).unwrap();
    let b = ld.new_block(Ctx::Simple, list, Position::First).unwrap();
    ld.write(Ctx::Simple, b, &block(1)).unwrap();
    let mut buf = block(0);
    ld.read(Ctx::Simple, b, &mut buf).unwrap();
    ld.delete_block(Ctx::Simple, b).unwrap();
    ld.delete_list(Ctx::Simple, list).unwrap();
    let s = ld.stats();
    assert_eq!(s.new_lists, 1);
    assert_eq!(s.new_blocks, 1);
    assert_eq!(s.writes, 1);
    assert_eq!(s.reads, 1);
    assert_eq!(s.delete_blocks, 1);
    assert_eq!(s.delete_lists, 1);
    assert!(s.records_emitted >= 4);
    let ld = ld;
    ld.reset_stats();
    assert_eq!(ld.stats().reads, 0);
}

#[test]
fn data_survives_many_overwrites_of_other_blocks() {
    // Regression guard for address accounting: block 1's data must not
    // be disturbed by churn on other blocks across segment boundaries.
    let ld = fresh();
    let list = ld.new_list(Ctx::Simple).unwrap();
    let stable = ld.new_block(Ctx::Simple, list, Position::First).unwrap();
    ld.write(Ctx::Simple, stable, &block(0x5A)).unwrap();
    let churn = ld
        .new_block(Ctx::Simple, list, Position::After(stable))
        .unwrap();
    for i in 0..100u8 {
        ld.write(Ctx::Simple, churn, &block(i)).unwrap();
    }
    let mut buf = block(0);
    ld.read(Ctx::Simple, stable, &mut buf).unwrap();
    assert_eq!(buf, block(0x5A));
}
