//! Segment-cleaner behaviour: reclaiming space when the log wraps,
//! preserving data across relocation, and recoverability afterwards.

use ld_core::{Ctx, Lld, LldConfig, LldError, Position};
use ld_disk::MemDisk;

const BS: usize = 512;

fn config() -> LldConfig {
    LldConfig {
        block_size: BS,
        segment_bytes: 8 * BS,
        max_blocks: Some(512),
        max_lists: Some(64),
        ..LldConfig::default()
    }
}

fn block(byte: u8) -> Vec<u8> {
    vec![byte; BS]
}

/// A device with room for ~24 segments.
fn small_disk() -> Lld<MemDisk> {
    let cap = 512 + 2 * 64 * 1024 + 24 * 8 * 512; // sb + ckpt areas + segments
    Lld::format(MemDisk::new(cap as u64), &config()).unwrap()
}

#[test]
fn overwrite_churn_triggers_cleaning_not_disk_full() {
    let ld = small_disk();
    let l = ld.new_list(Ctx::Simple).unwrap();
    let b = ld.new_block(Ctx::Simple, l, Position::First).unwrap();
    // Each overwrite consumes a data slot; ~7 slots per segment and ~24
    // segments means >1000 overwrites guarantee several log wraps.
    for i in 0..1200u32 {
        ld.write(Ctx::Simple, b, &block((i % 251) as u8)).unwrap();
    }
    assert!(ld.stats().cleaner_runs > 0, "cleaner must have run");
    assert!(ld.stats().checkpoints > 0, "cleaning forces checkpoints");
    let mut buf = block(0);
    ld.read(Ctx::Simple, b, &mut buf).unwrap();
    assert_eq!(buf, block((1199 % 251) as u8));
}

#[test]
fn live_data_survives_relocation() {
    let ld = small_disk();
    let l = ld.new_list(Ctx::Simple).unwrap();
    // A handful of long-lived blocks...
    let mut keep = Vec::new();
    let mut prev = None;
    for i in 0..10u8 {
        let pos = match prev {
            None => Position::First,
            Some(p) => Position::After(p),
        };
        let b = ld.new_block(Ctx::Simple, l, pos).unwrap();
        ld.write(Ctx::Simple, b, &block(0xC0 + i)).unwrap();
        keep.push(b);
        prev = Some(b);
    }
    // ...plus heavy churn on one hot block to wrap the log.
    let hot = ld
        .new_block(Ctx::Simple, l, Position::After(prev.unwrap()))
        .unwrap();
    for i in 0..1200u32 {
        ld.write(Ctx::Simple, hot, &block((i % 250) as u8)).unwrap();
    }
    assert!(
        ld.stats().blocks_relocated > 0,
        "cold blocks were relocated"
    );
    for (i, &b) in keep.iter().enumerate() {
        let mut buf = block(0);
        ld.read(Ctx::Simple, b, &mut buf).unwrap();
        assert_eq!(buf, block(0xC0 + i as u8), "block {i} corrupted");
    }
}

#[test]
fn recovery_after_cleaning_sees_current_state() {
    let ld = small_disk();
    let l = ld.new_list(Ctx::Simple).unwrap();
    let stable = ld.new_block(Ctx::Simple, l, Position::First).unwrap();
    ld.write(Ctx::Simple, stable, &block(0x55)).unwrap();
    let hot = ld
        .new_block(Ctx::Simple, l, Position::After(stable))
        .unwrap();
    for i in 0..1500u32 {
        ld.write(Ctx::Simple, hot, &block((i % 13) as u8)).unwrap();
    }
    assert!(ld.stats().cleaner_runs > 0);
    ld.flush().unwrap();

    let image = ld.into_device().into_image();
    let (ld2, report) = Lld::recover(MemDisk::from_image(image)).unwrap();
    assert!(report.checkpoint_seq > 0, "cleaning left a checkpoint");
    let mut buf = block(0);
    ld2.read(Ctx::Simple, stable, &mut buf).unwrap();
    assert_eq!(buf, block(0x55));
    ld2.read(Ctx::Simple, hot, &mut buf).unwrap();
    assert_eq!(buf, block((1499 % 13) as u8));
    assert_eq!(ld2.list_blocks(Ctx::Simple, l).unwrap(), vec![stable, hot]);
}

#[test]
fn genuinely_full_disk_reports_disk_full() {
    let ld = small_disk();
    let l = ld.new_list(Ctx::Simple).unwrap();
    // Fill with *live* blocks until the device cannot take more.
    let mut prev = None;
    let mut wrote = 0u32;
    loop {
        let pos = match prev {
            None => Position::First,
            Some(p) => Position::After(p),
        };
        let b = match ld.new_block(Ctx::Simple, l, pos) {
            Ok(b) => b,
            Err(LldError::DiskFull) => break,
            Err(e) => panic!("unexpected: {e}"),
        };
        match ld.write(Ctx::Simple, b, &block(1)) {
            Ok(()) => {
                wrote += 1;
                prev = Some(b);
            }
            Err(LldError::DiskFull) => break,
            Err(e) => panic!("unexpected: {e}"),
        }
        assert!(wrote < 10_000, "disk-full never reported");
    }
    // A decent fraction of the slots took data before filling up.
    assert!(wrote > 50, "only {wrote} blocks written");
    // Deleting frees space again.
    ld.delete_list(Ctx::Simple, l).unwrap();
    let l2 = ld.new_list(Ctx::Simple).unwrap();
    let b = ld.new_block(Ctx::Simple, l2, Position::First).unwrap();
    ld.write(Ctx::Simple, b, &block(2)).unwrap();
}

#[test]
fn explicit_cleaner_run_is_safe_when_idle() {
    let ld = small_disk();
    let free_before = ld.free_segments();
    ld.run_cleaner().unwrap();
    assert!(ld.free_segments() >= free_before.min(ld.n_segments() - 1));
}

#[test]
fn manual_checkpoint_then_clean_reuses_dead_segments() {
    let ld = small_disk();
    let l = ld.new_list(Ctx::Simple).unwrap();
    let b = ld.new_block(Ctx::Simple, l, Position::First).unwrap();
    // Burn through several segments of overwrites (all dead but the
    // last), without reaching the cleaner trigger.
    for i in 0..40u8 {
        ld.write(Ctx::Simple, b, &block(i)).unwrap();
    }
    let free_before = ld.free_segments();
    ld.checkpoint().unwrap();
    ld.run_cleaner().unwrap();
    assert!(
        ld.free_segments() >= free_before,
        "cleaning dead segments cannot lose space"
    );
    let mut buf = block(0);
    ld.read(Ctx::Simple, b, &mut buf).unwrap();
    assert_eq!(buf, block(39));
}

/// Regression for the sync-commit packing limit: a durability-heavy
/// workload seals a nearly-empty paper-scale segment per commit (two
/// 4 KB blocks in 0.5 MB), so after one log wrap almost every slot
/// holds a sealed segment with a couple of live blocks. A cleaner that
/// relocates one victim per sealed output frees one slot per slot
/// consumed — zero net progress — and the disk wrongly reports
/// `DiskFull` after ~900 commits. Packing several such victims into one
/// output segment must keep this workload running indefinitely.
#[test]
fn sync_commit_storm_compacts_without_disk_full() {
    let cfg = LldConfig {
        block_size: 4096,
        segment_bytes: 512 * 1024,
        max_blocks: Some(4096),
        max_lists: Some(2048),
        ..LldConfig::default()
    };
    // ~34 MB: superblock + checkpoint areas + ~60 paper-scale segments.
    let ld = Lld::format(MemDisk::new(34 << 20), &cfg).unwrap();
    let mut lists = Vec::new();
    for i in 0..950u32 {
        let aru = ld.begin_aru().unwrap();
        let l = ld.new_list(Ctx::Aru(aru)).unwrap();
        let b0 = ld.new_block(Ctx::Aru(aru), l, Position::First).unwrap();
        let b1 = ld.new_block(Ctx::Aru(aru), l, Position::After(b0)).unwrap();
        let byte = (i % 251) as u8;
        ld.write(Ctx::Aru(aru), b0, &vec![byte; 4096]).unwrap();
        ld.write(Ctx::Aru(aru), b1, &vec![byte; 4096]).unwrap();
        ld.end_aru_sync(aru)
            .unwrap_or_else(|e| panic!("sync commit {i} failed: {e}"));
        lists.push((l, b0, b1, byte));
    }
    let stats = ld.stats();
    assert!(stats.cleaner_runs > 0, "cleaner never ran");
    assert!(stats.blocks_relocated > 0, "nothing was relocated");
    // Spot-check early commits: their blocks went through several
    // relocations and must still read back intact.
    for &(l, b0, b1, byte) in lists.iter().step_by(97) {
        assert_eq!(ld.list_blocks(Ctx::Simple, l).unwrap(), vec![b0, b1]);
        let mut buf = vec![0u8; 4096];
        ld.read(Ctx::Simple, b0, &mut buf).unwrap();
        assert_eq!(buf, vec![byte; 4096]);
        ld.read(Ctx::Simple, b1, &mut buf).unwrap();
        assert_eq!(buf, vec![byte; 4096]);
    }
}

#[test]
fn crash_during_cleaning_era_recovers_current_state() {
    // Sweep crash points through a workload that keeps the cleaner
    // busy. Whatever instant the power fails — mid-relocation,
    // mid-checkpoint, mid-segment-write — recovery must reproduce the
    // last flushed state of the stable blocks.
    use ld_disk::{DiskModel, FaultPlan, SimDisk};

    let mut crash_at = 300_000u64;
    let mut crashes_seen = 0;
    while crash_at < 4_000_000 {
        let cap = 512 + 2 * 64 * 1024 + 24 * 8 * 512;
        let sim = SimDisk::new(MemDisk::new(cap as u64), DiskModel::hp_c3010())
            .with_faults(FaultPlan::new().crash_after_bytes(crash_at));
        let ld = Lld::format(sim, &config()).unwrap();

        // Stable blocks, flushed before the churn.
        let l = ld.new_list(Ctx::Simple).unwrap();
        let mut stable = Vec::new();
        let mut prev = None;
        for i in 0..6u8 {
            let pos = match prev {
                None => Position::First,
                Some(p) => Position::After(p),
            };
            let b = ld.new_block(Ctx::Simple, l, pos).unwrap();
            ld.write(Ctx::Simple, b, &block(0xD0 + i)).unwrap();
            stable.push(b);
            prev = Some(b);
        }
        ld.flush().unwrap();

        // Churn until the crash point fires (or the workload ends).
        let hot = ld
            .new_block(Ctx::Simple, l, Position::After(prev.unwrap()))
            .unwrap();
        let mut crashed = false;
        for i in 0..3000u32 {
            if ld.write(Ctx::Simple, hot, &block((i % 199) as u8)).is_err() {
                crashed = true;
                break;
            }
        }
        // On the pipelined device the crash latches on the I/O thread,
        // so the writer may finish its enqueues without ever seeing the
        // error; a durability probe drains the queue and surfaces it.
        if !crashed {
            crashed = ld.flush().is_err();
        }
        if crashed {
            crashes_seen += 1;
        }

        let image = ld.into_device().into_inner().into_image();
        let (ld2, _) = Lld::recover(MemDisk::from_image(image)).unwrap();
        for (i, &b) in stable.iter().enumerate() {
            let mut buf = block(0);
            ld2.read(Ctx::Simple, b, &mut buf)
                .unwrap_or_else(|e| panic!("crash at {crash_at}: stable block {i} lost: {e}"));
            assert_eq!(buf, block(0xD0 + i as u8), "crash at {crash_at}: block {i}");
        }
        // The disk remains fully usable after recovery.
        let nb = ld2.new_block(Ctx::Simple, l, Position::First).unwrap();
        ld2.write(Ctx::Simple, nb, &block(0x11)).unwrap();
        ld2.flush().unwrap();

        crash_at += 450_000;
    }
    assert!(crashes_seen >= 4, "only {crashes_seen} crash points fired");
}
