//! Randomised tests of the core invariants, driven by a seeded PRNG so
//! every run checks the same sample deterministically:
//!
//! 1. log-replay equivalence — recovering from the on-disk log after a
//!    clean flush reproduces exactly the committed state;
//! 2. crash atomicity — at *any* crash point, every ARU recovers
//!    all-or-nothing;
//! 3. isolation — an aborted ARU never affects the committed state.

use ld_core::{Ctx, Lld, LldConfig, LldError, Position};
use ld_disk::{DiskModel, FaultPlan, MemDisk, SimDisk, SmallRng};

const BS: usize = 512;

fn config() -> LldConfig {
    LldConfig {
        block_size: BS,
        segment_bytes: 8 * BS,
        max_blocks: Some(512),
        max_lists: Some(128),
        ..LldConfig::default()
    }
}

fn block(byte: u8) -> Vec<u8> {
    vec![byte; BS]
}

/// One step of a random workload. Object indices are taken modulo the
/// number of existing objects, so any value is valid.
#[derive(Debug, Clone)]
enum Step {
    NewList,
    NewBlockFirst { list: u8 },
    NewBlockAfterLast { list: u8 },
    Write { pick: u16, byte: u8 },
    DeleteBlock { pick: u16 },
    DeleteList { list: u8 },
    Flush,
}

/// Weighted step choice matching the original distribution
/// (1:4:4:8:2:1:1).
fn random_step(rng: &mut SmallRng) -> Step {
    match rng.gen_index(21) {
        0 => Step::NewList,
        1..=4 => Step::NewBlockFirst {
            list: rng.gen_index(256) as u8,
        },
        5..=8 => Step::NewBlockAfterLast {
            list: rng.gen_index(256) as u8,
        },
        9..=16 => Step::Write {
            pick: rng.gen_index(65536) as u16,
            byte: rng.gen_index(256) as u8,
        },
        17..=18 => Step::DeleteBlock {
            pick: rng.gen_index(65536) as u16,
        },
        19 => Step::DeleteList {
            list: rng.gen_index(256) as u8,
        },
        _ => Step::Flush,
    }
}

fn random_steps(rng: &mut SmallRng, min: usize, max: usize) -> Vec<Step> {
    let n = rng.gen_range(min as u64, max as u64) as usize;
    (0..n).map(|_| random_step(rng)).collect()
}

/// Tracks the live objects so random steps stay mostly valid.
#[derive(Default)]
struct Tracker {
    lists: Vec<ld_core::ListId>,
    blocks: Vec<ld_core::BlockId>,
}

fn apply_steps<D: ld_disk::BlockDevice>(
    ld: &mut Lld<D>,
    ctx: Ctx,
    steps: &[Step],
    t: &mut Tracker,
) -> Result<(), LldError> {
    for step in steps {
        match step {
            Step::NewList => {
                let l = ld.new_list(ctx)?;
                t.lists.push(l);
            }
            Step::NewBlockFirst { list } if !t.lists.is_empty() => {
                let l = t.lists[*list as usize % t.lists.len()];
                if let Ok(b) = ld.new_block(ctx, l, Position::First) {
                    t.blocks.push(b);
                }
            }
            Step::NewBlockAfterLast { list } if !t.lists.is_empty() => {
                let l = t.lists[*list as usize % t.lists.len()];
                match ld.list_blocks(ctx, l) {
                    Ok(members) if !members.is_empty() => {
                        if let Ok(b) =
                            ld.new_block(ctx, l, Position::After(*members.last().unwrap()))
                        {
                            t.blocks.push(b);
                        }
                    }
                    Ok(_) => {
                        if let Ok(b) = ld.new_block(ctx, l, Position::First) {
                            t.blocks.push(b);
                        }
                    }
                    Err(_) => {}
                }
            }
            Step::Write { pick, byte } if !t.blocks.is_empty() => {
                let b = t.blocks[*pick as usize % t.blocks.len()];
                let _ = ld.write(ctx, b, &block(*byte));
            }
            Step::DeleteBlock { pick } if !t.blocks.is_empty() => {
                let idx = *pick as usize % t.blocks.len();
                let b = t.blocks.swap_remove(idx);
                let _ = ld.delete_block(ctx, b);
            }
            Step::DeleteList { list } if !t.lists.is_empty() => {
                let idx = *list as usize % t.lists.len();
                let l = t.lists.swap_remove(idx);
                let _ = ld.delete_list(ctx, l);
            }
            Step::Flush if ctx.is_simple() => {
                ld.flush()?;
            }
            _ => {}
        }
    }
    Ok(())
}

/// One list's observable members and their data.
type ListState = (ld_core::ListId, Vec<(ld_core::BlockId, Vec<u8>)>);

/// Captures the full observable committed state: every list's members
/// and every member's data.
fn observable_state<D: ld_disk::BlockDevice>(ld: &mut Lld<D>, t: &Tracker) -> Vec<ListState> {
    let mut out = Vec::new();
    for &l in &t.lists {
        if let Ok(members) = ld.list_blocks(Ctx::Simple, l) {
            let mut datas = Vec::new();
            for &b in &members {
                let mut buf = block(0);
                ld.read(Ctx::Simple, b, &mut buf).unwrap();
                datas.push((b, buf));
            }
            out.push((l, datas));
        }
    }
    out
}

#[test]
fn log_replay_reproduces_committed_state() {
    let mut rng = SmallRng::seed_from_u64(0x4C445F01);
    for case in 0..32 {
        let steps = random_steps(&mut rng, 1, 120);
        let mut ld = Lld::format(MemDisk::new(4 << 20), &config()).unwrap();
        let mut t = Tracker::default();
        apply_steps(&mut ld, Ctx::Simple, &steps, &mut t).unwrap();
        ld.flush().unwrap();
        let expected = observable_state(&mut ld, &t);

        let image = ld.into_device().into_image();
        let (mut ld2, _) = Lld::recover(MemDisk::from_image(image)).unwrap();
        let actual = observable_state(&mut ld2, &t);
        assert_eq!(expected, actual, "case {case}");
    }
}

#[test]
fn aborted_aru_leaves_no_trace() {
    let mut rng = SmallRng::seed_from_u64(0x4C445F02);
    for case in 0..32 {
        let setup = random_steps(&mut rng, 1, 40);
        let inside = random_steps(&mut rng, 1, 40);
        let mut ld = Lld::format(MemDisk::new(4 << 20), &config()).unwrap();
        let mut t = Tracker::default();
        apply_steps(&mut ld, Ctx::Simple, &setup, &mut t).unwrap();
        let before = observable_state(&mut ld, &t);

        let aru = ld.begin_aru().unwrap();
        let mut t2 = Tracker {
            lists: t.lists.clone(),
            blocks: t.blocks.clone(),
        };
        // Whatever happens inside the ARU...
        let _ = apply_steps(&mut ld, Ctx::Aru(aru), &inside, &mut t2);
        // ...aborting it restores the committed view exactly (up to
        // committed-immediately allocations, which are invisible to
        // list walks and reads of pre-existing objects).
        ld.abort_aru(aru).unwrap();
        let after = observable_state(&mut ld, &t);
        assert_eq!(before, after, "case {case}");
    }
}

#[test]
fn crash_atomicity_at_any_point() {
    let mut rng = SmallRng::seed_from_u64(0x4C445F03);
    for case in 0..32 {
        let crash_after = rng.gen_range(1000, 60_000);
        let n_arus = rng.gen_range(1, 8) as usize;
        // Each ARU creates its own list with 3 blocks of a known
        // pattern. After a crash at an arbitrary byte count, every
        // recovered list must be complete and correct — never partial.
        let sim = SimDisk::new(MemDisk::new(4 << 20), DiskModel::hp_c3010());
        let ld = Lld::format(sim, &config()).unwrap();
        ld.device()
            .set_faults(FaultPlan::new().crash_after_bytes(crash_after));

        let mut lists = Vec::new();
        let mut crashed = false;
        'outer: for i in 0..n_arus {
            let run = (|| -> Result<ld_core::ListId, LldError> {
                let aru = ld.begin_aru()?;
                let l = ld.new_list(Ctx::Aru(aru))?;
                let b1 = ld.new_block(Ctx::Aru(aru), l, Position::First)?;
                let b2 = ld.new_block(Ctx::Aru(aru), l, Position::After(b1))?;
                let b3 = ld.new_block(Ctx::Aru(aru), l, Position::After(b2))?;
                ld.write(Ctx::Aru(aru), b1, &block(i as u8 * 3 + 1))?;
                ld.write(Ctx::Aru(aru), b2, &block(i as u8 * 3 + 2))?;
                ld.write(Ctx::Aru(aru), b3, &block(i as u8 * 3 + 3))?;
                ld.end_aru(aru)?;
                ld.flush()?;
                Ok(l)
            })();
            match run {
                Ok(l) => lists.push((i, l)),
                Err(LldError::Disk(_)) => {
                    crashed = true;
                    break 'outer;
                }
                Err(e) => panic!("case {case}: unexpected: {e}"),
            }
        }
        if !crashed {
            // Crash point not reached during the workload; force it.
            ld.device().force_crash();
        }

        let image = ld.into_device().into_inner().into_image();
        let (ld2, _) = Lld::recover(MemDisk::from_image(image)).unwrap();

        // Fully flushed ARUs must be present and complete.
        for (i, l) in &lists {
            let members = ld2
                .list_blocks(Ctx::Simple, *l)
                .unwrap_or_else(|e| panic!("case {case}: flushed list {l} lost: {e}"));
            assert_eq!(members.len(), 3);
            for (j, &b) in members.iter().enumerate() {
                let mut buf = block(0);
                ld2.read(Ctx::Simple, b, &mut buf).unwrap();
                assert_eq!(buf, block(*i as u8 * 3 + 1 + j as u8));
            }
        }
        // Any other recovered list must also be complete (atomicity):
        // the in-flight ARU either fully committed or vanished.
        // (List ids are small integers; probe a few beyond the known.)
        for raw in 1..20u64 {
            let l = ld_core::ListId::new(raw);
            if let Ok(members) = ld2.list_blocks(Ctx::Simple, l) {
                assert_eq!(members.len(), 3, "partial ARU survived: list {l}");
            }
        }
    }
}
