//! Integration tests of the observability layer against a real logical
//! disk: the trace ring must show the lifecycle of a committed ARU
//! (begin → copy-on-write → seal → commit-record flush) and of an
//! aborted ARU (begin → abort, with no flush), in sequence order, and
//! the snapshot must bundle consistent counters and histograms.

use ld_core::obs::{SpanOutcome, TraceEvent};
use ld_core::{Ctx, Lld, LldConfig, ObsConfig, Position};
use ld_disk::{DiskModel, MemDisk, SimDisk};

const BS: usize = 512;

fn config() -> LldConfig {
    LldConfig {
        block_size: BS,
        segment_bytes: 16 * BS,
        max_blocks: Some(256),
        max_lists: Some(64),
        ..LldConfig::default()
    }
}

#[test]
fn committed_and_aborted_aru_event_sequence() {
    let ld = Lld::format(MemDisk::new(4 << 20), &config()).unwrap();

    // One ARU that commits and is flushed...
    let aru1 = ld.begin_aru().unwrap();
    let list = ld.new_list(Ctx::Aru(aru1)).unwrap();
    let b = ld.new_block(Ctx::Aru(aru1), list, Position::First).unwrap();
    ld.write(Ctx::Aru(aru1), b, &vec![7u8; BS]).unwrap();
    ld.end_aru(aru1).unwrap();
    ld.flush().unwrap();

    // ...and one that aborts (its shadow state is discarded; nothing
    // reaches the device, so no seal or flush events follow).
    let aru2 = ld.begin_aru().unwrap();
    let b2 = ld
        .new_block(Ctx::Aru(aru2), list, Position::After(b))
        .unwrap();
    ld.write(Ctx::Aru(aru2), b2, &vec![9u8; BS]).unwrap();
    ld.abort_aru(aru2).unwrap();

    let events = ld.obs().ring().entries();
    // Entries come back in strictly increasing sequence order.
    for w in events.windows(2) {
        assert!(w[0].seq < w[1].seq, "events out of order: {w:?}");
    }

    let pos = |pred: &dyn Fn(&TraceEvent) -> bool| events.iter().position(|e| pred(&e.event));
    let begin1 = pos(&|e| matches!(e, TraceEvent::AruBegin { aru } if *aru == aru1.get()))
        .expect("aru1 begin");
    let commit1 = pos(&|e| matches!(e, TraceEvent::AruCommit { aru, .. } if *aru == aru1.get()))
        .expect("aru1 commit");
    let seal = pos(&|e| matches!(e, TraceEvent::SegmentSeal { .. })).expect("segment seal");
    let flush = pos(&|e| matches!(e, TraceEvent::Flush { .. })).expect("flush");
    let begin2 = pos(&|e| matches!(e, TraceEvent::AruBegin { aru } if *aru == aru2.get()))
        .expect("aru2 begin");
    let abort2 = pos(&|e| matches!(e, TraceEvent::AruAbort { aru } if *aru == aru2.get()))
        .expect("aru2 abort");

    // Committed ARU: begin → commit → seal → commit-record flush.
    assert!(begin1 < commit1, "begin before commit");
    assert!(commit1 < seal, "commit buffered, sealed at flush");
    assert!(seal < flush, "seal happens inside the flush");
    // Aborted ARU: begin → abort after the first ARU's flush, and no
    // further seal or flush events follow the abort.
    assert!(flush < begin2, "aru2 begins after aru1's flush");
    assert!(begin2 < abort2, "begin before abort");
    assert!(
        !events[abort2..].iter().any(|e| matches!(
            e.event,
            TraceEvent::SegmentSeal { .. } | TraceEvent::Flush { .. }
        )),
        "an aborted ARU must not cause segment or flush activity"
    );

    // The commit event carries the ARU's op and CoW counts.
    match events[commit1].event {
        TraceEvent::AruCommit {
            ops, cow_records, ..
        } => {
            assert!(ops >= 3, "new_list + new_block + write, got {ops}");
            assert!(
                cow_records >= 1,
                "list insert copies records, got {cow_records}"
            );
        }
        ref e => panic!("expected commit event, got {e:?}"),
    }

    // Spans: aru1 committed, aru2 aborted, both with wall time.
    let spans = ld.obs().spans();
    let s1 = spans
        .iter()
        .find(|s| s.aru == aru1.get())
        .expect("aru1 span");
    let s2 = spans
        .iter()
        .find(|s| s.aru == aru2.get())
        .expect("aru2 span");
    assert_eq!(s1.outcome, SpanOutcome::Committed);
    assert!(s1.end_ts.is_some() && s1.wall_nanos.is_some());
    assert!(s1.ops >= 3);
    assert_eq!(s2.outcome, SpanOutcome::Aborted);
    assert!(s2.end_ts.unwrap() > s1.end_ts.unwrap());
}

#[test]
fn snapshot_bundles_disk_and_lld_layers() {
    let sim = SimDisk::new(MemDisk::new(4 << 20), DiskModel::hp_c3010());
    let ld = Lld::format(sim, &config()).unwrap();

    let aru = ld.begin_aru().unwrap();
    let list = ld.new_list(Ctx::Aru(aru)).unwrap();
    let b = ld.new_block(Ctx::Aru(aru), list, Position::First).unwrap();
    ld.write(Ctx::Aru(aru), b, &vec![1u8; BS]).unwrap();
    ld.end_aru(aru).unwrap();
    ld.flush().unwrap();
    let mut buf = vec![0u8; BS];
    ld.read(Ctx::Simple, b, &mut buf).unwrap();

    let snap = ld.obs_snapshot();
    assert!(snap.lld.writes >= 1);
    assert!(snap.lld.arus_committed >= 1);
    let disk = snap.disk.expect("SimDisk reports stats");
    assert!(disk.writes >= 1, "flush reached the device");

    // The acceptance-critical histograms carry samples with sane
    // percentile math.
    let end_aru = snap.histogram("end_aru").expect("end_aru histogram");
    assert!(end_aru.count >= 1);
    assert!(end_aru.p50() <= end_aru.max.max(1));
    let disk_write = snap.histogram("disk_write").expect("disk_write histogram");
    assert!(disk_write.count >= 1);
    assert!(disk_write.p99() >= disk_write.p50());
    let lld_write = snap.histogram("lld_write").expect("lld_write histogram");
    assert_eq!(lld_write.count, snap.lld.writes);

    // JSON output is produced and mentions the required pieces.
    let json = snap.to_json();
    assert!(json.contains("\"end_aru\""));
    assert!(json.contains("\"disk_write\""));
    assert!(json.contains("\"aru_commit\""));
}

#[test]
fn disabled_obs_is_silent_but_counters_survive() {
    let cfg = LldConfig {
        obs: ObsConfig::disabled(),
        ..config()
    };
    let ld = Lld::format(MemDisk::new(4 << 20), &cfg).unwrap();
    let aru = ld.begin_aru().unwrap();
    let list = ld.new_list(Ctx::Aru(aru)).unwrap();
    let b = ld.new_block(Ctx::Aru(aru), list, Position::First).unwrap();
    ld.write(Ctx::Aru(aru), b, &vec![3u8; BS]).unwrap();
    ld.end_aru(aru).unwrap();
    ld.flush().unwrap();

    let snap = ld.obs_snapshot();
    assert!(snap.events.is_empty(), "no events when disabled");
    assert!(snap.spans.is_empty(), "no spans when disabled");
    for (name, h) in &snap.histograms {
        assert!(h.is_empty(), "histogram {name} must stay empty");
    }
    // Plain counters are independent of the obs switch.
    assert_eq!(snap.lld.arus_committed, 1);
    assert!(snap.lld.writes >= 1);
}

#[test]
fn recovery_report_reaches_snapshot() {
    let ld = Lld::format(MemDisk::new(4 << 20), &config()).unwrap();
    let list = ld.new_list(Ctx::Simple).unwrap();
    let b = ld.new_block(Ctx::Simple, list, Position::First).unwrap();
    ld.write(Ctx::Simple, b, &vec![5u8; BS]).unwrap();
    ld.flush().unwrap();

    let image = ld.into_device().into_image();
    let (ld2, report) = Lld::recover(MemDisk::from_image(image)).unwrap();
    assert!(report.segments_replayed >= 1);

    let snap = ld2.obs_snapshot();
    let in_snap = snap.recovery.expect("recovery report in snapshot");
    assert_eq!(in_snap, report);
    assert!(
        snap.events
            .iter()
            .any(|e| matches!(e.event, TraceEvent::RecoveryScan { .. })),
        "recovery emits a scan event"
    );
}

#[test]
fn mt_group_commit_stress_has_well_formed_aru_lifecycles() {
    // Seeded multi-threaded stress: 4 OS threads share one disk and
    // commit disjoint ARUs synchronously, so the group-commit stage
    // batches their barriers. The trace must still contain one
    // well-formed lifecycle per ARU (begin strictly before commit, no
    // duplicates), and the group-commit accounting must balance: every
    // durability caller is covered by exactly one batch.
    use std::sync::Arc;

    const THREADS: u64 = 4;
    const ARUS_PER_THREAD: u64 = 20;
    let cfg = LldConfig {
        obs: ObsConfig {
            ring_capacity: 1 << 15,
            ..ObsConfig::default()
        },
        max_blocks: Some(1024),
        max_lists: Some(256),
        ..config()
    };
    let ld = Arc::new(Lld::format(MemDisk::new(16 << 20), &cfg).unwrap());

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let ld = Arc::clone(&ld);
            s.spawn(move || {
                for i in 0..ARUS_PER_THREAD {
                    let seed = (t * 1000 + i) as u8;
                    let aru = ld.begin_aru().unwrap();
                    let list = ld.new_list(Ctx::Aru(aru)).unwrap();
                    let b = ld.new_block(Ctx::Aru(aru), list, Position::First).unwrap();
                    ld.write(Ctx::Aru(aru), b, &vec![seed; BS]).unwrap();
                    ld.end_aru_sync(aru).unwrap();
                }
            });
        }
    });

    let total_arus = THREADS * ARUS_PER_THREAD;
    let events = ld.obs().ring().entries();
    assert_eq!(ld.obs().ring().dropped(), 0, "ring sized for the run");
    for w in events.windows(2) {
        assert!(w[0].seq < w[1].seq, "events out of order: {w:?}");
    }

    // Per-ARU lifecycle: exactly one begin and one commit, in order.
    use std::collections::HashMap;
    let mut begins: HashMap<u64, usize> = HashMap::new();
    let mut commits: HashMap<u64, usize> = HashMap::new();
    for (pos, e) in events.iter().enumerate() {
        match e.event {
            TraceEvent::AruBegin { aru } => {
                assert!(begins.insert(aru, pos).is_none(), "duplicate begin {aru}");
            }
            TraceEvent::AruCommit { aru, .. } => {
                assert!(commits.insert(aru, pos).is_none(), "duplicate commit {aru}");
            }
            TraceEvent::AruAbort { aru } | TraceEvent::AruConflict { aru } => {
                panic!("unexpected abort/conflict for ARU {aru}")
            }
            _ => {}
        }
    }
    assert_eq!(begins.len() as u64, total_arus);
    assert_eq!(commits.len() as u64, total_arus);
    for (aru, b) in &begins {
        let c = commits
            .get(aru)
            .unwrap_or_else(|| panic!("ARU {aru} never committed"));
        assert!(b < c, "ARU {aru} commit before begin");
    }

    // Group-commit accounting balances: every synchronous caller was
    // covered by exactly one batch, and the trace and the histogram
    // agree with the counters.
    let stats = ld.stats();
    assert_eq!(stats.arus_committed, total_arus);
    assert_eq!(stats.flush_batch_callers, total_arus);
    let batches: Vec<u64> = events
        .iter()
        .filter_map(|e| match e.event {
            TraceEvent::GroupCommit { batch, .. } => Some(batch),
            _ => None,
        })
        .collect();
    assert_eq!(batches.len() as u64, stats.flush_batches);
    assert!(!batches.is_empty(), "at least one group-commit batch");
    assert_eq!(batches.iter().sum::<u64>(), total_arus);
    assert_eq!(
        batches.iter().copied().max().unwrap(),
        stats.flush_batch_max
    );

    let snap = ld.obs_snapshot();
    let h = snap
        .histogram("group_commit_batch")
        .expect("batch-size histogram");
    assert_eq!(h.count, stats.flush_batches);
    assert_eq!(h.max, stats.flush_batch_max);
}
