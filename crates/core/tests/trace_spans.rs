//! Integration tests of the commit-trace protocol: stage spans emitted
//! by the group-commit path must be complete (every begin has an end)
//! and properly nested (queue-wait / seal / barrier-wait inside the
//! commit span), across OS threads; the snapshot JSON schema is pinned
//! by a golden file; and the sampler JSONL format round-trips through
//! the bundled parser.

use ld_core::obs::{json, TraceEvent};
use ld_core::{CleanerConfig, Ctx, Lld, LldConfig, ObsConfig, ObsSnapshot, Position};
use ld_disk::MemDisk;
use std::collections::BTreeMap;
use std::sync::Arc;

const BS: usize = 512;

/// A config pinned against the environment overrides the test matrix
/// sets (`LD_ARU_PIPELINE`, `LD_ARU_CLEANERD`, `LD_ARU_METRICS_HZ`),
/// so these protocol tests see exactly the paths they assert on.
fn config(pipeline: bool) -> LldConfig {
    LldConfig {
        block_size: BS,
        segment_bytes: 16 * BS,
        pipeline,
        metrics_hz: None,
        flight_dir: None,
        cleaner: CleanerConfig {
            background: false,
            ..CleanerConfig::default()
        },
        obs: ObsConfig {
            ring_capacity: 1 << 15,
            ..ObsConfig::default()
        },
        ..LldConfig::default()
    }
}

/// One synchronous committed ARU: the instrumented group-commit path.
fn sync_commit<D: ld_disk::BlockDevice>(ld: &Lld<D>) {
    let aru = ld.begin_aru().unwrap();
    let list = ld.new_list(Ctx::Aru(aru)).unwrap();
    let blk = ld.new_block(Ctx::Aru(aru), list, Position::First).unwrap();
    ld.write(Ctx::Aru(aru), blk, &[7u8; BS]).unwrap();
    ld.end_aru(aru).unwrap();
    ld.flush().unwrap();
}

/// Collects `(begin_seqs, end_seqs)` per `(trace, stage)` pair.
type SpanIndex = BTreeMap<(u64, String), (Vec<u64>, Vec<u64>)>;

fn index_spans(snap: &ObsSnapshot) -> SpanIndex {
    let mut idx = SpanIndex::new();
    for e in &snap.events {
        match &e.event {
            TraceEvent::StageBegin { trace, stage } => {
                idx.entry((*trace, stage.as_str().to_string()))
                    .or_default()
                    .0
                    .push(e.seq);
            }
            TraceEvent::StageEnd { trace, stage, .. } => {
                idx.entry((*trace, stage.as_str().to_string()))
                    .or_default()
                    .1
                    .push(e.seq);
            }
            _ => {}
        }
    }
    idx
}

#[test]
fn multi_thread_commit_spans_are_complete_and_nested() {
    let ld = Arc::new(Lld::format(MemDisk::new(16 << 20), &config(false)).unwrap());
    let threads = 4;
    let commits_per_thread = 10;
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let ld = Arc::clone(&ld);
            std::thread::spawn(move || {
                for _ in 0..commits_per_thread {
                    sync_commit(&ld);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let snap = ld.obs_snapshot();
    assert_eq!(snap.dropped_events, 0, "ring sized to hold the whole run");

    // Stage events must come from more than one OS thread.
    let tids: std::collections::BTreeSet<u64> = snap
        .events
        .iter()
        .filter(|e| matches!(e.event, TraceEvent::StageBegin { .. }))
        .map(|e| e.tid)
        .collect();
    assert!(tids.len() > 1, "stage events on one thread only: {tids:?}");

    let idx = index_spans(&snap);

    // Completeness: every begin has exactly one matching end.
    for ((trace, stage), (begins, ends)) in &idx {
        assert_eq!(
            begins.len(),
            ends.len(),
            "unbalanced {stage} spans for trace {trace}"
        );
    }

    // Every traced commit carries a commit span and a queue-wait span.
    let commit_traces: Vec<u64> = idx
        .keys()
        .filter(|(_, stage)| stage == "commit")
        .map(|(t, _)| *t)
        .collect();
    assert_eq!(
        commit_traces.len(),
        threads * commits_per_thread,
        "one commit span per sync flush"
    );
    for &t in &commit_traces {
        let (cb, ce) = &idx[&(t, "commit".to_string())];
        let (qb, qe) = &idx[&(t, "queue_wait".to_string())];
        assert_eq!(cb.len(), 1, "trace {t}");
        assert_eq!(qb.len(), 1, "trace {t}");
        // Nesting by ring sequence: commit begin < queue begin <
        // queue end < commit end.
        assert!(cb[0] < qb[0], "trace {t}: queue_wait starts inside commit");
        assert!(qb[0] < qe[0], "trace {t}");
        assert!(qe[0] < ce[0], "trace {t}: queue_wait ends inside commit");
    }

    // At least one commit led a batch: its seal and barrier-wait spans
    // nest inside its commit span.
    let leaders: Vec<u64> = commit_traces
        .iter()
        .copied()
        .filter(|t| idx.contains_key(&(*t, "seal".to_string())))
        .collect();
    assert!(!leaders.is_empty(), "no leader traces found");
    for &t in &leaders {
        let (cb, ce) = &idx[&(t, "commit".to_string())];
        for stage in ["seal", "barrier_wait"] {
            let (sb, se) = &idx[&(t, stage.to_string())];
            assert!(!sb.is_empty(), "leader trace {t} missing {stage}");
            assert!(
                cb[0] < sb[0] && se[se.len() - 1] < ce[0],
                "trace {t}: {stage} outside commit"
            );
        }
    }

    // The histograms fed by the spans saw the same traffic.
    let h = |name: &str| snap.histogram(name).unwrap().count;
    assert_eq!(h("gc_queue_wait_ns"), (threads * commits_per_thread) as u64);
    assert!(h("gc_seal_ns") >= leaders.len() as u64);
    assert!(h("gc_barrier_wait_ns") >= leaders.len() as u64);
}

#[test]
fn pipelined_media_spans_land_on_the_io_thread() {
    let ld = Arc::new(Lld::format(MemDisk::new(16 << 20), &config(true)).unwrap());
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let ld = Arc::clone(&ld);
            std::thread::spawn(move || {
                for _ in 0..5 {
                    sync_commit(&ld);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = ld.obs_snapshot();

    // Caller-side tids (commit begins) vs media-write tids: the
    // pipeline's I/O thread is its own thread, so the sets differ.
    let tids_for = |want: &str| -> std::collections::BTreeSet<u64> {
        snap.events
            .iter()
            .filter_map(|e| match &e.event {
                TraceEvent::StageBegin { stage, .. } if stage.as_str() == want => Some(e.tid),
                _ => None,
            })
            .collect()
    };
    let commit_tids = tids_for("commit");
    let media_tids = tids_for("media_write");
    assert!(!media_tids.is_empty(), "no media_write spans");
    assert!(
        media_tids.iter().all(|t| !commit_tids.contains(t)),
        "media writes should run on the I/O thread, not callers: \
         commit {commit_tids:?} media {media_tids:?}"
    );

    // Media-write spans carry commit trace ids, tying device work back
    // to the commits that caused it.
    let media_traces: std::collections::BTreeSet<u64> = snap
        .events
        .iter()
        .filter_map(|e| match &e.event {
            TraceEvent::StageBegin { trace, stage } if stage.as_str() == "media_write" => {
                Some(*trace)
            }
            _ => None,
        })
        .collect();
    assert!(
        media_traces.iter().any(|t| *t != 0),
        "no media write attributed to a commit trace"
    );
}

/// Pins the JSON schema of [`ObsSnapshot::to_json`]: every key path,
/// in serialization order, against a checked-in golden file. A failure
/// means the wire format changed — update the golden file *and*
/// `docs/OBSERVABILITY.md` deliberately.
#[test]
fn snapshot_json_schema_matches_golden() {
    let ld = Lld::format(MemDisk::new(4 << 20), &config(false)).unwrap();
    sync_commit(&ld);
    let snap = ld.obs_snapshot();
    let v = json::parse(&snap.to_json()).unwrap();

    fn walk(v: &json::Value, path: &str, out: &mut Vec<String>) {
        match v {
            json::Value::Obj(pairs) => {
                for (k, val) in pairs {
                    let p = if path.is_empty() {
                        k.clone()
                    } else {
                        format!("{path}.{k}")
                    };
                    out.push(p.clone());
                    walk(val, &p, out);
                }
            }
            json::Value::Arr(items) => {
                // Arrays are schema'd by their first element; event
                // payloads vary by type, so stop at the envelope there.
                if path.ends_with("events[]") || path.ends_with("buckets[]") {
                    return;
                }
                if let Some(first) = items.first() {
                    walk(first, &format!("{path}[]"), out);
                }
            }
            _ => {}
        }
    }
    let mut actual = Vec::new();
    walk(&v, "", &mut actual);
    // Event payloads vary by event type; keep only the envelope keys
    // common to every entry.
    actual.retain(|p| {
        !p.starts_with("events[].")
            || ["seq", "ts", "tid", "wall_us", "type"]
                .iter()
                .any(|k| p == &format!("events[].{k}"))
    });
    let actual = actual.join("\n") + "\n";
    // `LD_BLESS=1 cargo test` regenerates the golden file in place.
    if std::env::var_os("LD_BLESS").is_some() {
        std::fs::write(
            concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/tests/golden/obs_snapshot_schema.txt"
            ),
            &actual,
        )
        .unwrap();
    }
    let golden = include_str!("golden/obs_snapshot_schema.txt");
    assert_eq!(
        actual, golden,
        "ObsSnapshot JSON schema drifted from tests/golden/obs_snapshot_schema.txt; \
         if intentional, update the golden file and docs/OBSERVABILITY.md"
    );
}

#[test]
fn snapshot_json_round_trips_byte_identical() {
    let ld = Lld::format(MemDisk::new(4 << 20), &config(false)).unwrap();
    for _ in 0..3 {
        sync_commit(&ld);
    }
    let snap = ld.obs_snapshot();
    let first = snap.to_json();
    let reparsed = ObsSnapshot::from_json(&first).unwrap();
    assert_eq!(
        reparsed.to_json(),
        first,
        "parse → serialize must be the identity"
    );
    assert_eq!(reparsed.events.len(), snap.events.len());
    assert_eq!(reparsed.lld.arus_committed, snap.lld.arus_committed);
}

#[test]
fn sampler_jsonl_round_trips_and_is_monotonic() {
    let ld = Lld::format(MemDisk::new(4 << 20), &config(false)).unwrap();
    ld.sample_now();
    sync_commit(&ld);
    ld.sample_now();
    sync_commit(&ld);
    sync_commit(&ld);
    ld.sample_now();

    let (rows, dropped) = ld.sampler_counts();
    assert_eq!(rows, 3);
    assert_eq!(dropped, 0);

    let jsonl = ld.sampler_jsonl();
    let mut parsed = Vec::new();
    for line in jsonl.lines() {
        let v = json::parse(line).expect("each sampler line is one JSON object");
        let t_ms = v.get("t_ms").and_then(json::Value::as_u64).unwrap();
        let snap = ObsSnapshot::from_value(v.get("snapshot").unwrap()).unwrap();
        parsed.push((t_ms, snap));
    }
    assert_eq!(parsed.len(), 3);
    // Time and the cumulative counters never move backwards.
    for pair in parsed.windows(2) {
        assert!(pair[0].0 <= pair[1].0, "t_ms went backwards");
        assert!(pair[0].1.lld.arus_committed <= pair[1].1.lld.arus_committed);
    }
    assert_eq!(parsed[0].1.lld.arus_committed, 0);
    assert_eq!(parsed[2].1.lld.arus_committed, 3);
    // Samples are deliberately event-free: the time series carries
    // counters, the trace ring carries events.
    assert!(parsed.iter().all(|(_, s)| s.events.is_empty()));
}

#[test]
fn trace_ring_wraparound_is_counted_in_stats() {
    let ld = Lld::format(
        MemDisk::new(4 << 20),
        &LldConfig {
            obs: ObsConfig {
                ring_capacity: 16,
                ..ObsConfig::default()
            },
            ..config(false)
        },
    )
    .unwrap();
    for _ in 0..8 {
        sync_commit(&ld);
    }
    let snap = ld.obs_snapshot();
    assert!(snap.dropped_events > 0, "16-slot ring must have wrapped");
    assert_eq!(
        snap.lld.trace_events_dropped, snap.dropped_events,
        "the counter and the ring must agree"
    );
    assert_eq!(snap.events.len(), 16);
}
