//! Semantics of concurrent atomic recovery units (§3 of the paper):
//! shadow-state isolation, the allocation exception, serialization by
//! `EndARU`, the read-visibility options, and the sequential ("old")
//! mode.

use ld_core::{ConcurrencyMode, Ctx, Lld, LldConfig, LldError, Position, ReadVisibility};
use ld_disk::MemDisk;

const BS: usize = 512;

fn config() -> LldConfig {
    LldConfig {
        block_size: BS,
        segment_bytes: 16 * BS,
        max_blocks: Some(256),
        max_lists: Some(64),
        ..LldConfig::default()
    }
}

fn fresh_with(cfg: &LldConfig) -> Lld<MemDisk> {
    Lld::format(MemDisk::new(2 << 20), cfg).unwrap()
}

fn fresh() -> Lld<MemDisk> {
    fresh_with(&config())
}

fn block(byte: u8) -> Vec<u8> {
    vec![byte; BS]
}

#[test]
fn aru_sees_its_own_writes() {
    let ld = fresh();
    let list = ld.new_list(Ctx::Simple).unwrap();
    let b = ld.new_block(Ctx::Simple, list, Position::First).unwrap();
    ld.write(Ctx::Simple, b, &block(1)).unwrap();

    let aru = ld.begin_aru().unwrap();
    ld.write(Ctx::Aru(aru), b, &block(2)).unwrap();
    let mut buf = block(0);
    ld.read(Ctx::Aru(aru), b, &mut buf).unwrap();
    assert_eq!(buf, block(2), "read within the ARU sees its shadow");
    ld.read(Ctx::Simple, b, &mut buf).unwrap();
    assert_eq!(buf, block(1), "simple read sees the committed version");
    ld.end_aru(aru).unwrap();
    ld.read(Ctx::Simple, b, &mut buf).unwrap();
    assert_eq!(buf, block(2), "after commit the update is visible");
}

#[test]
fn concurrent_arus_are_isolated_from_each_other() {
    let ld = fresh();
    let list = ld.new_list(Ctx::Simple).unwrap();
    let b = ld.new_block(Ctx::Simple, list, Position::First).unwrap();
    ld.write(Ctx::Simple, b, &block(0)).unwrap();

    let a1 = ld.begin_aru().unwrap();
    let a2 = ld.begin_aru().unwrap();
    ld.write(Ctx::Aru(a1), b, &block(11)).unwrap();
    ld.write(Ctx::Aru(a2), b, &block(22)).unwrap();

    let mut buf = block(9);
    ld.read(Ctx::Aru(a1), b, &mut buf).unwrap();
    assert_eq!(buf, block(11));
    ld.read(Ctx::Aru(a2), b, &mut buf).unwrap();
    assert_eq!(buf, block(22));
    ld.read(Ctx::Simple, b, &mut buf).unwrap();
    assert_eq!(buf, block(0));

    // Serialization by EndARU time: a1 commits first, then a2; a2's
    // version replaces a1's.
    ld.end_aru(a1).unwrap();
    ld.read(Ctx::Simple, b, &mut buf).unwrap();
    assert_eq!(buf, block(11));
    ld.end_aru(a2).unwrap();
    ld.read(Ctx::Simple, b, &mut buf).unwrap();
    assert_eq!(buf, block(22));
}

#[test]
fn commit_order_decides_even_against_op_order() {
    // a2 wrote later, but a1 commits later: a1 wins (ARUs serialize at
    // EndARU, not at Write).
    let ld = fresh();
    let list = ld.new_list(Ctx::Simple).unwrap();
    let b = ld.new_block(Ctx::Simple, list, Position::First).unwrap();
    let a1 = ld.begin_aru().unwrap();
    let a2 = ld.begin_aru().unwrap();
    ld.write(Ctx::Aru(a1), b, &block(1)).unwrap();
    ld.write(Ctx::Aru(a2), b, &block(2)).unwrap();
    ld.end_aru(a2).unwrap();
    ld.end_aru(a1).unwrap();
    let mut buf = block(0);
    ld.read(Ctx::Simple, b, &mut buf).unwrap();
    assert_eq!(buf, block(1));
}

#[test]
fn allocation_is_committed_immediately() {
    // §3.3: allocation happens in the merged stream so concurrent ARUs
    // can never get the same identifier — but the block is on no list
    // from any other stream's point of view.
    let ld = fresh();
    let l = ld.new_list(Ctx::Simple).unwrap();
    let a1 = ld.begin_aru().unwrap();
    let a2 = ld.begin_aru().unwrap();
    let b1 = ld.new_block(Ctx::Aru(a1), l, Position::First).unwrap();
    let b2 = ld.new_block(Ctx::Aru(a2), l, Position::First).unwrap();
    assert_ne!(b1, b2, "identifiers are unique across concurrent ARUs");

    // Simple stream: both allocated (cannot be re-allocated) but in no
    // list.
    assert_eq!(ld.list_blocks(Ctx::Simple, l).unwrap(), Vec::new());
    assert!(ld.block_info(b1).unwrap().list.is_none());
    // Reading an allocated-but-unlinked block from the simple stream is
    // allowed (it is allocated in the committed state) and yields zeroes.
    let mut buf = block(7);
    ld.read(Ctx::Simple, b1, &mut buf).unwrap();
    assert_eq!(buf, block(0));

    // Each ARU sees only its own insertion.
    assert_eq!(ld.list_blocks(Ctx::Aru(a1), l).unwrap(), vec![b1]);
    assert_eq!(ld.list_blocks(Ctx::Aru(a2), l).unwrap(), vec![b2]);

    // After both commit, the insertions merge into one list.
    ld.end_aru(a1).unwrap();
    ld.end_aru(a2).unwrap();
    let merged = ld.list_blocks(Ctx::Simple, l).unwrap();
    assert_eq!(merged.len(), 2);
    assert!(merged.contains(&b1) && merged.contains(&b2));
}

#[test]
fn abort_discards_shadow_state_but_not_allocations() {
    let ld = fresh();
    let l = ld.new_list(Ctx::Simple).unwrap();
    let b0 = ld.new_block(Ctx::Simple, l, Position::First).unwrap();
    ld.write(Ctx::Simple, b0, &block(5)).unwrap();

    let aru = ld.begin_aru().unwrap();
    let nb = ld.new_block(Ctx::Aru(aru), l, Position::After(b0)).unwrap();
    ld.write(Ctx::Aru(aru), b0, &block(6)).unwrap();
    ld.write(Ctx::Aru(aru), nb, &block(7)).unwrap();
    ld.abort_aru(aru).unwrap();

    let mut buf = block(0);
    ld.read(Ctx::Simple, b0, &mut buf).unwrap();
    assert_eq!(buf, block(5), "shadow write discarded");
    assert_eq!(ld.list_blocks(Ctx::Simple, l).unwrap(), vec![b0]);
    // The allocation itself was committed and survives the abort...
    assert!(ld.block_info(nb).is_some());
    // ...until a consistency check reclaims it.
    let report = ld.check().unwrap();
    assert_eq!(report.orphan_blocks_freed, vec![nb]);
    assert!(ld.block_info(nb).is_none());
}

#[test]
fn aru_delete_is_shadowed_until_commit() {
    let ld = fresh();
    let l = ld.new_list(Ctx::Simple).unwrap();
    let b1 = ld.new_block(Ctx::Simple, l, Position::First).unwrap();
    let b2 = ld.new_block(Ctx::Simple, l, Position::After(b1)).unwrap();
    ld.write(Ctx::Simple, b2, &block(3)).unwrap();

    let aru = ld.begin_aru().unwrap();
    ld.delete_block(Ctx::Aru(aru), b2).unwrap();
    // Within the ARU: gone.
    assert_eq!(ld.list_blocks(Ctx::Aru(aru), l).unwrap(), vec![b1]);
    let mut buf = block(0);
    assert!(ld.read(Ctx::Aru(aru), b2, &mut buf).is_err());
    // Outside: still present.
    assert_eq!(ld.list_blocks(Ctx::Simple, l).unwrap(), vec![b1, b2]);
    ld.read(Ctx::Simple, b2, &mut buf).unwrap();
    assert_eq!(buf, block(3));

    ld.end_aru(aru).unwrap();
    assert_eq!(ld.list_blocks(Ctx::Simple, l).unwrap(), vec![b1]);
    assert!(ld.read(Ctx::Simple, b2, &mut buf).is_err());
}

#[test]
fn aru_delete_list_including_own_insertions() {
    let ld = fresh();
    let l = ld.new_list(Ctx::Simple).unwrap();
    let b0 = ld.new_block(Ctx::Simple, l, Position::First).unwrap();
    let aru = ld.begin_aru().unwrap();
    let b1 = ld.new_block(Ctx::Aru(aru), l, Position::After(b0)).unwrap();
    ld.write(Ctx::Aru(aru), b1, &block(1)).unwrap();
    ld.delete_list(Ctx::Aru(aru), l).unwrap();
    assert!(ld.list_blocks(Ctx::Aru(aru), l).is_err());
    // Committed state unaffected until commit.
    assert_eq!(ld.list_blocks(Ctx::Simple, l).unwrap(), vec![b0]);
    ld.end_aru(aru).unwrap();
    assert!(ld.list_blocks(Ctx::Simple, l).is_err());
    assert!(ld.block_info(b0).is_none());
    assert!(ld.block_info(b1).is_none());
    assert_eq!(ld.allocated_block_count(), 0);
    assert_eq!(ld.allocated_list_count(), 0);
}

#[test]
fn commit_conflict_when_predecessor_vanishes() {
    let ld = fresh();
    let l = ld.new_list(Ctx::Simple).unwrap();
    let b0 = ld.new_block(Ctx::Simple, l, Position::First).unwrap();
    let aru = ld.begin_aru().unwrap();
    let _nb = ld.new_block(Ctx::Aru(aru), l, Position::After(b0)).unwrap();
    // A concurrent simple operation deletes the predecessor.
    ld.delete_block(Ctx::Simple, b0).unwrap();
    let err = ld.end_aru(aru).unwrap_err();
    assert!(matches!(err, LldError::CommitConflict { .. }), "{err}");
    // The ARU is gone and the committed state untouched.
    assert!(ld.end_aru(aru).is_err());
    assert_eq!(ld.list_blocks(Ctx::Simple, l).unwrap(), Vec::new());
    assert_eq!(ld.stats().commit_conflicts, 1);
}

#[test]
fn commit_conflict_when_written_block_deleted() {
    let ld = fresh();
    let l = ld.new_list(Ctx::Simple).unwrap();
    let b = ld.new_block(Ctx::Simple, l, Position::First).unwrap();
    let aru = ld.begin_aru().unwrap();
    ld.write(Ctx::Aru(aru), b, &block(9)).unwrap();
    ld.delete_block(Ctx::Simple, b).unwrap();
    assert!(matches!(
        ld.end_aru(aru),
        Err(LldError::CommitConflict { .. })
    ));
}

#[test]
fn unknown_aru_rejected_everywhere() {
    let ld = fresh();
    let ghost = {
        let aru = ld.begin_aru().unwrap();
        ld.end_aru(aru).unwrap();
        aru
    };
    let l = ld.new_list(Ctx::Simple).unwrap();
    assert!(matches!(
        ld.new_block(Ctx::Aru(ghost), l, Position::First),
        Err(LldError::UnknownAru(_))
    ));
    assert!(ld.end_aru(ghost).is_err());
    assert!(ld.abort_aru(ghost).is_err());
    let mut buf = block(0);
    let b = ld.new_block(Ctx::Simple, l, Position::First).unwrap();
    assert!(ld.read(Ctx::Aru(ghost), b, &mut buf).is_err());
    assert!(ld.write(Ctx::Aru(ghost), b, &block(0)).is_err());
}

#[test]
fn empty_aru_commits_cheaply() {
    let ld = fresh();
    for _ in 0..100 {
        let aru = ld.begin_aru().unwrap();
        ld.end_aru(aru).unwrap();
    }
    assert_eq!(ld.stats().arus_committed, 100);
    // One commit record each, nothing else.
    assert_eq!(ld.stats().records_emitted, 100);
}

// ---------------------------------------------------------------------
// Sequential ("old") mode
// ---------------------------------------------------------------------

#[test]
fn sequential_mode_allows_one_aru_at_a_time() {
    let cfg = LldConfig {
        concurrency: ConcurrencyMode::Sequential,
        ..config()
    };
    let ld = fresh_with(&cfg);
    let a1 = ld.begin_aru().unwrap();
    assert!(matches!(
        ld.begin_aru(),
        Err(LldError::ConcurrencyUnsupported { .. })
    ));
    ld.end_aru(a1).unwrap();
    let a2 = ld.begin_aru().unwrap();
    ld.end_aru(a2).unwrap();
}

#[test]
fn sequential_mode_applies_directly_and_cannot_abort() {
    let cfg = LldConfig {
        concurrency: ConcurrencyMode::Sequential,
        ..config()
    };
    let ld = fresh_with(&cfg);
    let l = ld.new_list(Ctx::Simple).unwrap();
    let aru = ld.begin_aru().unwrap();
    let b = ld.new_block(Ctx::Aru(aru), l, Position::First).unwrap();
    ld.write(Ctx::Aru(aru), b, &block(4)).unwrap();
    // Visible from the simple stream immediately (merged stream).
    assert_eq!(ld.list_blocks(Ctx::Simple, l).unwrap(), vec![b]);
    assert!(matches!(ld.abort_aru(aru), Err(LldError::AbortUnsupported)));
    ld.end_aru(aru).unwrap();
    let mut buf = block(0);
    ld.read(Ctx::Simple, b, &mut buf).unwrap();
    assert_eq!(buf, block(4));
}

#[test]
fn sequential_mode_defers_id_reuse_to_commit() {
    let cfg = LldConfig {
        concurrency: ConcurrencyMode::Sequential,
        ..config()
    };
    let ld = fresh_with(&cfg);
    let l = ld.new_list(Ctx::Simple).unwrap();
    let b = ld.new_block(Ctx::Simple, l, Position::First).unwrap();
    let aru = ld.begin_aru().unwrap();
    ld.delete_block(Ctx::Aru(aru), b).unwrap();
    // Inside the ARU the id must not be handed out again (its delete
    // record precedes the commit record in the log).
    let nb = ld.new_block(Ctx::Aru(aru), l, Position::First).unwrap();
    assert_ne!(nb, b);
    ld.end_aru(aru).unwrap();
    // Now it may be reused.
    let nb2 = ld.new_block(Ctx::Simple, l, Position::First).unwrap();
    assert_eq!(nb2, b);
}

// ---------------------------------------------------------------------
// Read-visibility options (§3.3)
// ---------------------------------------------------------------------

#[test]
fn visibility_committed_hides_own_shadow() {
    let cfg = LldConfig {
        visibility: ReadVisibility::Committed,
        ..config()
    };
    let ld = fresh_with(&cfg);
    let l = ld.new_list(Ctx::Simple).unwrap();
    let b = ld.new_block(Ctx::Simple, l, Position::First).unwrap();
    ld.write(Ctx::Simple, b, &block(1)).unwrap();
    let aru = ld.begin_aru().unwrap();
    ld.write(Ctx::Aru(aru), b, &block(2)).unwrap();
    let mut buf = block(0);
    // Option 2: even inside the ARU, reads return the committed version.
    ld.read(Ctx::Aru(aru), b, &mut buf).unwrap();
    assert_eq!(buf, block(1));
    ld.end_aru(aru).unwrap();
    ld.read(Ctx::Simple, b, &mut buf).unwrap();
    assert_eq!(buf, block(2));
}

#[test]
fn visibility_any_shadow_exposes_most_recent_write() {
    let cfg = LldConfig {
        visibility: ReadVisibility::AnyShadow,
        ..config()
    };
    let ld = fresh_with(&cfg);
    let l = ld.new_list(Ctx::Simple).unwrap();
    let b = ld.new_block(Ctx::Simple, l, Position::First).unwrap();
    ld.write(Ctx::Simple, b, &block(1)).unwrap();
    let a1 = ld.begin_aru().unwrap();
    let a2 = ld.begin_aru().unwrap();
    ld.write(Ctx::Aru(a1), b, &block(11)).unwrap();
    let mut buf = block(0);
    // Option 1: any client sees a1's uncommitted write immediately.
    ld.read(Ctx::Simple, b, &mut buf).unwrap();
    assert_eq!(buf, block(11));
    ld.read(Ctx::Aru(a2), b, &mut buf).unwrap();
    assert_eq!(buf, block(11));
    // A newer write from a2 takes over.
    ld.write(Ctx::Aru(a2), b, &block(22)).unwrap();
    ld.read(Ctx::Aru(a1), b, &mut buf).unwrap();
    assert_eq!(buf, block(22));
    ld.end_aru(a1).unwrap();
    ld.end_aru(a2).unwrap();
}

#[test]
fn shadow_link_change_without_data_write_reads_committed_data() {
    // An ARU that only relinks a block (no data write) must still read
    // the block's committed data through its shadow record.
    let ld = fresh();
    let l = ld.new_list(Ctx::Simple).unwrap();
    let b1 = ld.new_block(Ctx::Simple, l, Position::First).unwrap();
    let b2 = ld.new_block(Ctx::Simple, l, Position::After(b1)).unwrap();
    ld.write(Ctx::Simple, b1, &block(0xAA)).unwrap();
    let aru = ld.begin_aru().unwrap();
    // Deleting b2 touches b1's shadow record? No — but inserting a new
    // block after b1 does (successor update).
    let _nb = ld.new_block(Ctx::Aru(aru), l, Position::After(b1)).unwrap();
    let mut buf = block(0);
    ld.read(Ctx::Aru(aru), b1, &mut buf).unwrap();
    assert_eq!(buf, block(0xAA));
    // b2's committed membership is unchanged within the ARU view (it
    // follows the inserted block).
    let view = ld.list_blocks(Ctx::Aru(aru), l).unwrap();
    assert_eq!(view.len(), 3);
    assert_eq!(view[0], b1);
    assert_eq!(view[2], b2);
    ld.abort_aru(aru).unwrap();
}

#[test]
fn many_concurrent_arus_n_plus_2_versions() {
    // Up to n+2 versions of one block: n shadows + committed +
    // persistent.
    let ld = fresh();
    let l = ld.new_list(Ctx::Simple).unwrap();
    let b = ld.new_block(Ctx::Simple, l, Position::First).unwrap();
    ld.write(Ctx::Simple, b, &block(0)).unwrap();
    ld.flush().unwrap(); // persistent version = 0
    ld.write(Ctx::Simple, b, &block(100)).unwrap(); // committed version

    let n = 10;
    let arus: Vec<_> = (0..n).map(|_| ld.begin_aru().unwrap()).collect();
    for (i, &aru) in arus.iter().enumerate() {
        ld.write(Ctx::Aru(aru), b, &block(i as u8 + 1)).unwrap();
    }
    let mut buf = block(0);
    for (i, &aru) in arus.iter().enumerate() {
        ld.read(Ctx::Aru(aru), b, &mut buf).unwrap();
        assert_eq!(buf, block(i as u8 + 1));
    }
    ld.read(Ctx::Simple, b, &mut buf).unwrap();
    assert_eq!(buf, block(100));
    for &aru in &arus {
        ld.abort_aru(aru).unwrap();
    }
    ld.read(Ctx::Simple, b, &mut buf).unwrap();
    assert_eq!(buf, block(100));
}
