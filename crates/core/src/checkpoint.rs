//! Checkpoints: bounded-time recovery and the cleaner's enabler.
//!
//! The paper's prototype reconstructs its tables purely by scanning
//! segment summaries. That works until the log wraps: once the cleaner
//! reuses a segment slot, the records that used to live there are gone,
//! so a pure scan no longer reconstructs the state. A checkpoint —
//! a snapshot of the block-number-map and list-table as of a log
//! sequence number — closes the gap: recovery loads the newest valid
//! checkpoint and replays only segments with larger sequence numbers,
//! and the cleaner only reuses slots whose sequence number the latest
//! checkpoint covers.
//!
//! Two fixed areas alternate (A/B), each with an independent checksum,
//! so a crash mid-checkpoint always leaves the previous one intact.

use crate::error::{LldError, Result};
use crate::layout::{Layout, CKPT_BLOCK_ENTRY, CKPT_HEADER, CKPT_LIST_ENTRY};
use crate::lld::{LldInner, Mutation};
use crate::state::{BlockRecord, ListRecord, Tables};
use crate::types::{BlockId, ListId, PhysAddr, SegmentId, Timestamp};
use ld_disk::{crc32, BlockDevice};

const CKPT_MAGIC: u64 = 0x4C44_434B_5039_3936; // "LDCKP996"

/// A decoded checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CheckpointData {
    /// Highest segment sequence number whose effects are included.
    pub(crate) seq: u64,
    pub(crate) ts_counter: u64,
    pub(crate) next_block_raw: u64,
    pub(crate) next_list_raw: u64,
    pub(crate) tables: Tables,
}

fn encode_header(
    seq: u64,
    ts: u64,
    nb: u64,
    nl: u64,
    blocks: u64,
    lists: u64,
    payload_crc: u32,
) -> [u8; CKPT_HEADER as usize] {
    let mut h = Vec::with_capacity(CKPT_HEADER as usize);
    h.extend_from_slice(&CKPT_MAGIC.to_le_bytes());
    h.extend_from_slice(&seq.to_le_bytes());
    h.extend_from_slice(&ts.to_le_bytes());
    h.extend_from_slice(&nb.to_le_bytes());
    h.extend_from_slice(&nl.to_le_bytes());
    h.extend_from_slice(&blocks.to_le_bytes());
    h.extend_from_slice(&lists.to_le_bytes());
    h.extend_from_slice(&payload_crc.to_le_bytes());
    let crc = crc32(&h);
    h.extend_from_slice(&crc.to_le_bytes());
    h.try_into().expect("header is CKPT_HEADER bytes")
}

impl<D: BlockDevice> LldInner<D> {
    /// Writes a checkpoint of the persistent state.
    ///
    /// Seals the current segment first (so the committed state becomes
    /// persistent and is included), then snapshots the tables into the
    /// alternate checkpoint area.
    ///
    /// # Errors
    ///
    /// Device errors; [`LldError::DiskFull`] if no segment slot is free
    /// for the next segment.
    pub fn checkpoint(&self) -> Result<()> {
        self.with_mutation(|m| m.checkpoint_inner())
    }
}

impl<D: BlockDevice> Mutation<'_, D> {
    /// See [`LldInner::checkpoint`]; also called by the cleaner when its
    /// candidate segments are not yet covered.
    pub(crate) fn checkpoint_inner(&mut self) -> Result<()> {
        debug_assert!(self.map.holds_all_shards_write());
        if self.seal_current()? && !self.log().free_slots.is_empty() {
            self.open_segment(0)?;
        }
        // A log-only seal (the flush leader) may have left committed
        // records undrained; every record in the overlay now belongs to
        // a sealed-or-current segment the checkpoint covers, so drain
        // them all before snapshotting the persistent tables.
        self.map.drain_committed();
        let covered = {
            let log = self.log();
            log.builder
                .as_ref()
                .map(|b| b.seq() - 1)
                .unwrap_or(log.next_seq - 1)
        };

        // Encode payload: every block record, then every list record,
        // gathered across all shards in identifier order.
        let nb = self
            .map
            .shards_held()
            .map(|s| s.persistent.blocks.len() as u64)
            .sum::<u64>();
        let nl = self
            .map
            .shards_held()
            .map(|s| s.persistent.lists.len() as u64)
            .sum::<u64>();
        debug_assert!(nb <= self.lld.layout.max_blocks && nl <= self.lld.layout.max_lists);
        let mut payload =
            Vec::with_capacity((nb * CKPT_BLOCK_ENTRY + nl * CKPT_LIST_ENTRY) as usize);
        let mut block_ids: Vec<BlockId> = self
            .map
            .shards_held()
            .flat_map(|s| s.persistent.blocks.keys().copied())
            .collect();
        block_ids.sort_unstable();
        for id in block_ids {
            let r = &self
                .map
                .shard(self.map.shard_of(id.get()))
                .persistent
                .blocks[&id];
            payload.extend_from_slice(&id.get().to_le_bytes());
            match r.addr {
                Some(a) => {
                    payload.extend_from_slice(&a.segment.get().to_le_bytes());
                    payload.extend_from_slice(&a.slot.to_le_bytes());
                }
                None => {
                    payload.extend_from_slice(&u32::MAX.to_le_bytes());
                    payload.extend_from_slice(&u32::MAX.to_le_bytes());
                }
            }
            payload.extend_from_slice(&BlockId::encode_opt(r.successor).to_le_bytes());
            payload.extend_from_slice(&ListId::encode_opt(r.list).to_le_bytes());
            payload.extend_from_slice(&r.ts.get().to_le_bytes());
        }
        let mut list_ids: Vec<ListId> = self
            .map
            .shards_held()
            .flat_map(|s| s.persistent.lists.keys().copied())
            .collect();
        list_ids.sort_unstable();
        for id in list_ids {
            let r = &self.map.shard(self.map.shard_of(id.get())).persistent.lists[&id];
            payload.extend_from_slice(&id.get().to_le_bytes());
            payload.extend_from_slice(&BlockId::encode_opt(r.first).to_le_bytes());
            payload.extend_from_slice(&BlockId::encode_opt(r.last).to_le_bytes());
            payload.extend_from_slice(&r.ts.get().to_le_bytes());
        }
        if CKPT_HEADER + payload.len() as u64 > self.lld.layout.ckpt_area_size {
            return Err(LldError::Corrupt(
                "checkpoint exceeds its reserved area".into(),
            ));
        }
        // The stored allocator floors are global: the max over shards.
        // Recovery re-stripes them per shard with `striped_ceil` (the
        // shard count is a runtime knob, not persisted).
        let block_floor = self
            .map
            .shards_held()
            .map(|s| s.next_block_raw)
            .max()
            .unwrap_or(1);
        let list_floor = self
            .map
            .shards_held()
            .map(|s| s.next_list_raw)
            .max()
            .unwrap_or(1);
        let header = encode_header(
            covered,
            self.lld.now(),
            block_floor,
            list_floor,
            nb,
            nl,
            crc32(&payload),
        );
        let area = if self.log().ckpt_use_b {
            self.lld.layout.ckpt_b
        } else {
            self.lld.layout.ckpt_a
        };
        self.lld.device.write_at(area, &header)?;
        self.lld.device.write_at(area + CKPT_HEADER, &payload)?;
        self.lld.device.flush()?;
        let use_b = !self.log().ckpt_use_b;
        self.log().ckpt_use_b = use_b;
        self.log().checkpoint_seq = covered;
        self.lld.stats.checkpoints.inc();
        self.lld.obs.event(
            self.lld.now(),
            crate::obs::TraceEvent::Checkpoint {
                covered_seq: covered,
                bytes: CKPT_HEADER + payload.len() as u64,
            },
        );
        Ok(())
    }
}

/// Reads one checkpoint area, returning `None` if it holds no valid
/// checkpoint.
fn read_area<D: BlockDevice>(
    device: &D,
    layout: &Layout,
    area: u64,
) -> Result<Option<CheckpointData>> {
    let mut header = [0u8; CKPT_HEADER as usize];
    device.read_at(area, &mut header)?;
    let stored = u32::from_le_bytes(header[60..64].try_into().expect("4 bytes"));
    if crc32(&header[..60]) != stored {
        return Ok(None);
    }
    if u64::from_le_bytes(header[0..8].try_into().expect("8 bytes")) != CKPT_MAGIC {
        return Ok(None);
    }
    let seq = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    let ts_counter = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
    let next_block_raw = u64::from_le_bytes(header[24..32].try_into().expect("8 bytes"));
    let next_list_raw = u64::from_le_bytes(header[32..40].try_into().expect("8 bytes"));
    let nb = u64::from_le_bytes(header[40..48].try_into().expect("8 bytes"));
    let nl = u64::from_le_bytes(header[48..56].try_into().expect("8 bytes"));
    let payload_crc = u32::from_le_bytes(header[56..60].try_into().expect("4 bytes"));

    let payload_len = nb * CKPT_BLOCK_ENTRY + nl * CKPT_LIST_ENTRY;
    if CKPT_HEADER + payload_len > layout.ckpt_area_size {
        return Ok(None);
    }
    let mut payload = vec![0u8; payload_len as usize];
    device.read_at(area + CKPT_HEADER, &mut payload)?;
    if crc32(&payload) != payload_crc {
        return Ok(None);
    }

    let mut tables = Tables::default();
    let mut pos = 0usize;
    let u64at =
        |buf: &[u8], p: usize| u64::from_le_bytes(buf[p..p + 8].try_into().expect("8 bytes"));
    let u32at =
        |buf: &[u8], p: usize| u32::from_le_bytes(buf[p..p + 4].try_into().expect("4 bytes"));
    for _ in 0..nb {
        let id = u64at(&payload, pos);
        let seg = u32at(&payload, pos + 8);
        let slot = u32at(&payload, pos + 12);
        let succ = u64at(&payload, pos + 16);
        let list = u64at(&payload, pos + 24);
        let ts = u64at(&payload, pos + 32);
        pos += CKPT_BLOCK_ENTRY as usize;
        if id == 0 {
            return Err(LldError::Corrupt("zero block id in checkpoint".into()));
        }
        tables.blocks.insert(
            BlockId::new(id),
            BlockRecord {
                allocated: true,
                addr: (seg != u32::MAX).then(|| PhysAddr {
                    segment: SegmentId::new(seg),
                    slot,
                }),
                successor: BlockId::decode_opt(succ),
                list: ListId::decode_opt(list),
                ts: Timestamp::new(ts),
            },
        );
    }
    for _ in 0..nl {
        let id = u64at(&payload, pos);
        let first = u64at(&payload, pos + 8);
        let last = u64at(&payload, pos + 16);
        let ts = u64at(&payload, pos + 24);
        pos += CKPT_LIST_ENTRY as usize;
        if id == 0 {
            return Err(LldError::Corrupt("zero list id in checkpoint".into()));
        }
        tables.lists.insert(
            ListId::new(id),
            ListRecord {
                allocated: true,
                first: BlockId::decode_opt(first),
                last: BlockId::decode_opt(last),
                ts: Timestamp::new(ts),
            },
        );
    }
    Ok(Some(CheckpointData {
        seq,
        ts_counter,
        next_block_raw,
        next_list_raw,
        tables,
    }))
}

/// Loads the newest valid checkpoint, if any. Also reports whether the
/// *older* area (A) is in use, so the next checkpoint alternates.
pub(crate) fn load_latest<D: BlockDevice>(
    device: &D,
    layout: &Layout,
) -> Result<(Option<CheckpointData>, bool)> {
    let a = read_area(device, layout, layout.ckpt_a)?;
    let b = read_area(device, layout, layout.ckpt_b)?;
    Ok(match (a, b) {
        (Some(a), Some(b)) => {
            if a.seq >= b.seq {
                // A is newest; write the next checkpoint to B.
                (Some(a), true)
            } else {
                (Some(b), false)
            }
        }
        (Some(a), None) => (Some(a), true),
        (None, Some(b)) => (Some(b), false),
        (None, None) => (None, false),
    })
}
