//! Checkpoints: bounded-time recovery and the cleaner's enabler.
//!
//! The paper's prototype reconstructs its tables purely by scanning
//! segment summaries. That works until the log wraps: once the cleaner
//! reuses a segment slot, the records that used to live there are gone,
//! so a pure scan no longer reconstructs the state. A checkpoint —
//! a snapshot of the block-number-map and list-table as of a log
//! sequence number — closes the gap: recovery loads the newest valid
//! checkpoint and replays only segments with larger sequence numbers,
//! and the cleaner only reuses slots whose sequence number the latest
//! checkpoint covers.
//!
//! # On-disk format (v2, sharded)
//!
//! Each of the two alternating areas (A/B) holds one checkpoint as
//! *per-shard snapshot slabs* behind a header and a slab directory:
//!
//! ```text
//! area+0    header (64 B): magic, covered seq, ts, floors,
//!           snap_shards, dir crc, header crc
//! area+64   directory (24 B per slab, space reserved for 64):
//!           n_blocks, n_lists, slab crc
//! area+64+1536  slab 0 | slab 1 | … (block entries then list entries)
//! ```
//!
//! Slab `i` holds the records of map shard `i` at checkpoint time (the
//! shard count is a runtime knob: recovery redistributes entries by id,
//! so an image checkpointed at 8 shards recovers at any count). Every
//! slab carries its own CRC, so recovery can load and verify slabs
//! independently — and in parallel.
//!
//! Torn-write safety is header-last + A/B alternation: slabs are
//! written first, then the directory, then the header (all CRC'd), then
//! one flush. A crash anywhere mid-write leaves the header invalid (or
//! stale-but-consistent), and the *other* area still holds the previous
//! checkpoint.
//!
//! # Writers
//!
//! Two code paths write checkpoints, serialized by the [`CkptSlots`]
//! generation counter behind the `ckpt_io` leaf mutex:
//!
//! - [`Mutation::checkpoint_inner`] — the foreground full checkpoint:
//!   one full session, all slabs written in one critical section.
//! - [`LldInner::checkpoint_incremental`] — the background cleaner's
//!   path: a short full session chooses the covered sequence number and
//!   marks every shard `snap_pending`, then each slab is encoded under
//!   only *its* shard's write lock and written with no mapping-layer
//!   locks held. Foreground commits that would advance a pending
//!   shard's persistent tables first preserve them in `snap_copy`
//!   (copy-on-advance, see [`MapShard`](crate::shard::MapShard)), so
//!   every slab reflects exactly the covered point even though the
//!   shard kept moving. A full checkpoint completing mid-flight bumps
//!   the generation and the incremental writer aborts harmlessly.

use crate::error::{LldError, Result};
use crate::layout::{
    Layout, CKPT_BLOCK_ENTRY, CKPT_DIR_ENTRY, CKPT_DIR_RESERVE, CKPT_HEADER, CKPT_LIST_ENTRY,
    MAX_SNAP_SHARDS,
};
use crate::lld::{LldInner, Mutation};
use crate::state::{BlockRecord, ListRecord, Tables};
use crate::types::{BlockId, ListId, PhysAddr, SegmentId, Timestamp};
use ld_disk::{crc32, BlockDevice};

const CKPT_MAGIC: u64 = 0x4C44_434B_5339_3936; // "LDCKS996"

/// Checkpoint-area I/O state, behind the `ckpt_io` leaf mutex: the A/B
/// cursor and the generation counter serializing concurrent checkpoint
/// writers (see the module docs).
#[derive(Debug, Default)]
pub(crate) struct CkptSlots {
    /// Write the next checkpoint to area B (the areas alternate).
    pub(crate) use_b: bool,
    /// Bumped once per *completed* checkpoint; an incremental writer
    /// snapshots it at begin and aborts if it moved.
    pub(crate) gen: u64,
}

/// Directory entry for one snapshot slab, with its absolute device
/// offset resolved.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SlabInfo {
    /// Absolute device offset of the slab.
    pub(crate) offset: u64,
    pub(crate) n_blocks: u64,
    pub(crate) n_lists: u64,
    pub(crate) crc: u32,
}

impl SlabInfo {
    pub(crate) fn len(&self) -> u64 {
        self.n_blocks * CKPT_BLOCK_ENTRY + self.n_lists * CKPT_LIST_ENTRY
    }
}

/// A decoded checkpoint header + slab directory (slabs not yet read).
#[derive(Debug, Clone)]
pub(crate) struct CkptHeaderInfo {
    /// Highest segment sequence number whose effects are included.
    pub(crate) seq: u64,
    pub(crate) ts_counter: u64,
    pub(crate) block_floor: u64,
    pub(crate) list_floor: u64,
    pub(crate) slabs: Vec<SlabInfo>,
}

/// One decoded snapshot slab.
#[derive(Debug, Default)]
pub(crate) struct SlabData {
    pub(crate) blocks: Vec<(BlockId, BlockRecord)>,
    pub(crate) lists: Vec<(ListId, ListRecord)>,
}

fn encode_header(
    seq: u64,
    ts: u64,
    block_floor: u64,
    list_floor: u64,
    snap_shards: u32,
    dir_crc: u32,
) -> [u8; CKPT_HEADER as usize] {
    let mut h = Vec::with_capacity(CKPT_HEADER as usize);
    h.extend_from_slice(&CKPT_MAGIC.to_le_bytes());
    h.extend_from_slice(&seq.to_le_bytes());
    h.extend_from_slice(&ts.to_le_bytes());
    h.extend_from_slice(&block_floor.to_le_bytes());
    h.extend_from_slice(&list_floor.to_le_bytes());
    h.extend_from_slice(&snap_shards.to_le_bytes());
    h.extend_from_slice(&dir_crc.to_le_bytes());
    h.extend_from_slice(&[0u8; 12]); // reserved
    let crc = crc32(&h);
    h.extend_from_slice(&crc.to_le_bytes());
    h.try_into().expect("header is CKPT_HEADER bytes")
}

/// Encodes one shard's persistent tables as a snapshot slab: every
/// block record (40 B each) then every list record (32 B each). Entry
/// order within a slab is unspecified (hash-map iteration); decoding
/// keys every entry by its identifier, so order never matters.
fn encode_slab(tables: &Tables) -> Vec<u8> {
    let mut payload = Vec::with_capacity(
        (tables.blocks.len() as u64 * CKPT_BLOCK_ENTRY
            + tables.lists.len() as u64 * CKPT_LIST_ENTRY) as usize,
    );
    for (id, r) in &tables.blocks {
        payload.extend_from_slice(&id.get().to_le_bytes());
        match r.addr {
            Some(a) => {
                payload.extend_from_slice(&a.segment.get().to_le_bytes());
                payload.extend_from_slice(&a.slot.to_le_bytes());
            }
            None => {
                payload.extend_from_slice(&u32::MAX.to_le_bytes());
                payload.extend_from_slice(&u32::MAX.to_le_bytes());
            }
        }
        payload.extend_from_slice(&BlockId::encode_opt(r.successor).to_le_bytes());
        payload.extend_from_slice(&ListId::encode_opt(r.list).to_le_bytes());
        payload.extend_from_slice(&r.ts.get().to_le_bytes());
    }
    for (id, r) in &tables.lists {
        payload.extend_from_slice(&id.get().to_le_bytes());
        payload.extend_from_slice(&BlockId::encode_opt(r.first).to_le_bytes());
        payload.extend_from_slice(&BlockId::encode_opt(r.last).to_le_bytes());
        payload.extend_from_slice(&r.ts.get().to_le_bytes());
    }
    payload
}

fn encode_dir(dir: &[(u64, u64, u32)]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(dir.len() * CKPT_DIR_ENTRY as usize);
    for &(nb, nl, crc) in dir {
        buf.extend_from_slice(&nb.to_le_bytes());
        buf.extend_from_slice(&nl.to_le_bytes());
        buf.extend_from_slice(&crc.to_le_bytes());
        buf.extend_from_slice(&[0u8; 4]); // padding
    }
    buf
}

impl<D: BlockDevice> LldInner<D> {
    /// Writes a checkpoint of the persistent state.
    ///
    /// Seals the current segment first (so the committed state becomes
    /// persistent and is included), then snapshots the tables into the
    /// alternate checkpoint area.
    ///
    /// # Errors
    ///
    /// Device errors; [`LldError::DiskFull`] if no segment slot is free
    /// for the next segment.
    pub fn checkpoint(&self) -> Result<()> {
        self.with_mutation(|m| m.checkpoint_inner())
    }
}

impl<D: BlockDevice> Mutation<'_, D> {
    /// See [`LldInner::checkpoint`]; also called by the inline cleaner
    /// when its candidate segments are not yet covered.
    pub(crate) fn checkpoint_inner(&mut self) -> Result<()> {
        debug_assert!(self.map.holds_all_shards_write());
        if self.seal_current()? && !self.log().free_slots.is_empty() {
            self.open_segment(0)?;
        }
        // A log-only seal (the flush leader) may have left committed
        // records undrained; every record in the overlay now belongs to
        // a sealed-or-current segment the checkpoint covers, so drain
        // them all before snapshotting the persistent tables.
        self.map.drain_committed();
        let covered = {
            let log = self.log();
            log.builder
                .as_ref()
                .map(|b| b.seq() - 1)
                .unwrap_or(log.next_seq - 1)
        };

        // This full checkpoint supersedes any in-flight incremental
        // one: clear its per-shard snapshot state (the generation bump
        // below makes it abort before writing anything stale).
        let nshards = self.lld.maps.nshards();
        for i in 0..nshards {
            let sh = self.map.shard_mut(i);
            sh.snap_pending = false;
            sh.snap_copy = None;
        }

        // Encode one snapshot slab per shard, in shard order.
        let mut slabs: Vec<Vec<u8>> = Vec::with_capacity(nshards as usize);
        let mut dir: Vec<(u64, u64, u32)> = Vec::with_capacity(nshards as usize);
        let mut total = 0u64;
        for i in 0..nshards {
            let sh = self.map.shard(i);
            let slab = encode_slab(&sh.persistent);
            dir.push((
                sh.persistent.blocks.len() as u64,
                sh.persistent.lists.len() as u64,
                crc32(&slab),
            ));
            total += slab.len() as u64;
            slabs.push(slab);
        }
        if CKPT_HEADER + CKPT_DIR_RESERVE + total > self.lld.layout.ckpt_area_size {
            return Err(LldError::Corrupt(
                "checkpoint exceeds its reserved area".into(),
            ));
        }
        // The stored allocator floors are global: the max over shards.
        // Recovery re-stripes them per shard with `striped_ceil` (the
        // shard count is a runtime knob, not persisted).
        let block_floor = self
            .map
            .shards_held()
            .map(|s| s.next_block_raw)
            .max()
            .unwrap_or(1);
        let list_floor = self
            .map
            .shards_held()
            .map(|s| s.next_list_raw)
            .max()
            .unwrap_or(1);
        let dir_bytes = encode_dir(&dir);
        let header = encode_header(
            covered,
            self.lld.now(),
            block_floor,
            list_floor,
            nshards,
            crc32(&dir_bytes),
        );
        // Lock order: the log mutex is already held (taken above for
        // `covered`); `ckpt_io` is a leaf after it. Hold it across all
        // area writes so the incremental writer can never interleave.
        {
            let mut io = self.lld.ckpt_io.lock();
            let area = if io.use_b {
                self.lld.layout.ckpt_b
            } else {
                self.lld.layout.ckpt_a
            };
            let mut off = area + CKPT_HEADER + CKPT_DIR_RESERVE;
            for slab in &slabs {
                self.lld.device.write_at(off, slab)?;
                off += slab.len() as u64;
            }
            self.lld.device.write_at(area + CKPT_HEADER, &dir_bytes)?;
            self.lld.device.write_at(area, &header)?;
            self.lld.device.flush()?;
            io.use_b = !io.use_b;
            io.gen += 1;
        }
        self.log().checkpoint_seq = covered;
        self.lld.stats.checkpoints.inc();
        self.lld.obs.event(
            self.lld.now(),
            crate::obs::TraceEvent::Checkpoint {
                covered_seq: covered,
                bytes: CKPT_HEADER + CKPT_DIR_RESERVE + total,
            },
        );
        Ok(())
    }
}

/// The in-flight state of one incremental (cleanerd) checkpoint.
struct IncrementalCkpt {
    covered: u64,
    ts: u64,
    block_floor: u64,
    list_floor: u64,
    /// Generation snapshotted at begin; any completed checkpoint bumps
    /// it, aborting this one.
    my_gen: u64,
    /// Absolute offset of the target area.
    area: u64,
    /// Next slab write offset, relative to the slab region.
    next_off: u64,
    dir: Vec<(u64, u64, u32)>,
}

impl<D: BlockDevice + 'static> LldInner<D> {
    /// Writes a checkpoint incrementally: the covered point is chosen
    /// in one short full session, then each shard's snapshot slab is
    /// encoded under only that shard's write lock and written with no
    /// mapping-layer locks held. Returns `false` if another checkpoint
    /// completed mid-flight and this one aborted (harmless: the other
    /// checkpoint is at least as fresh).
    ///
    /// Called by the background cleaner (`cleanerd`) so covering
    /// checkpoints stop being stop-the-world table dumps.
    pub(crate) fn checkpoint_incremental(&self) -> Result<bool> {
        let mut inc = match self.ckpt_inc_begin()? {
            Some(inc) => inc,
            None => return Ok(false),
        };
        for i in 0..self.maps.nshards() {
            match self.ckpt_inc_slab(&mut inc, i) {
                Ok(true) => {}
                Ok(false) => {
                    self.ckpt_inc_cleanup();
                    return Ok(false);
                }
                Err(e) => {
                    self.ckpt_inc_cleanup();
                    return Err(e);
                }
            }
        }
        match self.ckpt_inc_commit(&inc) {
            Ok(done) => Ok(done),
            Err(e) => {
                self.ckpt_inc_cleanup();
                Err(e)
            }
        }
    }

    /// Chooses the covered sequence number, floors, and target area,
    /// and marks every shard `snap_pending` (one full session).
    fn ckpt_inc_begin(&self) -> Result<Option<IncrementalCkpt>> {
        self.with_mutation(|m| {
            if m.seal_current()? && !m.log().free_slots.is_empty() {
                m.open_segment(0)?;
            }
            m.map.drain_committed();
            let covered = {
                let log = m.log();
                log.builder
                    .as_ref()
                    .map(|b| b.seq() - 1)
                    .unwrap_or(log.next_seq - 1)
            };
            let block_floor = m
                .map
                .shards_held()
                .map(|s| s.next_block_raw)
                .max()
                .unwrap_or(1);
            let list_floor = m
                .map
                .shards_held()
                .map(|s| s.next_list_raw)
                .max()
                .unwrap_or(1);
            for i in 0..self.maps.nshards() {
                let sh = m.map.shard_mut(i);
                sh.snap_pending = true;
                sh.snap_copy = None;
            }
            let ts = self.now();
            // Log mutex is held: `ckpt_io` is its leaf.
            let io = self.ckpt_io.lock();
            Ok(Some(IncrementalCkpt {
                covered,
                ts,
                block_floor,
                list_floor,
                my_gen: io.gen,
                area: if io.use_b {
                    self.layout.ckpt_b
                } else {
                    self.layout.ckpt_a
                },
                next_off: 0,
                dir: Vec::with_capacity(self.maps.nshards() as usize),
            }))
        })
    }

    /// Encodes and writes shard `i`'s snapshot slab. Returns `false` on
    /// a generation race (another checkpoint completed; abort).
    fn ckpt_inc_slab(&self, inc: &mut IncrementalCkpt, i: u32) -> Result<bool> {
        // Encode under only this shard's write lock: `snap_copy` (the
        // persistent tables as of the covered point, preserved by
        // copy-on-advance) when a drain has advanced the shard, the
        // live persistent tables otherwise.
        let (slab, nb, nl) = self.with_mutation_at(0, 1u64 << i, |m| {
            let sh = m.map.shard_mut(i);
            let snap = sh.snap_copy.take();
            sh.snap_pending = false;
            let tables = snap.as_ref().unwrap_or(&sh.persistent);
            (
                encode_slab(tables),
                tables.blocks.len() as u64,
                tables.lists.len() as u64,
            )
        });
        if CKPT_HEADER + CKPT_DIR_RESERVE + inc.next_off + slab.len() as u64
            > self.layout.ckpt_area_size
        {
            return Err(LldError::Corrupt(
                "checkpoint exceeds its reserved area".into(),
            ));
        }
        // No mapping-layer or log locks are held here; `ckpt_io` alone
        // serializes area access. Check the generation *under* it so a
        // completed full checkpoint can never be scribbled over.
        let io = self.ckpt_io.lock();
        if io.gen != inc.my_gen {
            return Ok(false);
        }
        self.device.write_at(
            inc.area + CKPT_HEADER + CKPT_DIR_RESERVE + inc.next_off,
            &slab,
        )?;
        drop(io);
        inc.dir.push((nb, nl, crc32(&slab)));
        inc.next_off += slab.len() as u64;
        Ok(true)
    }

    /// Writes the directory and header (header last), flushes, and
    /// publishes the new checkpoint. Returns `false` on a generation
    /// race.
    fn ckpt_inc_commit(&self, inc: &IncrementalCkpt) -> Result<bool> {
        let dir_bytes = encode_dir(&inc.dir);
        let header = encode_header(
            inc.covered,
            inc.ts,
            inc.block_floor,
            inc.list_floor,
            inc.dir.len() as u32,
            crc32(&dir_bytes),
        );
        // Lock order: log before its `ckpt_io` leaf.
        let mut log = self.log.lock();
        let mut io = self.ckpt_io.lock();
        if io.gen != inc.my_gen {
            return Ok(false);
        }
        self.device.write_at(inc.area + CKPT_HEADER, &dir_bytes)?;
        self.device.write_at(inc.area, &header)?;
        self.device.flush()?;
        io.use_b = inc.area == self.layout.ckpt_a;
        io.gen += 1;
        drop(io);
        log.checkpoint_seq = inc.covered;
        drop(log);
        self.stats.checkpoints.inc();
        self.obs.event(
            self.now(),
            crate::obs::TraceEvent::Checkpoint {
                covered_seq: inc.covered,
                bytes: CKPT_HEADER + CKPT_DIR_RESERVE + inc.next_off,
            },
        );
        Ok(true)
    }

    /// Clears any leftover per-shard snapshot state after an abort or
    /// error (idempotent; one short scoped session per shard).
    fn ckpt_inc_cleanup(&self) {
        for i in 0..self.maps.nshards() {
            self.with_mutation_at(0, 1u64 << i, |m| {
                let sh = m.map.shard_mut(i);
                sh.snap_pending = false;
                sh.snap_copy = None;
            });
        }
    }
}

/// Reads and validates one area's header and slab directory, resolving
/// each slab's absolute offset. `None` if the area holds no valid
/// checkpoint (bad magic, CRC, or geometry).
pub(crate) fn read_header_dir<D: BlockDevice>(
    device: &D,
    layout: &Layout,
    area: u64,
) -> Result<Option<CkptHeaderInfo>> {
    let mut header = [0u8; CKPT_HEADER as usize];
    device.read_at(area, &mut header)?;
    let stored = u32::from_le_bytes(header[60..64].try_into().expect("4 bytes"));
    if crc32(&header[..60]) != stored {
        return Ok(None);
    }
    if u64::from_le_bytes(header[0..8].try_into().expect("8 bytes")) != CKPT_MAGIC {
        return Ok(None);
    }
    let seq = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    let ts_counter = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
    let block_floor = u64::from_le_bytes(header[24..32].try_into().expect("8 bytes"));
    let list_floor = u64::from_le_bytes(header[32..40].try_into().expect("8 bytes"));
    let snap_shards = u32::from_le_bytes(header[40..44].try_into().expect("4 bytes"));
    let dir_crc = u32::from_le_bytes(header[44..48].try_into().expect("4 bytes"));
    if snap_shards == 0 || u64::from(snap_shards) > MAX_SNAP_SHARDS {
        return Ok(None);
    }
    let mut dir_bytes = vec![0u8; snap_shards as usize * CKPT_DIR_ENTRY as usize];
    device.read_at(area + CKPT_HEADER, &mut dir_bytes)?;
    if crc32(&dir_bytes) != dir_crc {
        return Ok(None);
    }
    let mut slabs = Vec::with_capacity(snap_shards as usize);
    let mut off = area + CKPT_HEADER + CKPT_DIR_RESERVE;
    let end = area + layout.ckpt_area_size;
    for e in 0..snap_shards as usize {
        let p = e * CKPT_DIR_ENTRY as usize;
        let info = SlabInfo {
            offset: off,
            n_blocks: u64::from_le_bytes(dir_bytes[p..p + 8].try_into().expect("8 bytes")),
            n_lists: u64::from_le_bytes(dir_bytes[p + 8..p + 16].try_into().expect("8 bytes")),
            crc: u32::from_le_bytes(dir_bytes[p + 16..p + 20].try_into().expect("4 bytes")),
        };
        let Some(next) = off.checked_add(info.len()) else {
            return Ok(None);
        };
        if next > end {
            return Ok(None);
        }
        off = next;
        slabs.push(info);
    }
    Ok(Some(CkptHeaderInfo {
        seq,
        ts_counter,
        block_floor,
        list_floor,
        slabs,
    }))
}

/// Reads and decodes one snapshot slab. `None` on a CRC mismatch (the
/// whole area must then be considered invalid).
///
/// # Errors
///
/// [`LldError::Corrupt`] on a zero identifier (a CRC-valid slab can
/// never contain one), or device errors.
pub(crate) fn decode_slab<D: BlockDevice + ?Sized>(
    device: &D,
    slab: &SlabInfo,
) -> Result<Option<SlabData>> {
    let mut payload = vec![0u8; slab.len() as usize];
    device.read_at(slab.offset, &mut payload)?;
    if crc32(&payload) != slab.crc {
        return Ok(None);
    }
    let mut out = SlabData {
        blocks: Vec::with_capacity(slab.n_blocks as usize),
        lists: Vec::with_capacity(slab.n_lists as usize),
    };
    let mut pos = 0usize;
    let u64at =
        |buf: &[u8], p: usize| u64::from_le_bytes(buf[p..p + 8].try_into().expect("8 bytes"));
    let u32at =
        |buf: &[u8], p: usize| u32::from_le_bytes(buf[p..p + 4].try_into().expect("4 bytes"));
    for _ in 0..slab.n_blocks {
        let id = u64at(&payload, pos);
        let seg = u32at(&payload, pos + 8);
        let slot = u32at(&payload, pos + 12);
        let succ = u64at(&payload, pos + 16);
        let list = u64at(&payload, pos + 24);
        let ts = u64at(&payload, pos + 32);
        pos += CKPT_BLOCK_ENTRY as usize;
        if id == 0 {
            return Err(LldError::Corrupt("zero block id in checkpoint".into()));
        }
        out.blocks.push((
            BlockId::new(id),
            BlockRecord {
                allocated: true,
                addr: (seg != u32::MAX).then(|| PhysAddr {
                    segment: SegmentId::new(seg),
                    slot,
                }),
                successor: BlockId::decode_opt(succ),
                list: ListId::decode_opt(list),
                ts: Timestamp::new(ts),
            },
        ));
    }
    for _ in 0..slab.n_lists {
        let id = u64at(&payload, pos);
        let first = u64at(&payload, pos + 8);
        let last = u64at(&payload, pos + 16);
        let ts = u64at(&payload, pos + 24);
        pos += CKPT_LIST_ENTRY as usize;
        if id == 0 {
            return Err(LldError::Corrupt("zero list id in checkpoint".into()));
        }
        out.lists.push((
            ListId::new(id),
            ListRecord {
                allocated: true,
                first: BlockId::decode_opt(first),
                last: BlockId::decode_opt(last),
                ts: Timestamp::new(ts),
            },
        ));
    }
    Ok(Some(out))
}
