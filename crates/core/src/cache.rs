//! An LRU cache of data blocks, keyed by physical address.
//!
//! The paper's Minix file system sits on a buffer cache; without one,
//! every inode or directory read-modify-write would pay a disk read.
//! Keying by *physical* address makes consistency trivial in a
//! log-structured disk: a physical block is never overwritten in place,
//! so an entry can only go stale when the cleaner frees its segment —
//! [`BlockCache::invalidate_segment`] handles that single case.

use crate::types::{PhysAddr, SegmentId};
use std::collections::{BTreeMap, HashMap};

#[derive(Debug)]
pub(crate) struct BlockCache {
    capacity: usize,
    map: HashMap<PhysAddr, (u64, Vec<u8>)>,
    order: BTreeMap<u64, PhysAddr>,
    tick: u64,
}

impl BlockCache {
    pub(crate) fn new(capacity: usize) -> Self {
        BlockCache {
            capacity,
            map: HashMap::new(),
            order: BTreeMap::new(),
            tick: 0,
        }
    }

    /// Copies the cached block into `buf` and refreshes its recency.
    /// Returns `false` on a miss.
    pub(crate) fn get(&mut self, addr: PhysAddr, buf: &mut [u8]) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let Some((stamp, data)) = self.map.get_mut(&addr) else {
            return false;
        };
        buf.copy_from_slice(data);
        let old = *stamp;
        self.tick += 1;
        *stamp = self.tick;
        self.order.remove(&old);
        self.order.insert(self.tick, addr);
        true
    }

    /// Inserts (or refreshes) a block, evicting the least recently used
    /// entry if full.
    pub(crate) fn insert(&mut self, addr: PhysAddr, data: &[u8]) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if let Some((old, existing)) = self.map.get_mut(&addr) {
            self.order.remove(&{ *old });
            *old = self.tick;
            existing.clear();
            existing.extend_from_slice(data);
            self.order.insert(self.tick, addr);
            return;
        }
        if self.map.len() >= self.capacity {
            if let Some((&oldest, &victim)) = self.order.iter().next() {
                self.order.remove(&oldest);
                self.map.remove(&victim);
            }
        }
        self.map.insert(addr, (self.tick, data.to_vec()));
        self.order.insert(self.tick, addr);
    }

    /// Drops every entry whose address lies in `segment` (called when a
    /// cleaned segment slot is reused).
    pub(crate) fn invalidate_segment(&mut self, segment: SegmentId) {
        let stale: Vec<PhysAddr> = self
            .map
            .keys()
            .filter(|a| a.segment == segment)
            .copied()
            .collect();
        for addr in stale {
            if let Some((stamp, _)) = self.map.remove(&addr) {
                self.order.remove(&stamp);
            }
        }
    }

    #[allow(dead_code)] // used by tests
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(seg: u32, slot: u32) -> PhysAddr {
        PhysAddr {
            segment: SegmentId::new(seg),
            slot,
        }
    }

    #[test]
    fn hit_and_miss() {
        let mut c = BlockCache::new(4);
        let mut buf = [0u8; 4];
        assert!(!c.get(addr(0, 0), &mut buf));
        c.insert(addr(0, 0), &[1, 2, 3, 4]);
        assert!(c.get(addr(0, 0), &mut buf));
        assert_eq!(buf, [1, 2, 3, 4]);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = BlockCache::new(2);
        c.insert(addr(0, 0), &[0]);
        c.insert(addr(0, 1), &[1]);
        // Touch entry 0 so entry 1 becomes the victim.
        let mut buf = [0u8; 1];
        assert!(c.get(addr(0, 0), &mut buf));
        c.insert(addr(0, 2), &[2]);
        assert_eq!(c.len(), 2);
        assert!(c.get(addr(0, 0), &mut buf));
        assert!(!c.get(addr(0, 1), &mut buf));
        assert!(c.get(addr(0, 2), &mut buf));
    }

    #[test]
    fn reinsert_updates_data() {
        let mut c = BlockCache::new(2);
        c.insert(addr(1, 0), &[9]);
        c.insert(addr(1, 0), &[7]);
        assert_eq!(c.len(), 1);
        let mut buf = [0u8; 1];
        assert!(c.get(addr(1, 0), &mut buf));
        assert_eq!(buf, [7]);
    }

    #[test]
    fn segment_invalidation() {
        let mut c = BlockCache::new(8);
        c.insert(addr(3, 0), &[1]);
        c.insert(addr(3, 1), &[2]);
        c.insert(addr(4, 0), &[3]);
        c.invalidate_segment(SegmentId::new(3));
        let mut buf = [0u8; 1];
        assert!(!c.get(addr(3, 0), &mut buf));
        assert!(!c.get(addr(3, 1), &mut buf));
        assert!(c.get(addr(4, 0), &mut buf));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = BlockCache::new(0);
        c.insert(addr(0, 0), &[1]);
        let mut buf = [0u8; 1];
        assert!(!c.get(addr(0, 0), &mut buf));
        assert_eq!(c.len(), 0);
    }
}
