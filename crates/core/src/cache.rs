//! An LRU cache of data blocks, keyed by physical address.
//!
//! The paper's Minix file system sits on a buffer cache; without one,
//! every inode or directory read-modify-write would pay a disk read.
//! Keying by *physical* address makes consistency trivial in a
//! log-structured disk: a physical block is never overwritten in place,
//! so an entry can only go stale when the cleaner frees its segment —
//! [`BlockCache::invalidate_segment`] handles that single case.

use crate::types::{PhysAddr, SegmentId};
use std::collections::{BTreeMap, HashMap, HashSet};

#[derive(Debug)]
pub(crate) struct BlockCache {
    capacity: usize,
    map: HashMap<PhysAddr, (u64, Vec<u8>)>,
    order: BTreeMap<u64, PhysAddr>,
    /// Reverse index: the cached addresses living in each segment, so
    /// invalidating a reused segment costs O(entries in that segment),
    /// not a scan of the whole cache.
    by_segment: HashMap<SegmentId, HashSet<PhysAddr>>,
    tick: u64,
}

impl BlockCache {
    pub(crate) fn new(capacity: usize) -> Self {
        BlockCache {
            capacity,
            map: HashMap::new(),
            order: BTreeMap::new(),
            by_segment: HashMap::new(),
            tick: 0,
        }
    }

    /// Removes `addr` from the reverse index, dropping the segment's
    /// set when it empties (so the index never outgrows the cache).
    fn unindex(&mut self, addr: PhysAddr) {
        if let Some(set) = self.by_segment.get_mut(&addr.segment) {
            set.remove(&addr);
            if set.is_empty() {
                self.by_segment.remove(&addr.segment);
            }
        }
    }

    /// Copies the cached block into `buf` and refreshes its recency.
    /// Returns `false` on a miss.
    pub(crate) fn get(&mut self, addr: PhysAddr, buf: &mut [u8]) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let Some((stamp, data)) = self.map.get_mut(&addr) else {
            return false;
        };
        buf.copy_from_slice(data);
        let old = *stamp;
        self.tick += 1;
        *stamp = self.tick;
        self.order.remove(&old);
        self.order.insert(self.tick, addr);
        true
    }

    /// Inserts (or refreshes) a block, evicting the least recently used
    /// entry if full.
    pub(crate) fn insert(&mut self, addr: PhysAddr, data: &[u8]) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if let Some((old, existing)) = self.map.get_mut(&addr) {
            self.order.remove(&{ *old });
            *old = self.tick;
            existing.clear();
            existing.extend_from_slice(data);
            self.order.insert(self.tick, addr);
            return;
        }
        if self.map.len() >= self.capacity {
            if let Some((&oldest, &victim)) = self.order.iter().next() {
                self.order.remove(&oldest);
                self.map.remove(&victim);
                self.unindex(victim);
            }
        }
        self.map.insert(addr, (self.tick, data.to_vec()));
        self.order.insert(self.tick, addr);
        self.by_segment
            .entry(addr.segment)
            .or_default()
            .insert(addr);
    }

    /// Drops every entry whose address lies in `segment` (called when a
    /// cleaned segment slot is reused). O(entries in that segment) via
    /// the reverse index.
    pub(crate) fn invalidate_segment(&mut self, segment: SegmentId) {
        let Some(stale) = self.by_segment.remove(&segment) else {
            return;
        };
        for addr in stale {
            if let Some((stamp, _)) = self.map.remove(&addr) {
                self.order.remove(&stamp);
            }
        }
    }

    #[allow(dead_code)] // used by tests
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(seg: u32, slot: u32) -> PhysAddr {
        PhysAddr {
            segment: SegmentId::new(seg),
            slot,
        }
    }

    #[test]
    fn hit_and_miss() {
        let mut c = BlockCache::new(4);
        let mut buf = [0u8; 4];
        assert!(!c.get(addr(0, 0), &mut buf));
        c.insert(addr(0, 0), &[1, 2, 3, 4]);
        assert!(c.get(addr(0, 0), &mut buf));
        assert_eq!(buf, [1, 2, 3, 4]);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = BlockCache::new(2);
        c.insert(addr(0, 0), &[0]);
        c.insert(addr(0, 1), &[1]);
        // Touch entry 0 so entry 1 becomes the victim.
        let mut buf = [0u8; 1];
        assert!(c.get(addr(0, 0), &mut buf));
        c.insert(addr(0, 2), &[2]);
        assert_eq!(c.len(), 2);
        assert!(c.get(addr(0, 0), &mut buf));
        assert!(!c.get(addr(0, 1), &mut buf));
        assert!(c.get(addr(0, 2), &mut buf));
    }

    #[test]
    fn reinsert_updates_data() {
        let mut c = BlockCache::new(2);
        c.insert(addr(1, 0), &[9]);
        c.insert(addr(1, 0), &[7]);
        assert_eq!(c.len(), 1);
        let mut buf = [0u8; 1];
        assert!(c.get(addr(1, 0), &mut buf));
        assert_eq!(buf, [7]);
    }

    #[test]
    fn segment_invalidation() {
        let mut c = BlockCache::new(8);
        c.insert(addr(3, 0), &[1]);
        c.insert(addr(3, 1), &[2]);
        c.insert(addr(4, 0), &[3]);
        c.invalidate_segment(SegmentId::new(3));
        let mut buf = [0u8; 1];
        assert!(!c.get(addr(3, 0), &mut buf));
        assert!(!c.get(addr(3, 1), &mut buf));
        assert!(c.get(addr(4, 0), &mut buf));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn interleaved_insert_evict_invalidate_keeps_index_consistent() {
        let mut c = BlockCache::new(2);
        let mut buf = [0u8; 1];
        // Fill, then evict the LRU entry (seg 3 slot 0) by inserting a
        // third address: the reverse index must forget the victim.
        c.insert(addr(3, 0), &[1]);
        c.insert(addr(3, 1), &[2]);
        c.insert(addr(4, 0), &[3]);
        assert_eq!(c.len(), 2);
        // Invalidating seg 3 must drop exactly the surviving seg-3
        // entry, not resurrect or double-free the evicted one.
        c.invalidate_segment(SegmentId::new(3));
        assert_eq!(c.len(), 1);
        assert!(!c.get(addr(3, 0), &mut buf));
        assert!(!c.get(addr(3, 1), &mut buf));
        assert!(c.get(addr(4, 0), &mut buf));
        // Reuse the invalidated segment: new entries index cleanly and
        // a second invalidation sees only them.
        c.insert(addr(3, 0), &[7]);
        c.insert(addr(3, 1), &[8]); // evicts seg 4 slot 0
        assert!(!c.get(addr(4, 0), &mut buf));
        c.invalidate_segment(SegmentId::new(4)); // nothing left there
        assert_eq!(c.len(), 2);
        c.invalidate_segment(SegmentId::new(3));
        assert_eq!(c.len(), 0);
        assert!(c.order.is_empty());
        assert!(c.by_segment.is_empty());
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = BlockCache::new(0);
        c.insert(addr(0, 0), &[1]);
        let mut buf = [0u8; 1];
        assert!(!c.get(addr(0, 0), &mut buf));
        assert_eq!(c.len(), 0);
    }
}
