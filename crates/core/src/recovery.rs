//! Crash recovery: rebuild the tables from checkpoint + segment scan.
//!
//! Recovery is always to the most recent *persistent* state (§3.1): the
//! newest valid checkpoint is loaded, every valid segment with a larger
//! sequence number is replayed in log order, and records tagged with an
//! ARU take effect only at that ARU's commit record — ARUs whose commit
//! record never reached disk are discarded wholesale, and blocks they
//! allocated (allocation is always committed) are reclaimed by the
//! consistency check.
//!
//! The shard count is a runtime knob, not an on-disk property: the
//! checkpoint stores global allocator floors, and
//! [`Maps::from_tables`] redistributes the recovered records and
//! re-stripes the allocators for whatever shard count this process
//! runs with.

use crate::aru::ListOp;
use crate::checkpoint;
use crate::cleanerd::Cleanerd;
use crate::config::{LldConfig, MAX_MAP_SHARDS};
use crate::error::{LldError, Result};
use crate::gc::GroupCommit;
use crate::layout::Layout;
use crate::lld::{Lld, LldInner, LogState, Mutation, StateRef};
use crate::obs::Obs;
use crate::segment::{scan_segment, SegmentInfo, SegmentScan};
use crate::shard::Maps;
use crate::state::{BlockRecord, ListRecord, Tables};
use crate::summary::Record;
use crate::types::{BlockId, PhysAddr, Position, SegmentId, Timestamp};
use ld_disk::BlockDevice;
use ld_disk::Mutex;
use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// What recovery found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct RecoveryReport {
    /// Sequence number of the checkpoint recovery started from (0 =
    /// none; the whole log was scanned).
    pub checkpoint_seq: u64,
    /// Segment slots examined.
    pub segments_scanned: u32,
    /// Valid segments replayed (sequence numbers above the checkpoint).
    pub segments_replayed: u32,
    /// Slots holding a valid header but a summary that fails its
    /// checksum — the signature of a segment write torn by the crash.
    /// Such segments are treated as never written.
    pub torn_tails_detected: u32,
    /// Summary records applied (committed effects).
    pub records_applied: u64,
    /// ARUs whose commit record was found (their records were applied).
    pub committed_arus: u64,
    /// ARUs discarded because their commit record never reached disk.
    pub discarded_arus: u64,
    /// Records belonging to discarded ARUs.
    pub discarded_records: u64,
    /// Valid segments ignored because of a gap in the sequence chain
    /// (0 in any state a crash can produce).
    pub ignored_after_gap: u32,
    /// Orphaned blocks freed by the post-recovery consistency check.
    pub orphan_blocks_freed: usize,
}

impl<D: BlockDevice + 'static> Lld<D> {
    /// Recovers a logical disk from `device`, using the semantic modes
    /// stored in its superblock and default runtime options.
    ///
    /// # Errors
    ///
    /// [`LldError::Corrupt`] if the device holds no valid superblock or
    /// the log is internally inconsistent; device errors.
    pub fn recover(device: D) -> Result<(Self, RecoveryReport)> {
        let (layout, concurrency, visibility) = LldInner::read_superblock(&device)?;
        let config = LldConfig {
            block_size: layout.block_size,
            segment_bytes: layout.segment_bytes,
            concurrency,
            visibility,
            ..LldConfig::default()
        };
        Self::recover_inner(device, layout, config)
    }

    /// Recovers with explicit runtime options (concurrency mode, read
    /// visibility, cleaner tuning, shard count, `check_on_recovery`).
    /// Structural parameters (block size, segment size, limits) always
    /// come from the superblock.
    ///
    /// # Errors
    ///
    /// As for [`Lld::recover`].
    pub fn recover_with(device: D, config: &LldConfig) -> Result<(Self, RecoveryReport)> {
        let (layout, _, _) = LldInner::read_superblock(&device)?;
        Self::recover_inner(device, layout, config.clone())
    }

    fn recover_inner(
        device: D,
        layout: Layout,
        config: LldConfig,
    ) -> Result<(Self, RecoveryReport)> {
        if !config.map_shards.is_power_of_two() || config.map_shards > MAX_MAP_SHARDS {
            return Err(LldError::Config(format!(
                "map_shards {} must be a power of two in 1..={MAX_MAP_SHARDS}",
                config.map_shards
            )));
        }
        let n = layout.n_segments as usize;
        let mut report = RecoveryReport::default();

        // Load the newest checkpoint, if any.
        let (ckpt, use_b_next) = checkpoint::load_latest(&device, &layout)?;
        let (tables, mut ts_counter, next_block_raw, next_list_raw, ckpt_seq) = match ckpt {
            Some(c) => (
                c.tables,
                c.ts_counter,
                c.next_block_raw,
                c.next_list_raw,
                c.seq,
            ),
            None => (Tables::default(), 0, 1, 1, 0),
        };
        report.checkpoint_seq = ckpt_seq;

        for t in tables.blocks.values().map(|r| r.ts.get()) {
            ts_counter = ts_counter.max(t);
        }
        for t in tables.lists.values().map(|r| r.ts.get()) {
            ts_counter = ts_counter.max(t);
        }

        // Distribute the checkpoint tables to their owning shards; the
        // stored floors are global and get re-striped per shard (then
        // raised past every id actually present).
        let maps = Maps::from_tables(config.map_shards, tables, next_block_raw, next_list_raw);

        let mut log = LogState::fresh(n);
        log.free_slots.clear();
        log.checkpoint_seq = ckpt_seq;
        log.ckpt_use_b = use_b_next;

        let ld = Lld::from_inner(LldInner {
            device: crate::lld::DevicePath::new(device, config.pipeline),
            layout,
            concurrency: config.concurrency,
            visibility: config.visibility,
            cleaner_cfg: config.cleaner,
            maps,
            log: Mutex::new(log),
            cache: Mutex::new(crate::cache::BlockCache::new(config.read_cache_blocks)),
            gc: GroupCommit::new(),
            ts_counter: AtomicU64::new(ts_counter),
            free_slots_hint: AtomicU64::new(0),
            needs_clean: AtomicBool::new(false),
            stats: Default::default(),
            obs: Obs::new(config.obs),
            cleanerd: Cleanerd::new(),
            sampler: crate::sampler::Sampler::new(),
            flight: config
                .flight_dir
                .clone()
                .map(crate::flight::FlightRecorder::new),
        });
        ld.install_pipe_observer();

        ld.with_mutation(|m| -> Result<()> {
            // Initialise live-block accounting from the checkpoint tables.
            let addrs: Vec<(BlockId, PhysAddr)> = m
                .map
                .shards_held()
                .flat_map(|s| {
                    s.persistent
                        .blocks
                        .iter()
                        .filter_map(|(&id, r)| r.addr.map(|a| (id, a)))
                })
                .collect();
            for (id, a) in addrs {
                m.adjust_addr(id, None, Some(a));
            }

            // Scan every slot for valid sealed segments.
            let mut chain: Vec<SegmentInfo> = Vec::new();
            let mut max_seq_seen = ckpt_seq;
            let mut ts_max = 0u64;
            for slot in 0..m.lld.layout.n_segments {
                report.segments_scanned += 1;
                match scan_segment(&m.lld.device, &m.lld.layout, SegmentId::new(slot))? {
                    SegmentScan::Valid(info) => {
                        m.log().slot_seq[slot as usize] = info.seq;
                        max_seq_seen = max_seq_seen.max(info.seq);
                        if info.seq > ckpt_seq {
                            chain.push(info);
                        }
                    }
                    SegmentScan::Torn => report.torn_tails_detected += 1,
                    SegmentScan::None => {}
                }
            }
            chain.sort_by_key(|i| i.seq);

            // Replay the contiguous chain above the checkpoint.
            let mut expected = ckpt_seq + 1;
            let mut replayed_slots: HashSet<u32> = HashSet::new();
            let mut pending: BTreeMap<u64, Vec<(SegmentId, Record)>> = BTreeMap::new();
            for info in &chain {
                if info.seq != expected {
                    if info.seq < expected {
                        return Err(LldError::Corrupt(format!(
                            "duplicate segment sequence number {}",
                            info.seq
                        )));
                    }
                    report.ignored_after_gap += 1;
                    continue;
                }
                expected += 1;
                report.segments_replayed += 1;
                replayed_slots.insert(info.slot.get());
                for rec in &info.records {
                    ts_max = ts_max.max(rec.ts().get());
                    match rec.aru_tag() {
                        Some(aru) => {
                            pending
                                .entry(aru.get())
                                .or_default()
                                .push((info.slot, rec.clone()));
                        }
                        None => {
                            if let Record::Commit { aru, ts } = rec {
                                let actions = pending.remove(&aru.get()).unwrap_or_default();
                                report.committed_arus += 1;
                                for (slot, action) in actions {
                                    m.replay_record(slot, &action, Some(*ts))?;
                                    report.records_applied += 1;
                                }
                            } else {
                                m.replay_record(info.slot, rec, None)?;
                                report.records_applied += 1;
                            }
                        }
                    }
                }
            }
            // Whatever is still pending belongs to ARUs that never
            // committed: discard (§3.3 — "the disk system undoes their
            // operations").
            report.discarded_arus = pending.len() as u64;
            report.discarded_records = pending.values().map(|v| v.len() as u64).sum();
            drop(pending);

            // Everything replayed is persistent.
            m.map.drain_committed();
            let nb: u64 = m
                .map
                .shards_held()
                .map(|s| s.persistent.blocks.len() as u64)
                .sum();
            let nl: u64 = m
                .map
                .shards_held()
                .map(|s| s.persistent.lists.len() as u64)
                .sum();
            m.lld.maps.allocated_blocks.store(nb, Ordering::Relaxed);
            m.lld.maps.allocated_lists.store(nl, Ordering::Relaxed);
            m.lld.raise_clock(ts_max);
            m.log().next_seq = max_seq_seen + 1;

            // Slot accounting: a slot stays in use if it is part of the
            // replayed chain (its records are needed until the next
            // checkpoint) or still holds live blocks; everything else is
            // free.
            for slot in 0..m.lld.layout.n_segments {
                let used = replayed_slots.contains(&slot) || m.log().live_count[slot as usize] > 0;
                if !used {
                    m.log().slot_seq[slot as usize] = 0;
                    m.log().free_slots.insert(slot);
                }
            }
            m.sync_free_hint();
            m.open_segment(0)?;
            Ok(())
        })?;

        if config.check_on_recovery {
            let check = ld.check()?;
            report.orphan_blocks_freed = check.orphan_blocks_freed.len();
        }
        ld.obs.recovery_done(ld.now(), &report);
        crate::cleanerd::spawn_if_configured(&ld);
        crate::sampler::spawn_if_configured(&ld, config.metrics_hz);
        Ok((ld, report))
    }
}

impl<D: BlockDevice> Mutation<'_, D> {
    /// Applies one summary record to the committed state during
    /// recovery. `commit_ts` overrides the record timestamp for records
    /// applied at their ARU's commit point (EndARU serialization).
    fn replay_record(
        &mut self,
        seg: SegmentId,
        rec: &Record,
        commit_ts: Option<Timestamp>,
    ) -> Result<()> {
        let corrupt = |msg: String| LldError::Corrupt(format!("replaying {seg}: {msg}"));
        let nshards = u64::from(self.lld.maps.nshards());
        match *rec {
            Record::NewBlock { block, ts } => {
                let sh = self.map.block_shard_mut(block);
                sh.committed.blocks.insert(block, BlockRecord::fresh(ts));
                sh.note_block_id(block.get(), nshards);
                Ok(())
            }
            Record::NewList { list, ts } => {
                let sh = self.map.list_shard_mut(list);
                sh.committed.lists.insert(list, ListRecord::fresh(ts));
                sh.note_list_id(list.get(), nshards);
                Ok(())
            }
            Record::Write {
                block, slot, ts, ..
            } => {
                let ts = commit_ts.unwrap_or(ts);
                let addr = PhysAddr { segment: seg, slot };
                if self
                    .map
                    .committed_view_block(block)
                    .is_none_or(|r| !r.allocated)
                {
                    return Err(corrupt(format!("write to unallocated {block}")));
                }
                let old = self.map.committed_view_block(block).and_then(|r| r.addr);
                self.adjust_addr(block, old, Some(addr));
                let r = self.block_mut(StateRef::Committed, block)?;
                r.addr = Some(addr);
                r.ts = ts;
                Ok(())
            }
            Record::Link {
                list,
                block,
                pred,
                ts,
                ..
            } => {
                let ts = commit_ts.unwrap_or(ts);
                let pos = match pred {
                    None => Position::First,
                    Some(p) => Position::After(p),
                };
                self.insert_into_list(StateRef::Committed, list, block, pos, ts)
                    .map_err(|e| corrupt(e.to_string()))
            }
            Record::DeleteBlock { block, ts, .. } => {
                let ts = commit_ts.unwrap_or(ts);
                let mut fb = Vec::new();
                let mut fl = Vec::new();
                self.apply_list_op(
                    StateRef::Committed,
                    &ListOp::DeleteBlock { block },
                    ts,
                    &mut fb,
                    &mut fl,
                )
                .map_err(|e| corrupt(e.to_string()))?;
                self.release_ids(fb, fl);
                Ok(())
            }
            Record::DeleteList { list, ts, .. } => {
                let ts = commit_ts.unwrap_or(ts);
                let mut fb = Vec::new();
                let mut fl = Vec::new();
                self.apply_list_op(
                    StateRef::Committed,
                    &ListOp::DeleteList { list },
                    ts,
                    &mut fb,
                    &mut fl,
                )
                .map_err(|e| corrupt(e.to_string()))?;
                self.release_ids(fb, fl);
                Ok(())
            }
            Record::Commit { .. } => Err(corrupt("nested commit record".into())),
        }
    }
}
