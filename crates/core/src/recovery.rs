//! Crash recovery: rebuild the tables from checkpoint + segment scan.
//!
//! Recovery is always to the most recent *persistent* state (§3.1): the
//! newest valid checkpoint is loaded, every valid segment with a larger
//! sequence number is replayed in log order, and records tagged with an
//! ARU take effect only at that ARU's commit record — ARUs whose commit
//! record never reached disk are discarded wholesale, and blocks they
//! allocated (allocation is always committed) are reclaimed by the
//! consistency check.
//!
//! The shard count is a runtime knob, not an on-disk property: the
//! checkpoint stores global allocator floors, and
//! [`Maps::from_tables`] redistributes the recovered records and
//! re-stripes the allocators for whatever shard count this process
//! runs with.
//!
//! # Parallel restart
//!
//! Recovery runs in four phases, each a traced stage
//! (`recovery_snapshot_load` / `recovery_scan` / `recovery_replay` /
//! `recovery_finalize`) with its wall time in the [`RecoveryReport`]:
//!
//! 1. **Snapshot load** — the newest valid checkpoint's per-shard
//!    slabs are CRC-checked and decoded fanned out across the worker
//!    pool, then distributed into [`REPLAY_PARTS`] fixed partitions
//!    striped by identifier.
//! 2. **Scan** — segment summaries are probed across the pool, then a
//!    serial pass orders the suffix chain.
//! 3. **Replay** — the coordinator walks the chain in log order and
//!    routes records to workers; each worker owns a disjoint set of
//!    partitions and applies its records with no cross-thread locking
//!    (channel order preserves per-partition FIFO).
//!
//!    Identifier striping alone would make almost every `Link` record
//!    span partitions (a list and the blocks on it have unrelated
//!    identifiers), so routing is by *connectivity*: the coordinator
//!    assigns every identifier a **home** partition, union-finds each
//!    ARU batch so a list and the blocks linked to it share one home,
//!    and ships each connected component to its home's worker. Records
//!    whose touch set cannot be known from the record alone —
//!    deletions, which walk lists — and component merges that must
//!    move already-placed state between partitions are applied by the
//!    coordinator at a **fence**: every worker acknowledges its queue
//!    is drained, the coordinator applies (or migrates) against all
//!    partitions, and routing resumes. Two routed records can depend
//!    on each other only through a shared identifier, which gives them
//!    one home, so per-home FIFO plus total fence order reproduces the
//!    serial replay exactly.
//! 4. **Finalize** — partitions are drained and merged (ids live in
//!    exactly one partition by the home invariant), live-segment
//!    accounting is computed from the final block addresses, and the
//!    maps are re-sharded for this process's shard count.
//!
//! The worker count comes from [`LldConfig::recovery_threads`]
//! (`LD_ARU_RECOVERY_THREADS`); at 1, replay applies records inline
//! against all partitions in one pass — the reference semantics the
//! parallel path is tested against.

use crate::checkpoint::{self, CkptHeaderInfo, CkptSlots};
use crate::cleanerd::Cleanerd;
use crate::config::{LldConfig, MAX_MAP_SHARDS, MAX_RECOVERY_THREADS};
use crate::error::{LldError, Result};
use crate::gc::GroupCommit;
use crate::layout::Layout;
use crate::lld::{Lld, LldInner, LogState};
use crate::obs::{recovery_trace, Obs, Stage};
use crate::segment::{scan_segment_above, SegmentInfo, SegmentScan};
use crate::shard::Maps;
use crate::state::{BlockRecord, ListRecord, StateOverlay, Tables};
use crate::summary::Record;
use crate::types::{BlockId, ListId, PhysAddr, Position, SegmentId, Timestamp};
use ld_disk::{BlockDevice, Mutex};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::Instant;

/// Number of fixed replay partitions. An identifier's *stripe* is
/// `raw & (REPLAY_PARTS - 1)`: where checkpoint snapshot entries are
/// placed, and the default home for identifiers the connectivity
/// router has not (re)assigned.
const REPLAY_PARTS: usize = 64;
const REPLAY_PART_MASK: u64 = REPLAY_PARTS as u64 - 1;

/// Routed records buffered per partition before being shipped to the
/// owning worker.
const REPLAY_BATCH: usize = 64;

/// Home-map sentinel for an identifier whose lone allocation record is
/// parked in limbo: the identifier exists in the log but its entries
/// are nowhere yet, so it can still adopt any home. Folding this into
/// the home map keeps routing at one probe per identifier.
const PARKED: usize = usize::MAX;

/// Namespace-tagged identifier keys for the home map: block and list
/// identifier spaces overlap, so home entries are keyed by
/// `raw << 1 | is_list`.
#[inline]
fn btag(raw: u64) -> u64 {
    raw << 1
}
#[inline]
fn ltag(raw: u64) -> u64 {
    (raw << 1) | 1
}
#[inline]
fn stripe_of(tag: u64) -> usize {
    ((tag >> 1) & REPLAY_PART_MASK) as usize
}

/// What recovery found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct RecoveryReport {
    /// Sequence number of the checkpoint recovery started from (0 =
    /// none; the whole log was scanned).
    pub checkpoint_seq: u64,
    /// Segment slots examined.
    pub segments_scanned: u32,
    /// Valid segments replayed (sequence numbers above the checkpoint).
    pub segments_replayed: u32,
    /// Slots holding a valid header but a summary that fails its
    /// checksum — the signature of a segment write torn by the crash.
    /// Such segments are treated as never written.
    pub torn_tails_detected: u32,
    /// Summary records applied (committed effects).
    pub records_applied: u64,
    /// ARUs whose commit record was found (their records were applied).
    pub committed_arus: u64,
    /// ARUs discarded because their commit record never reached disk.
    pub discarded_arus: u64,
    /// Records belonging to discarded ARUs.
    pub discarded_records: u64,
    /// Valid segments ignored because of a gap in the sequence chain
    /// (0 in any state a crash can produce).
    pub ignored_after_gap: u32,
    /// Orphaned blocks freed by the post-recovery consistency check.
    pub orphan_blocks_freed: usize,
    /// Snapshot slabs loaded from the chosen checkpoint (0 = no
    /// checkpoint; the shard count the image was checkpointed at).
    pub snap_shards: u32,
    /// Worker threads used for slab decode, segment scan, and replay.
    pub threads_used: u32,
    /// Wall time of the snapshot-load phase.
    pub snapshot_load_ns: u64,
    /// Wall time of the segment-scan phase.
    pub scan_ns: u64,
    /// Wall time of the suffix-replay phase.
    pub replay_ns: u64,
    /// Wall time of the finalize phase (merge, re-shard, consistency
    /// check).
    pub finalize_ns: u64,
}

// ----------------------------------------------------------------------
// Replay partitions
// ----------------------------------------------------------------------

/// One replay partition: the slice of the recovered state owned by the
/// identifiers homed to it. Mirrors one map shard's persistent +
/// committed levels.
#[derive(Debug, Default)]
struct ReplayPart {
    persistent: Tables,
    committed: StateOverlay,
    /// List-walk steps taken replaying into this partition (charged to
    /// `list_walk_steps` at finalize).
    walk_steps: u64,
}

/// Identifiers finally freed by replay (deletions not later
/// re-allocated); the allocator free sets are rebuilt from these at
/// finalize. Maintained by the replay *coordinator* only — deletions
/// always apply at a fence, and allocations are visible to the
/// coordinator at routing time — so no cross-thread state is needed.
#[derive(Debug, Default)]
struct FreedSets {
    blocks: BTreeSet<u64>,
    lists: BTreeSet<u64>,
}

impl FreedSets {
    /// Folds one emitted record (and, for `DeleteList`, the member
    /// blocks its application freed) into the freed sets, in emit
    /// order — which is serial replay order.
    fn note(&mut self, rec: &Record, freed_members: Vec<u64>) {
        match *rec {
            Record::NewBlock { block, .. } => {
                self.blocks.remove(&block.get());
            }
            Record::NewList { list, .. } => {
                self.lists.remove(&list.get());
            }
            Record::DeleteBlock { block, .. } => {
                self.blocks.insert(block.get());
            }
            Record::DeleteList { list, .. } => {
                self.blocks.extend(freed_members);
                self.lists.insert(list.get());
            }
            _ => {}
        }
    }
}

/// How a [`PartsView`] maps an identifier to a partition index.
enum Locator<'h> {
    /// A worker's view of its single partition: every identifier the
    /// record touches is homed here by construction.
    Single,
    /// The single-threaded path: pure identifier striping, no homes.
    Striped,
    /// The coordinator's all-partitions view: the connectivity router's
    /// home map, falling back to the stripe for untouched identifiers.
    Homed(&'h HashMap<u64, usize>),
}

/// A mutable view over replay partitions that applies records with the
/// exact semantics of the mutation-session helpers (`block_mut` COW,
/// `insert_into_list`, `unlink_block`, `dealloc_*`) — minus the
/// live-segment and allocator bookkeeping, which finalize reconstructs
/// from the final state in one pass.
struct PartsView<'a, 'h> {
    parts: Vec<&'a mut ReplayPart>,
    locator: Locator<'h>,
    max_blocks: u64,
}

impl PartsView<'_, '_> {
    #[inline]
    fn bidx(&self, raw: u64) -> usize {
        match self.locator {
            Locator::Single => 0,
            Locator::Striped => (raw & REPLAY_PART_MASK) as usize,
            Locator::Homed(h) => h
                .get(&btag(raw))
                .copied()
                .unwrap_or((raw & REPLAY_PART_MASK) as usize),
        }
    }

    #[inline]
    fn lidx(&self, raw: u64) -> usize {
        match self.locator {
            Locator::Single => 0,
            Locator::Striped => (raw & REPLAY_PART_MASK) as usize,
            Locator::Homed(h) => h
                .get(&ltag(raw))
                .copied()
                .unwrap_or((raw & REPLAY_PART_MASK) as usize),
        }
    }

    fn view_block(&self, id: BlockId) -> Option<&BlockRecord> {
        let p = &self.parts[self.bidx(id.get())];
        p.committed
            .blocks
            .get(&id)
            .or_else(|| p.persistent.blocks.get(&id))
    }

    fn view_list(&self, id: ListId) -> Option<&ListRecord> {
        let p = &self.parts[self.lidx(id.get())];
        p.committed
            .lists
            .get(&id)
            .or_else(|| p.persistent.lists.get(&id))
    }

    /// Copy-on-write access to a block record in the committed state
    /// (see `Mutation::block_mut`).
    fn block_mut(&mut self, id: BlockId) -> Result<&mut BlockRecord> {
        let i = self.bidx(id.get());
        let p = &mut *self.parts[i];
        if !p.committed.blocks.contains_key(&id) {
            let base = p
                .persistent
                .blocks
                .get(&id)
                .cloned()
                .ok_or(LldError::BlockNotAllocated(id))?;
            p.committed.blocks.insert(id, base);
        }
        Ok(p.committed.blocks.get_mut(&id).expect("just inserted"))
    }

    fn list_mut(&mut self, id: ListId) -> Result<&mut ListRecord> {
        let i = self.lidx(id.get());
        let p = &mut *self.parts[i];
        if !p.committed.lists.contains_key(&id) {
            let base = p
                .persistent
                .lists
                .get(&id)
                .cloned()
                .ok_or(LldError::ListNotAllocated(id))?;
            p.committed.lists.insert(id, base);
        }
        Ok(p.committed.lists.get_mut(&id).expect("just inserted"))
    }

    fn validate_insert(&self, list: ListId, pos: Position) -> Result<()> {
        self.view_list(list)
            .filter(|r| r.allocated)
            .ok_or(LldError::ListNotAllocated(list))?;
        if let Position::After(pred) = pos {
            let p = self
                .view_block(pred)
                .filter(|r| r.allocated)
                .ok_or(LldError::BlockNotAllocated(pred))?;
            if p.list != Some(list) {
                return Err(LldError::PredecessorNotOnList { list, pred });
            }
        }
        Ok(())
    }

    fn insert_into_list(
        &mut self,
        list: ListId,
        block: BlockId,
        pos: Position,
        ts: Timestamp,
    ) -> Result<()> {
        self.validate_insert(list, pos)?;
        match pos {
            Position::First => {
                let old_first = {
                    let lr = self.list_mut(list)?;
                    let old = lr.first;
                    lr.first = Some(block);
                    if lr.last.is_none() {
                        lr.last = Some(block);
                    }
                    lr.ts = ts;
                    old
                };
                let br = self.block_mut(block)?;
                br.successor = old_first;
                br.list = Some(list);
                br.ts = ts;
            }
            Position::After(pred) => {
                let pred_succ = {
                    let pm = self.block_mut(pred)?;
                    let old = pm.successor;
                    pm.successor = Some(block);
                    pm.ts = ts;
                    old
                };
                {
                    let bm = self.block_mut(block)?;
                    bm.successor = pred_succ;
                    bm.list = Some(list);
                    bm.ts = ts;
                }
                let lr = self.list_mut(list)?;
                if lr.last == Some(pred) {
                    lr.last = Some(block);
                }
                lr.ts = ts;
            }
        }
        Ok(())
    }

    fn walk_list(&mut self, list: ListId) -> Result<Vec<BlockId>> {
        let rec = self
            .view_list(list)
            .filter(|r| r.allocated)
            .ok_or(LldError::ListNotAllocated(list))?;
        let mut out = Vec::new();
        let mut cur = rec.first;
        let bound = self.max_blocks + 1;
        let mut steps = 0u64;
        while let Some(b) = cur {
            steps += 1;
            if steps > bound {
                return Err(LldError::Corrupt(format!("cycle while walking {list}")));
            }
            let brec = self.view_block(b).filter(|r| r.allocated).ok_or_else(|| {
                LldError::Corrupt(format!("list {list} references missing block {b}"))
            })?;
            out.push(b);
            cur = brec.successor;
        }
        let li = self.lidx(list.get());
        self.parts[li].walk_steps += steps;
        Ok(out)
    }

    fn unlink_block(&mut self, block: BlockId, ts: Timestamp) -> Result<()> {
        let rec = self
            .view_block(block)
            .filter(|r| r.allocated)
            .ok_or(LldError::BlockNotAllocated(block))?;
        let Some(list) = rec.list else {
            return Ok(());
        };
        let successor = rec.successor;

        // Predecessor search: walk from the head of the list.
        let lrec = self
            .view_list(list)
            .filter(|r| r.allocated)
            .ok_or(LldError::ListNotAllocated(list))?;
        let mut pred: Option<BlockId> = None;
        let mut cur = lrec.first;
        let bound = self.max_blocks + 1;
        let mut steps = 0u64;
        while let Some(b) = cur {
            if b == block {
                break;
            }
            steps += 1;
            if steps > bound {
                return Err(LldError::Corrupt(format!("cycle while walking {list}")));
            }
            pred = Some(b);
            cur = self.view_block(b).and_then(|r| r.successor);
            if cur.is_none() {
                return Err(LldError::Corrupt(format!(
                    "{block} claims membership of {list} but is not on it"
                )));
            }
        }
        let li = self.lidx(list.get());
        self.parts[li].walk_steps += steps;

        match pred {
            None => {
                let lr = self.list_mut(list)?;
                lr.first = successor;
                if lr.last == Some(block) {
                    lr.last = None;
                }
                lr.ts = ts;
            }
            Some(p) => {
                {
                    let pm = self.block_mut(p)?;
                    pm.successor = successor;
                    pm.ts = ts;
                }
                let lr = self.list_mut(list)?;
                if lr.last == Some(block) {
                    lr.last = Some(p);
                }
                lr.ts = ts;
            }
        }
        let bm = self.block_mut(block)?;
        bm.list = None;
        bm.successor = None;
        bm.ts = ts;
        Ok(())
    }

    fn dealloc_block(&mut self, block: BlockId, ts: Timestamp) -> Result<()> {
        let bm = self.block_mut(block)?;
        bm.allocated = false;
        bm.addr = None;
        bm.list = None;
        bm.successor = None;
        bm.ts = ts;
        Ok(())
    }

    fn dealloc_list(&mut self, list: ListId, ts: Timestamp) -> Result<()> {
        let lm = self.list_mut(list)?;
        lm.allocated = false;
        lm.first = None;
        lm.last = None;
        lm.ts = ts;
        Ok(())
    }

    fn delete_block(&mut self, block: BlockId, ts: Timestamp) -> Result<()> {
        self.view_block(block)
            .filter(|r| r.allocated)
            .ok_or(LldError::BlockNotAllocated(block))?;
        self.unlink_block(block, ts)?;
        self.dealloc_block(block, ts)
    }

    /// Deletes a list and every block on it; returns the freed member
    /// identifiers (the caller folds them into [`FreedSets`]).
    fn delete_list(&mut self, list: ListId, ts: Timestamp) -> Result<Vec<u64>> {
        let members = self.walk_list(list)?;
        for &b in &members {
            self.dealloc_block(b, ts)?;
        }
        self.dealloc_list(list, ts)?;
        Ok(members.into_iter().map(|b| b.get()).collect())
    }

    /// Applies one summary record to the committed state during
    /// recovery. `commit_ts` overrides the record timestamp for records
    /// applied at their ARU's commit point (EndARU serialization).
    /// Returns the member blocks freed by a `DeleteList` (empty for
    /// every other record).
    fn apply(
        &mut self,
        seg: SegmentId,
        rec: &Record,
        commit_ts: Option<Timestamp>,
    ) -> Result<Vec<u64>> {
        let corrupt = |msg: String| LldError::Corrupt(format!("replaying {seg}: {msg}"));
        match *rec {
            Record::NewBlock { block, ts } => {
                let i = self.bidx(block.get());
                let p = &mut *self.parts[i];
                p.committed.blocks.insert(block, BlockRecord::fresh(ts));
                Ok(Vec::new())
            }
            Record::NewList { list, ts } => {
                let i = self.lidx(list.get());
                let p = &mut *self.parts[i];
                p.committed.lists.insert(list, ListRecord::fresh(ts));
                Ok(Vec::new())
            }
            Record::Write {
                block, slot, ts, ..
            } => {
                let ts = commit_ts.unwrap_or(ts);
                let addr = PhysAddr { segment: seg, slot };
                if self.view_block(block).is_none_or(|r| !r.allocated) {
                    return Err(corrupt(format!("write to unallocated {block}")));
                }
                let r = self.block_mut(block)?;
                r.addr = Some(addr);
                r.ts = ts;
                Ok(Vec::new())
            }
            Record::Link {
                list,
                block,
                pred,
                ts,
                ..
            } => {
                let ts = commit_ts.unwrap_or(ts);
                let pos = match pred {
                    None => Position::First,
                    Some(p) => Position::After(p),
                };
                self.insert_into_list(list, block, pos, ts)
                    .map_err(|e| corrupt(e.to_string()))?;
                Ok(Vec::new())
            }
            Record::DeleteBlock { block, ts, .. } => {
                let ts = commit_ts.unwrap_or(ts);
                self.delete_block(block, ts)
                    .map_err(|e| corrupt(e.to_string()))?;
                Ok(Vec::new())
            }
            Record::DeleteList { list, ts, .. } => {
                let ts = commit_ts.unwrap_or(ts);
                self.delete_list(list, ts)
                    .map_err(|e| corrupt(e.to_string()))
            }
            Record::Commit { .. } => Err(corrupt("nested commit record".into())),
        }
    }
}

/// The namespace-tagged identifiers a routable record touches (empty
/// for records that must fence: deletions walk lists, so their touch
/// set cannot be known from the record alone).
fn rec_tags(rec: &Record, out: &mut Vec<u64>) {
    out.clear();
    match *rec {
        Record::NewBlock { block, .. } => out.push(btag(block.get())),
        Record::NewList { list, .. } => out.push(ltag(list.get())),
        Record::Write { block, .. } => out.push(btag(block.get())),
        Record::Link {
            list, block, pred, ..
        } => {
            out.push(ltag(list.get()));
            out.push(btag(block.get()));
            if let Some(p) = pred {
                out.push(btag(p.get()));
            }
        }
        Record::DeleteBlock { .. } | Record::DeleteList { .. } | Record::Commit { .. } => {}
    }
}

/// Whether a record must be applied at a fence by the coordinator.
fn is_fence_record(rec: &Record) -> bool {
    matches!(
        rec,
        Record::DeleteBlock { .. } | Record::DeleteList { .. } | Record::Commit { .. }
    )
}

// ----------------------------------------------------------------------
// Replay driver
// ----------------------------------------------------------------------

/// Walks the suffix chain in log order, resolving ARU commit points and
/// gap/duplicate semantics, and hands each effective batch to `emit`:
/// a committed ARU's records with its commit timestamp, or a single
/// directly-applied record with `None`. This is the *only* ordering
/// authority: executors (inline or worker pool) preserve emit order
/// wherever records can interact.
fn drive_chain(
    chain: &[SegmentInfo],
    ckpt_seq: u64,
    report: &mut RecoveryReport,
    slot_used: &mut [bool],
    ts_max: &mut u64,
    mut emit: impl FnMut(&[(SegmentId, Record)], Option<Timestamp>) -> Result<()>,
) -> Result<()> {
    let mut expected = ckpt_seq + 1;
    let mut pending: BTreeMap<u64, Vec<(SegmentId, Record)>> = BTreeMap::new();
    let mut single: Vec<(SegmentId, Record)> = Vec::with_capacity(1);
    for info in chain {
        if info.seq != expected {
            if info.seq < expected {
                return Err(LldError::Corrupt(format!(
                    "duplicate segment sequence number {}",
                    info.seq
                )));
            }
            report.ignored_after_gap += 1;
            continue;
        }
        expected += 1;
        report.segments_replayed += 1;
        slot_used[info.slot.get() as usize] = true;
        for rec in &info.records {
            *ts_max = (*ts_max).max(rec.ts().get());
            match rec.aru_tag() {
                Some(aru) => {
                    pending
                        .entry(aru.get())
                        .or_default()
                        .push((info.slot, rec.clone()));
                }
                None => {
                    if let Record::Commit { aru, ts } = rec {
                        let actions = pending.remove(&aru.get()).unwrap_or_default();
                        report.committed_arus += 1;
                        report.records_applied += actions.len() as u64;
                        emit(&actions, Some(*ts))?;
                    } else {
                        single.clear();
                        single.push((info.slot, rec.clone()));
                        emit(&single, None)?;
                        report.records_applied += 1;
                    }
                }
            }
        }
    }
    // Whatever is still pending belongs to ARUs that never committed:
    // discard (§3.3 — "the disk system undoes their operations").
    report.discarded_arus = pending.len() as u64;
    report.discarded_records = pending.values().map(|v| v.len() as u64).sum();
    Ok(())
}

// ----------------------------------------------------------------------
// Worker pool
// ----------------------------------------------------------------------

enum WorkItem {
    /// A batch of routed records for one partition, in emit order.
    Apply {
        part: usize,
        recs: Vec<(SegmentId, Record, Option<Timestamp>)>,
    },
    /// Queue-drain fence: acknowledge once everything before it is
    /// applied.
    Fence(mpsc::Sender<()>),
}

/// State shared between the replay coordinator and its workers.
struct ReplayShared {
    parts: Vec<Mutex<ReplayPart>>,
    error: Mutex<Option<LldError>>,
    failed: AtomicBool,
}

impl ReplayShared {
    fn new() -> Self {
        ReplayShared {
            parts: (0..REPLAY_PARTS)
                .map(|_| Mutex::new(ReplayPart::default()))
                .collect(),
            error: Mutex::new(None),
            failed: AtomicBool::new(false),
        }
    }

    /// First error wins; later work is skipped (the whole recovery
    /// fails, so partial application does not matter).
    fn fail(&self, e: LldError) {
        let mut slot = self.error.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
        self.failed.store(true, Ordering::Release);
    }

    fn take_error(&self) -> LldError {
        self.error
            .lock()
            .take()
            .unwrap_or_else(|| LldError::Corrupt("recovery replay worker failed".into()))
    }
}

fn worker_loop(shared: &ReplayShared, rx: &mpsc::Receiver<WorkItem>, max_blocks: u64, obs: &Obs) {
    for item in rx.iter() {
        match item {
            WorkItem::Apply { part, recs } => {
                if shared.failed.load(Ordering::Acquire) {
                    continue; // drain without applying
                }
                let timer = obs.timer();
                let mut guard = shared.parts[part].lock();
                let mut view = PartsView {
                    parts: vec![&mut guard],
                    locator: Locator::Single,
                    max_blocks,
                };
                for (seg, rec, cts) in &recs {
                    if let Err(e) = view.apply(*seg, rec, *cts) {
                        shared.fail(e);
                        break;
                    }
                }
                drop(guard);
                obs.recovery_replay_batch(timer);
            }
            WorkItem::Fence(ack) => {
                let _ = ack.send(());
            }
        }
    }
}

/// Tiny union-find over one emitted batch's identifier tags.
struct BatchUf {
    slot: HashMap<u64, usize>,
    parent: Vec<usize>,
}

impl BatchUf {
    fn new() -> Self {
        BatchUf {
            slot: HashMap::new(),
            parent: Vec::new(),
        }
    }

    fn index(&mut self, tag: u64) -> usize {
        let next = self.parent.len();
        match self.slot.entry(tag) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(next);
                self.parent.push(next);
                next
            }
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// The coordinator side of the pool: the connectivity router (home
/// assignment, component analysis, migrations), per-partition buffers
/// feeding the worker owning each partition (`part % workers`), and
/// the fence protocol for records that must apply serially.
struct Dispatcher<'s> {
    shared: &'s ReplayShared,
    obs: &'s Obs,
    senders: Vec<mpsc::Sender<WorkItem>>,
    buffers: Vec<Vec<(SegmentId, Record, Option<Timestamp>)>>,
    /// Identifier tag → home partition. Invariant: an identifier's
    /// table entries live in its home partition (or its stripe, if it
    /// has no home entry — then no replayed record has touched it).
    homes: HashMap<u64, usize>,
    /// Parked lone allocation records. Allocations commit outside their
    /// ARU, so they are emitted as singletons *before* the batch that
    /// uses them; applying one immediately would pin its identifier to
    /// an arbitrary home and force a migration fence when the ARU batch
    /// later unions it with its list. A fresh allocation has no
    /// observable effect until the identifier is next referenced, so it
    /// waits here and is released — in emit order with respect to its
    /// own identifier — with the first record that touches it.
    limbo: HashMap<u64, (SegmentId, Record, Option<Timestamp>)>,
    freed: FreedSets,
    /// Records pushed since the last fence; a fence with nothing
    /// outstanding skips the worker round-trip.
    unfenced: usize,
    max_blocks: u64,
    // Scratch reused across batches.
    tags: Vec<u64>,
}

impl<'s> Dispatcher<'s> {
    fn new(
        shared: &'s ReplayShared,
        obs: &'s Obs,
        senders: Vec<mpsc::Sender<WorkItem>>,
        max_blocks: u64,
    ) -> Self {
        Dispatcher {
            shared,
            obs,
            senders,
            buffers: (0..REPLAY_PARTS).map(|_| Vec::new()).collect(),
            homes: HashMap::new(),
            limbo: HashMap::new(),
            freed: FreedSets::default(),
            unfenced: 0,
            max_blocks,
            tags: Vec::new(),
        }
    }

    fn check_failed(&self) -> Result<()> {
        if self.shared.failed.load(Ordering::Acquire) {
            return Err(self.shared.take_error());
        }
        Ok(())
    }

    fn flush_part(&mut self, part: usize) -> Result<()> {
        if self.buffers[part].is_empty() {
            return Ok(());
        }
        let recs = std::mem::take(&mut self.buffers[part]);
        self.senders[part % self.senders.len()]
            .send(WorkItem::Apply { part, recs })
            .map_err(|_| self.shared.take_error())
    }

    /// Flushes every buffer and waits until every worker has drained
    /// its queue. After a fence the workers hold no partition locks
    /// (they block on their empty channels), so the coordinator may
    /// lock any partitions it needs.
    fn fence(&mut self) -> Result<()> {
        if self.unfenced == 0 {
            return self.check_failed();
        }
        for p in 0..self.buffers.len() {
            self.flush_part(p)?;
        }
        let (ack_tx, ack_rx) = mpsc::channel();
        for tx in &self.senders {
            tx.send(WorkItem::Fence(ack_tx.clone()))
                .map_err(|_| self.shared.take_error())?;
        }
        drop(ack_tx);
        for _ in 0..self.senders.len() {
            ack_rx.recv().map_err(|_| self.shared.take_error())?;
        }
        self.unfenced = 0;
        self.check_failed()
    }

    /// Releases every parked allocation to its stripe (or prior home,
    /// for a re-allocation of a freed identifier). Called before any
    /// all-partitions apply and at end of replay; release order among
    /// parked records is irrelevant (their identifiers are untouched
    /// since parking, so the records commute with everything buffered).
    fn drain_limbo(&mut self) -> Result<()> {
        if self.limbo.is_empty() {
            return Ok(());
        }
        let limbo = std::mem::take(&mut self.limbo);
        for (tag, item) in limbo {
            let home = match self.homes.get(&tag) {
                Some(&h) if h != PARKED => h, // prior home of a re-allocated id
                _ => stripe_of(tag),
            };
            self.homes.insert(tag, home);
            self.buffers[home].push(item);
            self.unfenced += 1;
            if self.buffers[home].len() >= REPLAY_BATCH {
                self.flush_part(home)?;
            }
        }
        Ok(())
    }

    /// Moves an identifier's table entries to `to` and records the new
    /// home. Caller must have fenced (all workers idle).
    fn migrate(&mut self, tag: u64, to: usize) {
        let from = match self.homes.get(&tag) {
            // A parked identifier has no entries anywhere; the moves
            // below find nothing, and only the home entry changes.
            Some(&h) if h != PARKED => h,
            _ => stripe_of(tag),
        };
        if from != to {
            let (lo, hi) = (from.min(to), from.max(to));
            let mut lo_g = self.shared.parts[lo].lock();
            let mut hi_g = self.shared.parts[hi].lock();
            let (src, dst) = if from == lo {
                (&mut *lo_g, &mut *hi_g)
            } else {
                (&mut *hi_g, &mut *lo_g)
            };
            if tag & 1 == 1 {
                let id = ListId::new(tag >> 1);
                if let Some(r) = src.persistent.lists.remove(&id) {
                    dst.persistent.lists.insert(id, r);
                }
                if let Some(r) = src.committed.lists.remove(&id) {
                    dst.committed.lists.insert(id, r);
                }
            } else {
                let id = BlockId::new(tag >> 1);
                if let Some(r) = src.persistent.blocks.remove(&id) {
                    dst.persistent.blocks.insert(id, r);
                }
                if let Some(r) = src.committed.blocks.remove(&id) {
                    dst.committed.blocks.insert(id, r);
                }
            }
        }
        self.homes.insert(tag, to);
    }

    /// Applies one fence-class record serially against all partitions.
    fn fence_apply(
        &mut self,
        seg: SegmentId,
        rec: &Record,
        cts: Option<Timestamp>,
    ) -> Result<Vec<u64>> {
        self.drain_limbo()?;
        self.fence()?;
        let timer = self.obs.timer();
        let mut guards: Vec<_> = self.shared.parts.iter().map(|m| m.lock()).collect();
        let mut view = PartsView {
            parts: guards.iter_mut().map(|g| &mut **g).collect(),
            locator: Locator::Homed(&self.homes),
            max_blocks: self.max_blocks,
        };
        let res = view.apply(seg, rec, cts);
        drop(guards);
        self.obs.recovery_replay_batch(timer);
        res
    }

    /// Routes one emitted batch (a committed ARU's records, or a single
    /// direct record). Connected components of the batch share one home
    /// so their records apply on one worker in order; components in
    /// different homes are independent (disjoint identifiers) and apply
    /// concurrently.
    fn batch(&mut self, recs: &[(SegmentId, Record)], cts: Option<Timestamp>) -> Result<()> {
        self.check_failed()?;

        // Fast path: park a lone allocation (see `limbo`). The freed
        // sets are updated now — that is this record's emit position.
        if let [(seg, rec)] = recs {
            let tag = match rec {
                Record::NewBlock { block, .. } => Some(btag(block.get())),
                Record::NewList { list, .. } => Some(ltag(list.get())),
                _ => None,
            };
            if let Some(tag) = tag {
                self.freed.note(rec, Vec::new());
                // A re-allocation keeps its prior home entry (its
                // deallocated residue still lives there); a first-time
                // id is marked parked.
                self.homes.entry(tag).or_insert(PARKED);
                self.limbo.insert(tag, (*seg, rec.clone(), cts));
                return Ok(());
            }
        }

        // Fast path: most batches resolve to a single home with no
        // migration — every touched identifier is fresh (created in
        // the batch or parked) or already located in one place. One
        // probe per identifier decides; any disagreement falls back to
        // the full component analysis below.
        let mut tags = std::mem::take(&mut self.tags);
        let mut fast_home: Option<usize> = None;
        let mut first_tag: Option<u64> = None;
        let mut conflict = false;
        let mut has_fence_rec = false;
        let mut multi_tag = false;
        // The scan must visit every record even after a conflict:
        // `multi_tag` gates the second fast path below, and a stale
        // value (conflict found before a later multi-tag record) would
        // route a Link's records by one tag and lose the connection.
        for (_, rec) in recs {
            if is_fence_record(rec) {
                has_fence_rec = true;
                continue;
            }
            rec_tags(rec, &mut tags);
            multi_tag |= tags.len() > 1;
            for &t in &tags {
                if first_tag.is_none() {
                    first_tag = Some(t);
                }
                // In-batch creations read as absent here (their tag has
                // no home entry yet), which is exactly right: fresh, no
                // location.
                let loc = match self.homes.get(&t) {
                    Some(&h) if h != PARKED => Some(h),
                    Some(_) => None,
                    None => Some(stripe_of(t)),
                };
                if let Some(l) = loc {
                    match fast_home {
                        None => fast_home = Some(l),
                        Some(h) if h != l => conflict = true,
                        Some(_) => {}
                    }
                }
            }
        }
        // Wrong on the fast path: an identifier with no home entry and
        // no checkpoint state reads as "located at its stripe" even
        // when it is created later in this same batch. That can only
        // manufacture a *conflict* (forcing the slow path, which keeps
        // a real `created` set), never a wrong single home: agreeing on
        // the stripe is where a fresh component would be homed anyway.
        if !conflict {
            if let Some(ft) = first_tag {
                let home = fast_home.unwrap_or(stripe_of(ft));
                if has_fence_rec {
                    // A fence drains limbo mid-batch; pre-assign every
                    // tag's home so parked records drain to this home,
                    // not their stripe.
                    for (_, rec) in recs {
                        rec_tags(rec, &mut tags);
                        for &t in &tags {
                            self.homes.insert(t, home);
                        }
                    }
                }
                for (seg, rec) in recs {
                    if is_fence_record(rec) {
                        let members = self.fence_apply(*seg, rec, cts)?;
                        self.freed.note(rec, members);
                        continue;
                    }
                    rec_tags(rec, &mut tags);
                    for &t in &tags {
                        if let Some(item) = self.limbo.remove(&t) {
                            self.buffers[home].push(item);
                            self.unfenced += 1;
                        }
                        self.homes.insert(t, home);
                    }
                    self.freed.note(rec, Vec::new());
                    self.buffers[home].push((*seg, rec.clone(), cts));
                    self.unfenced += 1;
                    if self.buffers[home].len() >= REPLAY_BATCH {
                        self.flush_part(home)?;
                    }
                }
            } else {
                // No routable records at all (e.g. an ARU of deletes).
                for (seg, rec) in recs {
                    if is_fence_record(rec) {
                        let members = self.fence_apply(*seg, rec, cts)?;
                        self.freed.note(rec, members);
                    }
                }
            }
            tags.clear();
            self.tags = tags;
            return Ok(());
        }

        // Second fast path: every record touches at most one
        // identifier (write- or delete-heavy batches), so no record
        // can connect two identifiers and there is nothing to union —
        // each record routes independently to its identifier's
        // location. Records sharing an identifier share a location,
        // so per-buffer FIFO still reproduces emit order.
        if !multi_tag {
            for (seg, rec) in recs {
                if is_fence_record(rec) {
                    let members = self.fence_apply(*seg, rec, cts)?;
                    self.freed.note(rec, members);
                    continue;
                }
                rec_tags(rec, &mut tags);
                let t = tags[0];
                // Steady state (an already-homed identifier) is one
                // probe and no writes to the home map.
                let home = match self.homes.get(&t) {
                    Some(&h) if h != PARKED => h,
                    Some(_) | None => {
                        let h = stripe_of(t);
                        self.homes.insert(t, h);
                        h
                    }
                };
                // A parked allocation precedes this record in emit
                // order — release it to the same buffer first. (Reaches
                // the homed arm too: a re-allocated identifier keeps
                // its prior home entry while parked.)
                if let Some(item) = self.limbo.remove(&t) {
                    self.buffers[home].push(item);
                    self.unfenced += 1;
                }
                self.freed.note(rec, Vec::new());
                self.buffers[home].push((*seg, rec.clone(), cts));
                self.unfenced += 1;
                if self.buffers[home].len() >= REPLAY_BATCH {
                    self.flush_part(home)?;
                }
            }
            tags.clear();
            self.tags = tags;
            return Ok(());
        }
        tags.clear();
        self.tags = tags;

        // Pass 1: union identifier tags per record; note in-batch
        // creations (they exist nowhere yet and can adopt any home).
        let mut uf = BatchUf::new();
        let mut created: HashSet<u64> = HashSet::new();
        let mut tags = std::mem::take(&mut self.tags);
        for (_, rec) in recs {
            match rec {
                Record::NewBlock { block, .. } => {
                    created.insert(btag(block.get()));
                }
                Record::NewList { list, .. } => {
                    created.insert(ltag(list.get()));
                }
                _ => {}
            }
            rec_tags(rec, &mut tags);
            let mut first = None;
            for &t in &tags {
                let i = uf.index(t);
                match first {
                    None => first = Some(i),
                    Some(f) => uf.union(f, i),
                }
            }
        }

        // Pass 2: resolve each component to one home partition,
        // migrating (under a fence) when a component spans locations.
        let all_tags: Vec<u64> = uf.slot.keys().copied().collect();
        let mut comp_tags: HashMap<usize, Vec<u64>> = HashMap::new();
        for &t in &all_tags {
            let i = uf.slot[&t];
            let root = uf.find(i);
            comp_tags.entry(root).or_default().push(t);
        }
        let mut comp_home: HashMap<usize, usize> = HashMap::new();
        for (&root, members) in &comp_tags {
            // A location is where an identifier's entries already live:
            // its home if assigned, else its stripe (where checkpoint
            // entries sit — and where a record touching a nonexistent
            // identifier routes to fail with the serial path's error).
            // Fresh identifiers (created in this batch or parked in
            // limbo) have no location and adopt the component's home.
            let mut locs: Vec<usize> = Vec::new();
            let mut anchor: Option<u64> = None;
            for &t in members {
                let loc = match self.homes.get(&t) {
                    Some(&h) if h != PARKED => Some(h),
                    // Parked (the sentinel) or fresh in this batch:
                    // no entries anywhere, adopts the component home.
                    Some(_) => None,
                    None if created.contains(&t) => None,
                    None => Some(stripe_of(t)),
                };
                if let Some(l) = loc {
                    if !locs.contains(&l) {
                        locs.push(l);
                    }
                    anchor.get_or_insert(t);
                }
            }
            let home = match locs.len() {
                0 => stripe_of(*members.iter().min().expect("nonempty component")),
                1 => locs[0],
                _ => {
                    // Component merge across partitions: fence and pull
                    // everything to the anchor's location.
                    let target = self
                        .homes
                        .get(&anchor.expect("locs nonempty"))
                        .copied()
                        .unwrap_or(stripe_of(anchor.expect("locs nonempty")));
                    self.fence()?;
                    for &t in members {
                        self.migrate(t, target);
                    }
                    target
                }
            };
            for &t in members {
                self.homes.insert(t, home);
            }
            comp_home.insert(root, home);
        }

        // Pass 3: emit in order — routable records to their component
        // home's worker, fence-class records serially here.
        for (seg, rec) in recs {
            if is_fence_record(rec) {
                let members = self.fence_apply(*seg, rec, cts)?;
                self.freed.note(rec, members);
                continue;
            }
            rec_tags(rec, &mut tags);
            let root = uf.find(uf.slot[&tags[0]]);
            let home = comp_home[&root];
            // A parked allocation for any touched identifier is
            // released first: it preceded this record in emit order and
            // must apply before it, on the same worker.
            for &t in &tags {
                if let Some(item) = self.limbo.remove(&t) {
                    self.buffers[home].push(item);
                    self.unfenced += 1;
                }
            }
            self.freed.note(rec, Vec::new());
            self.buffers[home].push((*seg, rec.clone(), cts));
            self.unfenced += 1;
            if self.buffers[home].len() >= REPLAY_BATCH {
                self.flush_part(home)?;
            }
        }
        tags.clear();
        self.tags = tags;
        Ok(())
    }
}

// ----------------------------------------------------------------------
// Parallel helpers for the read-only phases
// ----------------------------------------------------------------------

/// Decodes every slab of `hdr`, fanned out over up to `threads`
/// workers. `None` if any slab fails its CRC (the whole area is then
/// invalid and the caller falls back to the other one).
fn load_slabs<D: BlockDevice>(
    device: &D,
    hdr: &CkptHeaderInfo,
    threads: usize,
    obs: &Obs,
) -> Result<Option<Vec<checkpoint::SlabData>>> {
    let n = hdr.slabs.len();
    let w = threads.min(n).max(1);
    if w <= 1 {
        let mut out = Vec::with_capacity(n);
        for s in &hdr.slabs {
            let timer = obs.timer();
            match checkpoint::decode_slab(device, s)? {
                Some(sd) => {
                    obs.recovery_slab_load(timer);
                    out.push(sd);
                }
                None => return Ok(None),
            }
        }
        return Ok(Some(out));
    }
    let chunk = n.div_ceil(w);
    let results: Vec<Result<Option<Vec<checkpoint::SlabData>>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..w)
            .map(|k| {
                let slabs = &hdr.slabs[k * chunk..((k + 1) * chunk).min(n)];
                scope.spawn(move || {
                    let mut out = Vec::with_capacity(slabs.len());
                    for s in slabs {
                        let timer = obs.timer();
                        match checkpoint::decode_slab(device, s)? {
                            Some(sd) => {
                                obs.recovery_slab_load(timer);
                                out.push(sd);
                            }
                            None => return Ok(None),
                        }
                    }
                    Ok(Some(out))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    Err(LldError::Corrupt(
                        "recovery snapshot worker panicked".into(),
                    ))
                })
            })
            .collect()
    });
    let mut all = Vec::with_capacity(n);
    for r in results {
        match r? {
            Some(mut v) => all.append(&mut v),
            None => return Ok(None),
        }
    }
    Ok(Some(all))
}

/// Probes every segment slot, fanned out over up to `threads` workers;
/// results come back in slot order. Summaries of segments at or below
/// `ckpt_seq` are not read — the snapshot already covers them.
fn scan_slots<D: BlockDevice>(
    device: &D,
    layout: &Layout,
    threads: usize,
    ckpt_seq: u64,
) -> Result<Vec<SegmentScan>> {
    let n = layout.n_segments as usize;
    let w = threads.min(n).max(1);
    if w <= 1 {
        return (0..n)
            .map(|slot| scan_segment_above(device, layout, SegmentId::new(slot as u32), ckpt_seq))
            .collect();
    }
    let chunk = n.div_ceil(w);
    let results: Vec<Result<Vec<SegmentScan>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..w)
            .map(|k| {
                let lo = k * chunk;
                let hi = ((k + 1) * chunk).min(n);
                scope.spawn(move || {
                    (lo..hi)
                        .map(|slot| {
                            scan_segment_above(
                                device,
                                layout,
                                SegmentId::new(slot as u32),
                                ckpt_seq,
                            )
                        })
                        .collect::<Result<Vec<_>>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    Err(LldError::Corrupt("recovery scan worker panicked".into()))
                })
            })
            .collect()
    });
    let mut all = Vec::with_capacity(n);
    for r in results {
        all.extend(r?);
    }
    Ok(all)
}

// ----------------------------------------------------------------------
// Recovery proper
// ----------------------------------------------------------------------

impl<D: BlockDevice + 'static> Lld<D> {
    /// Recovers a logical disk from `device`, using the semantic modes
    /// stored in its superblock and default runtime options.
    ///
    /// # Errors
    ///
    /// [`LldError::Corrupt`] if the device holds no valid superblock or
    /// the log is internally inconsistent; device errors.
    pub fn recover(device: D) -> Result<(Self, RecoveryReport)> {
        let (layout, concurrency, visibility) = LldInner::read_superblock(&device)?;
        let config = LldConfig {
            block_size: layout.block_size,
            segment_bytes: layout.segment_bytes,
            concurrency,
            visibility,
            ..LldConfig::default()
        };
        Self::recover_inner(device, layout, config)
    }

    /// Recovers with explicit runtime options (concurrency mode, read
    /// visibility, cleaner tuning, shard count, recovery parallelism,
    /// `check_on_recovery`). Structural parameters (block size, segment
    /// size, limits) always come from the superblock.
    ///
    /// # Errors
    ///
    /// As for [`Lld::recover`].
    pub fn recover_with(device: D, config: &LldConfig) -> Result<(Self, RecoveryReport)> {
        let (layout, _, _) = LldInner::read_superblock(&device)?;
        Self::recover_inner(device, layout, config.clone())
    }

    fn recover_inner(
        device: D,
        layout: Layout,
        config: LldConfig,
    ) -> Result<(Self, RecoveryReport)> {
        if !config.map_shards.is_power_of_two() || config.map_shards > MAX_MAP_SHARDS {
            return Err(LldError::Config(format!(
                "map_shards {} must be a power of two in 1..={MAX_MAP_SHARDS}",
                config.map_shards
            )));
        }
        if !(1..=MAX_RECOVERY_THREADS).contains(&config.recovery_threads) {
            return Err(LldError::Config(format!(
                "recovery_threads {} must be in 1..={MAX_RECOVERY_THREADS}",
                config.recovery_threads
            )));
        }
        let w = config.recovery_threads;
        let n = layout.n_segments as usize;
        let obs = Obs::new(config.obs);
        let trace = recovery_trace(1);
        let mut report = RecoveryReport {
            threads_used: w as u32,
            ..RecoveryReport::default()
        };

        // ---- Phase 1: load the newest valid checkpoint's slabs -------
        let t_snap = Instant::now();
        obs.stage_begin(0, trace, Stage::RecoverySnapshotLoad);
        let mut cands: Vec<(CkptHeaderInfo, bool)> = Vec::new();
        if let Some(h) = checkpoint::read_header_dir(&device, &layout, layout.ckpt_a)? {
            cands.push((h, true));
        }
        if let Some(h) = checkpoint::read_header_dir(&device, &layout, layout.ckpt_b)? {
            cands.push((h, false));
        }
        // Newest first; area A wins a sequence tie (stable sort).
        cands.sort_by_key(|(h, _)| std::cmp::Reverse(h.seq));

        let shared = ReplayShared::new();
        let mut ckpt_seq = 0u64;
        let mut ts_floor = 0u64;
        let mut block_floor = 1u64;
        let mut list_floor = 1u64;
        let mut use_b_next = false;
        for (hdr, is_a) in cands {
            let Some(slabs) = load_slabs(&device, &hdr, w, &obs)? else {
                continue; // torn slab: the whole area is invalid
            };
            ckpt_seq = hdr.seq;
            ts_floor = hdr.ts_counter;
            block_floor = hdr.block_floor;
            list_floor = hdr.list_floor;
            use_b_next = is_a;
            report.snap_shards = hdr.slabs.len() as u32;
            for sd in slabs {
                for (id, rec) in sd.blocks {
                    ts_floor = ts_floor.max(rec.ts.get());
                    let part = (id.get() & REPLAY_PART_MASK) as usize;
                    shared.parts[part].lock().persistent.blocks.insert(id, rec);
                }
                for (id, rec) in sd.lists {
                    ts_floor = ts_floor.max(rec.ts.get());
                    let part = (id.get() & REPLAY_PART_MASK) as usize;
                    shared.parts[part].lock().persistent.lists.insert(id, rec);
                }
            }
            break;
        }
        report.checkpoint_seq = ckpt_seq;
        report.snapshot_load_ns = t_snap.elapsed().as_nanos() as u64;
        obs.stage_end(
            0,
            trace,
            Stage::RecoverySnapshotLoad,
            report.snapshot_load_ns,
        );

        // ---- Phase 2: scan every slot for valid sealed segments ------
        let t_scan = Instant::now();
        obs.stage_begin(0, trace, Stage::RecoveryScan);
        report.segments_scanned = layout.n_segments;
        let scans = scan_slots(&device, &layout, w, ckpt_seq)?;
        let mut slot_seq = vec![0u64; n];
        let mut chain: Vec<SegmentInfo> = Vec::new();
        let mut max_seq_seen = ckpt_seq;
        for (slot, scan) in scans.into_iter().enumerate() {
            match scan {
                SegmentScan::Valid(info) => {
                    slot_seq[slot] = info.seq;
                    max_seq_seen = max_seq_seen.max(info.seq);
                    if info.seq > ckpt_seq {
                        chain.push(info);
                    }
                }
                SegmentScan::Torn => report.torn_tails_detected += 1,
                SegmentScan::None => {}
            }
        }
        chain.sort_by_key(|i| i.seq);
        report.scan_ns = t_scan.elapsed().as_nanos() as u64;
        obs.stage_end(0, trace, Stage::RecoveryScan, report.scan_ns);

        // ---- Phase 3: replay the chain above the checkpoint ----------
        let t_replay = Instant::now();
        obs.stage_begin(0, trace, Stage::RecoveryReplay);
        let mut slot_used = vec![false; n];
        let mut ts_max = 0u64;
        let freed = if w <= 1 {
            // Inline reference path: every record applied in log order
            // against all partitions at once.
            let mut freed = FreedSets::default();
            let mut guards: Vec<_> = shared.parts.iter().map(|m| m.lock()).collect();
            let mut view = PartsView {
                parts: guards.iter_mut().map(|g| &mut **g).collect(),
                locator: Locator::Striped,
                max_blocks: layout.max_blocks,
            };
            let timer = obs.timer();
            drive_chain(
                &chain,
                ckpt_seq,
                &mut report,
                &mut slot_used,
                &mut ts_max,
                |recs, cts| {
                    for (seg, rec) in recs {
                        let members = view.apply(*seg, rec, cts)?;
                        freed.note(rec, members);
                    }
                    Ok(())
                },
            )?;
            drop(guards);
            obs.recovery_replay_batch(timer);
            freed
        } else {
            std::thread::scope(|scope| -> Result<FreedSets> {
                let shared = &shared;
                let obs = &obs;
                let max_blocks = layout.max_blocks;
                let mut senders = Vec::with_capacity(w);
                for _ in 0..w {
                    let (tx, rx) = mpsc::channel::<WorkItem>();
                    scope.spawn(move || worker_loop(shared, &rx, max_blocks, obs));
                    senders.push(tx);
                }
                let mut disp = Dispatcher::new(shared, obs, senders, max_blocks);
                let res = drive_chain(
                    &chain,
                    ckpt_seq,
                    &mut report,
                    &mut slot_used,
                    &mut ts_max,
                    |recs, cts| disp.batch(recs, cts),
                );
                // Hanging up the senders (dropping `disp`) lets the
                // workers exit whether or not the replay succeeded.
                res.and_then(|()| disp.drain_limbo())
                    .and_then(|()| disp.fence())?;
                Ok(std::mem::take(&mut disp.freed))
            })?
        };
        drop(chain);
        report.replay_ns = t_replay.elapsed().as_nanos() as u64;
        obs.stage_end(0, trace, Stage::RecoveryReplay, report.replay_ns);

        // ---- Phase 4: merge, re-shard, and bring the disk up ---------
        let t_fin = Instant::now();
        obs.stage_begin(0, trace, Stage::RecoveryFinalize);

        // Everything replayed is persistent; each identifier lives in
        // exactly one partition (the home invariant), so the merge is a
        // plain union.
        let mut merged = Tables::default();
        let mut walk_steps = 0u64;
        for m in &shared.parts {
            let mut p = std::mem::take(&mut *m.lock());
            p.committed.drain_into(&mut p.persistent);
            merged.blocks.extend(p.persistent.blocks);
            merged.lists.extend(p.persistent.lists);
            walk_steps += p.walk_steps;
        }
        drop(shared);

        // Live-segment accounting is a pure function of the final
        // block addresses — one pass, no per-record adjustments.
        let mut live_count = vec![0u32; n];
        let mut residents: Vec<HashSet<BlockId>> = vec![HashSet::new(); n];
        for (&id, r) in &merged.blocks {
            if let Some(a) = r.addr {
                let s = a.segment.get() as usize;
                live_count[s] += 1;
                residents[s].insert(id);
            }
        }

        // Re-stripe for this process's shard count, then rebuild the
        // free-identifier sets from what replay finally freed (a freed
        // id re-allocated later was removed from the freed set by its
        // NewBlock/NewList record).
        let maps = Maps::from_tables(config.map_shards, merged, block_floor, list_floor);
        maps.inject_freed(freed.blocks, freed.lists);

        let mut log = LogState::fresh(n);
        log.free_slots.clear();
        log.checkpoint_seq = ckpt_seq;
        log.next_seq = max_seq_seen + 1;
        log.slot_seq = slot_seq;
        log.live_count = live_count;
        log.residents = residents;
        // Slot accounting, folded into the replay pass: a slot stays in
        // use if it is part of the replayed chain (its records are
        // needed until the next checkpoint) or still holds live blocks;
        // everything else is free.
        for (slot, &used) in slot_used.iter().enumerate().take(n) {
            if !(used || log.live_count[slot] > 0) {
                log.slot_seq[slot] = 0;
                log.free_slots.insert(slot as u32);
            }
        }

        let ld = Lld::from_inner(LldInner {
            device: crate::lld::DevicePath::new(device, config.pipeline),
            layout,
            concurrency: config.concurrency,
            visibility: config.visibility,
            cleaner_cfg: config.cleaner,
            maps,
            log: Mutex::new(log),
            cache: Mutex::new(crate::cache::BlockCache::new(config.read_cache_blocks)),
            gc: GroupCommit::new(),
            ckpt_io: Mutex::new(CkptSlots {
                use_b: use_b_next,
                gen: 0,
            }),
            ts_counter: AtomicU64::new(ts_floor.max(ts_max)),
            free_slots_hint: AtomicU64::new(0),
            needs_clean: AtomicBool::new(false),
            stats: Default::default(),
            obs,
            cleanerd: Cleanerd::new(),
            sampler: crate::sampler::Sampler::new(),
            flight: config
                .flight_dir
                .clone()
                .map(crate::flight::FlightRecorder::new),
        });
        ld.install_pipe_observer();
        ld.stats.list_walk_steps.add(walk_steps);
        ld.with_mutation(|m| -> Result<()> {
            m.sync_free_hint();
            m.open_segment(0)?;
            Ok(())
        })?;

        if config.check_on_recovery {
            let check = ld.check()?;
            report.orphan_blocks_freed = check.orphan_blocks_freed.len();
        }
        report.finalize_ns = t_fin.elapsed().as_nanos() as u64;
        ld.obs
            .stage_end(0, trace, Stage::RecoveryFinalize, report.finalize_ns);
        ld.obs.recovery_done(ld.now(), &report);
        crate::cleanerd::spawn_if_configured(&ld);
        crate::sampler::spawn_if_configured(&ld, config.metrics_hz);
        Ok((ld, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::AruId;

    fn ts(v: u64) -> Timestamp {
        Timestamp::new(v)
    }

    #[test]
    fn record_tags_name_every_touched_identifier() {
        let mut tags = Vec::new();
        rec_tags(
            &Record::NewBlock {
                block: BlockId::new(5),
                ts: ts(1),
            },
            &mut tags,
        );
        assert_eq!(tags, vec![btag(5)]);
        rec_tags(
            &Record::NewList {
                list: ListId::new(5),
                ts: ts(1),
            },
            &mut tags,
        );
        assert_eq!(tags, vec![ltag(5)]); // distinct from block 5
        rec_tags(
            &Record::Link {
                list: ListId::new(3),
                block: BlockId::new(7),
                pred: Some(BlockId::new(6)),
                ts: ts(1),
                aru: None,
            },
            &mut tags,
        );
        assert_eq!(tags, vec![ltag(3), btag(7), btag(6)]);
        // Fence-class records publish no tags: their touch set (list
        // members) cannot be known from the record alone.
        rec_tags(
            &Record::DeleteList {
                list: ListId::new(3),
                ts: ts(1),
                aru: None,
            },
            &mut tags,
        );
        assert!(tags.is_empty());
        assert!(is_fence_record(&Record::DeleteBlock {
            block: BlockId::new(1),
            ts: ts(1),
            aru: None
        }));
        assert!(is_fence_record(&Record::Commit {
            aru: AruId::new(1),
            ts: ts(1)
        }));
    }

    #[test]
    fn parts_view_applies_with_mutation_semantics() {
        let mut parts: Vec<ReplayPart> = (0..REPLAY_PARTS).map(|_| ReplayPart::default()).collect();
        let mut freed = FreedSets::default();
        let mut view = PartsView {
            parts: parts.iter_mut().collect(),
            locator: Locator::Striped,
            max_blocks: 1024,
        };
        let seg = SegmentId::new(0);
        let list = ListId::new(1);
        let (b1, b2) = (BlockId::new(2), BlockId::new(3));
        view.apply(seg, &Record::NewList { list, ts: ts(1) }, None)
            .unwrap();
        for b in [b1, b2] {
            view.apply(
                seg,
                &Record::NewBlock {
                    block: b,
                    ts: ts(2),
                },
                None,
            )
            .unwrap();
        }
        view.apply(
            seg,
            &Record::Link {
                list,
                block: b1,
                pred: None,
                ts: ts(3),
                aru: None,
            },
            None,
        )
        .unwrap();
        view.apply(
            seg,
            &Record::Link {
                list,
                block: b2,
                pred: Some(b1),
                ts: ts(4),
                aru: None,
            },
            None,
        )
        .unwrap();
        assert_eq!(view.walk_list(list).unwrap(), vec![b1, b2]);

        // A write to an unallocated block is corruption, with the same
        // message the serial replay produced.
        let err = view
            .apply(
                seg,
                &Record::Write {
                    block: BlockId::new(99),
                    slot: 0,
                    ts: ts(5),
                    aru: None,
                },
                None,
            )
            .unwrap_err();
        assert!(err.to_string().contains("write to unallocated"));

        // Deleting the list reports its freed members; the freed sets
        // track them until a re-allocation takes the id back out.
        let del = Record::DeleteList {
            list,
            ts: ts(6),
            aru: None,
        };
        let members = view.apply(seg, &del, None).unwrap();
        assert_eq!(members, vec![2, 3]);
        freed.note(&del, members);
        assert!(freed.blocks.contains(&2) && freed.blocks.contains(&3));
        assert!(freed.lists.contains(&1));
        let renew = Record::NewBlock {
            block: b1,
            ts: ts(7),
        };
        view.apply(seg, &renew, None).unwrap();
        freed.note(&renew, Vec::new());
        assert!(!freed.blocks.contains(&2));
        assert!(freed.blocks.contains(&3));
    }
}
