//! # Log-structured Logical Disk with Atomic Recovery Units
//!
//! A from-scratch reproduction of the system described in *"Atomic
//! Recovery Units: Failure Atomicity for Logical Disks"* (Grimm, Hsieh,
//! Kaashoek, de Jonge — ICDCS 1996).
//!
//! The **Logical Disk (LD)** separates file management from disk
//! management: clients address storage through logical block numbers and
//! ordered block *lists*, while the disk system owns physical layout.
//! This implementation is log-structured (LLD): the disk is divided into
//! fixed-size segments filled in memory and written in single device
//! operations, each carrying a *segment summary* — an operation log from
//! which all mapping and list state can be rebuilt after a crash.
//!
//! **Atomic recovery units (ARUs)** extend the LD interface with
//! [`begin_aru`](Lld::begin_aru) / [`end_aru`](Lld::end_aru): all disk
//! operations inside an ARU are treated as an indivisible operation
//! during recovery — after a failure, all or none of them remain
//! persistent. ARUs are a light-weight form of transaction: failure
//! atomicity only, no concurrency control, no durability (clients add
//! those if needed — see the transaction-layer example in the workspace).
//!
//! ## Version semantics
//!
//! A logical block can exist in up to `n + 2` versions for `n` active
//! ARUs (§3.3): one *shadow* version per ARU, one *committed* version,
//! one *persistent* version. Lookups search shadow → committed →
//! persistent; `EndARU` merges a shadow state into the committed state;
//! sealing a segment makes committed state persistent. The
//! configuration selects the paper's "old" sequential prototype or the
//! "new" concurrent one ([`ConcurrencyMode`]) and the read-visibility
//! option ([`ReadVisibility`]).
//!
//! ## Example
//!
//! ```
//! # fn main() -> Result<(), ld_core::LldError> {
//! use ld_core::{Ctx, Lld, LldConfig, Position};
//! use ld_disk::MemDisk;
//!
//! let ld = Lld::format(MemDisk::new(8 << 20), &LldConfig::default())?;
//!
//! // A file system would bundle all meta-data updates of one file
//! // creation in one ARU (every operation takes `&self`, so threads
//! // can share the disk through an `Arc<Lld<_>>`):
//! let aru = ld.begin_aru()?;
//! let file = ld.new_list(Ctx::Aru(aru))?;
//! let b0 = ld.new_block(Ctx::Aru(aru), file, Position::First)?;
//! let b1 = ld.new_block(Ctx::Aru(aru), file, Position::After(b0))?;
//! ld.write(Ctx::Aru(aru), b0, &vec![1u8; 4096])?;
//! ld.write(Ctx::Aru(aru), b1, &vec![2u8; 4096])?;
//! ld.end_aru(aru)?;
//! ld.flush()?;
//!
//! assert_eq!(ld.list_blocks(Ctx::Simple, file)?, vec![b0, b1]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aru;
mod cache;
mod check;
mod checkpoint;
mod cleaner;
mod cleanerd;
mod commit;
mod config;
mod error;
mod flight;
mod gc;
mod interface;
mod layout;
mod lld;
pub mod obs;
mod ops;
mod recovery;
mod sampler;
mod segment;
mod shard;
mod state;
mod stats;
mod summary;
mod types;

pub use check::CheckReport;
pub use config::{CleanerConfig, ConcurrencyMode, LldConfig, ReadVisibility};
pub use error::{LldError, Result};
pub use flight::FlightRecorder;
pub use interface::LogicalDisk;
pub use layout::Layout;
pub use lld::{Lld, LldInner};
pub use obs::{
    aru_trace, cleaner_trace, flush_trace, AruSpan, Obs, ObsConfig, ObsSnapshot, SpanOutcome,
    Stage, TraceEntry, TraceEvent, TraceRing,
};
pub use recovery::RecoveryReport;
pub use shard::ShardLockStats;
pub use state::{BlockRecord, ListRecord};
pub use stats::LldStats;
pub use summary::Record;
pub use types::{AruId, BlockId, Ctx, ListId, PhysAddr, Position, SegmentId, Timestamp};
