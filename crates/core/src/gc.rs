//! The group-commit stage.
//!
//! Concurrent durability requests (`flush`, `end_aru_sync`) enqueue
//! here: each caller takes a ticket, one caller becomes the *leader*,
//! seals the open segment (under the mapping and log locks) and issues
//! a single device barrier covering every ticket taken before the seal.
//! Followers block on the batch outcome instead of issuing their own
//! barriers — the classic group commit the paper's lazy `EndARU`
//! durability invites.

use crate::error::{LldError, Result};
use crate::lld::LldInner;
use crate::types::AruId;
use ld_disk::BlockDevice;
use ld_disk::{Condvar, Mutex};

#[derive(Debug, Default)]
struct GcState {
    /// Tickets issued to durability callers.
    started: u64,
    /// Highest ticket covered by a completed batch: every caller with
    /// `ticket < done` has had its work sealed and barriered.
    done: u64,
    /// A leader is currently sealing / barriering.
    leader_active: bool,
    /// Outcome of the most recent batch (`None` = success). Followers
    /// covered by a batch report its outcome; a follower that sleeps
    /// through several batches reports the latest one — conservative,
    /// since a device that fails a barrier keeps failing (and a later
    /// successful barrier also covers earlier writes).
    last_error: Option<LldError>,
}

/// The shared queue state of the group-commit stage. A leaf in the lock
/// hierarchy: never hold it while acquiring the map or log locks.
#[derive(Debug, Default)]
pub(crate) struct GroupCommit {
    state: Mutex<GcState>,
    cv: Condvar,
}

impl GroupCommit {
    pub(crate) fn new() -> Self {
        GroupCommit::default()
    }
}

impl<D: BlockDevice> LldInner<D> {
    /// Makes all completed operations durable: seals the current
    /// segment (writing its summary) and barriers the device.
    ///
    /// Concurrent callers are batched: one leader performs the seal and
    /// the barrier for the whole batch while the others wait on its
    /// outcome, so `k` concurrent flushes cost one segment write and
    /// one barrier, not `k`.
    ///
    /// # Errors
    ///
    /// Device errors from the segment write or the barrier.
    pub fn flush(&self) -> Result<()> {
        let timer = self.obs.timer();
        let mut st = self.gc.state.lock();
        let ticket = st.started;
        st.started += 1;
        loop {
            if st.done > ticket {
                // A batch sealed after our ticket was taken: our work is
                // covered by its outcome.
                let res = match &st.last_error {
                    Some(e) => Err(e.clone()),
                    None => Ok(()),
                };
                drop(st);
                if res.is_ok() {
                    self.obs
                        .flush_done(self.now(), self.stats.segments_sealed.get(), timer);
                }
                return res;
            }
            if !st.leader_active {
                break;
            }
            st = self.gc.cv.wait(st);
        }

        // Leader: everything started up to here is in the batch.
        st.leader_active = true;
        let covering = st.started;
        let batch = covering - st.done;
        drop(st);

        // Seal under the log lock alone (a log-only scoped session: the
        // seal touches no mapping shard, so readers and shard-scoped
        // writers proceed during the seal), then barrier without any
        // lock so the whole stack proceeds during the device wait —
        // correct because the batch's writes were issued before this
        // point and the barrier orders against issued writes.
        let res = self
            .with_mutation_at(0, 0, |m| m.roll_segment(0))
            .and_then(|()| self.device.flush().map_err(LldError::from));
        self.after_scoped();

        self.stats.flush_batches.inc();
        self.stats.flush_batch_callers.add(batch);
        self.stats.flush_batch_max.record_max(batch);
        self.obs.group_commit(self.now(), batch);

        let mut st = self.gc.state.lock();
        st.done = covering;
        st.leader_active = false;
        st.last_error = res.as_ref().err().cloned();
        drop(st);
        self.gc.cv.notify_all();

        if res.is_ok() {
            self.obs
                .flush_done(self.now(), self.stats.segments_sealed.get(), timer);
        }
        res
    }

    /// [`end_aru`](LldInner::end_aru) followed by a group-committed
    /// [`flush`](LldInner::flush): on success the ARU's effects are durable,
    /// not merely committed. Concurrent callers share one barrier.
    ///
    /// # Errors
    ///
    /// Those of `end_aru` (the ARU is then gone) plus those of `flush`.
    pub fn end_aru_sync(&self, aru: AruId) -> Result<()> {
        self.end_aru(aru)?;
        self.flush()
    }
}
