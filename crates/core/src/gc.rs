//! The group-commit stage.
//!
//! Concurrent durability requests (`flush`, `end_aru_sync`) enqueue
//! here: each caller takes a ticket, one caller becomes the *leader*,
//! seals the open segment (under the mapping and log locks) and issues
//! a single device barrier covering every ticket taken before the seal.
//! Followers block on the batch outcome instead of issuing their own
//! barriers — the classic group commit the paper's lazy `EndARU`
//! durability invites.

use crate::error::{LldError, Result};
use crate::lld::LldInner;
use crate::obs::{flush_trace, Obs, Stage};
use crate::types::AruId;
use ld_disk::BlockDevice;
use ld_disk::{Condvar, Mutex};
use std::time::Instant;

#[derive(Debug, Default)]
struct GcState {
    /// Tickets issued to durability callers.
    started: u64,
    /// Highest ticket claimed into some leader's batch. Batch size is
    /// computed against this (not `done`) under the state lock, so a
    /// caller arriving while a pipelined batch is still in its barrier
    /// wait is never counted twice and never lost: it is above
    /// `claimed`, so it belongs to the next leader's batch.
    claimed: u64,
    /// Highest ticket covered by a completed batch: every caller with
    /// `ticket < done` has had its work sealed and barriered.
    done: u64,
    /// A leader is currently sealing (and, on the synchronous device
    /// path, barriering). On the pipelined path leadership is handed
    /// off before the barrier wait, so the next batch seals while the
    /// previous barrier is in flight.
    leader_active: bool,
    /// Outcome of the most recent batch (`None` = success). Followers
    /// covered by a batch report its outcome; a follower that sleeps
    /// through several batches reports the latest one — conservative,
    /// since a device that fails a barrier keeps failing (and a later
    /// successful barrier also covers earlier writes).
    last_error: Option<LldError>,
    /// When the previous leader released leadership (handed off on the
    /// pipelined path, or completed its batch) — the next claim turns
    /// the gap into the `gc_leader_handoff_ns` histogram. `None` while
    /// a leader is active or when instrumentation is off.
    handoff_at: Option<Instant>,
}

/// The shared queue state of the group-commit stage. Near the bottom of
/// the lock hierarchy: never hold it while acquiring the map or log
/// locks. The one lock that sits *below* it is the pipelined device's
/// queue mutex — the leadership gate reads the in-flight barrier gauge
/// while holding the gc state lock (and the pipeline never takes gc
/// locks), so that order is acyclic.
#[derive(Debug, Default)]
pub(crate) struct GroupCommit {
    state: Mutex<GcState>,
    cv: Condvar,
}

impl GroupCommit {
    pub(crate) fn new() -> Self {
        GroupCommit::default()
    }
}

impl<D: BlockDevice> LldInner<D> {
    /// Makes all completed operations durable: seals the current
    /// segment (writing its summary) and barriers the device.
    ///
    /// Concurrent callers are batched: one leader performs the seal and
    /// the barrier for the whole batch while the others wait on its
    /// outcome, so `k` concurrent flushes cost one segment write and
    /// one barrier, not `k`.
    ///
    /// # Errors
    ///
    /// Device errors from the segment write or the barrier.
    pub fn flush(&self) -> Result<()> {
        let timer = self.obs.timer();
        let mut st = self.gc.state.lock();
        let ticket = st.started;
        st.started += 1;
        // Every durability caller is one trace: a `commit` span
        // wrapping its queue wait and (for the leader) the seal and
        // barrier stages. The ring's mutex is a leaf, so emitting under
        // the gc state lock is safe.
        let trace = flush_trace(ticket);
        self.obs.stage_begin(self.now(), trace, Stage::Commit);
        let q_timer = self.obs.timer();
        self.obs.stage_begin(self.now(), trace, Stage::QueueWait);
        loop {
            if st.done > ticket {
                // A batch sealed after our ticket was taken: our work is
                // covered by its outcome.
                let res = match &st.last_error {
                    Some(e) => Err(e.clone()),
                    None => Ok(()),
                };
                drop(st);
                self.obs
                    .stage_end(self.now(), trace, Stage::QueueWait, Obs::elapsed(q_timer));
                if res.is_ok() {
                    self.obs
                        .flush_done(self.now(), self.stats.segments_sealed.get(), timer);
                }
                self.obs
                    .stage_end(self.now(), trace, Stage::Commit, Obs::elapsed(timer));
                return res;
            }
            // Claim leadership only when the device can absorb another
            // barrier-producing batch. On the pipelined path the
            // previous leader hands off while its barrier is still in
            // flight; gating the claim on a free barrier slot (at most
            // one batch flushing + one staged) keeps batches *large* —
            // callers arriving while both slots are busy accumulate
            // into the next batch instead of each leading a batch of
            // one — and bounds how far write submission runs ahead of a
            // pending barrier after a power cut. Waiters are woken by
            // every batch completion (which is also when a slot frees).
            if !st.leader_active && self.device.barrier_slot_free() {
                break;
            }
            st = self.gc.cv.wait(st);
        }

        // Leader: everything started up to here is in the batch. Batch
        // accounting (including `flush_batch_max`) is recorded *before*
        // the state lock drops: any caller that arrives between here
        // and the seal took a ticket above `covering`, so it is part of
        // the next batch and cannot make this one undercount.
        st.leader_active = true;
        if let Some(h) = st.handoff_at.take() {
            self.obs.leader_handoff(Obs::elapsed(Some(h)));
        }
        let covering = st.started;
        let batch = covering - st.claimed;
        let first_trace = flush_trace(st.claimed);
        st.claimed = covering;
        self.stats.flush_batches.inc();
        self.stats.flush_batch_callers.add(batch);
        self.stats.flush_batch_max.record_max(batch);
        drop(st);
        self.obs
            .stage_end(self.now(), trace, Stage::QueueWait, Obs::elapsed(q_timer));
        self.obs.group_commit(self.now(), batch, trace, first_trace);

        // Stamp the leader's flush trace into the thread-local context
        // for the rest of the batch: the pipelined device reads it at
        // `write_at` (attributing the seal's media writes, which land on
        // the I/O thread, back to this batch) and at the barrier ack.
        let _trace_ctx = ld_disk::trace_scope(trace);

        // Seal under the log lock alone (a log-only scoped session: the
        // seal touches no mapping shard, so readers and shard-scoped
        // writers proceed during the seal), then barrier without any
        // lock so the whole stack proceeds during the device wait —
        // correct because the batch's writes were issued before this
        // point and the barrier orders against issued writes.
        let mut handed_off = false;
        let res = if let Some(pipe) = self.device.as_pipelined() {
            // Pipelined device: seal, *submit* the barrier, hand
            // leadership off, then wait. The barrier's cover must be
            // captured before the handoff — otherwise the next leader's
            // seal writes would land inside this barrier's cover and a
            // fault felling them would take this (already complete)
            // batch down with it. Submitting also takes the barrier
            // slot the claim gate checks, so the next leader seals only
            // while the device is within its double-buffer bound. The
            // wait runs this batch's inner flush on this thread while
            // the I/O thread streams the next batch's seal writes to
            // the device — the write/barrier overlap the pipeline
            // exists for.
            let seal_timer = self.obs.timer();
            self.obs.stage_begin(self.now(), trace, Stage::Seal);
            let seal = self.with_mutation_at(0, 0, |m| m.roll_segment(0));
            self.after_scoped();
            self.obs
                .stage_end(self.now(), trace, Stage::Seal, Obs::elapsed(seal_timer));
            match seal.and_then(|()| pipe.submit_barrier().map_err(LldError::from)) {
                Err(e) => Err(e),
                Ok(barrier) => {
                    {
                        let mut st = self.gc.state.lock();
                        st.leader_active = false;
                        st.handoff_at = self.obs.timer();
                    }
                    handed_off = true;
                    self.gc.cv.notify_all();
                    let wait_timer = self.obs.timer();
                    self.obs.stage_begin(self.now(), trace, Stage::BarrierWait);
                    let res = pipe.wait_barrier(barrier).map_err(LldError::from);
                    self.obs.stage_end(
                        self.now(),
                        trace,
                        Stage::BarrierWait,
                        Obs::elapsed(wait_timer),
                    );
                    res
                }
            }
        } else {
            let seal_timer = self.obs.timer();
            self.obs.stage_begin(self.now(), trace, Stage::Seal);
            let seal = self.with_mutation_at(0, 0, |m| m.roll_segment(0));
            self.after_scoped();
            self.obs
                .stage_end(self.now(), trace, Stage::Seal, Obs::elapsed(seal_timer));
            let wait_timer = self.obs.timer();
            self.obs.stage_begin(self.now(), trace, Stage::BarrierWait);
            let res = seal.and_then(|()| self.device.flush().map_err(LldError::from));
            self.obs.stage_end(
                self.now(),
                trace,
                Stage::BarrierWait,
                Obs::elapsed(wait_timer),
            );
            res
        };

        let mut st = self.gc.state.lock();
        // Barriers can complete out of submission order on the
        // pipelined path (a later leader's barrier may retire first;
        // it covers this batch's earlier writes), so `done` only moves
        // forward.
        st.done = st.done.max(covering);
        if !handed_off {
            // After a handoff the flag belongs to the next leader.
            st.leader_active = false;
            st.handoff_at = self.obs.timer();
        }
        st.last_error = res.as_ref().err().cloned();
        drop(st);
        self.gc.cv.notify_all();

        if res.is_ok() {
            self.obs
                .flush_done(self.now(), self.stats.segments_sealed.get(), timer);
        }
        self.obs
            .stage_end(self.now(), trace, Stage::Commit, Obs::elapsed(timer));
        res
    }

    /// [`end_aru`](LldInner::end_aru) followed by a group-committed
    /// [`flush`](LldInner::flush): on success the ARU's effects are durable,
    /// not merely committed. Concurrent callers share one barrier.
    ///
    /// # Errors
    ///
    /// Those of `end_aru` (the ARU is then gone) plus those of `flush`.
    pub fn end_aru_sync(&self, aru: AruId) -> Result<()> {
        self.end_aru(aru)?;
        self.flush()
    }
}
