//! Observability: structured event tracing, latency histograms, ARU
//! lifecycle spans, and the [`ObsSnapshot`] stats surface.
//!
//! The paper's evaluation is entirely about making LLD costs visible —
//! segment writes, commit-record flushes, list-walk overhead. This
//! module is the measurement substrate: every [`Lld`](crate::Lld)
//! carries an [`Obs`] that records
//!
//! * typed **trace events** ([`TraceEvent`]) in a bounded ring buffer
//!   ([`TraceRing`]) — ARU begin/commit/abort/conflict, segment seal,
//!   flush, cleaner pass, checkpoint, recovery scan — each stamped with
//!   a monotonic sequence number and the logical timestamp;
//! * **latency histograms** ([`LatencyHistogram`], 64 log₂ buckets)
//!   for the hot LLD paths (`read`, `write`, `end_aru`, `flush`, wall
//!   time) — the device layer keeps its own in
//!   [`DiskStatsSnapshot`](ld_disk::DiskStatsSnapshot) (modeled service
//!   time);
//! * per-ARU **lifecycle spans** ([`AruSpan`]): begin/end logical time,
//!   wall duration, operations contained, shadow copy-on-write records,
//!   and outcome.
//!
//! Everything is bundled by [`Lld::obs_snapshot`](crate::Lld::obs_snapshot)
//! into an [`ObsSnapshot`] that renders as a human table (`Display`)
//! or JSON ([`ObsSnapshot::to_json`] — hand-rolled, the workspace has
//! no serde). Instrumentation is on by default and can be disabled at
//! format time with [`ObsConfig::disabled()`]; disabled, every hook is
//! a single branch.

use crate::recovery::RecoveryReport;
use crate::shard::ShardLockStats;
use crate::stats::LldStats;
use ld_disk::{thread_tag, DiskStatsSnapshot, HistogramSnapshot, LatencyHistogram, Mutex};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

// ----------------------------------------------------------------------
// Trace ids
// ----------------------------------------------------------------------

/// Namespace bit for group-commit flush traces (the low bits hold the
/// gc ticket number). Keeps flush traces from colliding with ARU
/// commit traces, which use the raw ARU id directly.
pub const TRACE_FLUSH_BASE: u64 = 1 << 32;

/// Namespace bit for cleaner-pass traces (the low bits hold the pass
/// ordinal).
pub const TRACE_CLEANER_BASE: u64 = 2 << 32;

/// Namespace bit for restart-recovery traces (the low bits hold the
/// recovery attempt ordinal — in practice always 1, since a process
/// recovers once).
pub const TRACE_RECOVERY_BASE: u64 = 3 << 32;

/// The trace id of an ARU commit: the raw ARU id itself.
#[inline]
pub fn aru_trace(aru: u64) -> u64 {
    aru
}

/// The trace id of one group-commit flush batch, from its gc ticket.
#[inline]
pub fn flush_trace(ticket: u64) -> u64 {
    TRACE_FLUSH_BASE | ticket
}

/// The trace id of one background cleaner pass, from its ordinal.
#[inline]
pub fn cleaner_trace(pass: u64) -> u64 {
    TRACE_CLEANER_BASE | pass
}

/// The trace id of one restart recovery, from its attempt ordinal.
#[inline]
pub fn recovery_trace(attempt: u64) -> u64 {
    TRACE_RECOVERY_BASE | attempt
}

// ----------------------------------------------------------------------
// Configuration
// ----------------------------------------------------------------------

/// Observability configuration, fixed when the logical disk is built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Master switch. Off, every instrumentation hook reduces to one
    /// branch and the snapshot contains only the plain counters.
    pub enabled: bool,
    /// Capacity of the trace-event ring buffer; older events are
    /// dropped (and counted) once it is full.
    pub ring_capacity: usize,
    /// Number of *finished* ARU spans retained, newest first.
    pub max_spans: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: true,
            ring_capacity: 1024,
            max_spans: 256,
        }
    }
}

impl ObsConfig {
    /// Instrumentation fully off (counters in [`LldStats`] still run).
    pub fn disabled() -> Self {
        ObsConfig {
            enabled: false,
            ..ObsConfig::default()
        }
    }
}

// ----------------------------------------------------------------------
// Trace events
// ----------------------------------------------------------------------

/// One stage of a traced operation's cross-thread timeline. Stage
/// begin/end events carry the operation's trace id, so a commit's full
/// path — caller queue wait, leader seal, barrier wait on the leader's
/// thread, media writes on the pipeline I/O thread — reassembles from
/// the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// The whole durability call (`flush`/`end_aru_sync`'s flush) on
    /// the caller's thread; every other gc stage nests inside it.
    Commit,
    /// From taking a gc ticket to being covered by a batch (follower)
    /// or claiming leadership (leader).
    QueueWait,
    /// The leader sealing the open segment (summary + header writes).
    Seal,
    /// The leader waiting for its batch's barrier: `wait_barrier` on
    /// the pipelined path, `device.flush()` on the sync path.
    BarrierWait,
    /// A foreground writer stalled in the cleaner's backpressure gate.
    CleanerGate,
    /// The pipeline I/O thread applying one (possibly coalesced) write
    /// to the inner device.
    MediaWrite,
    /// The inner device flush issued for a barrier, on the waiting
    /// thread.
    BarrierAck,
    /// Cleaner pass phase 1: victim snapshot under the log lock.
    CleanerSnapshot,
    /// Cleaner pass phase 2: liveness prefilter under shard read locks.
    CleanerPrefilter,
    /// Cleaner pass phase 3: block prefetch with no locks held.
    CleanerPrefetch,
    /// Cleaner pass phase 4: relocation in short scoped-write windows.
    CleanerRelocate,
    /// Cleaner pass final phase: checkpoint and segment release.
    CleanerRelease,
    /// Recovery phase 1: locating and decoding per-shard checkpoint
    /// snapshot slabs.
    RecoverySnapshotLoad,
    /// Recovery phase 2: scanning segment summaries for the suffix.
    RecoveryScan,
    /// Recovery phase 3: replaying suffix records into the map.
    RecoveryReplay,
    /// Recovery phase 4: merging shards, rebuilding allocator and log
    /// state, and running the post-recovery check.
    RecoveryFinalize,
}

impl Stage {
    /// Stable snake_case name (used by JSON output and exporters).
    pub fn as_str(&self) -> &'static str {
        match self {
            Stage::Commit => "commit",
            Stage::QueueWait => "queue_wait",
            Stage::Seal => "seal",
            Stage::BarrierWait => "barrier_wait",
            Stage::CleanerGate => "cleaner_gate",
            Stage::MediaWrite => "media_write",
            Stage::BarrierAck => "barrier_ack",
            Stage::CleanerSnapshot => "cleaner_snapshot",
            Stage::CleanerPrefilter => "cleaner_prefilter",
            Stage::CleanerPrefetch => "cleaner_prefetch",
            Stage::CleanerRelocate => "cleaner_relocate",
            Stage::CleanerRelease => "cleaner_release",
            Stage::RecoverySnapshotLoad => "recovery_snapshot_load",
            Stage::RecoveryScan => "recovery_scan",
            Stage::RecoveryReplay => "recovery_replay",
            Stage::RecoveryFinalize => "recovery_finalize",
        }
    }

    /// Parses the name produced by [`Stage::as_str`].
    #[allow(clippy::should_implement_trait)] // fallible, Option-returning
    pub fn from_str(s: &str) -> Option<Stage> {
        Some(match s {
            "commit" => Stage::Commit,
            "queue_wait" => Stage::QueueWait,
            "seal" => Stage::Seal,
            "barrier_wait" => Stage::BarrierWait,
            "cleaner_gate" => Stage::CleanerGate,
            "media_write" => Stage::MediaWrite,
            "barrier_ack" => Stage::BarrierAck,
            "cleaner_snapshot" => Stage::CleanerSnapshot,
            "cleaner_prefilter" => Stage::CleanerPrefilter,
            "cleaner_prefetch" => Stage::CleanerPrefetch,
            "cleaner_relocate" => Stage::CleanerRelocate,
            "cleaner_release" => Stage::CleanerRelease,
            "recovery_snapshot_load" => Stage::RecoverySnapshotLoad,
            "recovery_scan" => Stage::RecoveryScan,
            "recovery_replay" => Stage::RecoveryReplay,
            "recovery_finalize" => Stage::RecoveryFinalize,
            _ => return None,
        })
    }
}

/// One structured trace event. Identifiers are raw (`u64`/`u32`) so the
/// payload stays `Copy` and serialization stays trivial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceEvent {
    /// `BeginARU` returned a new ARU.
    AruBegin {
        /// Raw ARU id.
        aru: u64,
    },
    /// `EndARU` committed the ARU.
    AruCommit {
        /// Raw ARU id.
        aru: u64,
        /// Operations executed inside the ARU.
        ops: u64,
        /// Shadow copy-on-write records the ARU accumulated.
        cow_records: u64,
    },
    /// `AbortARU` discarded the ARU's shadow state.
    AruAbort {
        /// Raw ARU id.
        aru: u64,
    },
    /// `EndARU` failed with a commit conflict; the ARU was aborted.
    AruConflict {
        /// Raw ARU id.
        aru: u64,
    },
    /// A filled segment was sealed and written to the device.
    SegmentSeal {
        /// Physical segment slot.
        segment: u32,
        /// Log sequence number of the sealed segment.
        seq: u64,
        /// Data blocks in the segment.
        blocks: u32,
        /// Total bytes written (header + data + summary).
        bytes: u64,
    },
    /// `Flush` completed: commit records are durable.
    Flush {
        /// Segments sealed so far (after this flush).
        segments_sealed: u64,
    },
    /// A group-commit leader sealed and barriered for a batch of
    /// concurrent durability callers.
    GroupCommit {
        /// Number of `flush`/`end_aru_sync` callers served by the one
        /// seal + barrier.
        batch: u64,
        /// Trace id of the leader's own flush.
        trace: u64,
        /// Trace id of the first flush covered by this batch; the batch
        /// covers traces `first_trace .. first_trace + batch`.
        first_trace: u64,
    },
    /// A traced operation entered a stage (on the recording thread).
    StageBegin {
        /// Trace id of the operation (0 = untraced).
        trace: u64,
        /// The stage being entered.
        stage: Stage,
    },
    /// A traced operation left a stage (on the recording thread).
    StageEnd {
        /// Trace id of the operation (0 = untraced).
        trace: u64,
        /// The stage being left.
        stage: Stage,
        /// Wall-clock nanoseconds spent in the stage.
        nanos: u64,
    },
    /// The background cleaner thread woke with cleaning work (free
    /// segments below the low watermark).
    CleanerWake {
        /// Free segment slots at wake-up.
        free_segments: u32,
    },
    /// The cleaner finished a pass.
    CleanerPass {
        /// Free segment slots after the pass.
        free_segments: u32,
        /// Cumulative blocks relocated (after the pass).
        blocks_relocated: u64,
    },
    /// A checkpoint was written.
    Checkpoint {
        /// Highest segment sequence number the checkpoint covers.
        covered_seq: u64,
        /// Payload bytes written.
        bytes: u64,
    },
    /// Recovery finished its log scan.
    RecoveryScan {
        /// Segment slots examined.
        segments_scanned: u32,
        /// Valid segments replayed.
        segments_replayed: u32,
        /// Summary records applied.
        records_applied: u64,
    },
}

impl TraceEvent {
    /// Stable snake_case name of the event type (used by JSON output).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::AruBegin { .. } => "aru_begin",
            TraceEvent::AruCommit { .. } => "aru_commit",
            TraceEvent::AruAbort { .. } => "aru_abort",
            TraceEvent::AruConflict { .. } => "aru_conflict",
            TraceEvent::SegmentSeal { .. } => "segment_seal",
            TraceEvent::Flush { .. } => "flush",
            TraceEvent::GroupCommit { .. } => "group_commit",
            TraceEvent::StageBegin { .. } => "stage_begin",
            TraceEvent::StageEnd { .. } => "stage_end",
            TraceEvent::CleanerWake { .. } => "cleaner_wake",
            TraceEvent::CleanerPass { .. } => "cleaner_pass",
            TraceEvent::Checkpoint { .. } => "checkpoint",
            TraceEvent::RecoveryScan { .. } => "recovery_scan",
        }
    }
}

/// A trace event with its ring metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Monotonic sequence number (never reused, survives wraparound).
    pub seq: u64,
    /// Logical timestamp (the LLD operation clock) when recorded.
    pub ts: u64,
    /// Tag of the recording thread (see [`ld_disk::thread_tag`]); 0
    /// only in entries deserialized from external data.
    pub tid: u64,
    /// Microseconds since the ring was created (one wall clock shared
    /// by every recording thread, so cross-thread timelines line up).
    pub wall_us: u64,
    /// The event itself.
    pub event: TraceEvent,
}

#[derive(Debug, Default)]
struct RingInner {
    entries: VecDeque<TraceEntry>,
    next_seq: u64,
    dropped: u64,
}

/// A bounded ring buffer of [`TraceEntry`] values.
///
/// Recording takes a short mutex critical section (push + counter);
/// when full, the oldest entry is dropped and counted. Entries come
/// back in sequence order.
///
/// # Example
///
/// ```
/// use ld_core::obs::{TraceEvent, TraceRing};
///
/// let ring = TraceRing::new(2);
/// ring.record(1, TraceEvent::AruBegin { aru: 1 });
/// ring.record(2, TraceEvent::AruBegin { aru: 2 });
/// ring.record(3, TraceEvent::AruAbort { aru: 1 }); // evicts seq 0
/// let entries = ring.entries();
/// assert_eq!(entries.len(), 2);
/// assert_eq!(entries[0].seq, 1);
/// assert_eq!(ring.dropped(), 1);
/// ```
#[derive(Debug)]
pub struct TraceRing {
    capacity: usize,
    /// Wall-clock origin for every entry's `wall_us` stamp.
    epoch: Instant,
    inner: Mutex<RingInner>,
}

impl TraceRing {
    /// Creates a ring holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            capacity: capacity.max(1),
            epoch: Instant::now(),
            inner: Mutex::new(RingInner::default()),
        }
    }

    /// Appends an event, evicting the oldest entry when full. The entry
    /// is stamped with the recording thread's tag and the shared wall
    /// clock.
    pub fn record(&self, ts: u64, event: TraceEvent) {
        let tid = thread_tag();
        let wall_us = self.epoch.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.entries.len() == self.capacity {
            inner.entries.pop_front();
            inner.dropped += 1;
        }
        inner.entries.push_back(TraceEntry {
            seq,
            ts,
            tid,
            wall_us,
            event,
        });
    }

    /// The retained entries, oldest first (ascending `seq`).
    pub fn entries(&self) -> Vec<TraceEntry> {
        self.inner.lock().entries.iter().copied().collect()
    }

    /// Number of entries evicted by wraparound.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Number of entries currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether the ring holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of retained entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

// ----------------------------------------------------------------------
// ARU lifecycle spans
// ----------------------------------------------------------------------

/// How an ARU's life ended (or that it has not).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanOutcome {
    /// Still running.
    Active,
    /// Committed by `EndARU`.
    Committed,
    /// Aborted explicitly by `AbortARU`.
    Aborted,
    /// Aborted by `EndARU` because of a commit conflict.
    Conflicted,
}

impl SpanOutcome {
    /// Stable lowercase name.
    pub fn as_str(&self) -> &'static str {
        match self {
            SpanOutcome::Active => "active",
            SpanOutcome::Committed => "committed",
            SpanOutcome::Aborted => "aborted",
            SpanOutcome::Conflicted => "conflicted",
        }
    }

    /// Parses the name produced by [`SpanOutcome::as_str`].
    #[allow(clippy::should_implement_trait)] // fallible, Option-returning
    pub fn from_str(s: &str) -> Option<SpanOutcome> {
        Some(match s {
            "active" => SpanOutcome::Active,
            "committed" => SpanOutcome::Committed,
            "aborted" => SpanOutcome::Aborted,
            "conflicted" => SpanOutcome::Conflicted,
            _ => return None,
        })
    }
}

/// The lifecycle record of one ARU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AruSpan {
    /// Raw ARU id.
    pub aru: u64,
    /// Logical timestamp at `BeginARU`.
    pub begin_ts: u64,
    /// Logical timestamp at `EndARU`/`AbortARU` (`None` while active).
    pub end_ts: Option<u64>,
    /// Wall-clock duration from begin to end, in nanoseconds (`None`
    /// while active).
    pub wall_nanos: Option<u64>,
    /// LD operations executed in the ARU's context.
    pub ops: u64,
    /// Shadow copy-on-write records created for the ARU.
    pub cow_records: u64,
    /// How the ARU ended.
    pub outcome: SpanOutcome,
}

#[derive(Debug)]
struct ActiveSpan {
    begin_ts: u64,
    started: Instant,
    ops: u64,
    cow_records: u64,
}

#[derive(Debug, Default)]
struct SpanTable {
    active: BTreeMap<u64, ActiveSpan>,
    finished: VecDeque<AruSpan>,
}

// ----------------------------------------------------------------------
// Obs: the per-Lld instrumentation bundle
// ----------------------------------------------------------------------

/// The instrumentation attached to one logical disk: trace ring, LLD
/// latency histograms, ARU spans, and the last recovery report.
///
/// All methods take `&self` (interior mutability), so hooks can run
/// while the `Lld` itself is mutably borrowed. Every hook first checks
/// the enabled flag.
#[derive(Debug)]
pub struct Obs {
    cfg: ObsConfig,
    ring: Arc<TraceRing>,
    lld_read: LatencyHistogram,
    lld_write: LatencyHistogram,
    end_aru: LatencyHistogram,
    flush: LatencyHistogram,
    group_commit_batch: LatencyHistogram,
    aru_shard_spread: LatencyHistogram,
    cleaner_pass: LatencyHistogram,
    gc_queue_wait: LatencyHistogram,
    gc_seal: LatencyHistogram,
    gc_barrier_wait: LatencyHistogram,
    gc_leader_handoff: LatencyHistogram,
    backpressure_stall: LatencyHistogram,
    recovery_snapshot_load: LatencyHistogram,
    recovery_replay: LatencyHistogram,
    spans: Mutex<SpanTable>,
    recovery: Mutex<Option<RecoveryReport>>,
}

impl Obs {
    /// Builds the instrumentation bundle for one logical disk.
    pub fn new(cfg: ObsConfig) -> Self {
        Obs {
            ring: Arc::new(TraceRing::new(cfg.ring_capacity)),
            cfg,
            lld_read: LatencyHistogram::new(),
            lld_write: LatencyHistogram::new(),
            end_aru: LatencyHistogram::new(),
            flush: LatencyHistogram::new(),
            group_commit_batch: LatencyHistogram::new(),
            aru_shard_spread: LatencyHistogram::new(),
            cleaner_pass: LatencyHistogram::new(),
            gc_queue_wait: LatencyHistogram::new(),
            gc_seal: LatencyHistogram::new(),
            gc_barrier_wait: LatencyHistogram::new(),
            gc_leader_handoff: LatencyHistogram::new(),
            backpressure_stall: LatencyHistogram::new(),
            recovery_snapshot_load: LatencyHistogram::new(),
            recovery_replay: LatencyHistogram::new(),
            spans: Mutex::new(SpanTable::default()),
            recovery: Mutex::new(None),
        }
    }

    /// Whether instrumentation is recording.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// The configuration this bundle was built with.
    pub fn config(&self) -> &ObsConfig {
        &self.cfg
    }

    /// The trace-event ring.
    pub fn ring(&self) -> &TraceRing {
        &self.ring
    }

    /// Starts a wall-clock timer for a hot-path operation (`None` when
    /// disabled, making the whole measurement free).
    #[inline]
    pub fn timer(&self) -> Option<Instant> {
        if self.cfg.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    fn elapsed_nanos(timer: Option<Instant>) -> Option<u64> {
        timer.map(|t| t.elapsed().as_nanos() as u64)
    }

    /// Records a raw event (gated on the enabled flag).
    #[inline]
    pub fn event(&self, ts: u64, event: TraceEvent) {
        if self.cfg.enabled {
            self.ring.record(ts, event);
        }
    }

    // ---- hot-path hooks ----------------------------------------------

    /// Completes a timed `read` operation.
    #[inline]
    pub(crate) fn read_done(&self, timer: Option<Instant>) {
        if let Some(n) = Self::elapsed_nanos(timer) {
            self.lld_read.record(n);
        }
    }

    /// Completes a timed `write` operation.
    #[inline]
    pub(crate) fn write_done(&self, timer: Option<Instant>) {
        if let Some(n) = Self::elapsed_nanos(timer) {
            self.lld_write.record(n);
        }
    }

    /// Completes a timed `flush`, emitting the flush event.
    pub(crate) fn flush_done(&self, ts: u64, segments_sealed: u64, timer: Option<Instant>) {
        if let Some(n) = Self::elapsed_nanos(timer) {
            self.flush.record(n);
            self.ring.record(ts, TraceEvent::Flush { segments_sealed });
        }
    }

    /// A group-commit leader finished a batch of `batch` durability
    /// callers: records the batch size (into the `group_commit_batch`
    /// histogram — size distribution, not latency) and the event.
    /// `trace` is the leader's own flush trace id and `first_trace` the
    /// lowest flush trace covered, so the batch event ties the covered
    /// commit spans (`first_trace .. first_trace + batch`) together.
    pub(crate) fn group_commit(&self, ts: u64, batch: u64, trace: u64, first_trace: u64) {
        if !self.cfg.enabled {
            return;
        }
        self.group_commit_batch.record(batch);
        self.ring.record(
            ts,
            TraceEvent::GroupCommit {
                batch,
                trace,
                first_trace,
            },
        );
    }

    /// Wall-clock nanoseconds since `timer` (0 when instrumentation was
    /// off and the timer is `None`).
    #[inline]
    pub(crate) fn elapsed(timer: Option<Instant>) -> u64 {
        Self::elapsed_nanos(timer).unwrap_or(0)
    }

    /// A traced operation entered `stage` on the calling thread.
    #[inline]
    pub(crate) fn stage_begin(&self, ts: u64, trace: u64, stage: Stage) {
        if self.cfg.enabled {
            self.ring
                .record(ts, TraceEvent::StageBegin { trace, stage });
        }
    }

    /// A traced operation left `stage` after `nanos` wall-clock
    /// nanoseconds: records the end event and feeds the stage's
    /// latency histogram, when it has one.
    pub(crate) fn stage_end(&self, ts: u64, trace: u64, stage: Stage, nanos: u64) {
        if !self.cfg.enabled {
            return;
        }
        match stage {
            Stage::QueueWait => self.gc_queue_wait.record(nanos),
            Stage::Seal => self.gc_seal.record(nanos),
            Stage::BarrierWait => self.gc_barrier_wait.record(nanos),
            Stage::CleanerGate => self.backpressure_stall.record(nanos),
            _ => {}
        }
        self.ring.record(
            ts,
            TraceEvent::StageEnd {
                trace,
                stage,
                nanos,
            },
        );
    }

    /// Records the gap between a pipelined leader releasing leadership
    /// and the next leader claiming it (histogram only: the two sides
    /// run on different threads, so a begin/end pair would break
    /// per-thread span nesting).
    #[inline]
    pub(crate) fn leader_handoff(&self, nanos: u64) {
        if self.cfg.enabled {
            self.gc_leader_handoff.record(nanos);
        }
    }

    /// A concurrent-ARU commit touched `n` map shards: records the
    /// spread (into the `aru_shard_spread` histogram — shard counts,
    /// not times).
    #[inline]
    pub(crate) fn shard_spread(&self, n: u64) {
        if self.cfg.enabled {
            self.aru_shard_spread.record(n);
        }
    }

    /// The background cleaner thread woke below the low watermark.
    pub(crate) fn cleaner_wake(&self, ts: u64, free_segments: u32) {
        self.event(ts, TraceEvent::CleanerWake { free_segments });
    }

    /// Completes one timed background cleaner pass: records the pass
    /// duration (into the `cleaner_pass_ns` histogram) and the event.
    pub(crate) fn cleaner_pass_done(
        &self,
        ts: u64,
        free_segments: u32,
        blocks_relocated: u64,
        timer: Option<Instant>,
    ) {
        if !self.cfg.enabled {
            return;
        }
        if let Some(n) = Self::elapsed_nanos(timer) {
            self.cleaner_pass.record(n);
        }
        self.ring.record(
            ts,
            TraceEvent::CleanerPass {
                free_segments,
                blocks_relocated,
            },
        );
    }

    // ---- ARU lifecycle -----------------------------------------------

    /// `BeginARU`: opens a span and records the event.
    pub(crate) fn aru_begin(&self, aru: u64, ts: u64) {
        if !self.cfg.enabled {
            return;
        }
        self.ring.record(ts, TraceEvent::AruBegin { aru });
        self.spans.lock().active.insert(
            aru,
            ActiveSpan {
                begin_ts: ts,
                started: Instant::now(),
                ops: 0,
                cow_records: 0,
            },
        );
    }

    /// Counts one LD operation executed in an ARU's context.
    #[inline]
    pub(crate) fn span_op(&self, aru: u64) {
        if !self.cfg.enabled {
            return;
        }
        if let Some(s) = self.spans.lock().active.get_mut(&aru) {
            s.ops += 1;
        }
    }

    /// Counts one shadow copy-on-write record created for an ARU.
    #[inline]
    pub(crate) fn span_cow(&self, aru: u64) {
        if !self.cfg.enabled {
            return;
        }
        if let Some(s) = self.spans.lock().active.get_mut(&aru) {
            s.cow_records += 1;
        }
    }

    fn span_end(&self, aru: u64, ts: u64, outcome: SpanOutcome) -> Option<AruSpan> {
        let mut table = self.spans.lock();
        let active = table.active.remove(&aru)?;
        let span = AruSpan {
            aru,
            begin_ts: active.begin_ts,
            end_ts: Some(ts),
            wall_nanos: Some(active.started.elapsed().as_nanos() as u64),
            ops: active.ops,
            cow_records: active.cow_records,
            outcome,
        };
        if table.finished.len() == self.cfg.max_spans.max(1) {
            table.finished.pop_front();
        }
        table.finished.push_back(span);
        Some(span)
    }

    /// `EndARU` success: closes the span, records commit latency and
    /// the commit event.
    pub(crate) fn aru_commit(&self, aru: u64, ts: u64, timer: Option<Instant>) {
        if !self.cfg.enabled {
            return;
        }
        if let Some(n) = Self::elapsed_nanos(timer) {
            self.end_aru.record(n);
        }
        let span = self.span_end(aru, ts, SpanOutcome::Committed);
        self.ring.record(
            ts,
            TraceEvent::AruCommit {
                aru,
                ops: span.map_or(0, |s| s.ops),
                cow_records: span.map_or(0, |s| s.cow_records),
            },
        );
    }

    /// `AbortARU`: closes the span and records the event.
    pub(crate) fn aru_abort(&self, aru: u64, ts: u64) {
        if !self.cfg.enabled {
            return;
        }
        self.span_end(aru, ts, SpanOutcome::Aborted);
        self.ring.record(ts, TraceEvent::AruAbort { aru });
    }

    /// `EndARU` conflict: closes the span and records the event.
    pub(crate) fn aru_conflict(&self, aru: u64, ts: u64) {
        if !self.cfg.enabled {
            return;
        }
        self.span_end(aru, ts, SpanOutcome::Conflicted);
        self.ring.record(ts, TraceEvent::AruConflict { aru });
    }

    /// Completes one timed checkpoint-slab decode during recovery
    /// (histogram only: slab loads run fanned out across the worker
    /// pool, so phase spans are recorded separately by the
    /// coordinator).
    #[inline]
    pub(crate) fn recovery_slab_load(&self, timer: Option<Instant>) {
        if let Some(n) = Self::elapsed_nanos(timer) {
            self.recovery_snapshot_load.record(n);
        }
    }

    /// Completes one timed replay batch during recovery (a routed
    /// per-partition batch on a worker, or a serialized barrier record
    /// on the coordinator).
    #[inline]
    pub(crate) fn recovery_replay_batch(&self, timer: Option<Instant>) {
        if let Some(n) = Self::elapsed_nanos(timer) {
            self.recovery_replay.record(n);
        }
    }

    // ---- recovery report ---------------------------------------------

    /// Stores the report of the recovery that produced this disk and
    /// records the scan event.
    pub(crate) fn recovery_done(&self, ts: u64, report: &RecoveryReport) {
        if self.cfg.enabled {
            self.ring.record(
                ts,
                TraceEvent::RecoveryScan {
                    segments_scanned: report.segments_scanned,
                    segments_replayed: report.segments_replayed,
                    records_applied: report.records_applied,
                },
            );
        }
        *self.recovery.lock() = Some(report.clone());
    }

    /// The report of the recovery that produced this disk, if any.
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.recovery.lock().clone()
    }

    // ---- snapshot accessors ------------------------------------------

    /// All finished spans (oldest first) followed by active ones.
    pub fn spans(&self) -> Vec<AruSpan> {
        let table = self.spans.lock();
        let mut out: Vec<AruSpan> = table.finished.iter().copied().collect();
        for (&aru, s) in &table.active {
            out.push(AruSpan {
                aru,
                begin_ts: s.begin_ts,
                end_ts: None,
                wall_nanos: None,
                ops: s.ops,
                cow_records: s.cow_records,
                outcome: SpanOutcome::Active,
            });
        }
        out
    }

    /// Snapshot of the LLD-layer histograms as `(name, snapshot)`
    /// pairs: `lld_read`, `lld_write`, `end_aru`, `flush`,
    /// `cleaner_pass_ns` (latencies in nanoseconds),
    /// `group_commit_batch` (batch sizes, not times),
    /// `aru_shard_spread` (map shards touched per concurrent commit),
    /// and the per-stage commit decomposition: `gc_queue_wait_ns`,
    /// `gc_seal_ns`, `gc_barrier_wait_ns`, `gc_leader_handoff_ns`,
    /// `backpressure_stall_ns`.
    pub fn histograms(&self) -> Vec<(&'static str, HistogramSnapshot)> {
        vec![
            ("lld_read", self.lld_read.snapshot()),
            ("lld_write", self.lld_write.snapshot()),
            ("end_aru", self.end_aru.snapshot()),
            ("flush", self.flush.snapshot()),
            ("group_commit_batch", self.group_commit_batch.snapshot()),
            ("aru_shard_spread", self.aru_shard_spread.snapshot()),
            ("cleaner_pass_ns", self.cleaner_pass.snapshot()),
            ("gc_queue_wait_ns", self.gc_queue_wait.snapshot()),
            ("gc_seal_ns", self.gc_seal.snapshot()),
            ("gc_barrier_wait_ns", self.gc_barrier_wait.snapshot()),
            ("gc_leader_handoff_ns", self.gc_leader_handoff.snapshot()),
            ("backpressure_stall_ns", self.backpressure_stall.snapshot()),
            (
                "recovery_snapshot_load_ns",
                self.recovery_snapshot_load.snapshot(),
            ),
            ("recovery_replay_ns", self.recovery_replay.snapshot()),
        ]
    }
}

// ----------------------------------------------------------------------
// ObsSnapshot
// ----------------------------------------------------------------------

/// A self-contained bundle of everything observable about one logical
/// disk at one instant: operation counters, device counters, latency
/// histograms, recent trace events, ARU spans, the last recovery
/// report, and (optionally) file-system syscall counters.
///
/// Produced by [`Lld::obs_snapshot`](crate::Lld::obs_snapshot); renders
/// as a human table via `Display` and as JSON via
/// [`ObsSnapshot::to_json`].
#[derive(Debug, Clone, Default)]
pub struct ObsSnapshot {
    /// LLD operation counters.
    pub lld: LldStats,
    /// Device counters and service-time histograms, when the device
    /// collects them (a [`SimDisk`](ld_disk::SimDisk) does).
    pub disk: Option<DiskStatsSnapshot>,
    /// Named histograms: `lld_read`, `lld_write`, `end_aru`, `flush`
    /// (wall time), `group_commit_batch` (batch sizes), plus
    /// `disk_read` / `disk_write` (modeled service time) when the
    /// device provides them.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Recent trace events, in sequence order.
    pub events: Vec<TraceEntry>,
    /// Events evicted from the ring by wraparound.
    pub dropped_events: u64,
    /// ARU lifecycle spans (finished, then active).
    pub spans: Vec<AruSpan>,
    /// Per-map-shard lock acquisition counters, one entry per shard.
    pub shards: Vec<ShardLockStats>,
    /// The report of the recovery that produced this disk, if it was
    /// recovered rather than formatted.
    pub recovery: Option<RecoveryReport>,
    /// Optional per-syscall counters of a file system mounted on this
    /// disk, as `(name, count)` pairs (filled by the caller that owns
    /// the file system — the core crate does not know about clients).
    pub fs_ops: Vec<(String, u64)>,
}

impl ObsSnapshot {
    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Serializes the snapshot as a JSON object.
    pub fn to_json(&self) -> String {
        let mut o = json::Obj::new();
        o.raw("lld", &lld_stats_json(&self.lld));
        match &self.disk {
            Some(d) => o.raw("disk", &disk_stats_json(d)),
            None => o.null("disk"),
        };
        let mut hists = json::Obj::new();
        for (name, h) in &self.histograms {
            hists.raw(name, &histogram_json(h));
        }
        o.raw("histograms", &hists.finish());
        let mut events = json::Arr::new();
        for e in &self.events {
            events.push_raw(&trace_entry_json(e));
        }
        o.raw("events", &events.finish());
        o.u64("dropped_events", self.dropped_events);
        let mut spans = json::Arr::new();
        for s in &self.spans {
            spans.push_raw(&span_json(s));
        }
        o.raw("spans", &spans.finish());
        let mut shards = json::Arr::new();
        for s in &self.shards {
            shards.push_raw(&shard_json(s));
        }
        o.raw("shards", &shards.finish());
        match &self.recovery {
            Some(r) => o.raw("recovery", &recovery_json(r)),
            None => o.null("recovery"),
        };
        let mut fs = json::Obj::new();
        for (name, v) in &self.fs_ops {
            fs.u64(name, *v);
        }
        o.raw("fs_ops", &fs.finish());
        o.finish()
    }

    /// Parses a snapshot previously serialized by
    /// [`ObsSnapshot::to_json`]. Unknown fields and event types are
    /// skipped, so newer writers stay readable.
    pub fn from_json(s: &str) -> Result<ObsSnapshot, String> {
        Self::from_value(&json::parse(s)?)
    }

    /// Rebuilds a snapshot from an already-parsed JSON value (the
    /// object [`ObsSnapshot::to_json`] emits).
    pub fn from_value(v: &json::Value) -> Result<ObsSnapshot, String> {
        v.as_obj().ok_or("snapshot is not a JSON object")?;
        let mut snap = ObsSnapshot {
            lld: v.get("lld").map(lld_stats_from).unwrap_or_default(),
            dropped_events: get_u64(v, "dropped_events"),
            ..ObsSnapshot::default()
        };
        if let Some(d) = v.get("disk") {
            if d.as_obj().is_some() {
                snap.disk = Some(disk_stats_from(d));
            }
        }
        if let Some(pairs) = v.get("histograms").and_then(json::Value::as_obj) {
            for (name, h) in pairs {
                snap.histograms.push((name.clone(), histogram_from(h)));
            }
        }
        if let Some(items) = v.get("events").and_then(json::Value::as_arr) {
            snap.events = items.iter().filter_map(trace_entry_from).collect();
        }
        if let Some(items) = v.get("spans").and_then(json::Value::as_arr) {
            snap.spans = items.iter().map(span_from).collect();
        }
        if let Some(items) = v.get("shards").and_then(json::Value::as_arr) {
            snap.shards = items
                .iter()
                .map(|s| ShardLockStats {
                    shard: get_u64(s, "shard") as u32,
                    read_locks: get_u64(s, "read_locks"),
                    write_locks: get_u64(s, "write_locks"),
                })
                .collect();
        }
        if let Some(r) = v.get("recovery") {
            if r.as_obj().is_some() {
                snap.recovery = Some(recovery_from(r));
            }
        }
        if let Some(pairs) = v.get("fs_ops").and_then(json::Value::as_obj) {
            for (name, n) in pairs {
                snap.fs_ops.push((name.clone(), n.as_u64().unwrap_or(0)));
            }
        }
        Ok(snap)
    }

    /// Renders the trace ring as a Chrome Trace Event Format document
    /// (loadable in `chrome://tracing` / Perfetto): one row per thread,
    /// stage begin/end pairs matched into complete (`"X"`) duration
    /// events nested per commit, every other event as an instant.
    ///
    /// Thread rows are labeled from
    /// [`ld_disk::thread_names`] when the snapshot was taken in this
    /// process; otherwise they fall back to `thread-<tid>`.
    pub fn to_chrome_trace(&self) -> String {
        use std::collections::HashMap;
        let names = ld_disk::thread_names();
        let mut events = json::Arr::new();
        let mut tids: Vec<u64> = Vec::new();
        let mut open: HashMap<(u64, u64, Stage), Vec<u64>> = HashMap::new();
        let mut unmatched_ends = 0u64;
        for e in &self.events {
            if !tids.contains(&e.tid) {
                tids.push(e.tid);
            }
            match e.event {
                TraceEvent::StageBegin { trace, stage } => {
                    open.entry((e.tid, trace, stage))
                        .or_default()
                        .push(e.wall_us);
                }
                TraceEvent::StageEnd {
                    trace,
                    stage,
                    nanos,
                } => {
                    let begin = open.get_mut(&(e.tid, trace, stage)).and_then(Vec::pop);
                    let Some(begin_us) = begin else {
                        // The begin was evicted from the ring; the span
                        // cannot be placed, so it is dropped (counted in
                        // otherData).
                        unmatched_ends += 1;
                        continue;
                    };
                    let mut o = json::Obj::new();
                    o.str("name", stage.as_str());
                    o.str("cat", "lld");
                    o.str("ph", "X");
                    o.u64("pid", 1);
                    o.u64("tid", e.tid);
                    o.u64("ts", begin_us);
                    o.f64("dur", nanos as f64 / 1000.0);
                    let mut args = json::Obj::new();
                    args.u64("trace", trace);
                    args.u64("seq", e.seq);
                    o.raw("args", &args.finish());
                    events.push_raw(&o.finish());
                }
                other => {
                    let mut o = json::Obj::new();
                    o.str("name", other.kind());
                    o.str("cat", "lld");
                    o.str("ph", "i");
                    o.str("s", "t");
                    o.u64("pid", 1);
                    o.u64("tid", e.tid);
                    o.u64("ts", e.wall_us);
                    let mut args = json::Obj::new();
                    args.u64("seq", e.seq);
                    match other {
                        TraceEvent::GroupCommit {
                            batch,
                            trace,
                            first_trace,
                        } => {
                            args.u64("batch", batch);
                            args.u64("trace", trace);
                            args.u64("first_trace", first_trace);
                        }
                        TraceEvent::AruBegin { aru }
                        | TraceEvent::AruAbort { aru }
                        | TraceEvent::AruConflict { aru }
                        | TraceEvent::AruCommit { aru, .. } => {
                            args.u64("trace", aru_trace(aru));
                        }
                        _ => {}
                    }
                    o.raw("args", &args.finish());
                    events.push_raw(&o.finish());
                }
            }
        }
        for tid in tids {
            let fallback = format!("thread-{tid}");
            let label = names.get(&tid).map(String::as_str).unwrap_or(&fallback);
            let mut o = json::Obj::new();
            o.str("name", "thread_name");
            o.str("ph", "M");
            o.u64("pid", 1);
            o.u64("tid", tid);
            let mut args = json::Obj::new();
            args.str("name", label);
            o.raw("args", &args.finish());
            events.push_raw(&o.finish());
        }
        let mut top = json::Obj::new();
        top.raw("traceEvents", &events.finish());
        top.str("displayTimeUnit", "ms");
        let mut other = json::Obj::new();
        other.u64("dropped_events", self.dropped_events);
        other.u64("unmatched_stage_ends", unmatched_ends);
        top.raw("otherData", &other.finish());
        top.finish()
    }
}

fn get_u64(v: &json::Value, key: &str) -> u64 {
    v.get(key).and_then(json::Value::as_u64).unwrap_or(0)
}

fn lld_stats_from(v: &json::Value) -> LldStats {
    let mut s = LldStats::default();
    let Some(pairs) = v.as_obj() else {
        return s;
    };
    for (k, val) in pairs {
        let n = val.as_u64().unwrap_or(0);
        match k.as_str() {
            "reads" => s.reads = n,
            "writes" => s.writes = n,
            "new_blocks" => s.new_blocks = n,
            "delete_blocks" => s.delete_blocks = n,
            "new_lists" => s.new_lists = n,
            "delete_lists" => s.delete_lists = n,
            "arus_begun" => s.arus_begun = n,
            "arus_committed" => s.arus_committed = n,
            "arus_aborted" => s.arus_aborted = n,
            "commit_conflicts" => s.commit_conflicts = n,
            "segments_sealed" => s.segments_sealed = n,
            "records_emitted" => s.records_emitted = n,
            "summary_bytes" => s.summary_bytes = n,
            "data_blocks_written" => s.data_blocks_written = n,
            "blocks_relocated" => s.blocks_relocated = n,
            "cleaner_runs" => s.cleaner_runs = n,
            "cleaner_passes" => s.cleaner_passes = n,
            "cleaner_blocks_relocated" => s.cleaner_blocks_relocated = n,
            "cleaner_stale_skips" => s.cleaner_stale_skips = n,
            "backpressure_stalls" => s.backpressure_stalls = n,
            "checkpoints" => s.checkpoints = n,
            "list_walk_steps" => s.list_walk_steps = n,
            "shadow_cow_records" => s.shadow_cow_records = n,
            "shadow_records_merged" => s.shadow_records_merged = n,
            "committed_records_drained" => s.committed_records_drained = n,
            "cache_hits" => s.cache_hits = n,
            "cache_misses" => s.cache_misses = n,
            "flush_batches" => s.flush_batches = n,
            "flush_batch_callers" => s.flush_batch_callers = n,
            "flush_batch_max" => s.flush_batch_max = n,
            "full_mutations" => s.full_mutations = n,
            "scoped_mutations" => s.scoped_mutations = n,
            "single_shard_commits" => s.single_shard_commits = n,
            "cross_shard_commits" => s.cross_shard_commits = n,
            "commit_full_fallbacks" => s.commit_full_fallbacks = n,
            "walk_escalations" => s.walk_escalations = n,
            "pipeline_stalls" => s.pipeline_stalls = n,
            "inflight_barriers" => s.inflight_barriers = n,
            "trace_events_dropped" => s.trace_events_dropped = n,
            _ => {}
        }
    }
    s
}

fn disk_stats_from(v: &json::Value) -> DiskStatsSnapshot {
    DiskStatsSnapshot {
        reads: get_u64(v, "reads"),
        writes: get_u64(v, "writes"),
        bytes_read: get_u64(v, "bytes_read"),
        bytes_written: get_u64(v, "bytes_written"),
        flushes: get_u64(v, "flushes"),
        sequential_writes: get_u64(v, "sequential_writes"),
        sequential_reads: get_u64(v, "sequential_reads"),
        busy: std::time::Duration::from_nanos(get_u64(v, "busy_nanos")),
        ..DiskStatsSnapshot::default()
    }
}

fn histogram_from(v: &json::Value) -> HistogramSnapshot {
    let mut h = HistogramSnapshot {
        count: get_u64(v, "count"),
        sum: get_u64(v, "sum"),
        max: get_u64(v, "max"),
        ..HistogramSnapshot::default()
    };
    if let Some(pairs) = v.get("buckets").and_then(json::Value::as_arr) {
        for pair in pairs {
            if let Some(p) = pair.as_arr() {
                if let (Some(i), Some(n)) = (
                    p.first().and_then(json::Value::as_u64),
                    p.get(1).and_then(json::Value::as_u64),
                ) {
                    if let Some(slot) = h.buckets.get_mut(i as usize) {
                        *slot = n;
                    }
                }
            }
        }
    }
    h
}

fn trace_entry_from(v: &json::Value) -> Option<TraceEntry> {
    let kind = v.get("type")?.as_str()?;
    let event = match kind {
        "aru_begin" => TraceEvent::AruBegin {
            aru: get_u64(v, "aru"),
        },
        "aru_commit" => TraceEvent::AruCommit {
            aru: get_u64(v, "aru"),
            ops: get_u64(v, "ops"),
            cow_records: get_u64(v, "cow_records"),
        },
        "aru_abort" => TraceEvent::AruAbort {
            aru: get_u64(v, "aru"),
        },
        "aru_conflict" => TraceEvent::AruConflict {
            aru: get_u64(v, "aru"),
        },
        "segment_seal" => TraceEvent::SegmentSeal {
            segment: get_u64(v, "segment") as u32,
            seq: get_u64(v, "segment_seq"),
            blocks: get_u64(v, "blocks") as u32,
            bytes: get_u64(v, "bytes"),
        },
        "flush" => TraceEvent::Flush {
            segments_sealed: get_u64(v, "segments_sealed"),
        },
        "group_commit" => TraceEvent::GroupCommit {
            batch: get_u64(v, "batch"),
            trace: get_u64(v, "trace"),
            first_trace: get_u64(v, "first_trace"),
        },
        "stage_begin" => TraceEvent::StageBegin {
            trace: get_u64(v, "trace"),
            stage: Stage::from_str(v.get("stage")?.as_str()?)?,
        },
        "stage_end" => TraceEvent::StageEnd {
            trace: get_u64(v, "trace"),
            stage: Stage::from_str(v.get("stage")?.as_str()?)?,
            nanos: get_u64(v, "nanos"),
        },
        "cleaner_wake" => TraceEvent::CleanerWake {
            free_segments: get_u64(v, "free_segments") as u32,
        },
        "cleaner_pass" => TraceEvent::CleanerPass {
            free_segments: get_u64(v, "free_segments") as u32,
            blocks_relocated: get_u64(v, "blocks_relocated"),
        },
        "checkpoint" => TraceEvent::Checkpoint {
            covered_seq: get_u64(v, "covered_seq"),
            bytes: get_u64(v, "bytes"),
        },
        "recovery_scan" => TraceEvent::RecoveryScan {
            segments_scanned: get_u64(v, "segments_scanned") as u32,
            segments_replayed: get_u64(v, "segments_replayed") as u32,
            records_applied: get_u64(v, "records_applied"),
        },
        _ => return None,
    };
    Some(TraceEntry {
        seq: get_u64(v, "seq"),
        ts: get_u64(v, "ts"),
        tid: get_u64(v, "tid"),
        wall_us: get_u64(v, "wall_us"),
        event,
    })
}

fn span_from(v: &json::Value) -> AruSpan {
    AruSpan {
        aru: get_u64(v, "aru"),
        begin_ts: get_u64(v, "begin_ts"),
        end_ts: v.get("end_ts").and_then(json::Value::as_u64),
        wall_nanos: v.get("wall_nanos").and_then(json::Value::as_u64),
        ops: get_u64(v, "ops"),
        cow_records: get_u64(v, "cow_records"),
        outcome: v
            .get("outcome")
            .and_then(json::Value::as_str)
            .and_then(SpanOutcome::from_str)
            .unwrap_or(SpanOutcome::Active),
    }
}

fn recovery_from(v: &json::Value) -> RecoveryReport {
    RecoveryReport {
        checkpoint_seq: get_u64(v, "checkpoint_seq"),
        segments_scanned: get_u64(v, "segments_scanned") as u32,
        segments_replayed: get_u64(v, "segments_replayed") as u32,
        torn_tails_detected: get_u64(v, "torn_tails_detected") as u32,
        records_applied: get_u64(v, "records_applied"),
        committed_arus: get_u64(v, "committed_arus"),
        discarded_arus: get_u64(v, "discarded_arus"),
        discarded_records: get_u64(v, "discarded_records"),
        ignored_after_gap: get_u64(v, "ignored_after_gap") as u32,
        orphan_blocks_freed: get_u64(v, "orphan_blocks_freed") as usize,
        snap_shards: get_u64(v, "snap_shards") as u32,
        threads_used: get_u64(v, "threads_used") as u32,
        snapshot_load_ns: get_u64(v, "snapshot_load_ns"),
        scan_ns: get_u64(v, "scan_ns"),
        replay_ns: get_u64(v, "replay_ns"),
        finalize_ns: get_u64(v, "finalize_ns"),
    }
}

fn lld_stats_json(s: &LldStats) -> String {
    let mut o = json::Obj::new();
    o.u64("reads", s.reads);
    o.u64("writes", s.writes);
    o.u64("new_blocks", s.new_blocks);
    o.u64("delete_blocks", s.delete_blocks);
    o.u64("new_lists", s.new_lists);
    o.u64("delete_lists", s.delete_lists);
    o.u64("arus_begun", s.arus_begun);
    o.u64("arus_committed", s.arus_committed);
    o.u64("arus_aborted", s.arus_aborted);
    o.u64("commit_conflicts", s.commit_conflicts);
    o.u64("segments_sealed", s.segments_sealed);
    o.u64("records_emitted", s.records_emitted);
    o.u64("summary_bytes", s.summary_bytes);
    o.u64("data_blocks_written", s.data_blocks_written);
    o.u64("blocks_relocated", s.blocks_relocated);
    o.u64("cleaner_runs", s.cleaner_runs);
    o.u64("cleaner_passes", s.cleaner_passes);
    o.u64("cleaner_blocks_relocated", s.cleaner_blocks_relocated);
    o.u64("cleaner_stale_skips", s.cleaner_stale_skips);
    o.u64("backpressure_stalls", s.backpressure_stalls);
    o.u64("checkpoints", s.checkpoints);
    o.u64("list_walk_steps", s.list_walk_steps);
    o.u64("shadow_cow_records", s.shadow_cow_records);
    o.u64("shadow_records_merged", s.shadow_records_merged);
    o.u64("committed_records_drained", s.committed_records_drained);
    o.u64("cache_hits", s.cache_hits);
    o.u64("cache_misses", s.cache_misses);
    o.u64("flush_batches", s.flush_batches);
    o.u64("flush_batch_callers", s.flush_batch_callers);
    o.u64("flush_batch_max", s.flush_batch_max);
    o.u64("full_mutations", s.full_mutations);
    o.u64("scoped_mutations", s.scoped_mutations);
    o.u64("single_shard_commits", s.single_shard_commits);
    o.u64("cross_shard_commits", s.cross_shard_commits);
    o.u64("commit_full_fallbacks", s.commit_full_fallbacks);
    o.u64("walk_escalations", s.walk_escalations);
    o.u64("pipeline_stalls", s.pipeline_stalls);
    o.u64("inflight_barriers", s.inflight_barriers);
    o.u64("trace_events_dropped", s.trace_events_dropped);
    o.finish()
}

fn shard_json(s: &ShardLockStats) -> String {
    let mut o = json::Obj::new();
    o.u64("shard", s.shard as u64);
    o.u64("read_locks", s.read_locks);
    o.u64("write_locks", s.write_locks);
    o.finish()
}

fn disk_stats_json(d: &DiskStatsSnapshot) -> String {
    let mut o = json::Obj::new();
    o.u64("reads", d.reads);
    o.u64("writes", d.writes);
    o.u64("bytes_read", d.bytes_read);
    o.u64("bytes_written", d.bytes_written);
    o.u64("flushes", d.flushes);
    o.u64("sequential_writes", d.sequential_writes);
    o.u64("sequential_reads", d.sequential_reads);
    o.u64("busy_nanos", d.busy.as_nanos() as u64);
    o.finish()
}

fn histogram_json(h: &HistogramSnapshot) -> String {
    let mut o = json::Obj::new();
    o.u64("count", h.count);
    o.u64("sum", h.sum);
    o.u64("max", h.max);
    o.u64("mean", h.mean());
    o.u64("p50", h.p50());
    o.u64("p90", h.p90());
    o.u64("p99", h.p99());
    let mut buckets = json::Arr::new();
    for (i, &n) in h.buckets.iter().enumerate() {
        if n > 0 {
            buckets.push_raw(&format!("[{i},{n}]"));
        }
    }
    o.raw("buckets", &buckets.finish());
    o.finish()
}

fn trace_entry_json(e: &TraceEntry) -> String {
    let mut o = json::Obj::new();
    o.u64("seq", e.seq);
    o.u64("ts", e.ts);
    o.u64("tid", e.tid);
    o.u64("wall_us", e.wall_us);
    o.str("type", e.event.kind());
    match e.event {
        TraceEvent::AruBegin { aru }
        | TraceEvent::AruAbort { aru }
        | TraceEvent::AruConflict { aru } => {
            o.u64("aru", aru);
        }
        TraceEvent::AruCommit {
            aru,
            ops,
            cow_records,
        } => {
            o.u64("aru", aru);
            o.u64("ops", ops);
            o.u64("cow_records", cow_records);
        }
        TraceEvent::SegmentSeal {
            segment,
            seq,
            blocks,
            bytes,
        } => {
            o.u64("segment", segment as u64);
            o.u64("segment_seq", seq);
            o.u64("blocks", blocks as u64);
            o.u64("bytes", bytes);
        }
        TraceEvent::Flush { segments_sealed } => {
            o.u64("segments_sealed", segments_sealed);
        }
        TraceEvent::GroupCommit {
            batch,
            trace,
            first_trace,
        } => {
            o.u64("batch", batch);
            o.u64("trace", trace);
            o.u64("first_trace", first_trace);
        }
        TraceEvent::StageBegin { trace, stage } => {
            o.u64("trace", trace);
            o.str("stage", stage.as_str());
        }
        TraceEvent::StageEnd {
            trace,
            stage,
            nanos,
        } => {
            o.u64("trace", trace);
            o.str("stage", stage.as_str());
            o.u64("nanos", nanos);
        }
        TraceEvent::CleanerWake { free_segments } => {
            o.u64("free_segments", free_segments as u64);
        }
        TraceEvent::CleanerPass {
            free_segments,
            blocks_relocated,
        } => {
            o.u64("free_segments", free_segments as u64);
            o.u64("blocks_relocated", blocks_relocated);
        }
        TraceEvent::Checkpoint { covered_seq, bytes } => {
            o.u64("covered_seq", covered_seq);
            o.u64("bytes", bytes);
        }
        TraceEvent::RecoveryScan {
            segments_scanned,
            segments_replayed,
            records_applied,
        } => {
            o.u64("segments_scanned", segments_scanned as u64);
            o.u64("segments_replayed", segments_replayed as u64);
            o.u64("records_applied", records_applied);
        }
    }
    o.finish()
}

fn span_json(s: &AruSpan) -> String {
    let mut o = json::Obj::new();
    o.u64("aru", s.aru);
    o.u64("begin_ts", s.begin_ts);
    match s.end_ts {
        Some(v) => o.u64("end_ts", v),
        None => o.null("end_ts"),
    };
    match s.wall_nanos {
        Some(v) => o.u64("wall_nanos", v),
        None => o.null("wall_nanos"),
    };
    o.u64("ops", s.ops);
    o.u64("cow_records", s.cow_records);
    o.str("outcome", s.outcome.as_str());
    o.finish()
}

fn recovery_json(r: &RecoveryReport) -> String {
    let mut o = json::Obj::new();
    o.u64("checkpoint_seq", r.checkpoint_seq);
    o.u64("segments_scanned", r.segments_scanned as u64);
    o.u64("segments_replayed", r.segments_replayed as u64);
    o.u64("torn_tails_detected", r.torn_tails_detected as u64);
    o.u64("records_applied", r.records_applied);
    o.u64("committed_arus", r.committed_arus);
    o.u64("discarded_arus", r.discarded_arus);
    o.u64("discarded_records", r.discarded_records);
    o.u64("ignored_after_gap", r.ignored_after_gap as u64);
    o.u64("orphan_blocks_freed", r.orphan_blocks_freed as u64);
    o.u64("snap_shards", r.snap_shards as u64);
    o.u64("threads_used", r.threads_used as u64);
    o.u64("snapshot_load_ns", r.snapshot_load_ns);
    o.u64("scan_ns", r.scan_ns);
    o.u64("replay_ns", r.replay_ns);
    o.u64("finalize_ns", r.finalize_ns);
    o.finish()
}

impl fmt::Display for ObsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "LLD counters")?;
        let s = &self.lld;
        for (name, v) in [
            ("reads", s.reads),
            ("writes", s.writes),
            ("new_blocks", s.new_blocks),
            ("delete_blocks", s.delete_blocks),
            ("new_lists", s.new_lists),
            ("delete_lists", s.delete_lists),
            ("arus_begun", s.arus_begun),
            ("arus_committed", s.arus_committed),
            ("arus_aborted", s.arus_aborted),
            ("commit_conflicts", s.commit_conflicts),
            ("segments_sealed", s.segments_sealed),
            ("records_emitted", s.records_emitted),
            ("summary_bytes", s.summary_bytes),
            ("data_blocks_written", s.data_blocks_written),
            ("blocks_relocated", s.blocks_relocated),
            ("cleaner_runs", s.cleaner_runs),
            ("cleaner_passes", s.cleaner_passes),
            ("cleaner_blocks_relocated", s.cleaner_blocks_relocated),
            ("cleaner_stale_skips", s.cleaner_stale_skips),
            ("backpressure_stalls", s.backpressure_stalls),
            ("checkpoints", s.checkpoints),
            ("list_walk_steps", s.list_walk_steps),
            ("shadow_cow_records", s.shadow_cow_records),
            ("shadow_records_merged", s.shadow_records_merged),
            ("committed_records_drained", s.committed_records_drained),
            ("cache_hits", s.cache_hits),
            ("cache_misses", s.cache_misses),
            ("flush_batches", s.flush_batches),
            ("flush_batch_callers", s.flush_batch_callers),
            ("flush_batch_max", s.flush_batch_max),
            ("full_mutations", s.full_mutations),
            ("scoped_mutations", s.scoped_mutations),
            ("single_shard_commits", s.single_shard_commits),
            ("cross_shard_commits", s.cross_shard_commits),
            ("commit_full_fallbacks", s.commit_full_fallbacks),
            ("walk_escalations", s.walk_escalations),
            ("pipeline_stalls", s.pipeline_stalls),
            ("inflight_barriers", s.inflight_barriers),
            ("trace_events_dropped", s.trace_events_dropped),
        ] {
            writeln!(f, "  {name:<28} {v}")?;
        }
        if !self.shards.is_empty() {
            writeln!(f, "Map shards")?;
            writeln!(
                f,
                "  {:>6} {:>12} {:>12}",
                "shard", "read_locks", "write_locks"
            )?;
            for s in &self.shards {
                writeln!(
                    f,
                    "  {:>6} {:>12} {:>12}",
                    s.shard, s.read_locks, s.write_locks
                )?;
            }
        }
        if let Some(d) = &self.disk {
            writeln!(f, "Disk")?;
            writeln!(f, "  {:<28} {}", "reads", d.reads)?;
            writeln!(f, "  {:<28} {}", "writes", d.writes)?;
            writeln!(f, "  {:<28} {}", "bytes_read", d.bytes_read)?;
            writeln!(f, "  {:<28} {}", "bytes_written", d.bytes_written)?;
            writeln!(f, "  {:<28} {}", "flushes", d.flushes)?;
            writeln!(f, "  {:<28} {}", "sequential_writes", d.sequential_writes)?;
            writeln!(f, "  {:<28} {}", "sequential_reads", d.sequential_reads)?;
            writeln!(f, "  {:<28} {:?}", "busy", d.busy)?;
        }
        writeln!(f, "Latency histograms (ns)")?;
        writeln!(
            f,
            "  {:<12} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "name", "count", "mean", "p50", "p90", "p99", "max"
        )?;
        for (name, h) in &self.histograms {
            writeln!(
                f,
                "  {:<12} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
                name,
                h.count,
                h.mean(),
                h.p50(),
                h.p90(),
                h.p99(),
                h.max
            )?;
        }
        if let Some(r) = &self.recovery {
            writeln!(f, "Recovery")?;
            writeln!(f, "  {:<28} {}", "checkpoint_seq", r.checkpoint_seq)?;
            writeln!(f, "  {:<28} {}", "segments_scanned", r.segments_scanned)?;
            writeln!(f, "  {:<28} {}", "segments_replayed", r.segments_replayed)?;
            writeln!(
                f,
                "  {:<28} {}",
                "torn_tails_detected", r.torn_tails_detected
            )?;
            writeln!(f, "  {:<28} {}", "records_applied", r.records_applied)?;
            writeln!(f, "  {:<28} {}", "committed_arus", r.committed_arus)?;
            writeln!(f, "  {:<28} {}", "discarded_arus", r.discarded_arus)?;
            writeln!(f, "  {:<28} {}", "discarded_records", r.discarded_records)?;
            writeln!(f, "  {:<28} {}", "ignored_after_gap", r.ignored_after_gap)?;
            writeln!(
                f,
                "  {:<28} {}",
                "orphan_blocks_freed", r.orphan_blocks_freed
            )?;
            writeln!(f, "  {:<28} {}", "snap_shards", r.snap_shards)?;
            writeln!(f, "  {:<28} {}", "threads_used", r.threads_used)?;
            writeln!(f, "  {:<28} {}", "snapshot_load_ns", r.snapshot_load_ns)?;
            writeln!(f, "  {:<28} {}", "scan_ns", r.scan_ns)?;
            writeln!(f, "  {:<28} {}", "replay_ns", r.replay_ns)?;
            writeln!(f, "  {:<28} {}", "finalize_ns", r.finalize_ns)?;
        }
        if !self.fs_ops.is_empty() {
            writeln!(f, "File system")?;
            for (name, v) in &self.fs_ops {
                writeln!(f, "  {name:<28} {v}")?;
            }
        }
        if !self.spans.is_empty() {
            writeln!(f, "ARU spans")?;
            writeln!(
                f,
                "  {:>6} {:<10} {:>6} {:>6} {:>12}",
                "aru", "outcome", "ops", "cow", "wall_ns"
            )?;
            for s in &self.spans {
                writeln!(
                    f,
                    "  {:>6} {:<10} {:>6} {:>6} {:>12}",
                    s.aru,
                    s.outcome.as_str(),
                    s.ops,
                    s.cow_records,
                    s.wall_nanos.map_or("-".to_string(), |n| n.to_string())
                )?;
            }
        }
        if !self.events.is_empty() {
            writeln!(f, "Trace events ({} dropped)", self.dropped_events)?;
            for e in &self.events {
                writeln!(f, "  #{:<6} ts={:<8} {:?}", e.seq, e.ts, e.event)?;
            }
        }
        Ok(())
    }
}

// ----------------------------------------------------------------------
// Minimal JSON emission (the workspace has no serde)
// ----------------------------------------------------------------------

/// Tiny JSON writers: enough to emit objects and arrays of numbers,
/// strings, and pre-rendered values. Keys and strings are escaped per
/// RFC 8259.
pub mod json {
    /// Escapes `s` for inclusion in a JSON string literal (without the
    /// surrounding quotes).
    pub fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out
    }

    /// An incremental JSON object writer.
    #[derive(Debug, Default)]
    pub struct Obj {
        buf: String,
    }

    impl Obj {
        /// Starts an empty object.
        pub fn new() -> Self {
            Obj::default()
        }

        fn key(&mut self, k: &str) {
            if !self.buf.is_empty() {
                self.buf.push(',');
            }
            self.buf.push('"');
            self.buf.push_str(&escape(k));
            self.buf.push_str("\":");
        }

        /// Adds an unsigned integer field.
        pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
            self.key(k);
            self.buf.push_str(&v.to_string());
            self
        }

        /// Adds a finite float field (`null` for NaN/infinity).
        pub fn f64(&mut self, k: &str, v: f64) -> &mut Self {
            self.key(k);
            if v.is_finite() {
                self.buf.push_str(&format!("{v}"));
            } else {
                self.buf.push_str("null");
            }
            self
        }

        /// Adds a boolean field.
        pub fn bool(&mut self, k: &str, v: bool) -> &mut Self {
            self.key(k);
            self.buf.push_str(if v { "true" } else { "false" });
            self
        }

        /// Adds a string field.
        pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
            self.key(k);
            self.buf.push('"');
            self.buf.push_str(&escape(v));
            self.buf.push('"');
            self
        }

        /// Adds a `null` field.
        pub fn null(&mut self, k: &str) -> &mut Self {
            self.key(k);
            self.buf.push_str("null");
            self
        }

        /// Adds a pre-rendered JSON value.
        pub fn raw(&mut self, k: &str, v: &str) -> &mut Self {
            self.key(k);
            self.buf.push_str(v);
            self
        }

        /// Closes the object and returns the JSON text.
        pub fn finish(&self) -> String {
            format!("{{{}}}", self.buf)
        }
    }

    /// An incremental JSON array writer.
    #[derive(Debug, Default)]
    pub struct Arr {
        buf: String,
    }

    impl Arr {
        /// Starts an empty array.
        pub fn new() -> Self {
            Arr::default()
        }

        fn sep(&mut self) {
            if !self.buf.is_empty() {
                self.buf.push(',');
            }
        }

        /// Appends an unsigned integer element.
        pub fn push_u64(&mut self, v: u64) -> &mut Self {
            self.sep();
            self.buf.push_str(&v.to_string());
            self
        }

        /// Appends a string element.
        pub fn push_str(&mut self, v: &str) -> &mut Self {
            self.sep();
            self.buf.push('"');
            self.buf.push_str(&escape(v));
            self.buf.push('"');
            self
        }

        /// Appends a pre-rendered JSON value.
        pub fn push_raw(&mut self, v: &str) -> &mut Self {
            self.sep();
            self.buf.push_str(v);
            self
        }

        /// Closes the array and returns the JSON text.
        pub fn finish(&self) -> String {
            format!("[{}]", self.buf)
        }
    }

    // ------------------------------------------------------------------
    // Reader (counterpart of the writers above)
    // ------------------------------------------------------------------

    /// A parsed JSON value. Numbers keep their source text so integer
    /// values beyond `f64`'s exact range survive a round trip.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// A number, as its literal text.
        Num(String),
        /// A string (unescaped).
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, in source order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Looks up `key` in an object value.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The value as an unsigned integer, when it is one.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(raw) => raw
                    .parse::<u64>()
                    .ok()
                    .or_else(|| raw.parse::<f64>().ok().map(|f| f as u64)),
                _ => None,
            }
        }

        /// The value as a float, when it is a number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(raw) => raw.parse().ok(),
                _ => None,
            }
        }

        /// The value as a string slice, when it is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The value as a bool, when it is one.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }

        /// The value's elements, when it is an array.
        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }

        /// The value's key/value pairs, when it is an object.
        pub fn as_obj(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(pairs) => Some(pairs),
                _ => None,
            }
        }
    }

    /// Parses one JSON document (RFC 8259 subset: no depth limit games,
    /// numbers kept as text). Trailing whitespace is allowed; trailing
    /// garbage is an error.
    pub fn parse(s: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while let Some(&b) = self.bytes.get(self.pos) {
                if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected '{}' at byte {}", b as char, self.pos))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'n') => self.literal("null", Value::Null),
                Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
                _ => Err(format!("unexpected byte at {}", self.pos)),
            }
        }

        fn literal(&mut self, text: &str, v: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(text.as_bytes()) {
                self.pos += text.len();
                Ok(v)
            } else {
                Err(format!("bad literal at byte {}", self.pos))
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while let Some(b) = self.peek() {
                if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| "non-utf8 number".to_string())?;
            raw.parse::<f64>()
                .map_err(|_| format!("bad number at byte {start}"))?;
            Ok(Value::Num(raw.to_string()))
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'u') => {
                                self.pos += 1;
                                let cp = self.hex4()?;
                                // Combine surrogate pairs when present.
                                let c = if (0xd800..0xdc00).contains(&cp) {
                                    if self.bytes[self.pos..].starts_with(b"\\u") {
                                        self.pos += 2;
                                        let lo = self.hex4()?;
                                        let combined = 0x10000
                                            + ((cp - 0xd800) << 10)
                                            + (lo.wrapping_sub(0xdc00) & 0x3ff);
                                        char::from_u32(combined)
                                    } else {
                                        None
                                    }
                                } else {
                                    char::from_u32(cp)
                                };
                                out.push(c.unwrap_or('\u{fffd}'));
                                continue;
                            }
                            _ => return Err(format!("bad escape at byte {}", self.pos)),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar value.
                        let rest = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|_| "non-utf8 string".to_string())?;
                        let c = rest.chars().next().expect("peeked non-empty");
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn hex4(&mut self) -> Result<u32, String> {
            if self.pos + 4 > self.bytes.len() {
                return Err("truncated \\u escape".into());
            }
            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                .map_err(|_| "non-utf8 escape".to_string())?;
            let cp =
                u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u at {}", self.pos))?;
            self.pos += 4;
            Ok(cp)
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                }
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut pairs = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Obj(pairs));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let value = self.value()?;
                pairs.push((key, value));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraparound_keeps_newest() {
        let ring = TraceRing::new(4);
        for i in 0..10u64 {
            ring.record(i, TraceEvent::AruBegin { aru: i });
        }
        let entries = ring.entries();
        assert_eq!(entries.len(), 4);
        assert_eq!(ring.dropped(), 6);
        assert_eq!(
            entries.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        // Sequence numbers stay attached to their event.
        for e in &entries {
            assert_eq!(e.event, TraceEvent::AruBegin { aru: e.seq });
        }
    }

    #[test]
    fn ring_concurrent_writers() {
        let ring = std::sync::Arc::new(TraceRing::new(64));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let ring = ring.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        ring.record(i, TraceEvent::AruBegin { aru: t });
                    }
                });
            }
        });
        let entries = ring.entries();
        assert_eq!(entries.len(), 64);
        assert_eq!(ring.dropped(), 400 - 64);
        // Entries come back in strictly increasing, contiguous order.
        for w in entries.windows(2) {
            assert_eq!(w[1].seq, w[0].seq + 1);
        }
        assert_eq!(entries.last().unwrap().seq, 399);
    }

    #[test]
    fn spans_track_lifecycle() {
        let obs = Obs::new(ObsConfig::default());
        obs.aru_begin(7, 100);
        obs.span_op(7);
        obs.span_op(7);
        obs.span_cow(7);
        obs.aru_commit(7, 105, obs.timer());
        obs.aru_begin(8, 110);
        obs.aru_abort(8, 111);
        let spans = obs.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].aru, 7);
        assert_eq!(spans[0].ops, 2);
        assert_eq!(spans[0].cow_records, 1);
        assert_eq!(spans[0].outcome, SpanOutcome::Committed);
        assert_eq!(spans[0].end_ts, Some(105));
        assert!(spans[0].wall_nanos.is_some());
        assert_eq!(spans[1].outcome, SpanOutcome::Aborted);
    }

    #[test]
    fn disabled_obs_records_nothing() {
        let obs = Obs::new(ObsConfig::disabled());
        assert!(obs.timer().is_none());
        obs.aru_begin(1, 1);
        obs.span_op(1);
        obs.aru_commit(1, 2, None);
        obs.event(3, TraceEvent::Flush { segments_sealed: 1 });
        assert!(obs.ring().is_empty());
        assert!(obs.spans().is_empty());
        for (_, h) in obs.histograms() {
            assert!(h.is_empty());
        }
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json::escape("\u{1}"), "\\u0001");
        let mut o = json::Obj::new();
        o.str("k\"ey", "v\nal");
        o.u64("n", 3);
        o.bool("b", true);
        o.null("z");
        assert_eq!(
            o.finish(),
            "{\"k\\\"ey\":\"v\\nal\",\"n\":3,\"b\":true,\"z\":null}"
        );
        let mut a = json::Arr::new();
        a.push_u64(1).push_str("x").push_raw("{}");
        assert_eq!(a.finish(), "[1,\"x\",{}]");
    }

    #[test]
    fn snapshot_json_shape() {
        let obs = Obs::new(ObsConfig::default());
        obs.aru_begin(1, 10);
        obs.aru_commit(1, 12, obs.timer());
        let snap = ObsSnapshot {
            lld: LldStats::default(),
            disk: None,
            histograms: obs
                .histograms()
                .into_iter()
                .map(|(n, h)| (n.to_string(), h))
                .collect(),
            events: obs.ring().entries(),
            dropped_events: obs.ring().dropped(),
            spans: obs.spans(),
            shards: vec![ShardLockStats {
                shard: 0,
                read_locks: 3,
                write_locks: 1,
            }],
            recovery: None,
            fs_ops: vec![("files_created".into(), 2)],
        };
        let j = snap.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"lld\":{"));
        assert!(j.contains("\"disk\":null"));
        assert!(j.contains("\"end_aru\":{"));
        assert!(j.contains("\"type\":\"aru_begin\""));
        assert!(j.contains("\"type\":\"aru_commit\""));
        assert!(j.contains("\"outcome\":\"committed\""));
        assert!(j.contains("\"shards\":[{\"shard\":0,\"read_locks\":3,\"write_locks\":1}]"));
        assert!(j.contains("\"files_created\":2"));
        // Display renders without panicking and mentions the sections.
        let text = snap.to_string();
        assert!(text.contains("LLD counters"));
        assert!(text.contains("Latency histograms"));
    }
}
