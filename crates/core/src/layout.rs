//! On-disk geometry: the superblock and the derived device layout.
//!
//! ```text
//! byte 0                                          capacity
//! +------------+----------+----------+----------------------+
//! | superblock | ckpt A   | ckpt B   | segment 0 | seg 1 |..|
//! +------------+----------+----------+----------------------+
//! ```
//!
//! The superblock records everything needed to reopen the disk without
//! external configuration. Two checkpoint areas alternate so that a crash
//! during checkpointing always leaves one valid checkpoint (or none, in
//! which case recovery scans the whole log as in the paper).

use crate::config::{ConcurrencyMode, LldConfig, ReadVisibility};
use crate::error::{LldError, Result};
use crate::types::PhysAddr;
use ld_disk::crc32;

/// Size of the fixed-length superblock encoding.
pub(crate) const SUPERBLOCK_LEN: usize = 64;
const SUPERBLOCK_MAGIC: u64 = 0x4C44_4152_5539_3936; // "LDARU996"
const FORMAT_VERSION: u32 = 2;

/// Per-entry sizes in a checkpoint area (see `checkpoint.rs`).
pub(crate) const CKPT_BLOCK_ENTRY: u64 = 40;
pub(crate) const CKPT_LIST_ENTRY: u64 = 32;
pub(crate) const CKPT_HEADER: u64 = 64;

/// Per-slab directory entry: `n_blocks` u64, `n_lists` u64, slab crc32,
/// padding u32.
pub(crate) const CKPT_DIR_ENTRY: u64 = 24;
/// Slab-count ceiling a checkpoint area can describe (one slab per map
/// shard; shard counts are capped at `MAX_MAP_SHARDS = 64`). The
/// directory space is reserved for the ceiling so the area size does
/// not depend on the runtime shard knob.
pub(crate) const MAX_SNAP_SHARDS: u64 = 64;
/// Bytes reserved for the slab directory in every checkpoint area.
pub(crate) const CKPT_DIR_RESERVE: u64 = MAX_SNAP_SHARDS * CKPT_DIR_ENTRY;

/// The physical layout of a formatted device, derived from its capacity
/// and the [`LldConfig`] at format time and persisted in the superblock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    /// Block size in bytes.
    pub block_size: usize,
    /// Segment size in bytes (header block + data blocks + summary).
    pub segment_bytes: usize,
    /// Number of segment slots.
    pub n_segments: u32,
    /// Byte offset of segment slot 0.
    pub data_start: u64,
    /// Size in bytes of one checkpoint area.
    pub ckpt_area_size: u64,
    /// Byte offset of checkpoint area A.
    pub ckpt_a: u64,
    /// Byte offset of checkpoint area B.
    pub ckpt_b: u64,
    /// Maximum simultaneously allocated blocks (sizes the checkpoint).
    pub max_blocks: u64,
    /// Maximum simultaneously allocated lists (sizes the checkpoint).
    pub max_lists: u64,
}

fn round_up(v: u64, to: u64) -> u64 {
    v.div_ceil(to) * to
}

impl Layout {
    /// Computes the layout for a device of `capacity` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`LldError::Config`] if the device is too small to hold
    /// the superblock, both checkpoint areas, and at least four segments.
    pub fn compute(capacity: u64, config: &LldConfig) -> Result<Layout> {
        config.validate()?;
        let bs = config.block_size as u64;
        let seg = config.segment_bytes as u64;
        let slots_per_seg = u64::from(config.max_slots_per_segment());

        // max_blocks defaults to the number of data slots the device can
        // hold, estimated before checkpoint space is carved out (slightly
        // generous, which is harmless).
        let est_segments = capacity.saturating_sub(bs) / seg;
        let max_blocks = config
            .max_blocks
            .unwrap_or(est_segments * slots_per_seg)
            .max(16);
        let max_lists = config.max_lists.unwrap_or(max_blocks).max(16);

        let ckpt_area_size = round_up(
            CKPT_HEADER
                + CKPT_DIR_RESERVE
                + max_blocks * CKPT_BLOCK_ENTRY
                + max_lists * CKPT_LIST_ENTRY,
            bs,
        );
        let data_start = bs + 2 * ckpt_area_size;
        let n_segments = capacity.saturating_sub(data_start) / seg;
        if n_segments < 4 {
            return Err(LldError::Config(format!(
                "device of {capacity} bytes holds only {n_segments} segments; at least 4 required"
            )));
        }
        Ok(Layout {
            block_size: config.block_size,
            segment_bytes: config.segment_bytes,
            n_segments: u32::try_from(n_segments)
                .map_err(|_| LldError::Config("too many segments".into()))?,
            data_start,
            ckpt_area_size,
            ckpt_a: bs,
            ckpt_b: bs + ckpt_area_size,
            max_blocks,
            max_lists,
        })
    }

    /// Byte offset of segment slot `slot`.
    pub fn segment_offset(&self, slot: u32) -> u64 {
        self.data_start + u64::from(slot) * self.segment_bytes as u64
    }

    /// Byte offset of the data block at `addr` (slot 0 of a segment is
    /// the block right after the segment-header block).
    pub fn block_offset(&self, addr: PhysAddr) -> u64 {
        self.segment_offset(addr.segment.get()) + u64::from(addr.slot + 1) * self.block_size as u64
    }

    /// Data-block slots per segment.
    pub fn slots_per_segment(&self) -> u32 {
        (self.segment_bytes / self.block_size - 1) as u32
    }

    /// Total data-block slots on the device.
    pub fn total_slots(&self) -> u64 {
        u64::from(self.n_segments) * u64::from(self.slots_per_segment())
    }

    /// Encodes the superblock (layout plus semantic modes).
    pub fn encode_superblock(
        &self,
        concurrency: ConcurrencyMode,
        visibility: ReadVisibility,
    ) -> Vec<u8> {
        let mut buf = Vec::with_capacity(SUPERBLOCK_LEN);
        buf.extend_from_slice(&SUPERBLOCK_MAGIC.to_le_bytes());
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        buf.extend_from_slice(&(self.block_size as u32).to_le_bytes());
        buf.extend_from_slice(&(self.segment_bytes as u32).to_le_bytes());
        buf.extend_from_slice(&self.n_segments.to_le_bytes());
        buf.extend_from_slice(&self.data_start.to_le_bytes());
        buf.extend_from_slice(&self.ckpt_area_size.to_le_bytes());
        buf.extend_from_slice(&self.max_blocks.to_le_bytes());
        buf.extend_from_slice(&self.max_lists.to_le_bytes());
        buf.push(match concurrency {
            ConcurrencyMode::Sequential => 0,
            ConcurrencyMode::Concurrent => 1,
        });
        buf.push(match visibility {
            ReadVisibility::AnyShadow => 0,
            ReadVisibility::Committed => 1,
            ReadVisibility::OwnShadow => 2,
        });
        buf.extend_from_slice(&[0u8; 2]); // padding
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        debug_assert_eq!(buf.len(), SUPERBLOCK_LEN);
        buf
    }

    /// Decodes and validates a superblock.
    ///
    /// # Errors
    ///
    /// Returns [`LldError::Corrupt`] on a bad magic, version, or
    /// checksum.
    pub fn decode_superblock(buf: &[u8]) -> Result<(Layout, ConcurrencyMode, ReadVisibility)> {
        if buf.len() < SUPERBLOCK_LEN {
            return Err(LldError::Corrupt("superblock too short".into()));
        }
        let body = &buf[..SUPERBLOCK_LEN - 4];
        let stored_crc = u32::from_le_bytes(
            buf[SUPERBLOCK_LEN - 4..SUPERBLOCK_LEN]
                .try_into()
                .expect("4 bytes"),
        );
        if crc32(body) != stored_crc {
            return Err(LldError::Corrupt("superblock checksum mismatch".into()));
        }
        let mut pos = 0usize;
        let u64f = |p: &mut usize| {
            let v = u64::from_le_bytes(buf[*p..*p + 8].try_into().expect("8 bytes"));
            *p += 8;
            v
        };
        let magic = u64f(&mut pos);
        if magic != SUPERBLOCK_MAGIC {
            return Err(LldError::Corrupt("not a logical-disk superblock".into()));
        }
        let u32f = |p: &mut usize| {
            let v = u32::from_le_bytes(buf[*p..*p + 4].try_into().expect("4 bytes"));
            *p += 4;
            v
        };
        let version = u32f(&mut pos);
        if version != FORMAT_VERSION {
            return Err(LldError::Corrupt(format!(
                "unsupported format version {version}"
            )));
        }
        let block_size = u32f(&mut pos) as usize;
        let segment_bytes = u32f(&mut pos) as usize;
        let n_segments = u32f(&mut pos);
        let u64g = |p: &mut usize| {
            let v = u64::from_le_bytes(buf[*p..*p + 8].try_into().expect("8 bytes"));
            *p += 8;
            v
        };
        let data_start = u64g(&mut pos);
        let ckpt_area_size = u64g(&mut pos);
        let max_blocks = u64g(&mut pos);
        let max_lists = u64g(&mut pos);
        let concurrency = match buf[pos] {
            0 => ConcurrencyMode::Sequential,
            1 => ConcurrencyMode::Concurrent,
            other => {
                return Err(LldError::Corrupt(format!(
                    "unknown concurrency mode {other}"
                )))
            }
        };
        let visibility = match buf[pos + 1] {
            0 => ReadVisibility::AnyShadow,
            1 => ReadVisibility::Committed,
            2 => ReadVisibility::OwnShadow,
            other => {
                return Err(LldError::Corrupt(format!(
                    "unknown read visibility {other}"
                )))
            }
        };
        let bs = block_size as u64;
        Ok((
            Layout {
                block_size,
                segment_bytes,
                n_segments,
                data_start,
                ckpt_area_size,
                ckpt_a: bs,
                ckpt_b: bs + ckpt_area_size,
                max_blocks,
                max_lists,
            },
            concurrency,
            visibility,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SegmentId;

    fn small_config() -> LldConfig {
        LldConfig {
            block_size: 512,
            segment_bytes: 8 * 512,
            max_blocks: Some(100),
            max_lists: Some(50),
            ..LldConfig::default()
        }
    }

    #[test]
    fn compute_small_device() {
        let cfg = small_config();
        let layout = Layout::compute(1 << 20, &cfg).unwrap();
        assert_eq!(layout.slots_per_segment(), 7);
        assert!(layout.n_segments >= 4);
        assert_eq!(layout.ckpt_a, 512);
        assert_eq!(layout.ckpt_b, 512 + layout.ckpt_area_size);
        assert_eq!(layout.data_start, 512 + 2 * layout.ckpt_area_size);
        // Checkpoint area holds header + entries, block-rounded.
        assert_eq!(layout.ckpt_area_size % 512, 0);
        assert!(
            layout.ckpt_area_size
                >= CKPT_HEADER + CKPT_DIR_RESERVE + 100 * CKPT_BLOCK_ENTRY + 50 * CKPT_LIST_ENTRY
        );
    }

    #[test]
    fn too_small_device_rejected() {
        let cfg = small_config();
        assert!(matches!(
            Layout::compute(4096, &cfg),
            Err(LldError::Config(_))
        ));
    }

    #[test]
    fn offsets_are_consistent() {
        let layout = Layout::compute(1 << 20, &small_config()).unwrap();
        let s1 = layout.segment_offset(1);
        assert_eq!(s1 - layout.segment_offset(0), layout.segment_bytes as u64);
        let addr = PhysAddr {
            segment: SegmentId::new(1),
            slot: 3,
        };
        // Slot 3 sits 4 blocks into the segment (after the header block).
        assert_eq!(layout.block_offset(addr), s1 + 4 * 512);
    }

    #[test]
    fn superblock_round_trip() {
        let layout = Layout::compute(1 << 20, &small_config()).unwrap();
        let buf = layout.encode_superblock(ConcurrencyMode::Sequential, ReadVisibility::Committed);
        assert_eq!(buf.len(), SUPERBLOCK_LEN);
        let (decoded, conc, vis) = Layout::decode_superblock(&buf).unwrap();
        assert_eq!(decoded, layout);
        assert_eq!(conc, ConcurrencyMode::Sequential);
        assert_eq!(vis, ReadVisibility::Committed);
    }

    #[test]
    fn corrupt_superblock_detected() {
        let layout = Layout::compute(1 << 20, &small_config()).unwrap();
        let mut buf =
            layout.encode_superblock(ConcurrencyMode::Concurrent, ReadVisibility::OwnShadow);
        buf[9] ^= 0xFF;
        assert!(matches!(
            Layout::decode_superblock(&buf),
            Err(LldError::Corrupt(_))
        ));
        assert!(Layout::decode_superblock(&buf[..10]).is_err());
        // All-zero block: checksum of zeros won't match either.
        assert!(Layout::decode_superblock(&[0u8; SUPERBLOCK_LEN]).is_err());
    }

    #[test]
    fn default_max_blocks_scales_with_device() {
        let cfg = LldConfig {
            block_size: 512,
            segment_bytes: 8 * 512,
            ..LldConfig::default()
        };
        let small = Layout::compute(1 << 20, &cfg).unwrap();
        let large = Layout::compute(1 << 22, &cfg).unwrap();
        assert!(large.max_blocks > small.max_blocks);
    }
}
