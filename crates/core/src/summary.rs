//! Segment-summary records: the operation log for LLD's own meta-data.
//!
//! The mapping between logical and physical block identifiers and all
//! list information is contained in the on-disk segment summaries and can
//! be reconstructed during crash recovery by scanning them (§2, §4 of the
//! paper).
//!
//! Records originating inside an ARU carry that ARU's identifier; during
//! recovery they take effect only if (and at the point where) the ARU's
//! [`Record::Commit`] record is found in the log. This is what makes a
//! torn tail — summary entries persisted without their commit record —
//! recover to "none of the operations happened".

use crate::error::{LldError, Result};
use crate::types::{AruId, BlockId, ListId, Timestamp};

/// One segment-summary record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A data block was written to `slot` of the segment containing this
    /// record. Tagged with an ARU when the write belongs to one.
    Write {
        /// The logical block.
        block: BlockId,
        /// Data-block slot within this segment.
        slot: u32,
        /// Logical time of the write.
        ts: Timestamp,
        /// The ARU the write belongs to, if any.
        aru: Option<AruId>,
    },
    /// A block identifier was allocated. Never tagged: allocation always
    /// happens in the committed state, even inside an ARU (§3.3), so
    /// concurrent ARUs can never allocate the same identifier.
    NewBlock {
        /// The allocated block.
        block: BlockId,
        /// Logical time of the allocation.
        ts: Timestamp,
    },
    /// A list identifier was allocated. Never tagged, like `NewBlock`.
    NewList {
        /// The allocated list.
        list: ListId,
        /// Logical time of the allocation.
        ts: Timestamp,
    },
    /// A block was inserted into a list after `pred` (`None` = at the
    /// front). These are the paper's "link records".
    Link {
        /// The list inserted into.
        list: ListId,
        /// The inserted block.
        block: BlockId,
        /// The predecessor, or `None` for the front.
        pred: Option<BlockId>,
        /// Logical time of the insertion.
        ts: Timestamp,
        /// The ARU the insertion belongs to, if any.
        aru: Option<AruId>,
    },
    /// A block was removed from its list and deallocated.
    DeleteBlock {
        /// The deleted block.
        block: BlockId,
        /// Logical time of the deletion.
        ts: Timestamp,
        /// The ARU the deletion belongs to, if any.
        aru: Option<AruId>,
    },
    /// A list was deallocated together with any blocks still on it.
    DeleteList {
        /// The deleted list.
        list: ListId,
        /// Logical time of the deletion.
        ts: Timestamp,
        /// The ARU the deletion belongs to, if any.
        aru: Option<AruId>,
    },
    /// The commit record of an ARU: every record tagged with `aru` that
    /// precedes this record in the log takes effect at this point.
    Commit {
        /// The committed ARU.
        aru: AruId,
        /// Logical time of the commit (`EndARU` serialization point).
        ts: Timestamp,
    },
}

const TAG_WRITE: u8 = 1;
const TAG_NEW_BLOCK: u8 = 2;
const TAG_NEW_LIST: u8 = 3;
const TAG_LINK: u8 = 4;
const TAG_DELETE_BLOCK: u8 = 5;
const TAG_DELETE_LIST: u8 = 6;
const TAG_COMMIT: u8 = 7;

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Result<u8> {
        let v = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| LldError::Corrupt("truncated summary record".into()))?;
        self.pos += 1;
        Ok(v)
    }

    fn u32(&mut self) -> Result<u32> {
        let bytes = self
            .buf
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| LldError::Corrupt("truncated summary record".into()))?;
        self.pos += 4;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64> {
        let bytes = self
            .buf
            .get(self.pos..self.pos + 8)
            .ok_or_else(|| LldError::Corrupt("truncated summary record".into()))?;
        self.pos += 8;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    fn id<T>(&mut self, wrap: fn(u64) -> T) -> Result<T> {
        let raw = self.u64()?;
        if raw == 0 {
            return Err(LldError::Corrupt("zero identifier in record".into()));
        }
        Ok(wrap(raw))
    }
}

impl Record {
    /// Appends the binary encoding of this record to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match *self {
            Record::Write {
                block,
                slot,
                ts,
                aru,
            } => {
                buf.push(TAG_WRITE);
                put_u64(buf, block.get());
                put_u32(buf, slot);
                put_u64(buf, ts.get());
                put_u64(buf, AruId::encode_opt(aru));
            }
            Record::NewBlock { block, ts } => {
                buf.push(TAG_NEW_BLOCK);
                put_u64(buf, block.get());
                put_u64(buf, ts.get());
            }
            Record::NewList { list, ts } => {
                buf.push(TAG_NEW_LIST);
                put_u64(buf, list.get());
                put_u64(buf, ts.get());
            }
            Record::Link {
                list,
                block,
                pred,
                ts,
                aru,
            } => {
                buf.push(TAG_LINK);
                put_u64(buf, list.get());
                put_u64(buf, block.get());
                put_u64(buf, BlockId::encode_opt(pred));
                put_u64(buf, ts.get());
                put_u64(buf, AruId::encode_opt(aru));
            }
            Record::DeleteBlock { block, ts, aru } => {
                buf.push(TAG_DELETE_BLOCK);
                put_u64(buf, block.get());
                put_u64(buf, ts.get());
                put_u64(buf, AruId::encode_opt(aru));
            }
            Record::DeleteList { list, ts, aru } => {
                buf.push(TAG_DELETE_LIST);
                put_u64(buf, list.get());
                put_u64(buf, ts.get());
                put_u64(buf, AruId::encode_opt(aru));
            }
            Record::Commit { aru, ts } => {
                buf.push(TAG_COMMIT);
                put_u64(buf, aru.get());
                put_u64(buf, ts.get());
            }
        }
    }

    /// The encoded size of this record in bytes.
    pub fn encoded_len(&self) -> usize {
        match self {
            Record::Write { .. } => 1 + 8 + 4 + 8 + 8,
            Record::NewBlock { .. } | Record::NewList { .. } | Record::Commit { .. } => 1 + 8 + 8,
            Record::Link { .. } => 1 + 8 + 8 + 8 + 8 + 8,
            Record::DeleteBlock { .. } | Record::DeleteList { .. } => 1 + 8 + 8 + 8,
        }
    }

    /// The ARU tag carried by this record, if any.
    pub fn aru_tag(&self) -> Option<AruId> {
        match *self {
            Record::Write { aru, .. }
            | Record::Link { aru, .. }
            | Record::DeleteBlock { aru, .. }
            | Record::DeleteList { aru, .. } => aru,
            Record::NewBlock { .. } | Record::NewList { .. } | Record::Commit { .. } => None,
        }
    }

    /// The logical timestamp of this record.
    pub fn ts(&self) -> Timestamp {
        match *self {
            Record::Write { ts, .. }
            | Record::NewBlock { ts, .. }
            | Record::NewList { ts, .. }
            | Record::Link { ts, .. }
            | Record::DeleteBlock { ts, .. }
            | Record::DeleteList { ts, .. }
            | Record::Commit { ts, .. } => ts,
        }
    }

    /// Decodes every record in a summary buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LldError::Corrupt`] on an unknown tag or a truncated
    /// record. Callers validate the summary checksum first, so decode
    /// errors indicate real corruption rather than a torn write.
    pub fn decode_all(buf: &[u8]) -> Result<Vec<Record>> {
        let mut r = Reader { buf, pos: 0 };
        let mut out = Vec::new();
        while r.pos < buf.len() {
            let tag = r.u8()?;
            let rec = match tag {
                TAG_WRITE => Record::Write {
                    block: r.id(BlockId::new)?,
                    slot: r.u32()?,
                    ts: Timestamp::new(r.u64()?),
                    aru: AruId::decode_opt(r.u64()?),
                },
                TAG_NEW_BLOCK => Record::NewBlock {
                    block: r.id(BlockId::new)?,
                    ts: Timestamp::new(r.u64()?),
                },
                TAG_NEW_LIST => Record::NewList {
                    list: r.id(ListId::new)?,
                    ts: Timestamp::new(r.u64()?),
                },
                TAG_LINK => Record::Link {
                    list: r.id(ListId::new)?,
                    block: r.id(BlockId::new)?,
                    pred: BlockId::decode_opt(r.u64()?),
                    ts: Timestamp::new(r.u64()?),
                    aru: AruId::decode_opt(r.u64()?),
                },
                TAG_DELETE_BLOCK => Record::DeleteBlock {
                    block: r.id(BlockId::new)?,
                    ts: Timestamp::new(r.u64()?),
                    aru: AruId::decode_opt(r.u64()?),
                },
                TAG_DELETE_LIST => Record::DeleteList {
                    list: r.id(ListId::new)?,
                    ts: Timestamp::new(r.u64()?),
                    aru: AruId::decode_opt(r.u64()?),
                },
                TAG_COMMIT => Record::Commit {
                    aru: r.id(AruId::new)?,
                    ts: Timestamp::new(r.u64()?),
                },
                other => {
                    return Err(LldError::Corrupt(format!(
                        "unknown summary record tag {other}"
                    )))
                }
            };
            out.push(rec);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Record> {
        vec![
            Record::NewList {
                list: ListId::new(1),
                ts: Timestamp::new(1),
            },
            Record::NewBlock {
                block: BlockId::new(1),
                ts: Timestamp::new(2),
            },
            Record::Link {
                list: ListId::new(1),
                block: BlockId::new(1),
                pred: None,
                ts: Timestamp::new(3),
                aru: Some(AruId::new(1)),
            },
            Record::Write {
                block: BlockId::new(1),
                slot: 7,
                ts: Timestamp::new(4),
                aru: Some(AruId::new(1)),
            },
            Record::Commit {
                aru: AruId::new(1),
                ts: Timestamp::new(5),
            },
            Record::Link {
                list: ListId::new(1),
                block: BlockId::new(2),
                pred: Some(BlockId::new(1)),
                ts: Timestamp::new(6),
                aru: None,
            },
            Record::DeleteBlock {
                block: BlockId::new(2),
                ts: Timestamp::new(7),
                aru: None,
            },
            Record::DeleteList {
                list: ListId::new(1),
                ts: Timestamp::new(8),
                aru: Some(AruId::new(2)),
            },
        ]
    }

    #[test]
    fn round_trip_all_variants() {
        let records = samples();
        let mut buf = Vec::new();
        for r in &records {
            let before = buf.len();
            r.encode(&mut buf);
            assert_eq!(buf.len() - before, r.encoded_len());
        }
        let decoded = Record::decode_all(&buf).unwrap();
        assert_eq!(decoded, records);
    }

    #[test]
    fn aru_tags_and_timestamps() {
        let records = samples();
        assert_eq!(records[0].aru_tag(), None);
        assert_eq!(records[2].aru_tag(), Some(AruId::new(1)));
        assert_eq!(records[4].aru_tag(), None); // commit records are untagged
        assert_eq!(records[7].ts(), Timestamp::new(8));
    }

    #[test]
    fn truncation_detected() {
        let mut buf = Vec::new();
        samples()[3].encode(&mut buf);
        buf.pop();
        assert!(matches!(
            Record::decode_all(&buf),
            Err(LldError::Corrupt(_))
        ));
    }

    #[test]
    fn unknown_tag_detected() {
        assert!(matches!(
            Record::decode_all(&[0xEE]),
            Err(LldError::Corrupt(_))
        ));
    }

    #[test]
    fn zero_id_rejected_in_decode() {
        let mut buf = vec![TAG_NEW_BLOCK];
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&5u64.to_le_bytes());
        assert!(Record::decode_all(&buf).is_err());
    }

    #[test]
    fn empty_summary_is_empty() {
        assert_eq!(Record::decode_all(&[]).unwrap(), Vec::new());
    }
}
