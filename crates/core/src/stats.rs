//! Operation counters for the logical disk.

/// Counters of logical-disk activity since creation (or the last
/// [`reset`](LldStats::reset)).
///
/// These make the costs the paper discusses directly observable:
/// `list_walk_steps` counts predecessor-search steps (the cost the
/// improved deletion policy avoids), `shadow_records_merged` counts the
/// shadow→committed transition work at `EndARU`, and
/// `committed_records_drained` counts the committed→persistent
/// transition work at segment writes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct LldStats {
    /// `Read` operations.
    pub reads: u64,
    /// `Write` operations.
    pub writes: u64,
    /// `NewBlock` operations.
    pub new_blocks: u64,
    /// `DeleteBlock` operations.
    pub delete_blocks: u64,
    /// `NewList` operations.
    pub new_lists: u64,
    /// `DeleteList` operations.
    pub delete_lists: u64,
    /// `BeginARU` operations.
    pub arus_begun: u64,
    /// Successfully committed ARUs.
    pub arus_committed: u64,
    /// Explicitly aborted ARUs.
    pub arus_aborted: u64,
    /// `EndARU` calls that failed validation against the committed
    /// state (the ARU was aborted).
    pub commit_conflicts: u64,
    /// Segments sealed and written to the device.
    pub segments_sealed: u64,
    /// Summary records emitted.
    pub records_emitted: u64,
    /// Total encoded summary bytes emitted.
    pub summary_bytes: u64,
    /// Data blocks entered into the segment stream (includes relocations).
    pub data_blocks_written: u64,
    /// Blocks copied forward by the segment cleaner.
    pub blocks_relocated: u64,
    /// Cleaner invocations.
    pub cleaner_runs: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// Steps taken walking lists to find predecessors or members.
    pub list_walk_steps: u64,
    /// Alternative records created by copy-on-write into a shadow state.
    pub shadow_cow_records: u64,
    /// Shadow records merged into the committed state at `EndARU`
    /// (buffered data blocks plus replayed list operations).
    pub shadow_records_merged: u64,
    /// Committed records drained into the persistent tables at segment
    /// writes.
    pub committed_records_drained: u64,
    /// Data-block reads served from the block cache.
    pub cache_hits: u64,
    /// Data-block reads that went to the device.
    pub cache_misses: u64,
}

impl LldStats {
    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        *self = LldStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero_and_reset_works() {
        let mut s = LldStats::default();
        assert_eq!(s.reads, 0);
        s.reads = 5;
        s.list_walk_steps = 7;
        s.reset();
        assert_eq!(s, LldStats::default());
    }
}
