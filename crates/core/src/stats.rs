//! Operation counters for the logical disk.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters of logical-disk activity since creation (or the last
/// [`Lld::reset_stats`](crate::Lld::reset_stats)).
///
/// These make the costs the paper discusses directly observable:
/// `list_walk_steps` counts predecessor-search steps (the cost the
/// improved deletion policy avoids), `shadow_records_merged` counts the
/// shadow→committed transition work at `EndARU`, and
/// `committed_records_drained` counts the committed→persistent
/// transition work at segment writes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct LldStats {
    /// `Read` operations.
    pub reads: u64,
    /// `Write` operations.
    pub writes: u64,
    /// `NewBlock` operations.
    pub new_blocks: u64,
    /// `DeleteBlock` operations.
    pub delete_blocks: u64,
    /// `NewList` operations.
    pub new_lists: u64,
    /// `DeleteList` operations.
    pub delete_lists: u64,
    /// `BeginARU` operations.
    pub arus_begun: u64,
    /// Successfully committed ARUs.
    pub arus_committed: u64,
    /// Explicitly aborted ARUs.
    pub arus_aborted: u64,
    /// `EndARU` calls that failed validation against the committed
    /// state (the ARU was aborted).
    pub commit_conflicts: u64,
    /// Segments sealed and written to the device.
    pub segments_sealed: u64,
    /// Summary records emitted.
    pub records_emitted: u64,
    /// Total encoded summary bytes emitted.
    pub summary_bytes: u64,
    /// Data blocks entered into the segment stream (includes relocations).
    pub data_blocks_written: u64,
    /// Blocks copied forward by the segment cleaner.
    pub blocks_relocated: u64,
    /// Cleaner invocations: inline full-session runs plus background
    /// cleaner (`cleanerd`) passes.
    pub cleaner_runs: u64,
    /// Background cleaner (`cleanerd`) passes only.
    pub cleaner_passes: u64,
    /// Blocks copied forward by background cleaner passes (a subset of
    /// `blocks_relocated`).
    pub cleaner_blocks_relocated: u64,
    /// Snapshot candidates the background cleaner skipped because their
    /// mapping changed between the victim snapshot and the relocation
    /// window (the revalidation rule; see docs/CLEANER.md).
    pub cleaner_stale_skips: u64,
    /// Foreground operations that briefly stalled at the high-watermark
    /// backpressure gate to let the background cleaner free slots.
    pub backpressure_stalls: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// Steps taken walking lists to find predecessors or members.
    pub list_walk_steps: u64,
    /// Alternative records created by copy-on-write into a shadow state.
    pub shadow_cow_records: u64,
    /// Shadow records merged into the committed state at `EndARU`
    /// (buffered data blocks plus replayed list operations).
    pub shadow_records_merged: u64,
    /// Committed records drained into the persistent tables at segment
    /// writes.
    pub committed_records_drained: u64,
    /// Data-block reads served from the block cache.
    pub cache_hits: u64,
    /// Data-block reads that went to the device.
    pub cache_misses: u64,
    /// Group-commit batches: leader flushes, each of which seals the
    /// segment and issues one device barrier for every caller in the
    /// batch.
    pub flush_batches: u64,
    /// Total `flush` callers served by group-commit batches (the sum of
    /// all batch sizes; equals `flush_batches` when no batching
    /// occurred).
    pub flush_batch_callers: u64,
    /// Largest group-commit batch observed.
    pub flush_batch_max: u64,
    /// Mutation sessions that locked every map shard (deletions,
    /// cross-shard commits, cleaner, checkpoint, recovery, or any
    /// operation under space pressure).
    pub full_mutations: u64,
    /// Mutation sessions scoped to the shards their identifiers hash to.
    pub scoped_mutations: u64,
    /// Concurrent-ARU commits whose effects touched a single map shard.
    pub single_shard_commits: u64,
    /// Concurrent-ARU commits whose effects spanned several map shards.
    pub cross_shard_commits: u64,
    /// `EndARU` calls that fell back to a full session (deletion in the
    /// log, or free segments too scarce for a scoped commit).
    pub commit_full_fallbacks: u64,
    /// Read-path list walks that crossed a shard boundary and re-ran
    /// holding every shard.
    pub walk_escalations: u64,
    /// Writers that blocked on the pipelined device's bounded
    /// submission queue (0 when the synchronous device path is in use;
    /// see `LldConfig::pipeline`).
    pub pipeline_stalls: u64,
    /// Maximum number of simultaneously in-flight (submitted but not
    /// retired) device barriers observed on the pipelined path (0 in
    /// synchronous mode).
    pub inflight_barriers: u64,
    /// Trace events evicted from the bounded [`TraceRing`]
    /// (crate::obs::TraceRing) by wraparound — non-zero means the trace
    /// in `ObsSnapshot::events` is truncated at the front.
    pub trace_events_dropped: u64,
}

impl LldStats {
    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        *self = LldStats::default();
    }
}

/// One atomically updated counter (relaxed ordering: counters are
/// diagnostics, not synchronization).
#[derive(Debug, Default)]
pub(crate) struct Counter(AtomicU64);

impl Counter {
    #[inline]
    pub(crate) fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub(crate) fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    #[inline]
    pub(crate) fn clear(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// The live, shareable counterpart of [`LldStats`]: every field an
/// atomic, updated from any thread without locking, snapshotted into
/// the plain struct on demand.
#[derive(Debug, Default)]
pub(crate) struct StatsCell {
    pub(crate) reads: Counter,
    pub(crate) writes: Counter,
    pub(crate) new_blocks: Counter,
    pub(crate) delete_blocks: Counter,
    pub(crate) new_lists: Counter,
    pub(crate) delete_lists: Counter,
    pub(crate) arus_begun: Counter,
    pub(crate) arus_committed: Counter,
    pub(crate) arus_aborted: Counter,
    pub(crate) commit_conflicts: Counter,
    pub(crate) segments_sealed: Counter,
    pub(crate) records_emitted: Counter,
    pub(crate) summary_bytes: Counter,
    pub(crate) data_blocks_written: Counter,
    pub(crate) blocks_relocated: Counter,
    pub(crate) cleaner_runs: Counter,
    pub(crate) cleaner_passes: Counter,
    pub(crate) cleaner_blocks_relocated: Counter,
    pub(crate) cleaner_stale_skips: Counter,
    pub(crate) backpressure_stalls: Counter,
    pub(crate) checkpoints: Counter,
    pub(crate) list_walk_steps: Counter,
    pub(crate) shadow_cow_records: Counter,
    pub(crate) shadow_records_merged: Counter,
    pub(crate) committed_records_drained: Counter,
    pub(crate) cache_hits: Counter,
    pub(crate) cache_misses: Counter,
    pub(crate) flush_batches: Counter,
    pub(crate) flush_batch_callers: Counter,
    pub(crate) flush_batch_max: Counter,
    pub(crate) full_mutations: Counter,
    pub(crate) scoped_mutations: Counter,
    pub(crate) single_shard_commits: Counter,
    pub(crate) cross_shard_commits: Counter,
    pub(crate) commit_full_fallbacks: Counter,
    pub(crate) walk_escalations: Counter,
}

impl StatsCell {
    pub(crate) fn snapshot(&self) -> LldStats {
        LldStats {
            reads: self.reads.get(),
            writes: self.writes.get(),
            new_blocks: self.new_blocks.get(),
            delete_blocks: self.delete_blocks.get(),
            new_lists: self.new_lists.get(),
            delete_lists: self.delete_lists.get(),
            arus_begun: self.arus_begun.get(),
            arus_committed: self.arus_committed.get(),
            arus_aborted: self.arus_aborted.get(),
            commit_conflicts: self.commit_conflicts.get(),
            segments_sealed: self.segments_sealed.get(),
            records_emitted: self.records_emitted.get(),
            summary_bytes: self.summary_bytes.get(),
            data_blocks_written: self.data_blocks_written.get(),
            blocks_relocated: self.blocks_relocated.get(),
            cleaner_runs: self.cleaner_runs.get(),
            cleaner_passes: self.cleaner_passes.get(),
            cleaner_blocks_relocated: self.cleaner_blocks_relocated.get(),
            cleaner_stale_skips: self.cleaner_stale_skips.get(),
            backpressure_stalls: self.backpressure_stalls.get(),
            checkpoints: self.checkpoints.get(),
            list_walk_steps: self.list_walk_steps.get(),
            shadow_cow_records: self.shadow_cow_records.get(),
            shadow_records_merged: self.shadow_records_merged.get(),
            committed_records_drained: self.committed_records_drained.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            flush_batches: self.flush_batches.get(),
            flush_batch_callers: self.flush_batch_callers.get(),
            flush_batch_max: self.flush_batch_max.get(),
            full_mutations: self.full_mutations.get(),
            scoped_mutations: self.scoped_mutations.get(),
            single_shard_commits: self.single_shard_commits.get(),
            cross_shard_commits: self.cross_shard_commits.get(),
            commit_full_fallbacks: self.commit_full_fallbacks.get(),
            walk_escalations: self.walk_escalations.get(),
            // Filled from the pipelined device path / the trace ring
            // by `Lld::stats`; the cell itself never counts these.
            pipeline_stalls: 0,
            inflight_barriers: 0,
            trace_events_dropped: 0,
        }
    }

    pub(crate) fn reset(&self) {
        let StatsCell {
            reads,
            writes,
            new_blocks,
            delete_blocks,
            new_lists,
            delete_lists,
            arus_begun,
            arus_committed,
            arus_aborted,
            commit_conflicts,
            segments_sealed,
            records_emitted,
            summary_bytes,
            data_blocks_written,
            blocks_relocated,
            cleaner_runs,
            cleaner_passes,
            cleaner_blocks_relocated,
            cleaner_stale_skips,
            backpressure_stalls,
            checkpoints,
            list_walk_steps,
            shadow_cow_records,
            shadow_records_merged,
            committed_records_drained,
            cache_hits,
            cache_misses,
            flush_batches,
            flush_batch_callers,
            flush_batch_max,
            full_mutations,
            scoped_mutations,
            single_shard_commits,
            cross_shard_commits,
            commit_full_fallbacks,
            walk_escalations,
        } = self;
        for c in [
            reads,
            writes,
            new_blocks,
            delete_blocks,
            new_lists,
            delete_lists,
            arus_begun,
            arus_committed,
            arus_aborted,
            commit_conflicts,
            segments_sealed,
            records_emitted,
            summary_bytes,
            data_blocks_written,
            blocks_relocated,
            cleaner_runs,
            cleaner_passes,
            cleaner_blocks_relocated,
            cleaner_stale_skips,
            backpressure_stalls,
            checkpoints,
            list_walk_steps,
            shadow_cow_records,
            shadow_records_merged,
            committed_records_drained,
            cache_hits,
            cache_misses,
            flush_batches,
            flush_batch_callers,
            flush_batch_max,
            full_mutations,
            scoped_mutations,
            single_shard_commits,
            cross_shard_commits,
            commit_full_fallbacks,
            walk_escalations,
        ] {
            c.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero_and_reset_works() {
        let mut s = LldStats::default();
        assert_eq!(s.reads, 0);
        s.reads = 5;
        s.list_walk_steps = 7;
        s.reset();
        assert_eq!(s, LldStats::default());
    }

    #[test]
    fn cell_snapshot_and_reset() {
        let c = StatsCell::default();
        c.reads.inc();
        c.summary_bytes.add(10);
        c.flush_batch_max.record_max(3);
        c.flush_batch_max.record_max(2);
        let s = c.snapshot();
        assert_eq!(s.reads, 1);
        assert_eq!(s.summary_bytes, 10);
        assert_eq!(s.flush_batch_max, 3);
        c.reset();
        assert_eq!(c.snapshot(), LldStats::default());
    }
}
