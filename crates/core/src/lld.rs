//! The logical disk proper: struct definition, formatting, segment
//! plumbing, and the version-state access helpers shared by all
//! operations.

use crate::aru::Aru;
use crate::cache::BlockCache;
use crate::config::{CleanerConfig, ConcurrencyMode, LldConfig, ReadVisibility};
use crate::error::{LldError, Result};
use crate::layout::{Layout, SUPERBLOCK_LEN};
use crate::obs::{Obs, ObsSnapshot, TraceEvent};
use crate::segment::SegmentBuilder;
use crate::state::{BlockRecord, ListRecord, StateOverlay, Tables};
use crate::stats::LldStats;
use crate::summary::Record;
use crate::types::{AruId, BlockId, ListId, PhysAddr, Position, SegmentId, Timestamp};
use ld_disk::BlockDevice;
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// Encoded length of a `Write` summary record (needed to reserve room
/// for a data block and its record together, so they land in the same
/// segment).
pub(crate) const WRITE_REC_LEN: usize = 1 + 8 + 4 + 8 + 8;

/// Which version state an internal operation targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StateRef {
    /// The merged stream's committed state.
    Committed,
    /// The shadow state of one ARU (resolution falls through to the
    /// committed state, which falls through to the persistent state —
    /// the paper's standardised search).
    Shadow(AruId),
}

/// The log-structured Logical Disk with atomic recovery units.
///
/// `Lld` implements the LD interface — `Read`, `Write`, `NewBlock`,
/// `DeleteBlock`, `NewList`, `DeleteList`, `Flush` — extended with
/// `BeginARU` / `EndARU` ([`begin_aru`](Lld::begin_aru),
/// [`end_aru`](Lld::end_aru)). All operations bracketed by an ARU become
/// persistent atomically: after a crash, recovery
/// ([`Lld::recover`]) restores either all or none of them.
///
/// The disk is single-threaded like the paper's prototype (which links
/// LLD and the file system into one user process); concurrency of *ARUs*
/// means interleaved logical streams, not OS threads. Wrap an `Lld` in a
/// mutex to share it between threads.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), ld_core::LldError> {
/// use ld_core::{Ctx, Lld, LldConfig, Position};
/// use ld_disk::MemDisk;
///
/// let mut ld = Lld::format(MemDisk::new(4 << 20), &LldConfig {
///     block_size: 512,
///     segment_bytes: 16 * 512,
///     ..LldConfig::default()
/// })?;
///
/// // Create a file's metadata and data atomically.
/// let aru = ld.begin_aru()?;
/// let list = ld.new_list(Ctx::Aru(aru))?;
/// let block = ld.new_block(Ctx::Aru(aru), list, Position::First)?;
/// ld.write(Ctx::Aru(aru), block, &[7u8; 512])?;
/// ld.end_aru(aru)?;
///
/// let mut buf = [0u8; 512];
/// ld.read(Ctx::Simple, block, &mut buf)?;
/// assert_eq!(buf[0], 7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Lld<D> {
    pub(crate) device: D,
    pub(crate) layout: Layout,
    pub(crate) concurrency: ConcurrencyMode,
    pub(crate) visibility: ReadVisibility,
    pub(crate) cleaner_cfg: CleanerConfig,

    /// Persistent state: block-number-map and list-table.
    pub(crate) persistent: Tables,
    /// Committed-but-not-yet-persistent alternative records.
    pub(crate) committed: StateOverlay,
    /// Active ARUs, keyed by raw id.
    pub(crate) arus: BTreeMap<u64, Aru>,

    /// The segment currently being filled in memory. `None` only
    /// transiently (mid-roll) or when the disk is full.
    pub(crate) builder: Option<SegmentBuilder>,
    /// Per physical slot: log sequence number of the sealed segment it
    /// holds (0 = none/invalid).
    pub(crate) slot_seq: Vec<u64>,
    /// Physical slots available for new segments.
    pub(crate) free_slots: BTreeSet<u32>,
    /// Per physical slot: number of blocks whose current address is in
    /// it.
    pub(crate) live_count: Vec<u32>,
    /// Per physical slot: the blocks whose current address is in it
    /// (the cleaner's work list).
    pub(crate) residents: Vec<HashSet<BlockId>>,

    pub(crate) next_block_raw: u64,
    pub(crate) free_blocks: BTreeSet<u64>,
    pub(crate) allocated_blocks: u64,
    pub(crate) next_list_raw: u64,
    pub(crate) free_lists: BTreeSet<u64>,
    pub(crate) allocated_lists: u64,
    pub(crate) next_aru_raw: u64,

    pub(crate) ts_counter: u64,
    pub(crate) next_seq: u64,
    /// Highest segment sequence number covered by an on-disk checkpoint.
    pub(crate) checkpoint_seq: u64,
    pub(crate) ckpt_use_b: bool,
    pub(crate) cleaning: bool,
    pub(crate) cache: BlockCache,
    pub(crate) stats: LldStats,
    pub(crate) obs: Obs,
}

impl<D: BlockDevice> Lld<D> {
    /// Formats `device` as a fresh, empty logical disk.
    ///
    /// Existing segment headers and checkpoints on the device are
    /// invalidated so that recovery can never resurrect state from a
    /// previous format.
    ///
    /// # Errors
    ///
    /// Returns [`LldError::Config`] for an invalid configuration or a
    /// device too small for four segments, and device errors.
    pub fn format(device: D, config: &LldConfig) -> Result<Self> {
        config.validate()?;
        let layout = Layout::compute(device.capacity(), config)?;

        // Write the superblock.
        let sb = layout.encode_superblock(config.concurrency, config.visibility);
        device.write_at(0, &sb)?;
        // Invalidate both checkpoint areas and every segment header.
        let zeros = [0u8; 64];
        device.write_at(layout.ckpt_a, &zeros)?;
        device.write_at(layout.ckpt_b, &zeros)?;
        for slot in 0..layout.n_segments {
            device.write_at(layout.segment_offset(slot), &zeros[..32])?;
        }
        device.flush()?;

        let n = layout.n_segments as usize;
        let mut ld = Lld {
            device,
            layout,
            concurrency: config.concurrency,
            visibility: config.visibility,
            cleaner_cfg: config.cleaner,
            persistent: Tables::default(),
            committed: StateOverlay::default(),
            arus: BTreeMap::new(),
            builder: None,
            slot_seq: vec![0; n],
            free_slots: (0..n as u32).collect(),
            live_count: vec![0; n],
            residents: vec![HashSet::new(); n],
            next_block_raw: 1,
            free_blocks: BTreeSet::new(),
            allocated_blocks: 0,
            next_list_raw: 1,
            free_lists: BTreeSet::new(),
            allocated_lists: 0,
            next_aru_raw: 1,
            ts_counter: 0,
            next_seq: 1,
            checkpoint_seq: 0,
            ckpt_use_b: false,
            cleaning: false,
            cache: BlockCache::new(config.read_cache_blocks),
            stats: LldStats::default(),
            obs: Obs::new(config.obs),
        };
        ld.open_segment(0)?;
        Ok(ld)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The block size in bytes.
    pub fn block_size(&self) -> usize {
        self.layout.block_size
    }

    /// The segment size in bytes.
    pub fn segment_bytes(&self) -> usize {
        self.layout.segment_bytes
    }

    /// Number of segment slots on the device.
    pub fn n_segments(&self) -> u32 {
        self.layout.n_segments
    }

    /// Number of currently free segment slots.
    pub fn free_segments(&self) -> u32 {
        self.free_slots.len() as u32
    }

    /// The concurrency mode ("old" sequential vs "new" concurrent).
    pub fn concurrency(&self) -> ConcurrencyMode {
        self.concurrency
    }

    /// The read-visibility semantics in effect.
    pub fn visibility(&self) -> ReadVisibility {
        self.visibility
    }

    /// Operation counters.
    pub fn stats(&self) -> &LldStats {
        &self.stats
    }

    /// The observability bundle: trace events, latency histograms, ARU
    /// lifecycle spans.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Counters and service-time histograms of the underlying device,
    /// when it collects them (a [`SimDisk`](ld_disk::SimDisk) does;
    /// plain [`MemDisk`](ld_disk::MemDisk) / `FileDisk` return `None`).
    pub fn device_stats(&self) -> Option<ld_disk::DiskStatsSnapshot> {
        self.device.stats_snapshot()
    }

    /// Captures everything observable about this disk in one bundle:
    /// LLD counters, device counters, the `lld_read` / `lld_write` /
    /// `end_aru` / `flush` latency histograms (plus `disk_read` /
    /// `disk_write` when the device provides them), recent trace
    /// events, ARU spans, and the recovery report if this disk was
    /// recovered. `fs_ops` is left empty for a file-system caller to
    /// fill.
    pub fn obs_snapshot(&self) -> ObsSnapshot {
        let disk = self.device.stats_snapshot();
        let mut histograms: Vec<(String, ld_disk::HistogramSnapshot)> = self
            .obs
            .histograms()
            .into_iter()
            .map(|(n, h)| (n.to_string(), h))
            .collect();
        if let Some(d) = &disk {
            histograms.push(("disk_read".to_string(), d.read_hist));
            histograms.push(("disk_write".to_string(), d.write_hist));
        }
        ObsSnapshot {
            lld: self.stats,
            disk,
            histograms,
            events: self.obs.ring().entries(),
            dropped_events: self.obs.ring().dropped(),
            spans: self.obs.spans(),
            recovery: self.obs.recovery_report(),
            fs_ops: Vec::new(),
        }
    }

    /// Resets the operation counters.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Identifiers of the currently active ARUs.
    pub fn active_arus(&self) -> Vec<AruId> {
        self.arus.keys().map(|&raw| AruId::new(raw)).collect()
    }

    /// The logical time at which an active ARU began, if it is active.
    pub fn aru_started(&self, aru: AruId) -> Option<Timestamp> {
        self.arus.get(&aru.get()).map(|a| a.started)
    }

    /// Number of blocks allocated in the committed state.
    pub fn allocated_block_count(&self) -> u64 {
        self.allocated_blocks
    }

    /// Number of lists allocated in the committed state.
    pub fn allocated_list_count(&self) -> u64 {
        self.allocated_lists
    }

    /// The highest segment sequence number covered by an on-disk
    /// checkpoint (0 = no checkpoint; recovery scans the whole log).
    pub fn checkpoint_seq(&self) -> u64 {
        self.checkpoint_seq
    }

    /// Borrows the underlying device (e.g. to inspect simulator
    /// statistics).
    pub fn device(&self) -> &D {
        &self.device
    }

    /// Consumes the logical disk and returns the device. Un-flushed
    /// committed state is *not* written; this models a crash.
    pub fn into_device(self) -> D {
        self.device
    }

    /// A copy of the committed-state record of `block`, if allocated.
    pub fn block_info(&self, block: BlockId) -> Option<BlockRecord> {
        self.view_block(StateRef::Committed, block)
            .filter(|r| r.allocated)
            .cloned()
    }

    /// A copy of the committed-state record of `list`, if allocated.
    pub fn list_info(&self, list: ListId) -> Option<ListRecord> {
        self.view_list(StateRef::Committed, list)
            .filter(|r| r.allocated)
            .cloned()
    }

    // ------------------------------------------------------------------
    // Time and identifiers
    // ------------------------------------------------------------------

    /// Advances the logical clock and returns the new timestamp.
    pub(crate) fn tick(&mut self) -> Timestamp {
        self.ts_counter += 1;
        Timestamp::new(self.ts_counter)
    }

    pub(crate) fn alloc_block_id(&mut self) -> Result<BlockId> {
        if self.allocated_blocks >= self.layout.max_blocks {
            return Err(LldError::DiskFull);
        }
        let raw = match self.free_blocks.pop_first() {
            Some(raw) => raw,
            None => {
                let raw = self.next_block_raw;
                self.next_block_raw += 1;
                raw
            }
        };
        Ok(BlockId::new(raw))
    }

    pub(crate) fn alloc_list_id(&mut self) -> Result<ListId> {
        if self.allocated_lists >= self.layout.max_lists {
            return Err(LldError::DiskFull);
        }
        let raw = match self.free_lists.pop_first() {
            Some(raw) => raw,
            None => {
                let raw = self.next_list_raw;
                self.next_list_raw += 1;
                raw
            }
        };
        Ok(ListId::new(raw))
    }

    // ------------------------------------------------------------------
    // Version-state access (the standardised search)
    // ------------------------------------------------------------------

    /// The committed view of a block: committed overlay, falling through
    /// to the persistent table. May return a deallocated record.
    pub(crate) fn committed_view_block(&self, id: BlockId) -> Option<&BlockRecord> {
        self.committed
            .blocks
            .get(&id)
            .or_else(|| self.persistent.blocks.get(&id))
    }

    pub(crate) fn committed_view_list(&self, id: ListId) -> Option<&ListRecord> {
        self.committed
            .lists
            .get(&id)
            .or_else(|| self.persistent.lists.get(&id))
    }

    /// Resolves a block record in the given state (shadow → committed →
    /// persistent). May return a deallocated record.
    pub(crate) fn view_block(&self, st: StateRef, id: BlockId) -> Option<&BlockRecord> {
        if let StateRef::Shadow(aru) = st {
            if let Some(rec) = self
                .arus
                .get(&aru.get())
                .and_then(|a| a.shadow.blocks.get(&id))
            {
                return Some(rec);
            }
        }
        self.committed_view_block(id)
    }

    pub(crate) fn view_list(&self, st: StateRef, id: ListId) -> Option<&ListRecord> {
        if let StateRef::Shadow(aru) = st {
            if let Some(rec) = self
                .arus
                .get(&aru.get())
                .and_then(|a| a.shadow.lists.get(&id))
            {
                return Some(rec);
            }
        }
        self.committed_view_list(id)
    }

    /// Copy-on-write access to a block record in the given state: if the
    /// state has no alternative record yet, the version below is copied
    /// in (the paper: "the disk system applies modifications to a copy of
    /// the committed version ... which then becomes the new shadow
    /// version").
    ///
    /// # Errors
    ///
    /// Returns [`LldError::BlockNotAllocated`] if no version of the
    /// block exists at all.
    pub(crate) fn block_mut(&mut self, st: StateRef, id: BlockId) -> Result<&mut BlockRecord> {
        match st {
            StateRef::Committed => {
                if !self.committed.blocks.contains_key(&id) {
                    let base = self
                        .persistent
                        .blocks
                        .get(&id)
                        .cloned()
                        .ok_or(LldError::BlockNotAllocated(id))?;
                    self.committed.blocks.insert(id, base);
                }
                Ok(self.committed.blocks.get_mut(&id).expect("just inserted"))
            }
            StateRef::Shadow(aru) => {
                let raw = aru.get();
                if !self
                    .arus
                    .get(&raw)
                    .ok_or(LldError::UnknownAru(aru))?
                    .shadow
                    .blocks
                    .contains_key(&id)
                {
                    let base = self
                        .committed_view_block(id)
                        .cloned()
                        .ok_or(LldError::BlockNotAllocated(id))?;
                    self.stats.shadow_cow_records += 1;
                    self.obs.span_cow(raw);
                    self.arus
                        .get_mut(&raw)
                        .expect("checked above")
                        .shadow
                        .blocks
                        .insert(id, base);
                }
                Ok(self
                    .arus
                    .get_mut(&raw)
                    .expect("checked above")
                    .shadow
                    .blocks
                    .get_mut(&id)
                    .expect("just inserted"))
            }
        }
    }

    pub(crate) fn list_mut(&mut self, st: StateRef, id: ListId) -> Result<&mut ListRecord> {
        match st {
            StateRef::Committed => {
                if !self.committed.lists.contains_key(&id) {
                    let base = self
                        .persistent
                        .lists
                        .get(&id)
                        .cloned()
                        .ok_or(LldError::ListNotAllocated(id))?;
                    self.committed.lists.insert(id, base);
                }
                Ok(self.committed.lists.get_mut(&id).expect("just inserted"))
            }
            StateRef::Shadow(aru) => {
                let raw = aru.get();
                if !self
                    .arus
                    .get(&raw)
                    .ok_or(LldError::UnknownAru(aru))?
                    .shadow
                    .lists
                    .contains_key(&id)
                {
                    let base = self
                        .committed_view_list(id)
                        .cloned()
                        .ok_or(LldError::ListNotAllocated(id))?;
                    self.stats.shadow_cow_records += 1;
                    self.obs.span_cow(raw);
                    self.arus
                        .get_mut(&raw)
                        .expect("checked above")
                        .shadow
                        .lists
                        .insert(id, base);
                }
                Ok(self
                    .arus
                    .get_mut(&raw)
                    .expect("checked above")
                    .shadow
                    .lists
                    .get_mut(&id)
                    .expect("just inserted"))
            }
        }
    }

    /// Adjusts the per-segment live-block accounting when the committed
    /// address of `id` changes.
    pub(crate) fn adjust_addr(
        &mut self,
        id: BlockId,
        old: Option<PhysAddr>,
        new: Option<PhysAddr>,
    ) {
        if old == new {
            return;
        }
        if let Some(a) = old {
            let s = a.segment.get() as usize;
            self.live_count[s] = self.live_count[s].saturating_sub(1);
            self.residents[s].remove(&id);
        }
        if let Some(a) = new {
            let s = a.segment.get() as usize;
            self.live_count[s] += 1;
            self.residents[s].insert(id);
        }
    }

    // ------------------------------------------------------------------
    // List structure manipulation (shared by ops, commit replay, and
    // recovery replay)
    // ------------------------------------------------------------------

    /// Walks `list` in state `st`, returning the member blocks in order.
    ///
    /// # Errors
    ///
    /// [`LldError::ListNotAllocated`] if the list does not exist in the
    /// state; [`LldError::Corrupt`] on a cycle or dangling successor.
    pub(crate) fn walk_list(&mut self, st: StateRef, list: ListId) -> Result<Vec<BlockId>> {
        let rec = self
            .view_list(st, list)
            .filter(|r| r.allocated)
            .ok_or(LldError::ListNotAllocated(list))?;
        let mut out = Vec::new();
        let mut cur = rec.first;
        let bound = self.layout.max_blocks + 1;
        let mut steps = 0u64;
        while let Some(b) = cur {
            steps += 1;
            if steps > bound {
                return Err(LldError::Corrupt(format!("cycle while walking {list}")));
            }
            let brec = self
                .view_block(st, b)
                .filter(|r| r.allocated)
                .ok_or_else(|| {
                    LldError::Corrupt(format!("list {list} references missing block {b}"))
                })?;
            out.push(b);
            cur = brec.successor;
        }
        self.stats.list_walk_steps += steps;
        Ok(out)
    }

    /// Validates that an insertion of a block into `list` at `pos` is
    /// possible in state `st` (list allocated; predecessor allocated and
    /// on the list).
    pub(crate) fn validate_insert(&self, st: StateRef, list: ListId, pos: Position) -> Result<()> {
        self.view_list(st, list)
            .filter(|r| r.allocated)
            .ok_or(LldError::ListNotAllocated(list))?;
        if let Position::After(pred) = pos {
            let p = self
                .view_block(st, pred)
                .filter(|r| r.allocated)
                .ok_or(LldError::BlockNotAllocated(pred))?;
            if p.list != Some(list) {
                return Err(LldError::PredecessorNotOnList { list, pred });
            }
        }
        Ok(())
    }

    /// Inserts `block` (which must exist, allocated, and not on a list,
    /// in state `st`) into `list` at `pos`. Callers run
    /// [`validate_insert`](Self::validate_insert) first.
    pub(crate) fn insert_into_list(
        &mut self,
        st: StateRef,
        list: ListId,
        block: BlockId,
        pos: Position,
        ts: Timestamp,
    ) -> Result<()> {
        self.validate_insert(st, list, pos)?;
        match pos {
            Position::First => {
                let old_first = {
                    let lr = self.list_mut(st, list)?;
                    let old = lr.first;
                    lr.first = Some(block);
                    if lr.last.is_none() {
                        lr.last = Some(block);
                    }
                    lr.ts = ts;
                    old
                };
                let br = self.block_mut(st, block)?;
                br.successor = old_first;
                br.list = Some(list);
                br.ts = ts;
            }
            Position::After(pred) => {
                let pred_succ = {
                    let pm = self.block_mut(st, pred)?;
                    let old = pm.successor;
                    pm.successor = Some(block);
                    pm.ts = ts;
                    old
                };
                {
                    let bm = self.block_mut(st, block)?;
                    bm.successor = pred_succ;
                    bm.list = Some(list);
                    bm.ts = ts;
                }
                let lr = self.list_mut(st, list)?;
                if lr.last == Some(pred) {
                    lr.last = Some(block);
                }
                lr.ts = ts;
            }
        }
        Ok(())
    }

    /// Removes `block` from its list (if any) in state `st`, running the
    /// predecessor search the paper identifies as the dominant deletion
    /// cost.
    pub(crate) fn unlink_block(
        &mut self,
        st: StateRef,
        block: BlockId,
        ts: Timestamp,
    ) -> Result<()> {
        let rec = self
            .view_block(st, block)
            .filter(|r| r.allocated)
            .ok_or(LldError::BlockNotAllocated(block))?;
        let Some(list) = rec.list else {
            return Ok(());
        };
        let successor = rec.successor;

        // Predecessor search: walk from the head of the list.
        let lrec = self
            .view_list(st, list)
            .filter(|r| r.allocated)
            .ok_or(LldError::ListNotAllocated(list))?;
        let mut pred: Option<BlockId> = None;
        let mut cur = lrec.first;
        let bound = self.layout.max_blocks + 1;
        let mut steps = 0u64;
        while let Some(b) = cur {
            if b == block {
                break;
            }
            steps += 1;
            if steps > bound {
                return Err(LldError::Corrupt(format!("cycle while walking {list}")));
            }
            pred = Some(b);
            cur = self.view_block(st, b).and_then(|r| r.successor);
            if cur.is_none() {
                return Err(LldError::Corrupt(format!(
                    "{block} claims membership of {list} but is not on it"
                )));
            }
        }
        self.stats.list_walk_steps += steps;

        match pred {
            None => {
                let lr = self.list_mut(st, list)?;
                lr.first = successor;
                if lr.last == Some(block) {
                    lr.last = None;
                }
                lr.ts = ts;
            }
            Some(p) => {
                {
                    let pm = self.block_mut(st, p)?;
                    pm.successor = successor;
                    pm.ts = ts;
                }
                let lr = self.list_mut(st, list)?;
                if lr.last == Some(block) {
                    lr.last = Some(p);
                }
                lr.ts = ts;
            }
        }
        let bm = self.block_mut(st, block)?;
        bm.list = None;
        bm.successor = None;
        bm.ts = ts;
        Ok(())
    }

    /// Marks `block` deallocated in state `st`. In the committed state
    /// this also releases its physical address and decrements the
    /// allocation count; identifier reuse is the caller's decision.
    pub(crate) fn dealloc_block(
        &mut self,
        st: StateRef,
        block: BlockId,
        ts: Timestamp,
    ) -> Result<()> {
        if st == StateRef::Committed {
            let old = self.committed_view_block(block).and_then(|r| r.addr);
            self.adjust_addr(block, old, None);
            self.allocated_blocks = self.allocated_blocks.saturating_sub(1);
        }
        let bm = self.block_mut(st, block)?;
        bm.allocated = false;
        bm.addr = None;
        bm.list = None;
        bm.successor = None;
        bm.ts = ts;
        Ok(())
    }

    /// Marks `list` deallocated in state `st`.
    pub(crate) fn dealloc_list(&mut self, st: StateRef, list: ListId, ts: Timestamp) -> Result<()> {
        if st == StateRef::Committed {
            self.allocated_lists = self.allocated_lists.saturating_sub(1);
        }
        let lm = self.list_mut(st, list)?;
        lm.allocated = false;
        lm.first = None;
        lm.last = None;
        lm.ts = ts;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Segment plumbing
    // ------------------------------------------------------------------

    /// Ensures the current segment can absorb `blocks` data blocks plus
    /// `summary` bytes of records, rolling to a new segment if needed.
    ///
    /// `reserve` is the number of free segment slots that must remain
    /// after a roll: space-*consuming* operations pass 1 so the last
    /// slot stays available for deletions and cleaning (otherwise a
    /// full log could never be emptied again); space-*reclaiming*
    /// operations pass 0.
    pub(crate) fn ensure_room(
        &mut self,
        blocks: usize,
        summary: usize,
        reserve: usize,
    ) -> Result<()> {
        let fits = match &self.builder {
            Some(b) => b.fits(blocks, summary),
            None => false,
        };
        if fits {
            return Ok(());
        }
        self.roll_segment(reserve)?;
        match &self.builder {
            Some(b) if b.fits(blocks, summary) => Ok(()),
            Some(_) => Err(LldError::Config(
                "request does not fit in an empty segment".into(),
            )),
            None => Err(LldError::DiskFull),
        }
    }

    /// Seals and writes the current segment (if it has content) and
    /// opens a new one, running the cleaner if free segments are scarce.
    pub(crate) fn roll_segment(&mut self, reserve: usize) -> Result<()> {
        let had_content = self.seal_current()?;
        if self.builder.is_none() {
            self.open_segment(reserve)?;
        }
        if had_content
            && !self.cleaning
            && self.cleaner_cfg.enabled
            && (self.free_slots.len() as u32) < self.cleaner_cfg.min_free_segments
        {
            self.run_cleaner()?;
        }
        Ok(())
    }

    /// Seals and writes the current segment. Returns `true` if a
    /// segment was actually written (the builder is then `None`); an
    /// empty builder is left in place and `false` returned.
    pub(crate) fn seal_current(&mut self) -> Result<bool> {
        match self.builder.take() {
            None => Ok(false),
            Some(b) if b.is_empty() => {
                self.builder = Some(b);
                Ok(false)
            }
            Some(b) => {
                let seal_seq = b.seq();
                let seal_blocks = b.n_blocks();
                let bytes = b.seal();
                let slot = b.slot().get();
                self.device
                    .write_at(self.layout.segment_offset(slot), &bytes)?;
                self.slot_seq[slot as usize] = b.seq();
                self.stats.segments_sealed += 1;
                self.obs.event(
                    self.ts_counter,
                    TraceEvent::SegmentSeal {
                        segment: slot,
                        seq: seal_seq,
                        blocks: seal_blocks,
                        bytes: bytes.len() as u64,
                    },
                );
                // Committed → persistent transition: every committed
                // alternative record's summary entry is now on disk.
                self.stats.committed_records_drained += self.committed.len() as u64;
                self.committed.drain_into(&mut self.persistent);
                Ok(true)
            }
        }
    }

    /// Opens a new segment in a free slot, refusing if that would leave
    /// fewer than `reserve` slots free.
    pub(crate) fn open_segment(&mut self, reserve: usize) -> Result<()> {
        debug_assert!(self.builder.is_none());
        if self.free_slots.len() <= reserve {
            return Err(LldError::DiskFull);
        }
        let slot = self.free_slots.pop_first().ok_or(LldError::DiskFull)?;
        // The slot may hold a cleaned segment whose blocks are cached;
        // new data written here must never be shadowed by stale entries.
        self.cache.invalidate_segment(SegmentId::new(slot));
        let seq = self.next_seq;
        self.next_seq += 1;
        self.builder = Some(SegmentBuilder::new(
            SegmentId::new(slot),
            seq,
            self.layout.block_size,
            self.layout.segment_bytes,
        ));
        Ok(())
    }

    /// Emits a (non-`Write`) summary record into the current segment.
    pub(crate) fn emit(&mut self, rec: Record) -> Result<()> {
        self.emit_reserve(rec, 1)
    }

    /// Emits a record with an explicit slot reserve (0 for
    /// space-reclaiming records such as deletions).
    pub(crate) fn emit_reserve(&mut self, rec: Record, reserve: usize) -> Result<()> {
        let len = rec.encoded_len();
        self.ensure_room(0, len, reserve)?;
        self.builder
            .as_mut()
            .expect("ensure_room leaves a builder")
            .push_record(&rec);
        self.stats.records_emitted += 1;
        self.stats.summary_bytes += len as u64;
        Ok(())
    }

    /// Enters one data block into the segment stream with its `Write`
    /// record (reserved together so they land in the same segment) and
    /// updates the committed state. Shared by simple writes, ARU commit,
    /// and cleaner relocation.
    pub(crate) fn place_block_data(
        &mut self,
        id: BlockId,
        data: &[u8],
        ts: Timestamp,
        tag: Option<AruId>,
        reserve: usize,
    ) -> Result<PhysAddr> {
        self.ensure_room(1, WRITE_REC_LEN, reserve)?;
        let b = self.builder.as_mut().expect("ensure_room leaves a builder");
        let slot_idx = b.push_block(data);
        let addr = PhysAddr {
            segment: b.slot(),
            slot: slot_idx,
        };
        let rec = Record::Write {
            block: id,
            slot: slot_idx,
            ts,
            aru: tag,
        };
        b.push_record(&rec);
        self.stats.records_emitted += 1;
        self.stats.summary_bytes += WRITE_REC_LEN as u64;
        self.stats.data_blocks_written += 1;

        self.cache.insert(addr, data);
        let old = self.committed_view_block(id).and_then(|r| r.addr);
        self.adjust_addr(id, old, Some(addr));
        let r = self.block_mut(StateRef::Committed, id)?;
        r.addr = Some(addr);
        r.ts = ts;
        Ok(addr)
    }

    /// Reads the data of a block at `addr`: from the in-memory segment
    /// buffer if the address is in the currently open segment, from the
    /// device otherwise.
    pub(crate) fn read_block_data(&mut self, addr: PhysAddr, buf: &mut [u8]) -> Result<()> {
        if let Some(b) = &self.builder {
            if b.slot() == addr.segment {
                if addr.slot >= b.n_blocks() {
                    return Err(LldError::Corrupt(format!(
                        "address {addr} beyond open segment contents"
                    )));
                }
                buf.copy_from_slice(b.read_block(addr.slot));
                return Ok(());
            }
        }
        if self.cache.get(addr, buf) {
            self.stats.cache_hits += 1;
            return Ok(());
        }
        self.stats.cache_misses += 1;
        self.device.read_at(self.layout.block_offset(addr), buf)?;
        self.cache.insert(addr, buf);
        Ok(())
    }

    /// Reads the superblock of a formatted device.
    pub(crate) fn read_superblock(device: &D) -> Result<(Layout, ConcurrencyMode, ReadVisibility)> {
        let mut buf = [0u8; SUPERBLOCK_LEN];
        device.read_at(0, &mut buf)?;
        Layout::decode_superblock(&buf)
    }

    /// Probes a formatted device without recovering it: returns the
    /// layout and the semantic modes stored in the superblock.
    ///
    /// # Errors
    ///
    /// [`LldError::Corrupt`] if the device holds no valid superblock;
    /// device errors.
    pub fn probe(device: &D) -> Result<(Layout, ConcurrencyMode, ReadVisibility)> {
        Self::read_superblock(device)
    }
}
