//! The logical disk proper: the layered state (sharded mapping layer,
//! log pipeline behind an append mutex), struct definition, formatting,
//! segment plumbing, and the version-state access helpers shared by all
//! operations.
//!
//! The mapping layer is hash-partitioned into shards (see
//! [`crate::shard`]): operations lock only the ARU slots and map shards
//! they touch, so disjoint-ARU writers proceed in parallel, while
//! multi-shard operations (cross-shard commits, the cleaner, the
//! checkpointer) acquire their locks in ascending index order through
//! the same [`Mutation`] session type.
//!
//! See `docs/CONCURRENCY.md` for the lock hierarchy and the invariants
//! each lock protects.

use crate::cache::BlockCache;
use crate::cleanerd::Cleanerd;
use crate::config::{CleanerConfig, ConcurrencyMode, LldConfig, ReadVisibility};
use crate::error::{LldError, Result};
use crate::flight::FlightRecorder;
use crate::gc::GroupCommit;
use crate::layout::{Layout, SUPERBLOCK_LEN};
use crate::obs::{Obs, ObsSnapshot, Stage, TraceEvent};
use crate::sampler::Sampler;
use crate::segment::{SegmentBuilder, HEADER_LEN};
use crate::shard::{MapView, Maps, WalkOutcome, SCRATCH_ARU_RAW};
use crate::state::{BlockRecord, ListRecord};
use crate::stats::{LldStats, StatsCell};
use crate::summary::Record;
use crate::types::{AruId, BlockId, ListId, PhysAddr, Position, SegmentId, Timestamp};
use ld_disk::Mutex;
use ld_disk::{BlockDevice, PipelinedDisk};
use std::collections::{BTreeSet, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, MutexGuard};

pub(crate) use crate::shard::{ShardLockStats, StateRef};

/// Encoded length of a `Write` summary record (needed to reserve room
/// for a data block and its record together, so they land in the same
/// segment).
pub(crate) const WRITE_REC_LEN: usize = 1 + 8 + 4 + 8 + 8;

/// The log pipeline: the open segment builder and the slot / sequence /
/// free-slot / live-block accounting behind it, plus the cleaner and
/// checkpoint cursors. Serialized by a single append mutex.
#[derive(Debug)]
pub(crate) struct LogState {
    /// The segment currently being filled in memory. `None` only
    /// transiently (mid-roll) or when the disk is full.
    pub(crate) builder: Option<SegmentBuilder>,
    /// Per physical slot: log sequence number of the sealed segment it
    /// holds (0 = none/invalid).
    pub(crate) slot_seq: Vec<u64>,
    /// Physical slots available for new segments.
    pub(crate) free_slots: BTreeSet<u32>,
    /// Per physical slot: number of blocks whose current address is in
    /// it.
    pub(crate) live_count: Vec<u32>,
    /// Per physical slot: the blocks whose current address is in it
    /// (the cleaner's work list).
    pub(crate) residents: Vec<HashSet<BlockId>>,
    pub(crate) next_seq: u64,
    /// Highest segment sequence number covered by an on-disk checkpoint.
    pub(crate) checkpoint_seq: u64,
    pub(crate) cleaning: bool,
}

impl LogState {
    pub(crate) fn fresh(n_segments: usize) -> Self {
        LogState {
            builder: None,
            slot_seq: vec![0; n_segments],
            free_slots: (0..n_segments as u32).collect(),
            live_count: vec![0; n_segments],
            residents: vec![HashSet::new(); n_segments],
            next_seq: 1,
            checkpoint_seq: 0,
            cleaning: false,
        }
    }
}

/// The device path below the logical disk: either the wrapped device
/// directly (synchronous writes and barriers on the caller's thread) or
/// a [`PipelinedDisk`] around it (writes queued to a dedicated I/O
/// thread, barriers run on their waiters' threads; selected by
/// [`LldConfig::pipeline`] / `LD_ARU_PIPELINE`).
///
/// The enum keeps `Lld<D>` generic over the *inner* device type in both
/// modes, so the mode is a runtime knob: `device()` still borrows the
/// `D` the caller handed in, and `into_device()` still returns it
/// (draining and joining the pipeline's I/O thread first when one is
/// running).
#[derive(Debug)]
pub(crate) enum DevicePath<D> {
    /// Writes and barriers run on the caller's thread.
    Sync(D),
    /// Writes stream through the pipeline's I/O thread; barriers run on
    /// the threads waiting for them, overlapping the next batch's
    /// writes.
    Pipelined(PipelinedDisk<D>),
}

impl<D: BlockDevice + 'static> DevicePath<D> {
    pub(crate) fn new(device: D, pipelined: bool) -> Self {
        if pipelined {
            DevicePath::Pipelined(PipelinedDisk::new(device))
        } else {
            DevicePath::Sync(device)
        }
    }
}

impl<D> DevicePath<D> {
    /// Borrows the inner device (bypassing the pipeline queue; only
    /// meaningful for inspection or deliberately racy fault arming).
    pub(crate) fn as_inner(&self) -> &D {
        match self {
            DevicePath::Sync(d) => d,
            DevicePath::Pipelined(p) => p.inner(),
        }
    }

    /// Whether the pipelined path is active (the group-commit leader
    /// hands off the barrier wait when it is).
    pub(crate) fn is_pipelined(&self) -> bool {
        matches!(self, DevicePath::Pipelined(_))
    }

    /// The pipelined device, when that path is active. The group-commit
    /// leader uses this to split its barrier into submit + wait so
    /// leadership can be handed off in between.
    pub(crate) fn as_pipelined(&self) -> Option<&PipelinedDisk<D>> {
        match self {
            DevicePath::Sync(_) => None,
            DevicePath::Pipelined(p) => Some(p),
        }
    }

    /// Whether the group-commit stage may start another
    /// barrier-producing batch: always on the synchronous path (the
    /// leader holds leadership through its own barrier), and gated on a
    /// free pipeline barrier slot on the pipelined path.
    pub(crate) fn barrier_slot_free(&self) -> bool {
        match self {
            DevicePath::Sync(_) => true,
            DevicePath::Pipelined(p) => p.barrier_slot_free(),
        }
    }

    /// The pipeline's counters and histograms, when pipelined.
    pub(crate) fn pipeline_stats(&self) -> Option<ld_disk::PipelineStatsSnapshot> {
        match self {
            DevicePath::Sync(_) => None,
            DevicePath::Pipelined(p) => Some(p.pipeline_stats()),
        }
    }

    /// Resets the pipeline's counters, when pipelined.
    pub(crate) fn reset_pipeline_stats(&self) {
        if let DevicePath::Pipelined(p) = self {
            p.reset_pipeline_stats();
        }
    }

    /// Consumes the path, draining and joining the pipeline's I/O
    /// thread if one is running, and returns the inner device.
    pub(crate) fn unwrap(self) -> D {
        match self {
            DevicePath::Sync(d) => d,
            DevicePath::Pipelined(p) => p.into_inner(),
        }
    }
}

impl<D: BlockDevice> BlockDevice for DevicePath<D> {
    fn capacity(&self) -> u64 {
        match self {
            DevicePath::Sync(d) => d.capacity(),
            DevicePath::Pipelined(p) => p.capacity(),
        }
    }
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> ld_disk::Result<()> {
        match self {
            DevicePath::Sync(d) => d.read_at(offset, buf),
            DevicePath::Pipelined(p) => p.read_at(offset, buf),
        }
    }
    fn write_at(&self, offset: u64, buf: &[u8]) -> ld_disk::Result<()> {
        match self {
            DevicePath::Sync(d) => d.write_at(offset, buf),
            DevicePath::Pipelined(p) => p.write_at(offset, buf),
        }
    }
    fn flush(&self) -> ld_disk::Result<()> {
        match self {
            DevicePath::Sync(d) => d.flush(),
            DevicePath::Pipelined(p) => p.flush(),
        }
    }
    fn stats_snapshot(&self) -> Option<ld_disk::DiskStatsSnapshot> {
        match self {
            DevicePath::Sync(d) => d.stats_snapshot(),
            DevicePath::Pipelined(p) => p.stats_snapshot(),
        }
    }
}

/// The log-structured Logical Disk with atomic recovery units.
///
/// `Lld` implements the LD interface — `Read`, `Write`, `NewBlock`,
/// `DeleteBlock`, `NewList`, `DeleteList`, `Flush` — extended with
/// `BeginARU` / `EndARU` ([`begin_aru`](Lld::begin_aru),
/// [`end_aru`](Lld::end_aru)). All operations bracketed by an ARU become
/// persistent atomically: after a crash, recovery
/// ([`Lld::recover`]) restores either all or none of them.
///
/// Every operation takes `&self`: the disk locks internally (a sharded
/// readers-writer mapping layer, a mutex over the log pipeline, and a
/// group-commit stage batching concurrent flushes), so one `Lld` can be
/// shared between OS threads directly — e.g. as an `Arc<Lld<D>>`, or by
/// reference from scoped threads — with reads proceeding concurrently
/// and writers in disjoint ARUs touching disjoint shard locks.
/// Concurrency of *ARUs* is independent of threads: each thread (or
/// interleaved logical stream) brackets its own operations with its own
/// ARU.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), ld_core::LldError> {
/// use ld_core::{Ctx, Lld, LldConfig, Position};
/// use ld_disk::MemDisk;
///
/// let ld = Lld::format(MemDisk::new(4 << 20), &LldConfig {
///     block_size: 512,
///     segment_bytes: 16 * 512,
///     ..LldConfig::default()
/// })?;
///
/// // Create a file's metadata and data atomically.
/// let aru = ld.begin_aru()?;
/// let list = ld.new_list(Ctx::Aru(aru))?;
/// let block = ld.new_block(Ctx::Aru(aru), list, Position::First)?;
/// ld.write(Ctx::Aru(aru), block, &[7u8; 512])?;
/// ld.end_aru(aru)?;
///
/// let mut buf = [0u8; 512];
/// ld.read(Ctx::Simple, block, &mut buf)?;
/// assert_eq!(buf[0], 7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Lld<D> {
    /// Shared with the background cleaner thread (when enabled); `None`
    /// only after [`into_device`](Lld::into_device) took the state out.
    inner: Option<Arc<LldInner<D>>>,
}

impl<D> std::ops::Deref for Lld<D> {
    type Target = LldInner<D>;
    fn deref(&self) -> &LldInner<D> {
        self.inner.as_ref().expect("logical disk already consumed")
    }
}

impl<D> Drop for Lld<D> {
    /// Stops and joins the background cleaner and sampler threads, if
    /// running.
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            inner.cleanerd.shutdown_and_join();
            inner.sampler.shutdown_and_join();
        }
    }
}

impl<D> Lld<D> {
    /// Wraps freshly built shared state (format / recovery).
    pub(crate) fn from_inner(inner: LldInner<D>) -> Self {
        Lld {
            inner: Some(Arc::new(inner)),
        }
    }

    /// Clones the shared-state handle (the background cleaner thread
    /// holds one of these).
    pub(crate) fn arc_inner(&self) -> Arc<LldInner<D>> {
        self.inner
            .as_ref()
            .expect("logical disk already consumed")
            .clone()
    }

    /// Consumes the logical disk and returns the device. Un-flushed
    /// committed state is *not* written; this models a crash. The
    /// background cleaner thread, if running, is stopped and joined
    /// first.
    pub fn into_device(mut self) -> D {
        let inner = self.inner.take().expect("logical disk already consumed");
        inner.cleanerd.shutdown_and_join();
        inner.sampler.shutdown_and_join();
        // After the joins the background threads' handle clones are
        // gone, so this session holds the only strong reference (the
        // pipe observer holds only a `Weak`).
        match Arc::try_unwrap(inner) {
            Ok(inner) => inner.device.unwrap(),
            Err(_) => unreachable!("outstanding references to the logical disk"),
        }
    }
}

/// The shared state and implementation behind [`Lld`].
///
/// Every public handle (`Lld`) dereferences to one of these; the
/// background cleaner thread holds its own `Arc` to the same state. All
/// operations documented on [`Lld`] live here and are reached through
/// auto-deref.
#[derive(Debug)]
pub struct LldInner<D> {
    pub(crate) device: DevicePath<D>,
    pub(crate) layout: Layout,
    pub(crate) concurrency: ConcurrencyMode,
    pub(crate) visibility: ReadVisibility,
    pub(crate) cleaner_cfg: CleanerConfig,

    /// The sharded mapping layer (see [`crate::shard`]). Lock order:
    /// ARU slots ascending, then map shards ascending, then `log`.
    pub(crate) maps: Maps,
    /// The log pipeline (see [`LogState`]).
    pub(crate) log: Mutex<LogState>,
    /// Data-block read cache (leaf lock, held only across one probe or
    /// insert).
    pub(crate) cache: Mutex<BlockCache>,
    /// The group-commit stage batching concurrent flushes.
    pub(crate) gc: GroupCommit,
    /// Checkpoint-area I/O state: which A/B area the next checkpoint
    /// writes, and a generation counter serializing the incremental
    /// (cleanerd) and full (foreground) checkpoint writers. A leaf lock
    /// *after* the log mutex: a writer needing both takes `log` first
    /// and never acquires any mapping-layer or log lock while holding
    /// this one.
    pub(crate) ckpt_io: Mutex<crate::checkpoint::CkptSlots>,

    /// The logical operation clock.
    pub(crate) ts_counter: AtomicU64,
    /// Lock-free mirror of `log.free_slots.len()`: scoped sessions
    /// cannot run the cleaner (it touches every shard), so operations
    /// consult this hint and route through a full session when free
    /// segments are scarce enough that a mid-operation clean may be
    /// needed.
    pub(crate) free_slots_hint: AtomicU64,
    /// Set by a scoped session whose segment roll found free segments
    /// scarce; drained by [`after_scoped`](LldInner::after_scoped).
    pub(crate) needs_clean: AtomicBool,
    pub(crate) stats: StatsCell,
    pub(crate) obs: Obs,
    /// Coordination state of the background cleaner thread (a leaf
    /// lock: never held while acquiring any mapping-layer or log lock).
    pub(crate) cleanerd: Cleanerd,
    /// Coordination state of the metrics sampler thread (a leaf lock;
    /// present even when no thread runs, so `sample_now` always works).
    pub(crate) sampler: Sampler,
    /// The crash flight recorder, when a dump directory is configured
    /// ([`LldConfig::flight_dir`] / `LD_ARU_FLIGHT_DIR`).
    pub(crate) flight: Option<FlightRecorder>,
}

/// An exclusive mutation session: a set of ARU slots and map shards
/// locked exclusively (in the canonical ascending order), plus the log
/// mutex, acquired lazily on first use.
///
/// Every operation that changes the mapping or the log runs inside one
/// of these — a *full* session ([`LldInner::with_mutation`]) holding
/// every slot and shard, or a *scoped* one
/// ([`LldInner::with_mutation_at`]) holding only the shards its
/// identifiers hash to. The helpers below are the single-threaded core
/// of the disk, unchanged in spirit from the paper's prototype — the
/// session simply makes the exclusivity explicit.
pub(crate) struct Mutation<'a, D> {
    pub(crate) lld: &'a LldInner<D>,
    pub(crate) map: MapView<'a>,
    pub(crate) log_guard: Option<MutexGuard<'a, LogState>>,
}

impl<D: BlockDevice + 'static> Lld<D> {
    /// Formats `device` as a fresh, empty logical disk.
    ///
    /// Existing segment headers and checkpoints on the device are
    /// invalidated so that recovery can never resurrect state from a
    /// previous format.
    ///
    /// When `config.cleaner.background` is set the background cleaner
    /// thread is started (see docs/CLEANER.md).
    ///
    /// # Errors
    ///
    /// Returns [`LldError::Config`] for an invalid configuration or a
    /// device too small for four segments, and device errors.
    pub fn format(device: D, config: &LldConfig) -> Result<Self> {
        config.validate()?;
        let layout = Layout::compute(device.capacity(), config)?;

        // Write the superblock.
        let sb = layout.encode_superblock(config.concurrency, config.visibility);
        device.write_at(0, &sb)?;
        // Invalidate both checkpoint areas and every segment header.
        let zeros = [0u8; 64];
        device.write_at(layout.ckpt_a, &zeros)?;
        device.write_at(layout.ckpt_b, &zeros)?;
        for slot in 0..layout.n_segments {
            device.write_at(layout.segment_offset(slot), &zeros[..32])?;
        }
        device.flush()?;

        let n = layout.n_segments as usize;
        let ld = Lld::from_inner(LldInner {
            device: DevicePath::new(device, config.pipeline),
            layout,
            concurrency: config.concurrency,
            visibility: config.visibility,
            cleaner_cfg: config.cleaner,
            maps: Maps::fresh(config.map_shards),
            log: Mutex::new(LogState::fresh(n)),
            cache: Mutex::new(BlockCache::new(config.read_cache_blocks)),
            gc: GroupCommit::new(),
            ckpt_io: Mutex::new(crate::checkpoint::CkptSlots::default()),
            ts_counter: AtomicU64::new(0),
            free_slots_hint: AtomicU64::new(n as u64),
            needs_clean: AtomicBool::new(false),
            stats: StatsCell::default(),
            obs: Obs::new(config.obs),
            cleanerd: Cleanerd::new(),
            sampler: Sampler::new(),
            flight: config.flight_dir.clone().map(FlightRecorder::new),
        });
        ld.install_pipe_observer();
        ld.with_mutation(|m| m.open_segment(0))?;
        crate::cleanerd::spawn_if_configured(&ld);
        crate::sampler::spawn_if_configured(&ld, config.metrics_hz);
        Ok(ld)
    }

    /// Hooks the pipelined device (when active) into the observability
    /// layer: its media-write and barrier-ack stages flow into the
    /// trace ring, and an error latched on its I/O thread triggers a
    /// flight dump. A no-op on the synchronous path.
    pub(crate) fn install_pipe_observer(&self) {
        let inner = self.arc_inner();
        if let Some(p) = inner.device.as_pipelined() {
            p.set_observer(Arc::new(PipeObsAdapter {
                inner: Arc::downgrade(&inner),
            }));
        }
    }
}

/// Translates the pipelined device's [`ld_disk::PipeObserver`]
/// callbacks into the core observability layer. Holds a `Weak`: the
/// disk owns the device which owns this observer, so a strong
/// reference would be a cycle — and during teardown (`into_device`)
/// the upgrade simply fails and the callbacks become no-ops.
struct PipeObsAdapter<D> {
    inner: std::sync::Weak<LldInner<D>>,
}

fn pipe_stage(stage: ld_disk::PipeStage) -> Stage {
    match stage {
        ld_disk::PipeStage::MediaWrite => Stage::MediaWrite,
        ld_disk::PipeStage::BarrierAck => Stage::BarrierAck,
    }
}

impl<D: BlockDevice> ld_disk::PipeObserver for PipeObsAdapter<D> {
    fn stage_begin(&self, trace: u64, stage: ld_disk::PipeStage) {
        if let Some(ld) = self.inner.upgrade() {
            ld.obs.stage_begin(ld.now(), trace, pipe_stage(stage));
        }
    }

    fn stage_end(&self, trace: u64, stage: ld_disk::PipeStage, nanos: u64) {
        if let Some(ld) = self.inner.upgrade() {
            ld.obs.stage_end(ld.now(), trace, pipe_stage(stage), nanos);
        }
    }

    fn fault(&self, error: &ld_disk::DiskError) {
        if let Some(ld) = self.inner.upgrade() {
            let _ = ld.flight_dump("pipeline_fault", &error.to_string());
        }
    }
}

impl<D: BlockDevice> LldInner<D> {
    /// Runs `f` in a *full* mutation session: every ARU slot and every
    /// map shard locked exclusively, in the canonical order.
    pub(crate) fn with_mutation<T>(&self, f: impl FnOnce(&mut Mutation<'_, D>) -> T) -> T {
        self.stats.full_mutations.inc();
        let all = self.maps.all_set();
        let arus = self.maps.lock_arus(all);
        let shards = self.maps.lock_write(all);
        let mut m = Mutation {
            lld: self,
            map: MapView::new(self.maps.nshards(), arus, shards),
            log_guard: None,
        };
        f(&mut m)
    }

    /// Runs `f` in a *scoped* mutation session holding only the ARU
    /// slots in `aru_set` and the map shards in `shard_set` (bitmasks;
    /// both acquired ascending, slots before shards). The caller is
    /// responsible for covering every identifier the operation touches
    /// and for calling [`after_scoped`](LldInner::after_scoped) once
    /// the session's locks are released.
    pub(crate) fn with_mutation_at<T>(
        &self,
        aru_set: u64,
        shard_set: u64,
        f: impl FnOnce(&mut Mutation<'_, D>) -> T,
    ) -> T {
        self.stats.scoped_mutations.inc();
        let arus = self.maps.lock_arus(aru_set);
        let shards = self.maps.lock_write(shard_set);
        let mut m = Mutation {
            lld: self,
            map: MapView::new(self.maps.nshards(), arus, shards),
            log_guard: None,
        };
        f(&mut m)
    }

    /// Acquires a read-only view of the ARU slots in `aru_set` and the
    /// map shards in `shard_set` (shared access; same canonical order).
    pub(crate) fn read_view(&self, aru_set: u64, shard_set: u64) -> MapView<'_> {
        let arus = self.maps.lock_arus(aru_set);
        let shards = self.maps.lock_read(shard_set);
        MapView::new(self.maps.nshards(), arus, shards)
    }

    /// Whether a scoped session may run right now: when free segments
    /// are scarce the operation routes through a full session instead,
    /// so the inline cleaner can rescue it mid-operation.
    pub(crate) fn scoped_ok(&self) -> bool {
        !self.cleaner_cfg.enabled
            || self.free_slots_hint.load(Ordering::Relaxed)
                > u64::from(self.cleaner_cfg.min_free_segments)
    }

    /// Post-scoped-session housekeeping: runs the cleaner under a full
    /// session when a scoped segment roll found free segments scarce.
    /// Must be called with no mapping-layer locks held.
    pub(crate) fn after_scoped(&self) {
        if self.needs_clean.swap(false, Ordering::Relaxed) {
            // An error here resurfaces on the next operation that needs
            // space.
            let _ = self.run_cleaner();
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The block size in bytes.
    pub fn block_size(&self) -> usize {
        self.layout.block_size
    }

    /// The segment size in bytes.
    pub fn segment_bytes(&self) -> usize {
        self.layout.segment_bytes
    }

    /// Number of segment slots on the device.
    pub fn n_segments(&self) -> u32 {
        self.layout.n_segments
    }

    /// Number of currently free segment slots.
    pub fn free_segments(&self) -> u32 {
        self.log.lock().free_slots.len() as u32
    }

    /// The concurrency mode ("old" sequential vs "new" concurrent).
    pub fn concurrency(&self) -> ConcurrencyMode {
        self.concurrency
    }

    /// The read-visibility semantics in effect.
    pub fn visibility(&self) -> ReadVisibility {
        self.visibility
    }

    /// Number of hash partitions of the mapping layer.
    pub fn map_shards(&self) -> usize {
        self.maps.nshards() as usize
    }

    /// Per-shard lock-acquisition counters (shared and exclusive
    /// acquisitions of each shard's readers-writer lock).
    pub fn shard_stats(&self) -> Vec<ShardLockStats> {
        self.maps.shard_stats()
    }

    /// A snapshot of the operation counters. With the pipelined device
    /// path, `pipeline_stalls` and `inflight_barriers` are filled from
    /// the pipeline's counters (they stay 0 in synchronous mode).
    pub fn stats(&self) -> LldStats {
        let mut s = self.stats.snapshot();
        if let Some(p) = self.device.pipeline_stats() {
            s.pipeline_stalls = p.stalls;
            s.inflight_barriers = p.inflight_barriers_max;
        }
        s.trace_events_dropped = self.obs.ring().dropped();
        s
    }

    /// The observability bundle: trace events, latency histograms, ARU
    /// lifecycle spans.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Counters and service-time histograms of the underlying device,
    /// when it collects them (a [`SimDisk`](ld_disk::SimDisk) does;
    /// plain [`MemDisk`](ld_disk::MemDisk) / `FileDisk` return `None`).
    pub fn device_stats(&self) -> Option<ld_disk::DiskStatsSnapshot> {
        self.device.stats_snapshot()
    }

    /// Captures everything observable about this disk in one bundle:
    /// LLD counters, device counters, the `lld_read` / `lld_write` /
    /// `end_aru` / `flush` / `group_commit_batch` / `aru_shard_spread`
    /// histograms (plus `disk_read` / `disk_write` when the device
    /// provides them), per-shard lock counters, recent trace events,
    /// ARU spans, and the recovery report if this disk was recovered.
    /// `fs_ops` is left empty for a file-system caller to fill.
    pub fn obs_snapshot(&self) -> ObsSnapshot {
        let disk = self.device.stats_snapshot();
        let mut histograms: Vec<(String, ld_disk::HistogramSnapshot)> = self
            .obs
            .histograms()
            .into_iter()
            .map(|(n, h)| (n.to_string(), h))
            .collect();
        if let Some(d) = &disk {
            histograms.push(("disk_read".to_string(), d.read_hist));
            histograms.push(("disk_write".to_string(), d.write_hist));
        }
        if self.obs.enabled() {
            if let Some(p) = self.device.pipeline_stats() {
                histograms.push(("pipeline_queue_depth".to_string(), p.queue_depth));
                histograms.push(("pipeline_submit_ns".to_string(), p.submit_ns));
                histograms.push(("pipeline_media_write_ns".to_string(), p.media_write_ns));
                histograms.push(("pipeline_barrier_ack_ns".to_string(), p.barrier_ack_ns));
            }
        }
        ObsSnapshot {
            lld: self.stats(),
            disk,
            histograms,
            shards: self.maps.shard_stats(),
            events: self.obs.ring().entries(),
            dropped_events: self.obs.ring().dropped(),
            spans: self.obs.spans(),
            recovery: self.obs.recovery_report(),
            fs_ops: Vec::new(),
        }
    }

    /// Resets the operation counters (including the pipeline's, when
    /// the pipelined device path is active).
    pub fn reset_stats(&self) {
        self.stats.reset();
        self.device.reset_pipeline_stats();
    }

    /// Captures one metrics sample into the sampler ring right now, on
    /// the calling thread — works with or without a sampler thread
    /// running, so tests get deterministic time series.
    pub fn sample_now(&self) {
        crate::sampler::take_sample(self);
    }

    /// Serializes the sampler ring as JSONL: one
    /// `{"t_ms": …, "snapshot": {…}}` object per line, oldest first.
    /// Empty when nothing has been sampled.
    pub fn sampler_jsonl(&self) -> String {
        self.sampler.to_jsonl()
    }

    /// Number of metrics samples currently retained, and the number
    /// evicted from the bounded ring.
    pub fn sampler_counts(&self) -> (usize, u64) {
        (self.sampler.len(), self.sampler.dropped())
    }

    /// Writes a flight dump (reason + detail + a full
    /// [`ObsSnapshot`]) into the configured flight directory, returning
    /// the file path. `None` when no directory is configured
    /// ([`LldConfig::flight_dir`]) or the write fails; never errors.
    /// Called automatically on background-thread failures (pipeline
    /// fault, cleaner pass error, cleaner panic); public so embedders
    /// can dump on their own triggers too.
    pub fn flight_dump(&self, reason: &str, detail: &str) -> Option<std::path::PathBuf> {
        self.flight
            .as_ref()?
            .dump(reason, detail, &self.obs_snapshot())
    }

    /// Identifiers of the currently active ARUs.
    pub fn active_arus(&self) -> Vec<AruId> {
        let slots = self.maps.lock_arus(self.maps.all_set());
        let mut raws: Vec<u64> = slots.iter().flat_map(|(_, m)| m.keys().copied()).collect();
        raws.sort_unstable();
        raws.into_iter().map(AruId::new).collect()
    }

    /// The logical time at which an active ARU began, if it is active.
    pub fn aru_started(&self, aru: AruId) -> Option<Timestamp> {
        let slots = self.maps.lock_arus(self.maps.bit_of(aru.get()));
        slots[0].1.get(&aru.get()).map(|a| a.started)
    }

    /// Number of blocks allocated in the committed state.
    pub fn allocated_block_count(&self) -> u64 {
        self.maps.allocated_blocks.load(Ordering::Relaxed)
    }

    /// Number of lists allocated in the committed state.
    pub fn allocated_list_count(&self) -> u64 {
        self.maps.allocated_lists.load(Ordering::Relaxed)
    }

    /// The highest segment sequence number covered by an on-disk
    /// checkpoint (0 = no checkpoint; recovery scans the whole log).
    pub fn checkpoint_seq(&self) -> u64 {
        self.log.lock().checkpoint_seq
    }

    /// Borrows the underlying device (e.g. to inspect simulator
    /// statistics). With the pipelined device path this borrows the
    /// *inner* device behind the pipeline queue.
    pub fn device(&self) -> &D {
        self.device.as_inner()
    }

    /// Whether device writes and barriers run through the pipelined
    /// I/O thread (see [`LldConfig::pipeline`]).
    pub fn pipelined(&self) -> bool {
        self.device.is_pipelined()
    }

    /// A copy of the committed-state record of `block`, if allocated.
    pub fn block_info(&self, block: BlockId) -> Option<BlockRecord> {
        let view = self.read_view(0, self.maps.bit_of(block.get()));
        view.committed_view_block(block)
            .filter(|r| r.allocated)
            .cloned()
    }

    /// A copy of the committed-state record of `list`, if allocated.
    pub fn list_info(&self, list: ListId) -> Option<ListRecord> {
        let view = self.read_view(0, self.maps.bit_of(list.get()));
        view.committed_view_list(list)
            .filter(|r| r.allocated)
            .cloned()
    }

    // ------------------------------------------------------------------
    // Time
    // ------------------------------------------------------------------

    /// Advances the logical clock and returns the new timestamp.
    pub(crate) fn tick(&self) -> Timestamp {
        Timestamp::new(self.ts_counter.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// The current logical time (for event records).
    pub(crate) fn now(&self) -> u64 {
        self.ts_counter.load(Ordering::Relaxed)
    }

    // ------------------------------------------------------------------
    // Shared read plumbing
    // ------------------------------------------------------------------

    /// Reads the data of a block at `addr`: from the in-memory segment
    /// buffer if the address is in the currently open segment, from the
    /// cache or device otherwise.
    ///
    /// Callers must hold at least shared access to the shard mapping
    /// `addr`'s block, so the cleaner cannot relocate `addr` mid-read.
    pub(crate) fn read_block_data(&self, addr: PhysAddr, buf: &mut [u8]) -> Result<()> {
        {
            let log = self.log.lock();
            if let Some(b) = &log.builder {
                if b.slot() == addr.segment {
                    if addr.slot >= b.n_blocks() {
                        return Err(LldError::Corrupt(format!(
                            "address {addr} beyond open segment contents"
                        )));
                    }
                    buf.copy_from_slice(b.read_block(addr.slot));
                    return Ok(());
                }
            }
        }
        if self.cache.lock().get(addr, buf) {
            self.stats.cache_hits.inc();
            return Ok(());
        }
        self.stats.cache_misses.inc();
        self.device.read_at(self.layout.block_offset(addr), buf)?;
        self.cache.lock().insert(addr, buf);
        Ok(())
    }

    /// Reads the superblock of a formatted device.
    pub(crate) fn read_superblock(device: &D) -> Result<(Layout, ConcurrencyMode, ReadVisibility)> {
        let mut buf = [0u8; SUPERBLOCK_LEN];
        device.read_at(0, &mut buf)?;
        Layout::decode_superblock(&buf)
    }

    /// Whether this disk runs the background cleaner thread.
    pub fn cleaner_background(&self) -> bool {
        self.cleaner_cfg.enabled && self.cleaner_cfg.background
    }
}

impl<D: BlockDevice> Lld<D> {
    /// Probes a formatted device without recovering it: returns the
    /// layout and the semantic modes stored in the superblock.
    ///
    /// # Errors
    ///
    /// [`LldError::Corrupt`] if the device holds no valid superblock;
    /// device errors.
    pub fn probe(device: &D) -> Result<(Layout, ConcurrencyMode, ReadVisibility)> {
        LldInner::read_superblock(device)
    }
}

impl<'a, D: BlockDevice> Mutation<'a, D> {
    // ------------------------------------------------------------------
    // Session conveniences
    // ------------------------------------------------------------------

    pub(crate) fn tick(&self) -> Timestamp {
        self.lld.tick()
    }

    /// The log pipeline, locked lazily on first use (the canonical
    /// order puts `log` after every mapping-layer lock, all of which
    /// this session acquired at construction).
    pub(crate) fn log(&mut self) -> &mut LogState {
        let lld = self.lld;
        self.log_guard.get_or_insert_with(|| lld.log.lock())
    }

    /// Mirrors the free-slot count into the lock-free routing hint.
    pub(crate) fn sync_free_hint(&mut self) {
        let n = self.log().free_slots.len() as u64;
        self.lld.free_slots_hint.store(n, Ordering::Relaxed);
    }

    // ------------------------------------------------------------------
    // Identifiers
    // ------------------------------------------------------------------

    /// Allocates a block id owned by `shard` (reserving the allocation
    /// against the global cap; callers release the reservation with
    /// [`Maps::unreserve_block`] if the operation fails before the
    /// record is entered).
    pub(crate) fn alloc_block_id(&mut self, shard: u32) -> Result<BlockId> {
        self.lld
            .maps
            .try_reserve_block(self.lld.layout.max_blocks)?;
        let n = u64::from(self.lld.maps.nshards());
        Ok(BlockId::new(self.map.shard_mut(shard).alloc_block_raw(n)))
    }

    /// Allocates a list id owned by `shard` (see
    /// [`alloc_block_id`](Self::alloc_block_id)).
    pub(crate) fn alloc_list_id(&mut self, shard: u32) -> Result<ListId> {
        self.lld.maps.try_reserve_list(self.lld.layout.max_lists)?;
        let n = u64::from(self.lld.maps.nshards());
        Ok(ListId::new(self.map.shard_mut(shard).alloc_list_raw(n)))
    }

    // ------------------------------------------------------------------
    // Copy-on-write record access
    // ------------------------------------------------------------------

    /// Copy-on-write access to a block record in the given state: if the
    /// state has no alternative record yet, the version below is copied
    /// in (the paper: "the disk system applies modifications to a copy of
    /// the committed version ... which then becomes the new shadow
    /// version").
    ///
    /// # Errors
    ///
    /// Returns [`LldError::BlockNotAllocated`] if no version of the
    /// block exists at all.
    pub(crate) fn block_mut(&mut self, st: StateRef, id: BlockId) -> Result<&mut BlockRecord> {
        match st {
            StateRef::Committed => {
                let sh = self.map.block_shard_mut(id);
                if !sh.committed.blocks.contains_key(&id) {
                    let base = sh
                        .persistent
                        .blocks
                        .get(&id)
                        .cloned()
                        .ok_or(LldError::BlockNotAllocated(id))?;
                    sh.committed.blocks.insert(id, base);
                }
                Ok(sh.committed.blocks.get_mut(&id).expect("just inserted"))
            }
            StateRef::Shadow(aru) => {
                let raw = aru.get();
                let present = self
                    .map
                    .aru(raw)
                    .ok_or(LldError::UnknownAru(aru))?
                    .shadow
                    .blocks
                    .contains_key(&id);
                if !present {
                    let base = self
                        .map
                        .committed_view_block(id)
                        .cloned()
                        .ok_or(LldError::BlockNotAllocated(id))?;
                    self.lld.stats.shadow_cow_records.inc();
                    if raw != SCRATCH_ARU_RAW {
                        self.lld.obs.span_cow(raw);
                    }
                    self.map
                        .aru_mut(raw)
                        .expect("checked above")
                        .shadow
                        .blocks
                        .insert(id, base);
                }
                Ok(self
                    .map
                    .aru_mut(raw)
                    .expect("checked above")
                    .shadow
                    .blocks
                    .get_mut(&id)
                    .expect("just inserted"))
            }
        }
    }

    pub(crate) fn list_mut(&mut self, st: StateRef, id: ListId) -> Result<&mut ListRecord> {
        match st {
            StateRef::Committed => {
                let sh = self.map.list_shard_mut(id);
                if !sh.committed.lists.contains_key(&id) {
                    let base = sh
                        .persistent
                        .lists
                        .get(&id)
                        .cloned()
                        .ok_or(LldError::ListNotAllocated(id))?;
                    sh.committed.lists.insert(id, base);
                }
                Ok(sh.committed.lists.get_mut(&id).expect("just inserted"))
            }
            StateRef::Shadow(aru) => {
                let raw = aru.get();
                let present = self
                    .map
                    .aru(raw)
                    .ok_or(LldError::UnknownAru(aru))?
                    .shadow
                    .lists
                    .contains_key(&id);
                if !present {
                    let base = self
                        .map
                        .committed_view_list(id)
                        .cloned()
                        .ok_or(LldError::ListNotAllocated(id))?;
                    self.lld.stats.shadow_cow_records.inc();
                    if raw != SCRATCH_ARU_RAW {
                        self.lld.obs.span_cow(raw);
                    }
                    self.map
                        .aru_mut(raw)
                        .expect("checked above")
                        .shadow
                        .lists
                        .insert(id, base);
                }
                Ok(self
                    .map
                    .aru_mut(raw)
                    .expect("checked above")
                    .shadow
                    .lists
                    .get_mut(&id)
                    .expect("just inserted"))
            }
        }
    }

    /// Adjusts the per-segment live-block accounting when the committed
    /// address of `id` changes.
    pub(crate) fn adjust_addr(
        &mut self,
        id: BlockId,
        old: Option<PhysAddr>,
        new: Option<PhysAddr>,
    ) {
        if old == new {
            return;
        }
        let log = self.log();
        if let Some(a) = old {
            let s = a.segment.get() as usize;
            log.live_count[s] = log.live_count[s].saturating_sub(1);
            log.residents[s].remove(&id);
        }
        if let Some(a) = new {
            let s = a.segment.get() as usize;
            log.live_count[s] += 1;
            log.residents[s].insert(id);
        }
    }

    // ------------------------------------------------------------------
    // List structure manipulation (shared by ops, commit replay, and
    // recovery replay)
    // ------------------------------------------------------------------

    /// Walks `list` in state `st`, returning the member blocks in order
    /// and charging the steps to the stats.
    pub(crate) fn walk_list(&mut self, st: StateRef, list: ListId) -> Result<Vec<BlockId>> {
        match self.map.walk_list(st, list, self.lld.layout.max_blocks)? {
            WalkOutcome::Done { members, steps } => {
                self.lld.stats.list_walk_steps.add(steps);
                Ok(members)
            }
            // Mutation shard plans cover every identifier they walk;
            // operations that can reach arbitrary identifiers (the
            // deletions) run under full sessions.
            WalkOutcome::NeedShard(s) => Err(LldError::Corrupt(format!(
                "internal: mutation session is missing map shard {s} walking {list}"
            ))),
        }
    }

    /// See [`MapView::validate_insert`].
    pub(crate) fn validate_insert(&self, st: StateRef, list: ListId, pos: Position) -> Result<()> {
        self.map.validate_insert(st, list, pos)
    }

    /// Inserts `block` (which must exist, allocated, and not on a list,
    /// in state `st`) into `list` at `pos`. Callers run
    /// [`validate_insert`](Self::validate_insert) first.
    pub(crate) fn insert_into_list(
        &mut self,
        st: StateRef,
        list: ListId,
        block: BlockId,
        pos: Position,
        ts: Timestamp,
    ) -> Result<()> {
        self.validate_insert(st, list, pos)?;
        match pos {
            Position::First => {
                let old_first = {
                    let lr = self.list_mut(st, list)?;
                    let old = lr.first;
                    lr.first = Some(block);
                    if lr.last.is_none() {
                        lr.last = Some(block);
                    }
                    lr.ts = ts;
                    old
                };
                let br = self.block_mut(st, block)?;
                br.successor = old_first;
                br.list = Some(list);
                br.ts = ts;
            }
            Position::After(pred) => {
                let pred_succ = {
                    let pm = self.block_mut(st, pred)?;
                    let old = pm.successor;
                    pm.successor = Some(block);
                    pm.ts = ts;
                    old
                };
                {
                    let bm = self.block_mut(st, block)?;
                    bm.successor = pred_succ;
                    bm.list = Some(list);
                    bm.ts = ts;
                }
                let lr = self.list_mut(st, list)?;
                if lr.last == Some(pred) {
                    lr.last = Some(block);
                }
                lr.ts = ts;
            }
        }
        Ok(())
    }

    /// Removes `block` from its list (if any) in state `st`, running the
    /// predecessor search the paper identifies as the dominant deletion
    /// cost.
    pub(crate) fn unlink_block(
        &mut self,
        st: StateRef,
        block: BlockId,
        ts: Timestamp,
    ) -> Result<()> {
        let rec = self
            .map
            .view_block(st, block)
            .filter(|r| r.allocated)
            .ok_or(LldError::BlockNotAllocated(block))?;
        let Some(list) = rec.list else {
            return Ok(());
        };
        let successor = rec.successor;

        // Predecessor search: walk from the head of the list.
        let lrec = self
            .map
            .view_list(st, list)
            .filter(|r| r.allocated)
            .ok_or(LldError::ListNotAllocated(list))?;
        let mut pred: Option<BlockId> = None;
        let mut cur = lrec.first;
        let bound = self.lld.layout.max_blocks + 1;
        let mut steps = 0u64;
        while let Some(b) = cur {
            if b == block {
                break;
            }
            steps += 1;
            if steps > bound {
                return Err(LldError::Corrupt(format!("cycle while walking {list}")));
            }
            pred = Some(b);
            cur = self.map.view_block(st, b).and_then(|r| r.successor);
            if cur.is_none() {
                return Err(LldError::Corrupt(format!(
                    "{block} claims membership of {list} but is not on it"
                )));
            }
        }
        self.lld.stats.list_walk_steps.add(steps);

        match pred {
            None => {
                let lr = self.list_mut(st, list)?;
                lr.first = successor;
                if lr.last == Some(block) {
                    lr.last = None;
                }
                lr.ts = ts;
            }
            Some(p) => {
                {
                    let pm = self.block_mut(st, p)?;
                    pm.successor = successor;
                    pm.ts = ts;
                }
                let lr = self.list_mut(st, list)?;
                if lr.last == Some(block) {
                    lr.last = Some(p);
                }
                lr.ts = ts;
            }
        }
        let bm = self.block_mut(st, block)?;
        bm.list = None;
        bm.successor = None;
        bm.ts = ts;
        Ok(())
    }

    /// Marks `block` deallocated in state `st`. In the committed state
    /// this also releases its physical address and decrements the
    /// allocation count; identifier reuse is the caller's decision.
    pub(crate) fn dealloc_block(
        &mut self,
        st: StateRef,
        block: BlockId,
        ts: Timestamp,
    ) -> Result<()> {
        if st == StateRef::Committed {
            let old = self.map.committed_view_block(block).and_then(|r| r.addr);
            self.adjust_addr(block, old, None);
            self.lld.maps.unreserve_block();
        }
        let bm = self.block_mut(st, block)?;
        bm.allocated = false;
        bm.addr = None;
        bm.list = None;
        bm.successor = None;
        bm.ts = ts;
        Ok(())
    }

    /// Marks `list` deallocated in state `st`.
    pub(crate) fn dealloc_list(&mut self, st: StateRef, list: ListId, ts: Timestamp) -> Result<()> {
        if st == StateRef::Committed {
            self.lld.maps.unreserve_list();
        }
        let lm = self.list_mut(st, list)?;
        lm.allocated = false;
        lm.first = None;
        lm.last = None;
        lm.ts = ts;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Segment plumbing
    // ------------------------------------------------------------------

    /// Ensures the current segment can absorb `blocks` data blocks plus
    /// `summary` bytes of records, rolling to a new segment if needed.
    ///
    /// `reserve` is the number of free segment slots that must remain
    /// after a roll: space-*consuming* operations pass 1 so the last
    /// slot stays available for deletions and cleaning (otherwise a
    /// full log could never be emptied again); space-*reclaiming*
    /// operations pass 0.
    pub(crate) fn ensure_room(
        &mut self,
        blocks: usize,
        summary: usize,
        reserve: usize,
    ) -> Result<()> {
        let fits = match &self.log().builder {
            Some(b) => b.fits(blocks, summary),
            None => false,
        };
        if fits {
            return Ok(());
        }
        self.roll_segment(reserve)?;
        match &self.log().builder {
            Some(b) if b.fits(blocks, summary) => Ok(()),
            Some(_) => Err(LldError::Config(
                "request does not fit in an empty segment".into(),
            )),
            None => Err(LldError::DiskFull),
        }
    }

    /// Seals and writes the current segment (if it has content) and
    /// opens a new one. When free segments are scarce, a full session
    /// runs the cleaner inline; a scoped session cannot (the cleaner
    /// touches every shard) and instead wakes the background cleaner
    /// thread, falling back to flagging
    /// [`LldInner::after_scoped`] when no (healthy) cleanerd is
    /// running.
    pub(crate) fn roll_segment(&mut self, reserve: usize) -> Result<()> {
        let had_content = self.seal_current()?;
        if self.log().builder.is_none() {
            self.open_segment(reserve)?;
        }
        if had_content && self.lld.cleaner_cfg.enabled {
            let free = self.log().free_slots.len() as u32;
            if free < self.lld.cleaner_cfg.min_free_segments {
                if self.map.holds_all_shards_write() {
                    if !self.log().cleaning {
                        self.run_cleaner_inner()?;
                    }
                } else if !self.lld.cleanerd.kick() {
                    self.lld.needs_clean.store(true, Ordering::Relaxed);
                }
            } else if free < self.lld.cleaner_cfg.target_free_segments {
                // Low watermark: wake cleanerd early, while there is
                // still headroom, so foreground operations never reach
                // the full-session fallback at all.
                let _ = self.lld.cleanerd.kick();
            }
        }
        Ok(())
    }

    /// Seals and writes the current segment. Returns `true` if a
    /// segment was actually written (the builder is then `None`); an
    /// empty builder is left in place and `false` returned.
    pub(crate) fn seal_current(&mut self) -> Result<bool> {
        match self.log().builder.take() {
            None => Ok(false),
            Some(b) if b.is_empty() => {
                self.log().builder = Some(b);
                Ok(false)
            }
            Some(b) => {
                let seal_seq = b.seq();
                let seal_blocks = b.n_blocks();
                let seal_bytes = b.encoded_len() as u64;
                let slot = b.slot().get();
                let seg_off = self.lld.layout.segment_offset(slot);
                if self.lld.device.is_pipelined() {
                    // The data blocks were streamed to the device as they
                    // were placed (see `place_block_data`), so the seal
                    // writes only the tail: the summary, then the header
                    // *last*. The pipeline applies writes in FIFO order,
                    // so the header — the one thing that makes the slot
                    // scan as a sealed segment — cannot reach the device
                    // before every byte it vouches for; a crash anywhere
                    // in the stream recovers as "no segment", the same
                    // all-or-nothing the single-write path gets from its
                    // prefix-torn writes.
                    let data_end = (1 + u64::from(seal_blocks)) * self.lld.layout.block_size as u64;
                    if !b.summary_bytes().is_empty() {
                        self.lld
                            .device
                            .write_at(seg_off + data_end, b.summary_bytes())?;
                    }
                    self.lld.device.write_at(seg_off, &b.header_bytes())?;
                } else {
                    self.lld.device.write_at(seg_off, &b.seal())?;
                }
                self.log().slot_seq[slot as usize] = b.seq();
                self.lld.stats.segments_sealed.inc();
                self.lld.obs.event(
                    self.lld.now(),
                    TraceEvent::SegmentSeal {
                        segment: slot,
                        seq: seal_seq,
                        blocks: seal_blocks,
                        bytes: seal_bytes,
                    },
                );
                // Committed → persistent transition for every shard this
                // session holds exclusively: their alternative records'
                // summary entries are now on disk. Records of shards this
                // session does not hold drain at a later seal that does
                // (the overlay keeps every view correct meanwhile, and
                // the checkpointer runs under a full session, so its
                // encode always sees fully drained tables).
                let drained = self.map.drain_committed();
                self.lld.stats.committed_records_drained.add(drained);
                Ok(true)
            }
        }
    }

    /// Opens a new segment in a free slot, refusing if that would leave
    /// fewer than `reserve` slots free.
    pub(crate) fn open_segment(&mut self, reserve: usize) -> Result<()> {
        debug_assert!(self.log().builder.is_none());
        if self.log().free_slots.len() <= reserve {
            return Err(LldError::DiskFull);
        }
        let slot = self
            .log()
            .free_slots
            .pop_first()
            .ok_or(LldError::DiskFull)?;
        self.sync_free_hint();
        // The slot may hold a cleaned segment whose blocks are cached;
        // new data written here must never be shadowed by stale entries.
        self.lld
            .cache
            .lock()
            .invalidate_segment(SegmentId::new(slot));
        if self.lld.device.is_pipelined() {
            // This slot's data blocks will be streamed to the device
            // *before* its header (header-last seal). If the slot holds
            // an old sealed segment, its stale header would stay valid
            // over half-overwritten data until the new header lands —
            // and a crash in that window would resurrect the old
            // segment filled with new bytes. Punch the old header first;
            // FIFO write order then guarantees no scan of this slot
            // succeeds until the new header is on disk.
            self.lld
                .device
                .write_at(self.lld.layout.segment_offset(slot), &[0u8; HEADER_LEN])?;
        }
        let seq = self.log().next_seq;
        self.log().next_seq += 1;
        let builder = SegmentBuilder::new(
            SegmentId::new(slot),
            seq,
            self.lld.layout.block_size,
            self.lld.layout.segment_bytes,
        );
        self.log().builder = Some(builder);
        Ok(())
    }

    /// Emits a (non-`Write`) summary record into the current segment.
    pub(crate) fn emit(&mut self, rec: Record) -> Result<()> {
        self.emit_reserve(rec, 1)
    }

    /// Emits a record with an explicit slot reserve (0 for
    /// space-reclaiming records such as deletions).
    pub(crate) fn emit_reserve(&mut self, rec: Record, reserve: usize) -> Result<()> {
        let len = rec.encoded_len();
        self.ensure_room(0, len, reserve)?;
        self.log()
            .builder
            .as_mut()
            .expect("ensure_room leaves a builder")
            .push_record(&rec);
        self.lld.stats.records_emitted.inc();
        self.lld.stats.summary_bytes.add(len as u64);
        Ok(())
    }

    /// Enters one data block into the segment stream with its `Write`
    /// record (reserved together so they land in the same segment) and
    /// updates the committed state. Shared by simple writes, ARU commit,
    /// and cleaner relocation.
    pub(crate) fn place_block_data(
        &mut self,
        id: BlockId,
        data: &[u8],
        ts: Timestamp,
        tag: Option<AruId>,
        reserve: usize,
    ) -> Result<PhysAddr> {
        self.ensure_room(1, WRITE_REC_LEN, reserve)?;
        let addr = {
            let b = self
                .log()
                .builder
                .as_mut()
                .expect("ensure_room leaves a builder");
            let slot_idx = b.push_block(data);
            let addr = PhysAddr {
                segment: b.slot(),
                slot: slot_idx,
            };
            let rec = Record::Write {
                block: id,
                slot: slot_idx,
                ts,
                aru: tag,
            };
            b.push_record(&rec);
            addr
        };
        if self.lld.device.is_pipelined() {
            // Stream the block to its final device offset now — an
            // enqueue onto the pipeline, applied by the I/O thread while
            // this batch keeps filling (and while the previous batch's
            // barrier is in flight). By seal time the data is on the
            // device and the seal writes only summary + header. Safe
            // because the builder is append-only (a block is never
            // rewritten in place; re-placing allocates a new slot) and
            // the slot's stale header was punched at `open_segment`.
            self.lld
                .device
                .write_at(self.lld.layout.block_offset(addr), data)?;
        }
        self.lld.stats.records_emitted.inc();
        self.lld.stats.summary_bytes.add(WRITE_REC_LEN as u64);
        self.lld.stats.data_blocks_written.inc();

        self.lld.cache.lock().insert(addr, data);
        let old = self.map.committed_view_block(id).and_then(|r| r.addr);
        self.adjust_addr(id, old, Some(addr));
        let r = self.block_mut(StateRef::Committed, id)?;
        r.addr = Some(addr);
        r.ts = ts;
        Ok(addr)
    }
}
