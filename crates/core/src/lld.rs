//! The logical disk proper: the layered state (mapping layer behind a
//! readers-writer lock, log pipeline behind an append mutex), struct
//! definition, formatting, segment plumbing, and the version-state
//! access helpers shared by all operations.
//!
//! See `docs/CONCURRENCY.md` for the lock hierarchy and the invariants
//! each lock protects.

use crate::aru::Aru;
use crate::cache::BlockCache;
use crate::config::{CleanerConfig, ConcurrencyMode, LldConfig, ReadVisibility};
use crate::error::{LldError, Result};
use crate::gc::GroupCommit;
use crate::layout::{Layout, SUPERBLOCK_LEN};
use crate::obs::{Obs, ObsSnapshot, TraceEvent};
use crate::segment::SegmentBuilder;
use crate::state::{BlockRecord, ListRecord, StateOverlay, Tables};
use crate::stats::{LldStats, StatsCell};
use crate::summary::Record;
use crate::types::{AruId, BlockId, ListId, PhysAddr, Position, SegmentId, Timestamp};
use ld_disk::BlockDevice;
use ld_disk::{Mutex, RwLock};
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Encoded length of a `Write` summary record (needed to reserve room
/// for a data block and its record together, so they land in the same
/// segment).
pub(crate) const WRITE_REC_LEN: usize = 1 + 8 + 4 + 8 + 8;

/// Which version state an internal operation targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StateRef {
    /// The merged stream's committed state.
    Committed,
    /// The shadow state of one ARU (resolution falls through to the
    /// committed state, which falls through to the persistent state —
    /// the paper's standardised search).
    Shadow(AruId),
}

/// The mapping layer: block-number-map, list-table, committed overlay,
/// and per-ARU shadow states, plus the identifier allocators they feed.
///
/// Shared behind a [`RwLock`] so `Read` / `ListBlocks` hold only shared
/// access while mutations hold it exclusively.
#[derive(Debug)]
pub(crate) struct MapState {
    /// Persistent state: block-number-map and list-table.
    pub(crate) persistent: Tables,
    /// Committed-but-not-yet-persistent alternative records.
    pub(crate) committed: StateOverlay,
    /// Active ARUs, keyed by raw id.
    pub(crate) arus: BTreeMap<u64, Aru>,

    pub(crate) next_block_raw: u64,
    pub(crate) free_blocks: BTreeSet<u64>,
    pub(crate) allocated_blocks: u64,
    pub(crate) next_list_raw: u64,
    pub(crate) free_lists: BTreeSet<u64>,
    pub(crate) allocated_lists: u64,
    pub(crate) next_aru_raw: u64,
}

impl MapState {
    pub(crate) fn fresh() -> Self {
        MapState {
            persistent: Tables::default(),
            committed: StateOverlay::default(),
            arus: BTreeMap::new(),
            next_block_raw: 1,
            free_blocks: BTreeSet::new(),
            allocated_blocks: 0,
            next_list_raw: 1,
            free_lists: BTreeSet::new(),
            allocated_lists: 0,
            next_aru_raw: 1,
        }
    }

    // ------------------------------------------------------------------
    // Version-state access (the standardised search) — pure queries, so
    // the concurrent read path can run them under shared access.
    // ------------------------------------------------------------------

    /// The committed view of a block: committed overlay, falling through
    /// to the persistent table. May return a deallocated record.
    pub(crate) fn committed_view_block(&self, id: BlockId) -> Option<&BlockRecord> {
        self.committed
            .blocks
            .get(&id)
            .or_else(|| self.persistent.blocks.get(&id))
    }

    pub(crate) fn committed_view_list(&self, id: ListId) -> Option<&ListRecord> {
        self.committed
            .lists
            .get(&id)
            .or_else(|| self.persistent.lists.get(&id))
    }

    /// Resolves a block record in the given state (shadow → committed →
    /// persistent). May return a deallocated record.
    pub(crate) fn view_block(&self, st: StateRef, id: BlockId) -> Option<&BlockRecord> {
        if let StateRef::Shadow(aru) = st {
            if let Some(rec) = self
                .arus
                .get(&aru.get())
                .and_then(|a| a.shadow.blocks.get(&id))
            {
                return Some(rec);
            }
        }
        self.committed_view_block(id)
    }

    pub(crate) fn view_list(&self, st: StateRef, id: ListId) -> Option<&ListRecord> {
        if let StateRef::Shadow(aru) = st {
            if let Some(rec) = self
                .arus
                .get(&aru.get())
                .and_then(|a| a.shadow.lists.get(&id))
            {
                return Some(rec);
            }
        }
        self.committed_view_list(id)
    }

    /// Walks `list` in state `st`, returning the member blocks in order
    /// plus the number of steps taken (the caller charges them to the
    /// `list_walk_steps` counter).
    ///
    /// # Errors
    ///
    /// [`LldError::ListNotAllocated`] if the list does not exist in the
    /// state; [`LldError::Corrupt`] on a cycle or dangling successor.
    pub(crate) fn walk_list(
        &self,
        st: StateRef,
        list: ListId,
        max_blocks: u64,
    ) -> Result<(Vec<BlockId>, u64)> {
        let rec = self
            .view_list(st, list)
            .filter(|r| r.allocated)
            .ok_or(LldError::ListNotAllocated(list))?;
        let mut out = Vec::new();
        let mut cur = rec.first;
        let bound = max_blocks + 1;
        let mut steps = 0u64;
        while let Some(b) = cur {
            steps += 1;
            if steps > bound {
                return Err(LldError::Corrupt(format!("cycle while walking {list}")));
            }
            let brec = self
                .view_block(st, b)
                .filter(|r| r.allocated)
                .ok_or_else(|| {
                    LldError::Corrupt(format!("list {list} references missing block {b}"))
                })?;
            out.push(b);
            cur = brec.successor;
        }
        Ok((out, steps))
    }

    /// Validates that an insertion of a block into `list` at `pos` is
    /// possible in state `st` (list allocated; predecessor allocated and
    /// on the list).
    pub(crate) fn validate_insert(&self, st: StateRef, list: ListId, pos: Position) -> Result<()> {
        self.view_list(st, list)
            .filter(|r| r.allocated)
            .ok_or(LldError::ListNotAllocated(list))?;
        if let Position::After(pred) = pos {
            let p = self
                .view_block(st, pred)
                .filter(|r| r.allocated)
                .ok_or(LldError::BlockNotAllocated(pred))?;
            if p.list != Some(list) {
                return Err(LldError::PredecessorNotOnList { list, pred });
            }
        }
        Ok(())
    }
}

/// The log pipeline: the open segment builder and the slot / sequence /
/// free-slot / live-block accounting behind it, plus the cleaner and
/// checkpoint cursors. Serialized by a single append mutex.
#[derive(Debug)]
pub(crate) struct LogState {
    /// The segment currently being filled in memory. `None` only
    /// transiently (mid-roll) or when the disk is full.
    pub(crate) builder: Option<SegmentBuilder>,
    /// Per physical slot: log sequence number of the sealed segment it
    /// holds (0 = none/invalid).
    pub(crate) slot_seq: Vec<u64>,
    /// Physical slots available for new segments.
    pub(crate) free_slots: BTreeSet<u32>,
    /// Per physical slot: number of blocks whose current address is in
    /// it.
    pub(crate) live_count: Vec<u32>,
    /// Per physical slot: the blocks whose current address is in it
    /// (the cleaner's work list).
    pub(crate) residents: Vec<HashSet<BlockId>>,
    pub(crate) next_seq: u64,
    /// Highest segment sequence number covered by an on-disk checkpoint.
    pub(crate) checkpoint_seq: u64,
    pub(crate) ckpt_use_b: bool,
    pub(crate) cleaning: bool,
}

impl LogState {
    pub(crate) fn fresh(n_segments: usize) -> Self {
        LogState {
            builder: None,
            slot_seq: vec![0; n_segments],
            free_slots: (0..n_segments as u32).collect(),
            live_count: vec![0; n_segments],
            residents: vec![HashSet::new(); n_segments],
            next_seq: 1,
            checkpoint_seq: 0,
            ckpt_use_b: false,
            cleaning: false,
        }
    }
}

/// The log-structured Logical Disk with atomic recovery units.
///
/// `Lld` implements the LD interface — `Read`, `Write`, `NewBlock`,
/// `DeleteBlock`, `NewList`, `DeleteList`, `Flush` — extended with
/// `BeginARU` / `EndARU` ([`begin_aru`](Lld::begin_aru),
/// [`end_aru`](Lld::end_aru)). All operations bracketed by an ARU become
/// persistent atomically: after a crash, recovery
/// ([`Lld::recover`]) restores either all or none of them.
///
/// Every operation takes `&self`: the disk locks internally (a
/// readers-writer lock over the mapping layer, a mutex over the log
/// pipeline, and a group-commit stage batching concurrent flushes), so
/// one `Lld` can be shared between OS threads directly — e.g. as an
/// `Arc<Lld<D>>`, or by reference from scoped threads — with reads
/// proceeding concurrently. Concurrency of *ARUs* is independent of
/// threads: each thread (or interleaved logical stream) brackets its own
/// operations with its own ARU.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), ld_core::LldError> {
/// use ld_core::{Ctx, Lld, LldConfig, Position};
/// use ld_disk::MemDisk;
///
/// let ld = Lld::format(MemDisk::new(4 << 20), &LldConfig {
///     block_size: 512,
///     segment_bytes: 16 * 512,
///     ..LldConfig::default()
/// })?;
///
/// // Create a file's metadata and data atomically.
/// let aru = ld.begin_aru()?;
/// let list = ld.new_list(Ctx::Aru(aru))?;
/// let block = ld.new_block(Ctx::Aru(aru), list, Position::First)?;
/// ld.write(Ctx::Aru(aru), block, &[7u8; 512])?;
/// ld.end_aru(aru)?;
///
/// let mut buf = [0u8; 512];
/// ld.read(Ctx::Simple, block, &mut buf)?;
/// assert_eq!(buf[0], 7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Lld<D> {
    pub(crate) device: D,
    pub(crate) layout: Layout,
    pub(crate) concurrency: ConcurrencyMode,
    pub(crate) visibility: ReadVisibility,
    pub(crate) cleaner_cfg: CleanerConfig,

    /// The mapping layer (see [`MapState`]). Lock order: `map` before
    /// `log`; never acquire `map` while holding `log`.
    pub(crate) map: RwLock<MapState>,
    /// The log pipeline (see [`LogState`]).
    pub(crate) log: Mutex<LogState>,
    /// Data-block read cache (leaf lock, held only across one probe or
    /// insert).
    pub(crate) cache: Mutex<BlockCache>,
    /// The group-commit stage batching concurrent flushes.
    pub(crate) gc: GroupCommit,

    /// The logical operation clock.
    pub(crate) ts_counter: AtomicU64,
    pub(crate) stats: StatsCell,
    pub(crate) obs: Obs,
}

/// An exclusive mutation session: both state layers locked, in order.
///
/// Every operation that changes the mapping or the log runs inside one
/// of these (via [`Lld::with_mutation`]); the helpers below are the
/// single-threaded core of the disk, unchanged in spirit from the
/// paper's prototype — the session simply makes the exclusivity
/// explicit.
pub(crate) struct Mutation<'a, D> {
    pub(crate) lld: &'a Lld<D>,
    pub(crate) map: &'a mut MapState,
    pub(crate) log: &'a mut LogState,
}

impl<D: BlockDevice> Lld<D> {
    /// Formats `device` as a fresh, empty logical disk.
    ///
    /// Existing segment headers and checkpoints on the device are
    /// invalidated so that recovery can never resurrect state from a
    /// previous format.
    ///
    /// # Errors
    ///
    /// Returns [`LldError::Config`] for an invalid configuration or a
    /// device too small for four segments, and device errors.
    pub fn format(device: D, config: &LldConfig) -> Result<Self> {
        config.validate()?;
        let layout = Layout::compute(device.capacity(), config)?;

        // Write the superblock.
        let sb = layout.encode_superblock(config.concurrency, config.visibility);
        device.write_at(0, &sb)?;
        // Invalidate both checkpoint areas and every segment header.
        let zeros = [0u8; 64];
        device.write_at(layout.ckpt_a, &zeros)?;
        device.write_at(layout.ckpt_b, &zeros)?;
        for slot in 0..layout.n_segments {
            device.write_at(layout.segment_offset(slot), &zeros[..32])?;
        }
        device.flush()?;

        let n = layout.n_segments as usize;
        let ld = Lld {
            device,
            layout,
            concurrency: config.concurrency,
            visibility: config.visibility,
            cleaner_cfg: config.cleaner,
            map: RwLock::new(MapState::fresh()),
            log: Mutex::new(LogState::fresh(n)),
            cache: Mutex::new(BlockCache::new(config.read_cache_blocks)),
            gc: GroupCommit::new(),
            ts_counter: AtomicU64::new(0),
            stats: StatsCell::default(),
            obs: Obs::new(config.obs),
        };
        ld.with_mutation(|m| m.open_segment(0))?;
        Ok(ld)
    }

    /// Runs `f` with both state layers locked exclusively, in the
    /// canonical order (map, then log).
    pub(crate) fn with_mutation<T>(&self, f: impl FnOnce(&mut Mutation<'_, D>) -> T) -> T {
        let mut map = self.map.write();
        let mut log = self.log.lock();
        let mut m = Mutation {
            lld: self,
            map: &mut map,
            log: &mut log,
        };
        f(&mut m)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The block size in bytes.
    pub fn block_size(&self) -> usize {
        self.layout.block_size
    }

    /// The segment size in bytes.
    pub fn segment_bytes(&self) -> usize {
        self.layout.segment_bytes
    }

    /// Number of segment slots on the device.
    pub fn n_segments(&self) -> u32 {
        self.layout.n_segments
    }

    /// Number of currently free segment slots.
    pub fn free_segments(&self) -> u32 {
        self.log.lock().free_slots.len() as u32
    }

    /// The concurrency mode ("old" sequential vs "new" concurrent).
    pub fn concurrency(&self) -> ConcurrencyMode {
        self.concurrency
    }

    /// The read-visibility semantics in effect.
    pub fn visibility(&self) -> ReadVisibility {
        self.visibility
    }

    /// A snapshot of the operation counters.
    pub fn stats(&self) -> LldStats {
        self.stats.snapshot()
    }

    /// The observability bundle: trace events, latency histograms, ARU
    /// lifecycle spans.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Counters and service-time histograms of the underlying device,
    /// when it collects them (a [`SimDisk`](ld_disk::SimDisk) does;
    /// plain [`MemDisk`](ld_disk::MemDisk) / `FileDisk` return `None`).
    pub fn device_stats(&self) -> Option<ld_disk::DiskStatsSnapshot> {
        self.device.stats_snapshot()
    }

    /// Captures everything observable about this disk in one bundle:
    /// LLD counters, device counters, the `lld_read` / `lld_write` /
    /// `end_aru` / `flush` / `group_commit_batch` histograms (plus
    /// `disk_read` / `disk_write` when the device provides them), recent
    /// trace events, ARU spans, and the recovery report if this disk was
    /// recovered. `fs_ops` is left empty for a file-system caller to
    /// fill.
    pub fn obs_snapshot(&self) -> ObsSnapshot {
        let disk = self.device.stats_snapshot();
        let mut histograms: Vec<(String, ld_disk::HistogramSnapshot)> = self
            .obs
            .histograms()
            .into_iter()
            .map(|(n, h)| (n.to_string(), h))
            .collect();
        if let Some(d) = &disk {
            histograms.push(("disk_read".to_string(), d.read_hist));
            histograms.push(("disk_write".to_string(), d.write_hist));
        }
        ObsSnapshot {
            lld: self.stats.snapshot(),
            disk,
            histograms,
            events: self.obs.ring().entries(),
            dropped_events: self.obs.ring().dropped(),
            spans: self.obs.spans(),
            recovery: self.obs.recovery_report(),
            fs_ops: Vec::new(),
        }
    }

    /// Resets the operation counters.
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Identifiers of the currently active ARUs.
    pub fn active_arus(&self) -> Vec<AruId> {
        self.map
            .read()
            .arus
            .keys()
            .map(|&raw| AruId::new(raw))
            .collect()
    }

    /// The logical time at which an active ARU began, if it is active.
    pub fn aru_started(&self, aru: AruId) -> Option<Timestamp> {
        self.map.read().arus.get(&aru.get()).map(|a| a.started)
    }

    /// Number of blocks allocated in the committed state.
    pub fn allocated_block_count(&self) -> u64 {
        self.map.read().allocated_blocks
    }

    /// Number of lists allocated in the committed state.
    pub fn allocated_list_count(&self) -> u64 {
        self.map.read().allocated_lists
    }

    /// The highest segment sequence number covered by an on-disk
    /// checkpoint (0 = no checkpoint; recovery scans the whole log).
    pub fn checkpoint_seq(&self) -> u64 {
        self.log.lock().checkpoint_seq
    }

    /// Borrows the underlying device (e.g. to inspect simulator
    /// statistics).
    pub fn device(&self) -> &D {
        &self.device
    }

    /// Consumes the logical disk and returns the device. Un-flushed
    /// committed state is *not* written; this models a crash.
    pub fn into_device(self) -> D {
        self.device
    }

    /// A copy of the committed-state record of `block`, if allocated.
    pub fn block_info(&self, block: BlockId) -> Option<BlockRecord> {
        self.map
            .read()
            .view_block(StateRef::Committed, block)
            .filter(|r| r.allocated)
            .cloned()
    }

    /// A copy of the committed-state record of `list`, if allocated.
    pub fn list_info(&self, list: ListId) -> Option<ListRecord> {
        self.map
            .read()
            .view_list(StateRef::Committed, list)
            .filter(|r| r.allocated)
            .cloned()
    }

    // ------------------------------------------------------------------
    // Time
    // ------------------------------------------------------------------

    /// Advances the logical clock and returns the new timestamp.
    pub(crate) fn tick(&self) -> Timestamp {
        Timestamp::new(self.ts_counter.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// The current logical time (for event records).
    pub(crate) fn now(&self) -> u64 {
        self.ts_counter.load(Ordering::Relaxed)
    }

    /// Raises the logical clock to at least `floor` (recovery replay).
    pub(crate) fn raise_clock(&self, floor: u64) {
        self.ts_counter.fetch_max(floor, Ordering::Relaxed);
    }

    // ------------------------------------------------------------------
    // Shared read plumbing
    // ------------------------------------------------------------------

    /// Reads the data of a block at `addr`: from the in-memory segment
    /// buffer if the address is in the currently open segment, from the
    /// cache or device otherwise.
    ///
    /// Callers must hold at least shared access to the mapping layer, so
    /// the cleaner cannot relocate `addr` mid-read.
    pub(crate) fn read_block_data(&self, addr: PhysAddr, buf: &mut [u8]) -> Result<()> {
        {
            let log = self.log.lock();
            if let Some(b) = &log.builder {
                if b.slot() == addr.segment {
                    if addr.slot >= b.n_blocks() {
                        return Err(LldError::Corrupt(format!(
                            "address {addr} beyond open segment contents"
                        )));
                    }
                    buf.copy_from_slice(b.read_block(addr.slot));
                    return Ok(());
                }
            }
        }
        if self.cache.lock().get(addr, buf) {
            self.stats.cache_hits.inc();
            return Ok(());
        }
        self.stats.cache_misses.inc();
        self.device.read_at(self.layout.block_offset(addr), buf)?;
        self.cache.lock().insert(addr, buf);
        Ok(())
    }

    /// Reads the superblock of a formatted device.
    pub(crate) fn read_superblock(device: &D) -> Result<(Layout, ConcurrencyMode, ReadVisibility)> {
        let mut buf = [0u8; SUPERBLOCK_LEN];
        device.read_at(0, &mut buf)?;
        Layout::decode_superblock(&buf)
    }

    /// Probes a formatted device without recovering it: returns the
    /// layout and the semantic modes stored in the superblock.
    ///
    /// # Errors
    ///
    /// [`LldError::Corrupt`] if the device holds no valid superblock;
    /// device errors.
    pub fn probe(device: &D) -> Result<(Layout, ConcurrencyMode, ReadVisibility)> {
        Self::read_superblock(device)
    }
}

impl<D: BlockDevice> Mutation<'_, D> {
    // ------------------------------------------------------------------
    // Session conveniences
    // ------------------------------------------------------------------

    pub(crate) fn tick(&self) -> Timestamp {
        self.lld.tick()
    }

    // ------------------------------------------------------------------
    // Identifiers
    // ------------------------------------------------------------------

    pub(crate) fn alloc_block_id(&mut self) -> Result<BlockId> {
        if self.map.allocated_blocks >= self.lld.layout.max_blocks {
            return Err(LldError::DiskFull);
        }
        let raw = match self.map.free_blocks.pop_first() {
            Some(raw) => raw,
            None => {
                let raw = self.map.next_block_raw;
                self.map.next_block_raw += 1;
                raw
            }
        };
        Ok(BlockId::new(raw))
    }

    pub(crate) fn alloc_list_id(&mut self) -> Result<ListId> {
        if self.map.allocated_lists >= self.lld.layout.max_lists {
            return Err(LldError::DiskFull);
        }
        let raw = match self.map.free_lists.pop_first() {
            Some(raw) => raw,
            None => {
                let raw = self.map.next_list_raw;
                self.map.next_list_raw += 1;
                raw
            }
        };
        Ok(ListId::new(raw))
    }

    // ------------------------------------------------------------------
    // Copy-on-write record access
    // ------------------------------------------------------------------

    /// Copy-on-write access to a block record in the given state: if the
    /// state has no alternative record yet, the version below is copied
    /// in (the paper: "the disk system applies modifications to a copy of
    /// the committed version ... which then becomes the new shadow
    /// version").
    ///
    /// # Errors
    ///
    /// Returns [`LldError::BlockNotAllocated`] if no version of the
    /// block exists at all.
    pub(crate) fn block_mut(&mut self, st: StateRef, id: BlockId) -> Result<&mut BlockRecord> {
        match st {
            StateRef::Committed => {
                if !self.map.committed.blocks.contains_key(&id) {
                    let base = self
                        .map
                        .persistent
                        .blocks
                        .get(&id)
                        .cloned()
                        .ok_or(LldError::BlockNotAllocated(id))?;
                    self.map.committed.blocks.insert(id, base);
                }
                Ok(self
                    .map
                    .committed
                    .blocks
                    .get_mut(&id)
                    .expect("just inserted"))
            }
            StateRef::Shadow(aru) => {
                let raw = aru.get();
                if !self
                    .map
                    .arus
                    .get(&raw)
                    .ok_or(LldError::UnknownAru(aru))?
                    .shadow
                    .blocks
                    .contains_key(&id)
                {
                    let base = self
                        .map
                        .committed_view_block(id)
                        .cloned()
                        .ok_or(LldError::BlockNotAllocated(id))?;
                    self.lld.stats.shadow_cow_records.inc();
                    self.lld.obs.span_cow(raw);
                    self.map
                        .arus
                        .get_mut(&raw)
                        .expect("checked above")
                        .shadow
                        .blocks
                        .insert(id, base);
                }
                Ok(self
                    .map
                    .arus
                    .get_mut(&raw)
                    .expect("checked above")
                    .shadow
                    .blocks
                    .get_mut(&id)
                    .expect("just inserted"))
            }
        }
    }

    pub(crate) fn list_mut(&mut self, st: StateRef, id: ListId) -> Result<&mut ListRecord> {
        match st {
            StateRef::Committed => {
                if !self.map.committed.lists.contains_key(&id) {
                    let base = self
                        .map
                        .persistent
                        .lists
                        .get(&id)
                        .cloned()
                        .ok_or(LldError::ListNotAllocated(id))?;
                    self.map.committed.lists.insert(id, base);
                }
                Ok(self
                    .map
                    .committed
                    .lists
                    .get_mut(&id)
                    .expect("just inserted"))
            }
            StateRef::Shadow(aru) => {
                let raw = aru.get();
                if !self
                    .map
                    .arus
                    .get(&raw)
                    .ok_or(LldError::UnknownAru(aru))?
                    .shadow
                    .lists
                    .contains_key(&id)
                {
                    let base = self
                        .map
                        .committed_view_list(id)
                        .cloned()
                        .ok_or(LldError::ListNotAllocated(id))?;
                    self.lld.stats.shadow_cow_records.inc();
                    self.lld.obs.span_cow(raw);
                    self.map
                        .arus
                        .get_mut(&raw)
                        .expect("checked above")
                        .shadow
                        .lists
                        .insert(id, base);
                }
                Ok(self
                    .map
                    .arus
                    .get_mut(&raw)
                    .expect("checked above")
                    .shadow
                    .lists
                    .get_mut(&id)
                    .expect("just inserted"))
            }
        }
    }

    /// Adjusts the per-segment live-block accounting when the committed
    /// address of `id` changes.
    pub(crate) fn adjust_addr(
        &mut self,
        id: BlockId,
        old: Option<PhysAddr>,
        new: Option<PhysAddr>,
    ) {
        if old == new {
            return;
        }
        if let Some(a) = old {
            let s = a.segment.get() as usize;
            self.log.live_count[s] = self.log.live_count[s].saturating_sub(1);
            self.log.residents[s].remove(&id);
        }
        if let Some(a) = new {
            let s = a.segment.get() as usize;
            self.log.live_count[s] += 1;
            self.log.residents[s].insert(id);
        }
    }

    // ------------------------------------------------------------------
    // List structure manipulation (shared by ops, commit replay, and
    // recovery replay)
    // ------------------------------------------------------------------

    /// Walks `list` in state `st`, returning the member blocks in order
    /// and charging the steps to the stats.
    pub(crate) fn walk_list(&mut self, st: StateRef, list: ListId) -> Result<Vec<BlockId>> {
        let (out, steps) = self.map.walk_list(st, list, self.lld.layout.max_blocks)?;
        self.lld.stats.list_walk_steps.add(steps);
        Ok(out)
    }

    /// See [`MapState::validate_insert`].
    pub(crate) fn validate_insert(&self, st: StateRef, list: ListId, pos: Position) -> Result<()> {
        self.map.validate_insert(st, list, pos)
    }

    /// Inserts `block` (which must exist, allocated, and not on a list,
    /// in state `st`) into `list` at `pos`. Callers run
    /// [`validate_insert`](Self::validate_insert) first.
    pub(crate) fn insert_into_list(
        &mut self,
        st: StateRef,
        list: ListId,
        block: BlockId,
        pos: Position,
        ts: Timestamp,
    ) -> Result<()> {
        self.validate_insert(st, list, pos)?;
        match pos {
            Position::First => {
                let old_first = {
                    let lr = self.list_mut(st, list)?;
                    let old = lr.first;
                    lr.first = Some(block);
                    if lr.last.is_none() {
                        lr.last = Some(block);
                    }
                    lr.ts = ts;
                    old
                };
                let br = self.block_mut(st, block)?;
                br.successor = old_first;
                br.list = Some(list);
                br.ts = ts;
            }
            Position::After(pred) => {
                let pred_succ = {
                    let pm = self.block_mut(st, pred)?;
                    let old = pm.successor;
                    pm.successor = Some(block);
                    pm.ts = ts;
                    old
                };
                {
                    let bm = self.block_mut(st, block)?;
                    bm.successor = pred_succ;
                    bm.list = Some(list);
                    bm.ts = ts;
                }
                let lr = self.list_mut(st, list)?;
                if lr.last == Some(pred) {
                    lr.last = Some(block);
                }
                lr.ts = ts;
            }
        }
        Ok(())
    }

    /// Removes `block` from its list (if any) in state `st`, running the
    /// predecessor search the paper identifies as the dominant deletion
    /// cost.
    pub(crate) fn unlink_block(
        &mut self,
        st: StateRef,
        block: BlockId,
        ts: Timestamp,
    ) -> Result<()> {
        let rec = self
            .map
            .view_block(st, block)
            .filter(|r| r.allocated)
            .ok_or(LldError::BlockNotAllocated(block))?;
        let Some(list) = rec.list else {
            return Ok(());
        };
        let successor = rec.successor;

        // Predecessor search: walk from the head of the list.
        let lrec = self
            .map
            .view_list(st, list)
            .filter(|r| r.allocated)
            .ok_or(LldError::ListNotAllocated(list))?;
        let mut pred: Option<BlockId> = None;
        let mut cur = lrec.first;
        let bound = self.lld.layout.max_blocks + 1;
        let mut steps = 0u64;
        while let Some(b) = cur {
            if b == block {
                break;
            }
            steps += 1;
            if steps > bound {
                return Err(LldError::Corrupt(format!("cycle while walking {list}")));
            }
            pred = Some(b);
            cur = self.map.view_block(st, b).and_then(|r| r.successor);
            if cur.is_none() {
                return Err(LldError::Corrupt(format!(
                    "{block} claims membership of {list} but is not on it"
                )));
            }
        }
        self.lld.stats.list_walk_steps.add(steps);

        match pred {
            None => {
                let lr = self.list_mut(st, list)?;
                lr.first = successor;
                if lr.last == Some(block) {
                    lr.last = None;
                }
                lr.ts = ts;
            }
            Some(p) => {
                {
                    let pm = self.block_mut(st, p)?;
                    pm.successor = successor;
                    pm.ts = ts;
                }
                let lr = self.list_mut(st, list)?;
                if lr.last == Some(block) {
                    lr.last = Some(p);
                }
                lr.ts = ts;
            }
        }
        let bm = self.block_mut(st, block)?;
        bm.list = None;
        bm.successor = None;
        bm.ts = ts;
        Ok(())
    }

    /// Marks `block` deallocated in state `st`. In the committed state
    /// this also releases its physical address and decrements the
    /// allocation count; identifier reuse is the caller's decision.
    pub(crate) fn dealloc_block(
        &mut self,
        st: StateRef,
        block: BlockId,
        ts: Timestamp,
    ) -> Result<()> {
        if st == StateRef::Committed {
            let old = self.map.committed_view_block(block).and_then(|r| r.addr);
            self.adjust_addr(block, old, None);
            self.map.allocated_blocks = self.map.allocated_blocks.saturating_sub(1);
        }
        let bm = self.block_mut(st, block)?;
        bm.allocated = false;
        bm.addr = None;
        bm.list = None;
        bm.successor = None;
        bm.ts = ts;
        Ok(())
    }

    /// Marks `list` deallocated in state `st`.
    pub(crate) fn dealloc_list(&mut self, st: StateRef, list: ListId, ts: Timestamp) -> Result<()> {
        if st == StateRef::Committed {
            self.map.allocated_lists = self.map.allocated_lists.saturating_sub(1);
        }
        let lm = self.list_mut(st, list)?;
        lm.allocated = false;
        lm.first = None;
        lm.last = None;
        lm.ts = ts;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Segment plumbing
    // ------------------------------------------------------------------

    /// Ensures the current segment can absorb `blocks` data blocks plus
    /// `summary` bytes of records, rolling to a new segment if needed.
    ///
    /// `reserve` is the number of free segment slots that must remain
    /// after a roll: space-*consuming* operations pass 1 so the last
    /// slot stays available for deletions and cleaning (otherwise a
    /// full log could never be emptied again); space-*reclaiming*
    /// operations pass 0.
    pub(crate) fn ensure_room(
        &mut self,
        blocks: usize,
        summary: usize,
        reserve: usize,
    ) -> Result<()> {
        let fits = match &self.log.builder {
            Some(b) => b.fits(blocks, summary),
            None => false,
        };
        if fits {
            return Ok(());
        }
        self.roll_segment(reserve)?;
        match &self.log.builder {
            Some(b) if b.fits(blocks, summary) => Ok(()),
            Some(_) => Err(LldError::Config(
                "request does not fit in an empty segment".into(),
            )),
            None => Err(LldError::DiskFull),
        }
    }

    /// Seals and writes the current segment (if it has content) and
    /// opens a new one, running the cleaner if free segments are scarce.
    pub(crate) fn roll_segment(&mut self, reserve: usize) -> Result<()> {
        let had_content = self.seal_current()?;
        if self.log.builder.is_none() {
            self.open_segment(reserve)?;
        }
        if had_content
            && !self.log.cleaning
            && self.lld.cleaner_cfg.enabled
            && (self.log.free_slots.len() as u32) < self.lld.cleaner_cfg.min_free_segments
        {
            self.run_cleaner_inner()?;
        }
        Ok(())
    }

    /// Seals and writes the current segment. Returns `true` if a
    /// segment was actually written (the builder is then `None`); an
    /// empty builder is left in place and `false` returned.
    pub(crate) fn seal_current(&mut self) -> Result<bool> {
        match self.log.builder.take() {
            None => Ok(false),
            Some(b) if b.is_empty() => {
                self.log.builder = Some(b);
                Ok(false)
            }
            Some(b) => {
                let seal_seq = b.seq();
                let seal_blocks = b.n_blocks();
                let bytes = b.seal();
                let slot = b.slot().get();
                self.lld
                    .device
                    .write_at(self.lld.layout.segment_offset(slot), &bytes)?;
                self.log.slot_seq[slot as usize] = b.seq();
                self.lld.stats.segments_sealed.inc();
                self.lld.obs.event(
                    self.lld.now(),
                    TraceEvent::SegmentSeal {
                        segment: slot,
                        seq: seal_seq,
                        blocks: seal_blocks,
                        bytes: bytes.len() as u64,
                    },
                );
                // Committed → persistent transition: every committed
                // alternative record's summary entry is now on disk.
                self.lld
                    .stats
                    .committed_records_drained
                    .add(self.map.committed.len() as u64);
                let map = &mut *self.map;
                map.committed.drain_into(&mut map.persistent);
                Ok(true)
            }
        }
    }

    /// Opens a new segment in a free slot, refusing if that would leave
    /// fewer than `reserve` slots free.
    pub(crate) fn open_segment(&mut self, reserve: usize) -> Result<()> {
        debug_assert!(self.log.builder.is_none());
        if self.log.free_slots.len() <= reserve {
            return Err(LldError::DiskFull);
        }
        let slot = self.log.free_slots.pop_first().ok_or(LldError::DiskFull)?;
        // The slot may hold a cleaned segment whose blocks are cached;
        // new data written here must never be shadowed by stale entries.
        self.lld
            .cache
            .lock()
            .invalidate_segment(SegmentId::new(slot));
        let seq = self.log.next_seq;
        self.log.next_seq += 1;
        self.log.builder = Some(SegmentBuilder::new(
            SegmentId::new(slot),
            seq,
            self.lld.layout.block_size,
            self.lld.layout.segment_bytes,
        ));
        Ok(())
    }

    /// Emits a (non-`Write`) summary record into the current segment.
    pub(crate) fn emit(&mut self, rec: Record) -> Result<()> {
        self.emit_reserve(rec, 1)
    }

    /// Emits a record with an explicit slot reserve (0 for
    /// space-reclaiming records such as deletions).
    pub(crate) fn emit_reserve(&mut self, rec: Record, reserve: usize) -> Result<()> {
        let len = rec.encoded_len();
        self.ensure_room(0, len, reserve)?;
        self.log
            .builder
            .as_mut()
            .expect("ensure_room leaves a builder")
            .push_record(&rec);
        self.lld.stats.records_emitted.inc();
        self.lld.stats.summary_bytes.add(len as u64);
        Ok(())
    }

    /// Enters one data block into the segment stream with its `Write`
    /// record (reserved together so they land in the same segment) and
    /// updates the committed state. Shared by simple writes, ARU commit,
    /// and cleaner relocation.
    pub(crate) fn place_block_data(
        &mut self,
        id: BlockId,
        data: &[u8],
        ts: Timestamp,
        tag: Option<AruId>,
        reserve: usize,
    ) -> Result<PhysAddr> {
        self.ensure_room(1, WRITE_REC_LEN, reserve)?;
        let b = self
            .log
            .builder
            .as_mut()
            .expect("ensure_room leaves a builder");
        let slot_idx = b.push_block(data);
        let addr = PhysAddr {
            segment: b.slot(),
            slot: slot_idx,
        };
        let rec = Record::Write {
            block: id,
            slot: slot_idx,
            ts,
            aru: tag,
        };
        b.push_record(&rec);
        self.lld.stats.records_emitted.inc();
        self.lld.stats.summary_bytes.add(WRITE_REC_LEN as u64);
        self.lld.stats.data_blocks_written.inc();

        self.lld.cache.lock().insert(addr, data);
        let old = self.map.committed_view_block(id).and_then(|r| r.addr);
        self.adjust_addr(id, old, Some(addr));
        let r = self.block_mut(StateRef::Committed, id)?;
        r.addr = Some(addr);
        r.ts = ts;
        Ok(addr)
    }
}
