//! The inline segment cleaner: reclaims space by copying live blocks
//! forward.
//!
//! "If LLD runs out of disk space it uses a segment cleaner to reclaim
//! unused disk space" (§2). The policy here is greedy
//! lowest-utilisation, *packing*: victims are the sealed segments with
//! the fewest live blocks, taken together as long as their combined
//! live blocks fit in one output segment. Live blocks are copied into
//! the current segment (with fresh `Write` records preserving their
//! logical timestamps), the relocation records are made durable by
//! sealing, and only then are the victim slots released for reuse.
//! Packing matters for workloads that seal small segments (e.g. a sync
//! after every tiny commit): cleaning such victims one at a time frees
//! one slot per sealed output — zero net progress — while packing
//! compacts many of them into a single output segment.
//!
//! Correctness constraint: a slot may be reused only when its old
//! records are covered by a checkpoint — otherwise a later recovery scan
//! would miss operations that used to live there. The cleaner writes a
//! checkpoint automatically when its candidates are not yet covered.
//!
//! The cleaner relocates blocks of arbitrary identifiers, so it only
//! ever runs inside a *full* mutation session (all shards write-locked).
//! Scoped sessions that notice space pressure kick the background
//! cleaner ([`crate::cleanerd`]) or set a flag for the owning operation
//! to clean right after releasing its locks (see
//! [`LldInner::after_scoped`]).

use crate::error::Result;
use crate::lld::{LldInner, Mutation};
use crate::types::{BlockId, SegmentId};
use ld_disk::BlockDevice;

impl<D: BlockDevice> LldInner<D> {
    /// Runs the cleaner until `target_free_segments` slots are free or
    /// no further segment can be cleaned. Invoked automatically when
    /// free slots drop below `min_free_segments`; may also be called
    /// explicitly.
    ///
    /// # Errors
    ///
    /// Device errors; [`LldError::DiskFull`](crate::LldError::DiskFull)
    /// if relocation itself runs out of space (the device is genuinely
    /// full).
    pub fn run_cleaner(&self) -> Result<()> {
        self.with_mutation(|m| m.run_cleaner_inner())
    }
}

/// Clears the `cleaning` re-entry flag when the borrowed session leaves
/// the cleaner, however it leaves — an early `?` inside the cleaning
/// loop must never wedge future cleaner runs with the flag stuck set.
struct CleaningGuard<'g, 'a, D: BlockDevice>(&'g mut Mutation<'a, D>);

impl<D: BlockDevice> Drop for CleaningGuard<'_, '_, D> {
    fn drop(&mut self) {
        self.0.log().cleaning = false;
    }
}

impl<D: BlockDevice> Mutation<'_, D> {
    /// Cleaner entry point, also called from
    /// [`roll_segment`](Mutation::roll_segment) when free slots are
    /// scarce. Requires a full session. The `cleaning` flag guards
    /// against re-entry through the segment rolls cleaning itself
    /// performs; a guard type resets it on every exit path.
    pub(crate) fn run_cleaner_inner(&mut self) -> Result<()> {
        debug_assert!(self.map.holds_all_shards_write());
        if self.log().cleaning {
            return Ok(());
        }
        self.log().cleaning = true;
        let guard = CleaningGuard(self);
        guard.0.clean_until_target()
    }

    fn clean_until_target(&mut self) -> Result<()> {
        self.lld.stats.cleaner_runs.inc();
        let relocated_before = self.lld.stats.blocks_relocated.get();
        // Fast pass: checkpoint-covered segments with zero live blocks
        // are free for the taking (no relocation, no extra I/O), so
        // reclaim them all regardless of the target.
        let current = self.log().builder.as_ref().map(|b| b.slot().get());
        for slot in 0..self.lld.layout.n_segments {
            if Some(slot) == current || self.log().free_slots.contains(&slot) {
                continue;
            }
            let seq = self.log().slot_seq[slot as usize];
            if seq != 0
                && seq <= self.log().checkpoint_seq
                && self.log().live_count[slot as usize] == 0
            {
                self.log().slot_seq[slot as usize] = 0;
                self.log().free_slots.insert(slot);
            }
        }
        self.sync_free_hint();
        let target = self.lld.cleaner_cfg.target_free_segments.max(1) as usize;
        // Bounded by the number of segments: each iteration frees at
        // least one victim or stops.
        for _ in 0..self.lld.layout.n_segments {
            if self.log().free_slots.len() >= target {
                break;
            }
            let victims = self.pick_victims()?;
            if victims.is_empty() {
                break;
            }
            self.clean_batch(&victims)?;
        }
        let free_segments = self.log().free_slots.len() as u32;
        self.lld.obs.event(
            self.lld.now(),
            crate::obs::TraceEvent::CleanerPass {
                free_segments,
                blocks_relocated: self.lld.stats.blocks_relocated.get() - relocated_before,
            },
        );
        Ok(())
    }

    /// Chooses a batch of sealed victims — lowest utilisation first,
    /// packed while their combined live blocks fit in one output
    /// segment — writing a checkpoint first if no candidate is covered
    /// by one.
    fn pick_victims(&mut self) -> Result<Vec<SegmentId>> {
        let pack_cap = self.lld.layout.slots_per_segment();
        for attempt in 0..2 {
            let current = self.log().builder.as_ref().map(|b| b.slot().get());
            let mut cands: Vec<(u32, u32)> = Vec::new(); // (live, slot)
            let mut uncovered = false;
            for slot in 0..self.lld.layout.n_segments {
                if Some(slot) == current || self.log().free_slots.contains(&slot) {
                    continue;
                }
                let seq = self.log().slot_seq[slot as usize];
                if seq == 0 {
                    // Holds no sealed segment and is not free: cannot
                    // happen in a consistent state, but skip defensively.
                    continue;
                }
                if seq > self.log().checkpoint_seq {
                    uncovered = true;
                    continue;
                }
                cands.push((self.log().live_count[slot as usize], slot));
            }
            if !cands.is_empty() {
                cands.sort_unstable();
                let mut victims = Vec::new();
                let mut total_live = 0u32;
                for (live, slot) in cands {
                    if !victims.is_empty() && total_live + live > pack_cap {
                        break;
                    }
                    victims.push(SegmentId::new(slot));
                    total_live += live;
                }
                return Ok(victims);
            }
            if uncovered && attempt == 0 {
                // All candidates are newer than the last checkpoint:
                // take one now and retry.
                self.checkpoint_inner()?;
                continue;
            }
            break;
        }
        Ok(Vec::new())
    }

    /// Relocates every live block out of the `victims`, seals the
    /// relocation records *once* for the whole batch, and frees the
    /// slots.
    fn clean_batch(&mut self, victims: &[SegmentId]) -> Result<()> {
        let mut buf = vec![0u8; self.lld.layout.block_size];
        for &victim in victims {
            let residents: Vec<BlockId> = {
                let mut v: Vec<BlockId> = self.log().residents[victim.get() as usize]
                    .iter()
                    .copied()
                    .collect();
                v.sort_unstable();
                v
            };
            for id in residents {
                let rec = self
                    .map
                    .committed_view_block(id)
                    .cloned()
                    .expect("resident block has a committed record");
                let addr = rec.addr.expect("resident block has an address");
                debug_assert_eq!(addr.segment, victim);
                // The victim is sealed, so its data is on the device.
                self.lld
                    .device
                    .read_at(self.lld.layout.block_offset(addr), &mut buf)?;
                // Re-enter the block with its original timestamp: the
                // relocation is not a logical write.
                self.place_block_data(id, &buf, rec.ts, None, 0)?;
                self.lld.stats.blocks_relocated.inc();
            }
            debug_assert!(self.log().residents[victim.get() as usize].is_empty());
        }
        // Make the relocation records durable before the victims' old
        // records become unreachable, then release the victims *before*
        // opening the next segment — the freed slots may be the only
        // ones left.
        self.seal_current()?;
        for &victim in victims {
            self.log().slot_seq[victim.get() as usize] = 0;
            self.log().free_slots.insert(victim.get());
        }
        self.sync_free_hint();
        if self.log().builder.is_none() {
            self.open_segment(0)?;
        }
        Ok(())
    }
}
