//! The background metrics sampler ("ld-sampler").
//!
//! A histogram or counter read once at the end of a run tells you the
//! *aggregate*; a time series of the same numbers tells you the
//! *shape* — where throughput dipped while the cleaner ran, how queue
//! depth built up ahead of a backpressure stall. The sampler is a
//! dedicated thread that captures a stripped
//! [`ObsSnapshot`](crate::ObsSnapshot) (counters and histograms; no
//! per-event trace, no spans) into a bounded in-memory ring at a fixed
//! frequency ([`LldConfig::metrics_hz`](crate::LldConfig) / the
//! `LD_ARU_METRICS_HZ` environment variable), exportable as JSONL —
//! one `{"t_ms": …, "snapshot": {…}}` object per line — via
//! `Lld::sampler_jsonl`.
//!
//! Snapshots are cumulative, not pre-differenced: consumers subtract
//! adjacent lines (see `scripts/check_obs.py` and `ldctl top`), which
//! keeps a dropped sample from corrupting every later delta. The ring
//! keeps the most recent [`MAX_SAMPLES`] samples; older ones are
//! evicted and counted.
//!
//! Deterministic tests bypass the thread entirely: `Lld::sample_now`
//! captures a sample synchronously whether or not a sampler thread is
//! running.

use crate::lld::{Lld, LldInner};
use crate::obs::{json, ObsSnapshot};
use ld_disk::{BlockDevice, Condvar, Mutex};
use std::collections::VecDeque;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Most samples the ring retains; the oldest are evicted beyond this.
/// At the ceiling sampling frequency this is still minutes of history.
pub(crate) const MAX_SAMPLES: usize = 4096;

/// One captured sample: milliseconds since the sampler's epoch (disk
/// creation) plus a stripped snapshot (no events, no spans).
#[derive(Debug, Clone)]
pub(crate) struct Sample {
    pub(crate) t_ms: u64,
    pub(crate) snapshot: ObsSnapshot,
}

/// Coordination state of the sampler thread. A leaf lock: never held
/// while acquiring any other lock (pushing a sample locks it *after*
/// the snapshot has been fully captured).
#[derive(Debug)]
pub(crate) struct Sampler {
    state: Mutex<SamplerState>,
    /// Shutdown wake-up for the sleeping thread.
    wake: Condvar,
    /// `t_ms` zero point, fixed at disk creation.
    epoch: Instant,
}

#[derive(Debug, Default)]
struct SamplerState {
    stop: bool,
    samples: VecDeque<Sample>,
    /// Samples evicted from the ring by wraparound.
    dropped: u64,
    handle: Option<JoinHandle<()>>,
}

impl Sampler {
    pub(crate) fn new() -> Self {
        Sampler {
            state: Mutex::new(SamplerState::default()),
            wake: Condvar::new(),
            epoch: Instant::now(),
        }
    }

    /// Requests shutdown and joins the thread. Idempotent; called from
    /// `Lld::into_device` and `Drop for Lld`.
    pub(crate) fn shutdown_and_join(&self) {
        let handle = {
            let mut st = self.state.lock();
            st.stop = true;
            self.wake.notify_all();
            st.handle.take()
        };
        if let Some(h) = handle {
            let _ = h.join();
        }
    }

    fn push(&self, sample: Sample) {
        let mut st = self.state.lock();
        if st.samples.len() >= MAX_SAMPLES {
            st.samples.pop_front();
            st.dropped += 1;
        }
        st.samples.push_back(sample);
    }

    /// Number of samples currently retained.
    pub(crate) fn len(&self) -> usize {
        self.state.lock().samples.len()
    }

    /// Samples evicted from the ring by wraparound.
    pub(crate) fn dropped(&self) -> u64 {
        self.state.lock().dropped
    }

    /// Serializes the retained samples as JSONL, oldest first.
    pub(crate) fn to_jsonl(&self) -> String {
        let st = self.state.lock();
        let mut out = String::new();
        for s in &st.samples {
            let mut o = json::Obj::new();
            o.u64("t_ms", s.t_ms).raw("snapshot", &s.snapshot.to_json());
            out.push_str(&o.finish());
            out.push('\n');
        }
        out
    }
}

impl Default for Sampler {
    fn default() -> Self {
        Sampler::new()
    }
}

/// Starts the sampler thread when the configuration asks for one.
pub(crate) fn spawn_if_configured<D: BlockDevice + 'static>(ld: &Lld<D>, hz: Option<f64>) {
    let Some(hz) = hz else { return };
    // validate() bounds hz to (0, 1000]; the clamp is belt-and-braces
    // against a caller constructing the config by hand.
    let period = Duration::from_secs_f64(1.0 / hz.clamp(0.001, 1000.0));
    let inner = ld.arc_inner();
    let handle = std::thread::Builder::new()
        .name("ld-sampler".into())
        .spawn(move || sampler_main(&inner, period))
        .expect("spawning the sampler thread failed");
    ld.sampler.state.lock().handle = Some(handle);
}

fn sampler_main<D: BlockDevice>(ld: &LldInner<D>, period: Duration) {
    ld_disk::register_thread_name("ld-sampler");
    loop {
        {
            let st = ld.sampler.state.lock();
            if st.stop {
                return;
            }
            let (g, _timed_out) = ld.sampler.wake.wait_timeout(st, period);
            if g.stop {
                return;
            }
        }
        take_sample(ld);
    }
}

/// Captures one sample right now, on the calling thread. Shared by the
/// sampler thread and `Lld::sample_now`.
pub(crate) fn take_sample<D: BlockDevice>(ld: &LldInner<D>) {
    let mut snapshot = ld.obs_snapshot();
    // Strip the unbounded parts: the trace ring and the span table are
    // reachable through the live disk; a time series only needs the
    // numbers.
    snapshot.events = Vec::new();
    snapshot.spans = Vec::new();
    let t_ms = ld.sampler.epoch.elapsed().as_millis() as u64;
    ld.sampler.push(Sample { t_ms, snapshot });
}
