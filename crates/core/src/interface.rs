//! The LD interface as a trait, so disk-system clients (file systems,
//! transaction systems) can be written against any logical-disk
//! implementation — one of LD's design goals: "LD implementations can be
//! exchanged transparently, without changing applications".

use crate::error::Result;
use crate::lld::{Lld, LldInner};
use crate::obs::ObsSnapshot;
use crate::types::{AruId, BlockId, Ctx, ListId, Position};
use ld_disk::BlockDevice;
use std::sync::Arc;

/// The Logical Disk interface with atomic recovery units.
///
/// All operations take a [`Ctx`]: [`Ctx::Simple`] for a simple (self-
/// atomic) operation, or [`Ctx::Aru`] to execute within an atomic
/// recovery unit.
///
/// Every operation takes `&self`: implementations synchronize
/// internally, so one logical disk can be shared across threads by
/// reference or as an `Arc` (both of which implement this trait too,
/// via blanket impls).
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), ld_core::LldError> {
/// use ld_core::{Ctx, LogicalDisk, Lld, LldConfig, Position};
/// use ld_disk::MemDisk;
///
/// fn create_object<L: LogicalDisk>(ld: &L, payload: &[u8]) -> Result<ld_core::ListId, ld_core::LldError> {
///     let aru = ld.begin_aru()?;
///     let list = ld.new_list(Ctx::Aru(aru))?;
///     let block = ld.new_block(Ctx::Aru(aru), list, Position::First)?;
///     ld.write(Ctx::Aru(aru), block, payload)?;
///     ld.end_aru(aru)?;
///     Ok(list)
/// }
///
/// let ld = Lld::format(MemDisk::new(4 << 20), &LldConfig {
///     block_size: 512,
///     segment_bytes: 8 * 512,
///     ..LldConfig::default()
/// })?;
/// let list = create_object(&ld, &[1u8; 512])?;
/// assert_eq!(ld.list_blocks(Ctx::Simple, list)?.len(), 1);
/// # Ok(())
/// # }
/// ```
pub trait LogicalDisk {
    /// Begins an atomic recovery unit.
    ///
    /// # Errors
    ///
    /// Implementation-specific; see [`Lld::begin_aru`].
    fn begin_aru(&self) -> Result<AruId>;

    /// Commits an atomic recovery unit (lazy durability: the unit
    /// survives a crash once its commit record reaches disk).
    ///
    /// # Errors
    ///
    /// Implementation-specific; see [`Lld::end_aru`].
    fn end_aru(&self, aru: AruId) -> Result<()>;

    /// Aborts an atomic recovery unit (extension).
    ///
    /// # Errors
    ///
    /// Implementation-specific; see [`Lld::abort_aru`].
    fn abort_aru(&self, aru: AruId) -> Result<()>;

    /// Allocates a new list.
    ///
    /// # Errors
    ///
    /// See [`Lld::new_list`].
    fn new_list(&self, ctx: Ctx) -> Result<ListId>;

    /// Deletes a list and any blocks still on it.
    ///
    /// # Errors
    ///
    /// See [`Lld::delete_list`].
    fn delete_list(&self, ctx: Ctx, list: ListId) -> Result<()>;

    /// Allocates a new block on `list` at `pos`.
    ///
    /// # Errors
    ///
    /// See [`Lld::new_block`].
    fn new_block(&self, ctx: Ctx, list: ListId, pos: Position) -> Result<BlockId>;

    /// Removes a block from its list and deallocates it.
    ///
    /// # Errors
    ///
    /// See [`Lld::delete_block`].
    fn delete_block(&self, ctx: Ctx, block: BlockId) -> Result<()>;

    /// Writes exactly one block of data.
    ///
    /// # Errors
    ///
    /// See [`Lld::write`].
    fn write(&self, ctx: Ctx, block: BlockId, data: &[u8]) -> Result<()>;

    /// Reads exactly one block of data.
    ///
    /// # Errors
    ///
    /// See [`Lld::read`].
    fn read(&self, ctx: Ctx, block: BlockId, buf: &mut [u8]) -> Result<()>;

    /// Returns the blocks of `list` in order.
    ///
    /// # Errors
    ///
    /// See [`Lld::list_blocks`].
    fn list_blocks(&self, ctx: Ctx, list: ListId) -> Result<Vec<BlockId>>;

    /// Ensures all committed data and meta-data are persistent.
    ///
    /// # Errors
    ///
    /// See [`Lld::flush`].
    fn flush(&self) -> Result<()>;

    /// Commits an atomic recovery unit and makes it durable before
    /// returning. The default is `end_aru` followed by `flush`;
    /// implementations with a group-commit stage (like [`Lld`]) batch
    /// the flushes of concurrent callers.
    ///
    /// # Errors
    ///
    /// Those of [`end_aru`](LogicalDisk::end_aru) and
    /// [`flush`](LogicalDisk::flush).
    fn end_aru_sync(&self, aru: AruId) -> Result<()> {
        self.end_aru(aru)?;
        self.flush()
    }

    /// The block size in bytes.
    fn block_size(&self) -> usize;

    /// A bundle of everything observable about the disk, when the
    /// implementation collects observability data (see
    /// [`Lld::obs_snapshot`]). The default returns `None` so trait
    /// implementors without instrumentation need no code.
    fn obs_snapshot(&self) -> Option<ObsSnapshot> {
        None
    }
}

impl<D: BlockDevice> LogicalDisk for Lld<D> {
    fn begin_aru(&self) -> Result<AruId> {
        LldInner::begin_aru(self)
    }
    fn end_aru(&self, aru: AruId) -> Result<()> {
        LldInner::end_aru(self, aru)
    }
    fn abort_aru(&self, aru: AruId) -> Result<()> {
        LldInner::abort_aru(self, aru)
    }
    fn new_list(&self, ctx: Ctx) -> Result<ListId> {
        LldInner::new_list(self, ctx)
    }
    fn delete_list(&self, ctx: Ctx, list: ListId) -> Result<()> {
        LldInner::delete_list(self, ctx, list)
    }
    fn new_block(&self, ctx: Ctx, list: ListId, pos: Position) -> Result<BlockId> {
        LldInner::new_block(self, ctx, list, pos)
    }
    fn delete_block(&self, ctx: Ctx, block: BlockId) -> Result<()> {
        LldInner::delete_block(self, ctx, block)
    }
    fn write(&self, ctx: Ctx, block: BlockId, data: &[u8]) -> Result<()> {
        LldInner::write(self, ctx, block, data)
    }
    fn read(&self, ctx: Ctx, block: BlockId, buf: &mut [u8]) -> Result<()> {
        LldInner::read(self, ctx, block, buf)
    }
    fn list_blocks(&self, ctx: Ctx, list: ListId) -> Result<Vec<BlockId>> {
        LldInner::list_blocks(self, ctx, list)
    }
    fn flush(&self) -> Result<()> {
        LldInner::flush(self)
    }
    fn end_aru_sync(&self, aru: AruId) -> Result<()> {
        LldInner::end_aru_sync(self, aru)
    }
    fn block_size(&self) -> usize {
        LldInner::block_size(self)
    }
    fn obs_snapshot(&self) -> Option<ObsSnapshot> {
        Some(LldInner::obs_snapshot(self))
    }
}

macro_rules! forward_logical_disk {
    ($ty:ty) => {
        impl<L: LogicalDisk + ?Sized> LogicalDisk for $ty {
            fn begin_aru(&self) -> Result<AruId> {
                (**self).begin_aru()
            }
            fn end_aru(&self, aru: AruId) -> Result<()> {
                (**self).end_aru(aru)
            }
            fn abort_aru(&self, aru: AruId) -> Result<()> {
                (**self).abort_aru(aru)
            }
            fn new_list(&self, ctx: Ctx) -> Result<ListId> {
                (**self).new_list(ctx)
            }
            fn delete_list(&self, ctx: Ctx, list: ListId) -> Result<()> {
                (**self).delete_list(ctx, list)
            }
            fn new_block(&self, ctx: Ctx, list: ListId, pos: Position) -> Result<BlockId> {
                (**self).new_block(ctx, list, pos)
            }
            fn delete_block(&self, ctx: Ctx, block: BlockId) -> Result<()> {
                (**self).delete_block(ctx, block)
            }
            fn write(&self, ctx: Ctx, block: BlockId, data: &[u8]) -> Result<()> {
                (**self).write(ctx, block, data)
            }
            fn read(&self, ctx: Ctx, block: BlockId, buf: &mut [u8]) -> Result<()> {
                (**self).read(ctx, block, buf)
            }
            fn list_blocks(&self, ctx: Ctx, list: ListId) -> Result<Vec<BlockId>> {
                (**self).list_blocks(ctx, list)
            }
            fn flush(&self) -> Result<()> {
                (**self).flush()
            }
            fn end_aru_sync(&self, aru: AruId) -> Result<()> {
                (**self).end_aru_sync(aru)
            }
            fn block_size(&self) -> usize {
                (**self).block_size()
            }
            fn obs_snapshot(&self) -> Option<ObsSnapshot> {
                (**self).obs_snapshot()
            }
        }
    };
}

forward_logical_disk!(&L);
forward_logical_disk!(Arc<L>);
