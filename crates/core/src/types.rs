//! Identifier and address newtypes for the logical disk.
//!
//! All identifiers are non-zero; zero is reserved so that `Option<id>` can
//! be encoded as a bare integer in on-disk records.

use std::fmt;

/// A logical block number.
///
/// Blocks are the smallest unit of disk storage in LD. Clients address
/// data exclusively through logical block numbers; the mapping to physical
/// locations is private to the logical disk (the block-number-map).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(u64);

/// A logical block-list identifier.
///
/// Ordered lists express the logical relationship between blocks and guide
/// physical allocation; a file system typically uses one list per file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ListId(u64);

/// An atomic-recovery-unit identifier, returned by
/// [`Lld::begin_aru`](crate::Lld::begin_aru).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AruId(u64);

/// A logical timestamp.
///
/// The paper orders the stream of operations "by the time of an
/// operation"; this implementation uses a per-instance monotonic counter,
/// which gives the same total order deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(u64);

/// A physical segment slot index on the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegmentId(u32);

/// A physical block address: a segment plus a data-block slot within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PhysAddr {
    /// The segment holding the block.
    pub segment: SegmentId,
    /// Data-block slot within the segment (0-based).
    pub slot: u32,
}

/// The stream an operation executes in: the merged stream (a *simple*
/// operation, an ARU by itself) or the concurrent stream of one ARU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Ctx {
    /// A simple operation: atomic by itself, applied directly to the
    /// committed state.
    #[default]
    Simple,
    /// An operation inside the given atomic recovery unit, applied to
    /// that ARU's shadow state.
    Aru(AruId),
}

/// Where to insert a newly allocated block within its list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Position {
    /// At the beginning of the list.
    #[default]
    First,
    /// Immediately after the given block, which must be on the list.
    After(BlockId),
}

macro_rules! id_impl {
    ($ty:ident, $prefix:literal) => {
        impl $ty {
            /// Wraps a raw identifier.
            ///
            /// # Panics
            ///
            /// Panics if `raw` is zero (zero is the reserved "none"
            /// encoding).
            pub const fn new(raw: u64) -> Self {
                assert!(raw != 0, "identifier zero is reserved");
                $ty(raw)
            }

            /// The raw non-zero value.
            pub const fn get(self) -> u64 {
                self.0
            }

            /// Encodes an optional id as a raw integer (0 for `None`).
            pub(crate) fn encode_opt(opt: Option<Self>) -> u64 {
                opt.map_or(0, |id| id.0)
            }

            /// Decodes a raw integer into an optional id (0 is `None`).
            pub(crate) fn decode_opt(raw: u64) -> Option<Self> {
                (raw != 0).then(|| $ty(raw))
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_impl!(BlockId, "b");
id_impl!(ListId, "l");
id_impl!(AruId, "aru");

impl Timestamp {
    /// The zero timestamp (before any operation).
    pub const ZERO: Timestamp = Timestamp(0);

    /// Wraps a raw counter value.
    pub const fn new(raw: u64) -> Self {
        Timestamp(raw)
    }

    /// The raw counter value.
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl SegmentId {
    /// Wraps a raw segment slot index.
    pub const fn new(raw: u32) -> Self {
        SegmentId(raw)
    }

    /// The raw slot index.
    pub const fn get(self) -> u32 {
        self.0
    }
}

impl fmt::Display for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{}", self.segment, self.slot)
    }
}

impl Ctx {
    /// The ARU this context belongs to, if any.
    pub fn aru(self) -> Option<AruId> {
        match self {
            Ctx::Simple => None,
            Ctx::Aru(id) => Some(id),
        }
    }

    /// Whether this is a simple (non-ARU) operation.
    pub fn is_simple(self) -> bool {
        matches!(self, Ctx::Simple)
    }
}

impl fmt::Display for Ctx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ctx::Simple => write!(f, "simple"),
            Ctx::Aru(id) => write!(f, "{id}"),
        }
    }
}

impl From<AruId> for Ctx {
    fn from(id: AruId) -> Self {
        Ctx::Aru(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(BlockId::new(42).to_string(), "b42");
        assert_eq!(ListId::new(7).to_string(), "l7");
        assert_eq!(AruId::new(3).to_string(), "aru3");
        assert_eq!(Timestamp::new(9).to_string(), "t9");
        assert_eq!(
            PhysAddr {
                segment: SegmentId::new(2),
                slot: 5
            }
            .to_string(),
            "s2+5"
        );
        assert_eq!(Ctx::Simple.to_string(), "simple");
        assert_eq!(Ctx::Aru(AruId::new(1)).to_string(), "aru1");
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn zero_id_rejected() {
        let _ = BlockId::new(0);
    }

    #[test]
    fn optional_encoding_round_trips() {
        assert_eq!(BlockId::encode_opt(None), 0);
        assert_eq!(BlockId::encode_opt(Some(BlockId::new(9))), 9);
        assert_eq!(BlockId::decode_opt(0), None);
        assert_eq!(BlockId::decode_opt(9), Some(BlockId::new(9)));
    }

    #[test]
    fn ctx_helpers() {
        assert!(Ctx::Simple.is_simple());
        assert_eq!(Ctx::Simple.aru(), None);
        let ctx: Ctx = AruId::new(4).into();
        assert_eq!(ctx.aru(), Some(AruId::new(4)));
        assert_eq!(Ctx::default(), Ctx::Simple);
    }

    #[test]
    fn timestamps_order() {
        assert!(Timestamp::ZERO < Timestamp::new(1));
        assert_eq!(Timestamp::new(5).get(), 5);
    }
}
