use crate::error::{LldError, Result};
use crate::obs::ObsConfig;

/// Whether the logical disk supports *concurrent* atomic recovery units.
///
/// The paper's evaluation compares "old" (the original LLD prototype with
/// sequential ARUs) against "new" (the prototype extended with concurrent
/// ARUs). Both are available here, selected at format time, so the
/// concurrency overhead can be measured on identical workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ConcurrencyMode {
    /// The paper's "old" version: at most one ARU may be active at a
    /// time, and its operations apply directly to the committed state
    /// (no shadow versions, no list-operation log). Failure atomicity of
    /// the single active ARU is still guaranteed by the commit record.
    Sequential,
    /// The paper's "new" version: any number of ARUs may be active, each
    /// with its own isolated shadow state, merged into the committed
    /// state at `EndARU`.
    #[default]
    Concurrent,
}

/// What a `Read` operation may see (§3.3 of the paper).
///
/// The three options offer increasing isolation between concurrent ARUs.
/// The paper's prototype implements option 3 ([`OwnShadow`]); the other
/// two are provided for completeness and for the visibility ablation
/// benchmark.
///
/// [`OwnShadow`]: ReadVisibility::OwnShadow
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReadVisibility {
    /// Option 1: return the most recent shadow version of *any* ARU;
    /// every update is visible to all clients immediately.
    AnyShadow,
    /// Option 2: always return the committed version; updates become
    /// visible only when the writing ARU commits.
    Committed,
    /// Option 3 (default, the paper's choice): inside an ARU reads see
    /// that ARU's own shadow state; outside they see the committed
    /// state. Shadow states are fully isolated from each other and
    /// become visible atomically at commit.
    #[default]
    OwnShadow,
}

/// Segment-cleaner tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CleanerConfig {
    /// The cleaner runs when the number of free segments drops below
    /// this threshold (it must be at least 2 so a segment can be opened
    /// while another is being cleaned).
    pub min_free_segments: u32,
    /// The cleaner stops once this many segments are free.
    pub target_free_segments: u32,
    /// Whether the cleaner may run at all. With the cleaner disabled the
    /// disk simply reports [`LldError::DiskFull`] when the log wraps.
    pub enabled: bool,
    /// Run cleaning on a dedicated background thread (`cleanerd`). The
    /// thread wakes when the free-segment count drops below
    /// `target_free_segments` (the low watermark), relocates live blocks
    /// in short scoped write windows, writes the covering checkpoint
    /// itself, and releases victim slots — all off the foreground
    /// mutation path. The inline full-session cleaner remains as the
    /// emergency fallback when the device is genuinely near-full. See
    /// docs/CLEANER.md.
    ///
    /// The default honours the `LD_ARU_CLEANERD` environment variable
    /// (`1`/`true`/`on`/`yes`, case-insensitive; CI uses it to run the
    /// whole suite in background mode).
    pub background: bool,
    /// High-watermark backpressure threshold for background mode: when
    /// the free-segment count is at or below this value, foreground
    /// space-consuming operations briefly stall (bounded, ~50ms) to give
    /// `cleanerd` a window to free slots before they fall back to full
    /// sessions with inline cleaning. Must not exceed
    /// `min_free_segments` when the cleaner is enabled. Ignored unless
    /// `background` is set.
    pub backpressure_free_segments: u32,
}

impl Default for CleanerConfig {
    fn default() -> Self {
        CleanerConfig {
            min_free_segments: 3,
            target_free_segments: 6,
            enabled: true,
            background: default_cleaner_background(),
            backpressure_free_segments: 3,
        }
    }
}

/// Configuration of a logical disk, fixed at format time.
///
/// # Example
///
/// ```
/// use ld_core::{ConcurrencyMode, LldConfig};
///
/// // The paper's "old" baseline configuration.
/// let cfg = LldConfig {
///     concurrency: ConcurrencyMode::Sequential,
///     ..LldConfig::default()
/// };
/// assert!(cfg.validate().is_ok());
/// assert_eq!(cfg.block_size, 4096);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LldConfig {
    /// Logical and physical block size in bytes (default 4096, the
    /// paper's value). Must be a power of two, at least 512.
    pub block_size: usize,
    /// Total size of one segment in bytes, including the segment header
    /// block and the summary (default 512 KiB, the paper's 0.5 MByte).
    /// Must be a multiple of `block_size` and hold at least four blocks.
    pub segment_bytes: usize,
    /// Sequential vs. concurrent ARUs ("old" vs. "new").
    pub concurrency: ConcurrencyMode,
    /// Read visibility semantics (§3.3); the paper uses option 3.
    pub visibility: ReadVisibility,
    /// Segment-cleaner tuning.
    pub cleaner: CleanerConfig,
    /// Upper bound on simultaneously allocated logical blocks. `None`
    /// derives the bound from the number of data-block slots on the
    /// device. The bound sizes the checkpoint region at format time.
    pub max_blocks: Option<u64>,
    /// Upper bound on simultaneously allocated lists. `None` derives it
    /// from `max_blocks`.
    pub max_lists: Option<u64>,
    /// Automatically run the block-reclaiming consistency check at the
    /// end of recovery (the paper: "a disk consistency check during
    /// recovery should free such blocks").
    pub check_on_recovery: bool,
    /// Capacity of the data-block read cache, in blocks (0 disables).
    /// Plays the role of the Minix buffer cache in the paper's stack.
    pub read_cache_blocks: usize,
    /// Number of hash-partitioned mapping-layer shards (power of two,
    /// 1..=64; default 8). Block and list identifiers hash to a shard by
    /// `id & (map_shards - 1)`, and each shard carries its own
    /// readers-writer lock, so operations on identifiers in different
    /// shards never contend. A runtime knob, not persisted on disk: the
    /// same device may be recovered with any shard count.
    ///
    /// The default honours the `LD_ARU_MAP_SHARDS` environment variable
    /// when it holds a valid count (CI uses it to force the degenerate
    /// single-shard configuration).
    pub map_shards: usize,
    /// Route device writes and barriers through a
    /// [`PipelinedDisk`](ld_disk::PipelinedDisk): a dedicated I/O
    /// thread with a bounded submission queue, so the group-commit
    /// leader hands off a sealed segment and the next batch fills while
    /// the previous barrier is still in flight. A runtime knob, not
    /// persisted on disk. See docs/PIPELINE.md.
    ///
    /// The default honours the `LD_ARU_PIPELINE` environment variable
    /// (`1`/`true`/`on`/`yes`, case-insensitive; CI uses it to run the
    /// whole suite in pipelined mode).
    pub pipeline: bool,
    /// Worker threads recovery uses to load checkpoint snapshot slabs,
    /// scan the log suffix, and replay routed records (1..=64; default
    /// 1 = fully serial). Purely a restart-time knob: it changes how
    /// fast `recover` runs, never what state it reconstructs, and is
    /// not persisted on disk. See docs/RECOVERY.md.
    ///
    /// The default honours the `LD_ARU_RECOVERY_THREADS` environment
    /// variable when it holds a valid count (CI uses it to run the
    /// whole suite with parallel recovery).
    pub recovery_threads: usize,
    /// Observability: event tracing, latency histograms, and ARU spans
    /// (default on; see [`ObsConfig::disabled`]).
    pub obs: ObsConfig,
    /// Background metrics sampler frequency in Hz. `Some(hz)` spawns a
    /// thread ("ld-sampler") that captures an
    /// [`ObsSnapshot`](crate::ObsSnapshot) roughly `hz` times per second
    /// into a bounded in-memory ring, exportable as JSONL
    /// (`Lld::sampler_jsonl`). Must be finite and positive (at most
    /// 1000) when set. A runtime knob, not persisted on disk.
    ///
    /// The default honours the `LD_ARU_METRICS_HZ` environment variable
    /// when it parses as such a number.
    pub metrics_hz: Option<f64>,
    /// Directory the crash flight recorder dumps into. When set, a
    /// device error latched on a background thread (the pipeline I/O
    /// thread), a failed background cleaner pass, or a panic on the
    /// cleaner thread writes a JSON sidecar file
    /// (`ld-flight-<pid>-<n>.json`) with the last trace events and a
    /// final stats snapshot. Best-effort: dump I/O errors are ignored.
    ///
    /// The default honours the `LD_ARU_FLIGHT_DIR` environment variable
    /// (non-empty value = the directory path).
    pub flight_dir: Option<std::path::PathBuf>,
}

impl Default for LldConfig {
    fn default() -> Self {
        LldConfig {
            block_size: 4096,
            segment_bytes: 512 * 1024,
            concurrency: ConcurrencyMode::default(),
            visibility: ReadVisibility::default(),
            cleaner: CleanerConfig::default(),
            max_blocks: None,
            max_lists: None,
            check_on_recovery: true,
            read_cache_blocks: 1024,
            map_shards: default_map_shards(),
            pipeline: default_pipeline(),
            recovery_threads: default_recovery_threads(),
            obs: ObsConfig::default(),
            metrics_hz: default_metrics_hz(),
            flight_dir: default_flight_dir(),
        }
    }
}

/// Maximum supported shard count (shard sets are u64 bitmasks).
pub(crate) const MAX_MAP_SHARDS: usize = 64;

/// Maximum recovery worker-pool size (matches the replay partition
/// count ceiling in `recovery.rs`).
pub(crate) const MAX_RECOVERY_THREADS: usize = 64;

fn default_map_shards() -> usize {
    std::env::var("LD_ARU_MAP_SHARDS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n.is_power_of_two() && n <= MAX_MAP_SHARDS)
        .unwrap_or(8)
}

fn default_recovery_threads() -> usize {
    std::env::var("LD_ARU_RECOVERY_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| (1..=MAX_RECOVERY_THREADS).contains(&n))
        .unwrap_or(1)
}

fn default_cleaner_background() -> bool {
    env_flag("LD_ARU_CLEANERD")
}

fn default_pipeline() -> bool {
    env_flag("LD_ARU_PIPELINE")
}

fn default_metrics_hz() -> Option<f64> {
    std::env::var("LD_ARU_METRICS_HZ")
        .ok()
        .and_then(|v| v.trim().parse::<f64>().ok())
        .filter(|hz| hz.is_finite() && *hz > 0.0 && *hz <= 1000.0)
}

fn default_flight_dir() -> Option<std::path::PathBuf> {
    std::env::var_os("LD_ARU_FLIGHT_DIR")
        .filter(|v| !v.is_empty())
        .map(std::path::PathBuf::from)
}

fn env_flag(name: &str) -> bool {
    std::env::var(name)
        .map(|v| {
            let v = v.trim();
            ["1", "true", "on", "yes"]
                .iter()
                .any(|t| v.eq_ignore_ascii_case(t))
        })
        .unwrap_or(false)
}

impl LldConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`LldError::Config`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<()> {
        if !self.block_size.is_power_of_two() || self.block_size < 512 {
            return Err(LldError::Config(format!(
                "block_size {} must be a power of two >= 512",
                self.block_size
            )));
        }
        if !self.segment_bytes.is_multiple_of(self.block_size) {
            return Err(LldError::Config(format!(
                "segment_bytes {} must be a multiple of block_size {}",
                self.segment_bytes, self.block_size
            )));
        }
        if self.segment_bytes / self.block_size < 4 {
            return Err(LldError::Config(
                "a segment must hold at least four blocks".into(),
            ));
        }
        if self.cleaner.enabled && self.cleaner.min_free_segments < 2 {
            return Err(LldError::Config(
                "cleaner.min_free_segments must be at least 2".into(),
            ));
        }
        if self.cleaner.target_free_segments < self.cleaner.min_free_segments {
            return Err(LldError::Config(
                "cleaner.target_free_segments must be >= min_free_segments".into(),
            ));
        }
        if self.cleaner.enabled
            && self.cleaner.background
            && self.cleaner.backpressure_free_segments > self.cleaner.min_free_segments
        {
            return Err(LldError::Config(
                "cleaner.backpressure_free_segments must be <= min_free_segments".into(),
            ));
        }
        if !self.map_shards.is_power_of_two() || self.map_shards > MAX_MAP_SHARDS {
            return Err(LldError::Config(format!(
                "map_shards {} must be a power of two in 1..={MAX_MAP_SHARDS}",
                self.map_shards
            )));
        }
        if !(1..=MAX_RECOVERY_THREADS).contains(&self.recovery_threads) {
            return Err(LldError::Config(format!(
                "recovery_threads {} must be in 1..={MAX_RECOVERY_THREADS}",
                self.recovery_threads
            )));
        }
        if let Some(hz) = self.metrics_hz {
            if !hz.is_finite() || hz <= 0.0 || hz > 1000.0 {
                return Err(LldError::Config(format!(
                    "metrics_hz {hz} must be finite, positive, and at most 1000"
                )));
            }
        }
        Ok(())
    }

    /// Data-block slots per segment (one block is reserved for the
    /// segment header; the summary grows into the remaining space).
    pub fn max_slots_per_segment(&self) -> u32 {
        (self.segment_bytes / self.block_size - 1) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = LldConfig::default();
        assert_eq!(c.block_size, 4096);
        assert_eq!(c.segment_bytes, 512 * 1024);
        assert_eq!(c.concurrency, ConcurrencyMode::Concurrent);
        assert_eq!(c.visibility, ReadVisibility::OwnShadow);
        assert!(c.validate().is_ok());
        assert_eq!(c.max_slots_per_segment(), 127);
    }

    #[test]
    fn rejects_bad_block_size() {
        let c = LldConfig {
            block_size: 3000,
            ..LldConfig::default()
        };
        assert!(matches!(c.validate(), Err(LldError::Config(_))));
        let c = LldConfig {
            block_size: 256,
            ..LldConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_misaligned_segment() {
        let c = LldConfig {
            segment_bytes: 4096 * 4 + 17,
            ..LldConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_tiny_segment() {
        let c = LldConfig {
            segment_bytes: 4096 * 2,
            ..LldConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_bad_cleaner_thresholds() {
        let mut c = LldConfig::default();
        c.cleaner.min_free_segments = 1;
        assert!(c.validate().is_err());
        c.cleaner.min_free_segments = 4;
        c.cleaner.target_free_segments = 3;
        assert!(c.validate().is_err());
        c.cleaner.enabled = false;
        c.cleaner.min_free_segments = 0;
        c.cleaner.target_free_segments = 0;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn rejects_backpressure_above_min() {
        let mut c = LldConfig::default();
        c.cleaner.background = true;
        c.cleaner.backpressure_free_segments = c.cleaner.min_free_segments;
        assert!(c.validate().is_ok());
        c.cleaner.backpressure_free_segments = c.cleaner.min_free_segments + 1;
        assert!(c.validate().is_err());
        // Irrelevant when the cleaner is disabled.
        c.cleaner.enabled = false;
        c.cleaner.min_free_segments = 2;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn rejects_bad_metrics_hz() {
        for bad in [0.0, -4.0, f64::NAN, f64::INFINITY, 1001.0] {
            let c = LldConfig {
                metrics_hz: Some(bad),
                ..LldConfig::default()
            };
            assert!(c.validate().is_err(), "metrics_hz {bad} should be rejected");
        }
        let c = LldConfig {
            metrics_hz: Some(25.0),
            ..LldConfig::default()
        };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn rejects_bad_recovery_threads() {
        for bad in [0usize, 65, 1000] {
            let c = LldConfig {
                recovery_threads: bad,
                ..LldConfig::default()
            };
            assert!(
                c.validate().is_err(),
                "recovery_threads {bad} should be rejected"
            );
        }
        for good in [1usize, 3, 4, 64] {
            let c = LldConfig {
                recovery_threads: good,
                ..LldConfig::default()
            };
            assert!(c.validate().is_ok());
        }
    }

    #[test]
    fn rejects_bad_shard_counts() {
        for bad in [0usize, 3, 6, 128] {
            let c = LldConfig {
                map_shards: bad,
                ..LldConfig::default()
            };
            assert!(c.validate().is_err(), "map_shards {bad} should be rejected");
        }
        for good in [1usize, 2, 8, 64] {
            let c = LldConfig {
                map_shards: good,
                ..LldConfig::default()
            };
            assert!(c.validate().is_ok());
        }
    }
}
